// Tests for the explicit-representation baselines and StreamingCC.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/csr_batch_graph.h"
#include "baseline/disk_adjacency_graph.h"
#include "baseline/hash_adjacency_graph.h"
#include "baseline/matrix_checker.h"
#include "baseline/streaming_cc.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

// ---------------- AdjacencyMatrixChecker --------------------------------

TEST(MatrixCheckerTest, TracksEdges) {
  AdjacencyMatrixChecker m(8);
  m.Update({Edge(1, 2), UpdateType::kInsert});
  EXPECT_TRUE(m.HasEdge(Edge(1, 2)));
  EXPECT_FALSE(m.HasEdge(Edge(1, 3)));
  EXPECT_EQ(m.num_edges(), 1u);
  m.Update({Edge(1, 2), UpdateType::kDelete});
  EXPECT_FALSE(m.HasEdge(Edge(1, 2)));
  EXPECT_EQ(m.num_edges(), 0u);
}

TEST(MatrixCheckerTest, IllegalUpdatesAbort) {
  AdjacencyMatrixChecker m(8);
  EXPECT_DEATH(m.Update({Edge(0, 1), UpdateType::kDelete}), "absent");
  m.Update({Edge(0, 1), UpdateType::kInsert});
  EXPECT_DEATH(m.Update({Edge(0, 1), UpdateType::kInsert}),
               "already present");
}

TEST(MatrixCheckerTest, KruskalComponents) {
  AdjacencyMatrixChecker m(6);
  m.Update({Edge(0, 1), UpdateType::kInsert});
  m.Update({Edge(1, 2), UpdateType::kInsert});
  m.Update({Edge(3, 4), UpdateType::kInsert});
  const ConnectivityResult r = m.ConnectedComponents();
  EXPECT_EQ(r.num_components, 3u);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(r.spanning_forest.size(), 3u);
}

TEST(MatrixCheckerTest, EdgesEnumerationMatches) {
  AdjacencyMatrixChecker m(10);
  m.Update({Edge(2, 7), UpdateType::kInsert});
  m.Update({Edge(0, 9), UpdateType::kInsert});
  const EdgeList edges = m.Edges();
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_TRUE((edges[0] == Edge(0, 9) && edges[1] == Edge(2, 7)) ||
              (edges[0] == Edge(2, 7) && edges[1] == Edge(0, 9)));
}

// ---------------- Explicit dynamic graphs -------------------------------

template <typename GraphT>
GraphT MakeGraph(uint64_t n);

template <>
HashAdjacencyGraph MakeGraph(uint64_t n) {
  return HashAdjacencyGraph(n);
}

template <>
CsrBatchGraph MakeGraph(uint64_t n) {
  return CsrBatchGraph(n, /*batch_capacity=*/16);
}

template <typename GraphT>
class ExplicitGraphTest : public ::testing::Test {};

using GraphTypes = ::testing::Types<HashAdjacencyGraph, CsrBatchGraph>;
TYPED_TEST_SUITE(ExplicitGraphTest, GraphTypes);

TYPED_TEST(ExplicitGraphTest, InsertDeleteAndComponents) {
  TypeParam g = MakeGraph<TypeParam>(10);
  g.Update({Edge(0, 1), UpdateType::kInsert});
  g.Update({Edge(1, 2), UpdateType::kInsert});
  g.Update({Edge(5, 6), UpdateType::kInsert});
  ConnectivityResult r = g.ConnectedComponents();
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_EQ(r.component_of[0], r.component_of[2]);

  g.Update({Edge(1, 2), UpdateType::kDelete});
  r = g.ConnectedComponents();
  EXPECT_EQ(r.num_components, 8u);
  EXPECT_NE(r.component_of[0], r.component_of[2]);
}

TYPED_TEST(ExplicitGraphTest, AgreesWithMatrixCheckerOnRandomStream) {
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 31;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 31;
  tp.disconnect_count = 5;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  TypeParam g = MakeGraph<TypeParam>(n);
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    g.Update(u);
    checker.Update(u);
  }
  ConnectivityResult got = g.ConnectedComponents();
  const ConnectivityResult expect = checker.ConnectedComponents();
  EXPECT_EQ(got.num_components, expect.num_components);
  EXPECT_EQ(g.num_edges(), checker.num_edges());
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j]);
    }
  }
}

TEST(CsrBatchGraphTest, TypeFlipForcesFlush) {
  CsrBatchGraph g(8, /*batch_capacity=*/100);
  g.Update({Edge(0, 1), UpdateType::kInsert});
  g.Update({Edge(0, 2), UpdateType::kInsert});
  // Delete arrives while inserts are pending: must flush then apply.
  g.Update({Edge(0, 1), UpdateType::kDelete});
  g.Flush();
  EXPECT_FALSE(g.HasEdge(Edge(0, 1)));
  EXPECT_TRUE(g.HasEdge(Edge(0, 2)));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CsrBatchGraphTest, ByteSizeGrowsWithEdges) {
  CsrBatchGraph g(100, 10);
  const size_t before = g.ByteSize();
  for (NodeId i = 0; i + 1 < 100; ++i) {
    g.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  g.Flush();
  EXPECT_GT(g.ByteSize(), before);
}

TEST(HashAdjacencyGraphTest, ByteSizeGrowsWithEdges) {
  HashAdjacencyGraph g(100);
  const size_t before = g.ByteSize();
  for (NodeId i = 0; i + 1 < 100; ++i) {
    g.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  EXPECT_GT(g.ByteSize(), before);
}

// ---------------- DiskAdjacencyGraph ------------------------------------

DiskAdjacencyParams DiskParams(uint64_t n, const char* name,
                               size_t cache = 4) {
  DiskAdjacencyParams p;
  p.num_nodes = n;
  p.file_path = std::string(::testing::TempDir()) + "/" + name;
  p.cache_vertices = cache;
  return p;
}

TEST(DiskAdjacencyGraphTest, InsertDeleteAndComponents) {
  DiskAdjacencyGraph g(DiskParams(10, "diskadj_basic.bin"));
  ASSERT_TRUE(g.Init().ok());
  g.Update({Edge(0, 1), UpdateType::kInsert});
  g.Update({Edge(1, 2), UpdateType::kInsert});
  g.Update({Edge(5, 6), UpdateType::kInsert});
  ConnectivityResult r = g.ConnectedComponents();
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_TRUE(r.Connected(0, 2));

  g.Update({Edge(1, 2), UpdateType::kDelete});
  r = g.ConnectedComponents();
  EXPECT_EQ(r.num_components, 8u);
  EXPECT_FALSE(r.Connected(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DiskAdjacencyGraphTest, TinyCacheForcesEvictions) {
  // Cache of 2 vertices, star graph: every update faults both regions.
  DiskAdjacencyGraph g(DiskParams(32, "diskadj_evict.bin", 2));
  ASSERT_TRUE(g.Init().ok());
  for (NodeId v = 1; v < 32; ++v) {
    g.Update({Edge(0, v), UpdateType::kInsert});
  }
  EXPECT_GT(g.bytes_written(), 0u);  // Dirty evictions happened.
  const ConnectivityResult r = g.ConnectedComponents();
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.spanning_forest.size(), 31u);
}

TEST(DiskAdjacencyGraphTest, AgreesWithMatrixCheckerOnRandomStream) {
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.12;
  ep.seed = 41;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 41;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  DiskAdjacencyGraph g(DiskParams(n, "diskadj_random.bin", 6));
  ASSERT_TRUE(g.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    g.Update(u);
    checker.Update(u);
  }
  const ConnectivityResult got = g.ConnectedComponents();
  const ConnectivityResult expect = checker.ConnectedComponents();
  EXPECT_EQ(got.num_components, expect.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.Connected(i, j), expect.Connected(i, j));
    }
  }
}

TEST(DiskAdjacencyGraphTest, IllegalUpdatesAbort) {
  DiskAdjacencyGraph g(DiskParams(8, "diskadj_illegal.bin"));
  ASSERT_TRUE(g.Init().ok());
  EXPECT_DEATH(g.Update({Edge(0, 1), UpdateType::kDelete}), "absent");
}

TEST(DiskAdjacencyGraphTest, RamFootprintBounded) {
  // RAM usage is bounded by the cache, not the graph.
  DiskAdjacencyGraph g(DiskParams(64, "diskadj_ram.bin", 4));
  ASSERT_TRUE(g.Init().ok());
  for (NodeId i = 0; i + 1 < 64; ++i) {
    g.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  EXPECT_LT(g.RamByteSize(), g.DiskByteSize());
}

// ---------------- StreamingCC (standard l0 sampler) ---------------------

TEST(StreamingCcTest, SmallGraphCorrect) {
  StreamingCcParams p;
  p.num_nodes = 16;
  p.seed = 5;
  StreamingCc scc(p);
  for (NodeId i = 0; i + 1 < 8; ++i) {
    scc.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  const ConnectivityResult r = scc.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 16u - 8u + 1u);
  EXPECT_EQ(r.component_of[0], r.component_of[7]);
}

TEST(StreamingCcTest, DeletionsRespected) {
  StreamingCcParams p;
  p.num_nodes = 8;
  p.seed = 6;
  StreamingCc scc(p);
  scc.Update({Edge(0, 1), UpdateType::kInsert});
  scc.Update({Edge(1, 2), UpdateType::kInsert});
  scc.Update({Edge(0, 1), UpdateType::kDelete});
  const ConnectivityResult r = scc.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_NE(r.component_of[0], r.component_of[1]);
  EXPECT_EQ(r.component_of[1], r.component_of[2]);
}

class StreamingCcRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingCcRandomTest, MatchesExactChecker) {
  const uint64_t seed = GetParam();
  const uint64_t n = 24;  // Small: the standard sampler is slow.
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = seed;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();

  StreamingCcParams p;
  p.num_nodes = n;
  p.seed = seed + 100;
  StreamingCc scc(p);
  AdjacencyMatrixChecker checker(n);
  for (const Edge& e : edges) {
    scc.Update({e, UpdateType::kInsert});
    checker.Update({e, UpdateType::kInsert});
  }
  const ConnectivityResult got = scc.Query();
  const ConnectivityResult expect = checker.ConnectedComponents();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingCcRandomTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(StreamingCcTest, LargerThanCubeSketchStructure) {
  // The paper's size claim: standard-sampler node sketches dwarf
  // CubeSketch node sketches for the same graph.
  StreamingCcParams p;
  p.num_nodes = 64;
  p.seed = 1;
  StreamingCc scc(p);
  NodeSketchParams np;
  np.num_nodes = 64;
  np.seed = 1;
  NodeSketch cube(np);
  EXPECT_GT(scc.ByteSize() / 64, cube.ByteSize());
}

}  // namespace
}  // namespace gz
