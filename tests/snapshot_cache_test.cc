// SnapshotCache plan/refresh agreement: PlannedPulls() must predict
// EXACTLY the pulls Refresh() makes at the same (epoch, marks) — the
// two consult one shared needs-pull predicate, and QuerySession's
// seqlock depends on the plan being exact (it pre-stages one buffer
// per planned pull; an unplanned pull inside Refresh would fail the
// refresh, a planned-but-skipped one would leak a stale stage).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/graph_zeppelin.h"
#include "core/snapshot_cache.h"

namespace gz {
namespace {

constexpr uint64_t kNodes = 24;
constexpr uint64_t kSeed = 1234;

GraphZeppelinConfig Config() {
  GraphZeppelinConfig c;
  c.num_nodes = kNodes;
  c.seed = kSeed;  // Every shard shares the seed — mergeable sketches.
  c.disk_dir = ::testing::TempDir();
  return c;
}

// A toy "cluster": per-shard in-process instances, watermarks tracked
// the way a coordinator tracks them (ingested count, delta_seq 0).
class SnapshotCachePlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int s = 0; s < 3; ++s) AddShard();
    // A path spread across the shards: 0-1-2-...-8.
    Ingest(0, {{Edge(0, 1), UpdateType::kInsert},
               {Edge(1, 2), UpdateType::kInsert},
               {Edge(2, 3), UpdateType::kInsert}});
    Ingest(1, {{Edge(3, 4), UpdateType::kInsert},
               {Edge(4, 5), UpdateType::kInsert}});
    Ingest(2, {{Edge(5, 6), UpdateType::kInsert},
               {Edge(6, 7), UpdateType::kInsert},
               {Edge(7, 8), UpdateType::kInsert}});
  }

  void AddShard() {
    shards_.push_back(std::make_unique<GraphZeppelin>(Config()));
    ASSERT_TRUE(shards_.back()->Init().ok());
  }

  void Ingest(int shard, const std::vector<GraphUpdate>& updates) {
    for (const GraphUpdate& u : updates) shards_[shard]->Update(u);
    shards_[shard]->Flush();
  }

  // The cluster position over the live (non-vanished) shards.
  ShardWatermarks Marks(const std::vector<int>& live) const {
    ShardWatermarks marks;
    for (const int s : live) {
      ShardWatermark mark;
      mark.num_updates = shards_[s]->num_updates_ingested();
      marks.emplace(s, mark);
    }
    return marks;
  }

  // Refresh + the assertion under test: the shards the puller was
  // actually asked for are exactly PlannedPulls(), in count AND in
  // identity (nodes_per_chunk = 0, so one pull per pulled shard).
  void RefreshAndCheckPlan(uint64_t epoch, const ShardWatermarks& marks) {
    std::vector<int> plan = cache_.PlannedPulls(epoch, marks);
    const uint64_t pulls_before = cache_.range_pulls();
    std::vector<int> pulled;
    const Status s = cache_.Refresh(
        epoch, marks, /*total_updates=*/0, shards_[0]->sketch_params(),
        [this, &pulled](int shard, uint64_t lo, uint64_t hi,
                        std::vector<uint8_t>* delta) {
          pulled.push_back(shard);
          *delta = shards_[shard]->Snapshot().ExtractNodeRange(lo, hi);
          return Status::Ok();
        });
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::sort(plan.begin(), plan.end());
    std::sort(pulled.begin(), pulled.end());
    EXPECT_EQ(pulled, plan);
    EXPECT_EQ(cache_.range_pulls() - pulls_before, plan.size());
  }

  // Bitwise ground truth: the cached merged snapshot must equal the
  // XOR-fold of the live shards' current snapshots.
  void CheckMergedBitwise(const std::vector<int>& live) {
    GraphSnapshot want = shards_[live[0]]->Snapshot();
    for (size_t i = 1; i < live.size(); ++i) {
      const std::vector<uint8_t> bytes =
          shards_[live[i]]->Snapshot().ExtractNodeRange(0, kNodes);
      ASSERT_TRUE(
          want.MergeSerializedNodeRange(bytes.data(), bytes.size()).ok());
    }
    EXPECT_EQ(want.ExtractNodeRange(0, kNodes),
              cache_.merged().ExtractNodeRange(0, kNodes));
  }

  std::vector<std::unique_ptr<GraphZeppelin>> shards_;
  SnapshotCache cache_{/*nodes_per_chunk=*/0};
};

TEST_F(SnapshotCachePlanTest, PlanPredictsPullsThroughCacheLifecycle) {
  // Cold build: every shard with a nonzero watermark is planned.
  {
    const ShardWatermarks marks = Marks({0, 1, 2});
    std::vector<int> plan = cache_.PlannedPulls(1, marks);
    std::sort(plan.begin(), plan.end());
    EXPECT_EQ(plan, (std::vector<int>{0, 1, 2}));
    RefreshAndCheckPlan(1, marks);
    CheckMergedBitwise({0, 1, 2});
  }
  // No-op refresh at the same position: empty plan, zero pulls.
  {
    const ShardWatermarks marks = Marks({0, 1, 2});
    EXPECT_TRUE(cache_.PlannedPulls(1, marks).empty());
    RefreshAndCheckPlan(1, marks);
  }
  // One shard moves: the plan names it alone.
  {
    Ingest(1, {{Edge(9, 10), UpdateType::kInsert}});
    const ShardWatermarks marks = Marks({0, 1, 2});
    EXPECT_EQ(cache_.PlannedPulls(1, marks), std::vector<int>{1});
    RefreshAndCheckPlan(1, marks);
    CheckMergedBitwise({0, 1, 2});
  }
  // A brand-new shard at the zero watermark: its content is still the
  // XOR identity, so it is installed WITHOUT a pull — not planned.
  {
    AddShard();
    const ShardWatermarks marks = Marks({0, 1, 2, 3});
    EXPECT_TRUE(cache_.PlannedPulls(2, marks).empty());
    RefreshAndCheckPlan(2, marks);
  }
  // A vanished shard (removed from the table, content migrated to a
  // survivor): cancelled from retained content, never pulled — only
  // the survivor whose watermark moved is planned. Linearity lets the
  // test "migrate" by re-ingesting the vanished shard's updates into
  // the survivor: the fold is the same XOR either way.
  {
    Ingest(2, {{Edge(0, 1), UpdateType::kInsert},
               {Edge(1, 2), UpdateType::kInsert},
               {Edge(2, 3), UpdateType::kInsert}});
    const ShardWatermarks marks = Marks({1, 2, 3});
    EXPECT_EQ(cache_.PlannedPulls(3, marks), std::vector<int>{2});
    RefreshAndCheckPlan(3, marks);
    CheckMergedBitwise({1, 2, 3});
  }
}

TEST_F(SnapshotCachePlanTest, InvalidatedCachePlansEveryShard) {
  RefreshAndCheckPlan(1, Marks({0, 1, 2}));
  cache_.Invalidate();
  // After invalidation nothing is recorded: every nonzero-watermark
  // shard is planned again (and a zero-watermark one still is not).
  AddShard();
  const ShardWatermarks marks = Marks({0, 1, 2, 3});
  std::vector<int> plan = cache_.PlannedPulls(1, marks);
  std::sort(plan.begin(), plan.end());
  EXPECT_EQ(plan, (std::vector<int>{0, 1, 2}));
  RefreshAndCheckPlan(1, marks);
  CheckMergedBitwise({0, 1, 2, 3});
}

}  // namespace
}  // namespace gz
