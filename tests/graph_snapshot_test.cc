// Tests for the GraphSnapshot query surface: the merge algebra
// (commutative, associative, exact vs a single-instance ground truth),
// parameter-compatibility rejection, serialization round trips, and the
// determinism of the parallel Boruvka engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/matrix_checker.h"
#include "core/connectivity.h"
#include "core/graph_snapshot.h"
#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_types.h"

namespace gz {
namespace {

GraphZeppelinConfig MakeConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

void Ingest(GraphZeppelin* gz, const EdgeList& edges) {
  for (const Edge& e : edges) gz->Update({e, UpdateType::kInsert});
}

// An instance that ingested exactly `edges`, snapshotted.
GraphSnapshot SnapshotOf(uint64_t n, uint64_t seed, const EdgeList& edges) {
  GraphZeppelin gz(MakeConfig(n, seed));
  GZ_CHECK_OK(gz.Init());
  Ingest(&gz, edges);
  return gz.Snapshot();
}

void ExpectSamePartition(const ConnectivityResult& got,
                         const ConnectivityResult& expect, uint64_t n) {
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j])
          << i << " vs " << j;
    }
  }
}

TEST(GraphSnapshotTest, CarriesMetadataAndSurvivesRepeatedQueries) {
  const uint64_t n = 32;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 10; ++i) edges.emplace_back(i, i + 1);

  GraphZeppelin gz(MakeConfig(n, 7));
  ASSERT_TRUE(gz.Init().ok());
  Ingest(&gz, edges);
  const GraphSnapshot snapshot = gz.Snapshot();

  ASSERT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.num_nodes(), n);
  EXPECT_EQ(snapshot.seed(), 7u);
  EXPECT_EQ(snapshot.num_updates(), edges.size());
  EXPECT_EQ(snapshot.params(), gz.sketch_params());

  // Queries never mutate the snapshot: ask twice, compare against a
  // fresh capture of the same (unchanged) instance.
  const ConnectivityResult r1 = Connectivity(snapshot);
  const ConnectivityResult r2 = Connectivity(snapshot);
  ASSERT_FALSE(r1.failed);
  EXPECT_EQ(r1.spanning_forest, r2.spanning_forest);
  EXPECT_EQ(r1.component_of, r2.component_of);
  EXPECT_TRUE(snapshot == gz.Snapshot());
}

TEST(GraphSnapshotTest, MergeMatchesSingleInstanceGroundTruth) {
  // Split one stream across two same-seed instances; the merged
  // snapshot must be *bitwise* equal to the snapshot of one instance
  // that saw everything (linearity is exact, not approximate).
  const uint64_t n = 48;
  const uint64_t seed = 11;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 3;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const size_t half = edges.size() / 2;
  const EdgeList first(edges.begin(), edges.begin() + half);
  const EdgeList second(edges.begin() + half, edges.end());

  GraphSnapshot merged = SnapshotOf(n, seed, first);
  ASSERT_TRUE(merged.Merge(SnapshotOf(n, seed, second)).ok());
  const GraphSnapshot whole = SnapshotOf(n, seed, edges);
  EXPECT_TRUE(merged == whole);
  EXPECT_EQ(merged.num_updates(), edges.size());

  AdjacencyMatrixChecker checker(n);
  for (const Edge& e : edges) checker.Update({e, UpdateType::kInsert});
  ExpectSamePartition(Connectivity(merged), checker.ConnectedComponents(),
                      n);
}

TEST(GraphSnapshotTest, MergeCommutesAndAssociates) {
  const uint64_t n = 40;
  const uint64_t seed = 21;
  EdgeList a_edges, b_edges, c_edges;
  for (NodeId i = 0; i + 1 < 12; ++i) a_edges.emplace_back(i, i + 1);
  for (NodeId i = 12; i + 1 < 26; ++i) b_edges.emplace_back(i, i + 1);
  for (NodeId i = 0; i < 10; ++i) {
    c_edges.emplace_back(i, static_cast<NodeId>(i + 20));
  }

  // a + b == b + a.
  GraphSnapshot ab = SnapshotOf(n, seed, a_edges);
  ASSERT_TRUE(ab.Merge(SnapshotOf(n, seed, b_edges)).ok());
  GraphSnapshot ba = SnapshotOf(n, seed, b_edges);
  ASSERT_TRUE(ba.Merge(SnapshotOf(n, seed, a_edges)).ok());
  EXPECT_TRUE(ab == ba);

  // (a + b) + c == a + (b + c).
  GraphSnapshot ab_c = ab;
  ASSERT_TRUE(ab_c.Merge(SnapshotOf(n, seed, c_edges)).ok());
  GraphSnapshot bc = SnapshotOf(n, seed, b_edges);
  ASSERT_TRUE(bc.Merge(SnapshotOf(n, seed, c_edges)).ok());
  GraphSnapshot a_bc = SnapshotOf(n, seed, a_edges);
  ASSERT_TRUE(a_bc.Merge(bc).ok());
  EXPECT_TRUE(ab_c == a_bc);
}

TEST(GraphSnapshotTest, MergeRejectsIncompatibleParams) {
  const EdgeList edges = {Edge(0, 1)};
  GraphSnapshot base = SnapshotOf(16, 1, edges);

  // Different seed: sketches hash differently, merging would be garbage.
  GraphSnapshot other_seed = SnapshotOf(16, 2, edges);
  EXPECT_EQ(base.Merge(other_seed).code(), StatusCode::kInvalidArgument);

  // Different node bound.
  GraphSnapshot other_nodes = SnapshotOf(32, 1, edges);
  EXPECT_EQ(base.Merge(other_nodes).code(), StatusCode::kInvalidArgument);

  // Different sketch geometry.
  GraphZeppelinConfig config = MakeConfig(16, 1);
  config.cols = 5;
  GraphZeppelin gz(config);
  ASSERT_TRUE(gz.Init().ok());
  GraphSnapshot other_cols = gz.Snapshot();
  EXPECT_EQ(base.Merge(other_cols).code(), StatusCode::kInvalidArgument);

  // Empty snapshots cannot participate.
  GraphSnapshot empty;
  EXPECT_EQ(base.Merge(empty).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(empty.Merge(base).code(), StatusCode::kInvalidArgument);

  // Node-granular deltas get the same checks.
  NodeSketchParams p;
  p.num_nodes = 16;
  p.seed = 99;
  EXPECT_EQ(base.MergeNodeDelta(0, NodeSketch(p)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(base.MergeNodeDelta(999, base.sketch(0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphSnapshotTest, ByteSerializationRoundTripsExactly) {
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 5;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const GraphSnapshot snapshot = SnapshotOf(n, 13, edges);

  const std::vector<uint8_t> bytes = snapshot.Serialize();
  EXPECT_EQ(bytes.size(), snapshot.SerializedSize());
  Result<GraphSnapshot> restored =
      GraphSnapshot::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored.value() == snapshot);

  // A deserialized snapshot answers queries identically to the live one.
  const ConnectivityResult live = Connectivity(snapshot);
  const ConnectivityResult thawed = Connectivity(restored.value());
  ASSERT_FALSE(live.failed);
  EXPECT_EQ(live.spanning_forest, thawed.spanning_forest);
  EXPECT_EQ(live.component_of, thawed.component_of);
}

TEST(GraphSnapshotTest, DeserializeRejectsGarbage) {
  const uint8_t junk[64] = {'n', 'o', 't', ' ', 'a', ' ', 's', 'n'};
  EXPECT_EQ(GraphSnapshot::Deserialize(junk, sizeof(junk)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GraphSnapshot::Deserialize(junk, 4).status().code(),
            StatusCode::kInvalidArgument);

  // Valid header, wrong body size.
  const GraphSnapshot snapshot = SnapshotOf(16, 1, {Edge(0, 1)});
  std::vector<uint8_t> bytes = snapshot.Serialize();
  EXPECT_EQ(GraphSnapshot::Deserialize(bytes.data(), bytes.size() - 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphSnapshotTest, FileRoundTripAndLoadIntoInstance) {
  const std::string path =
      std::string(::testing::TempDir()) + "/snapshot_roundtrip.snap";
  const uint64_t n = 32;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 20; ++i) edges.emplace_back(i, i + 1);
  const GraphSnapshot snapshot = SnapshotOf(n, 17, edges);
  ASSERT_TRUE(snapshot.SaveToFile(path).ok());

  Result<GraphSnapshot> loaded = GraphSnapshot::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value() == snapshot);

  // Install the loaded snapshot into a fresh same-params instance and
  // keep streaming: this is checkpoint restore through the public API.
  GraphZeppelin gz(MakeConfig(n, 17));
  ASSERT_TRUE(gz.Init().ok());
  ASSERT_TRUE(gz.LoadSnapshot(loaded.value()).ok());
  EXPECT_EQ(gz.num_updates_ingested(), edges.size());
  gz.Update({Edge(20, 21), UpdateType::kInsert});
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.Connected(0, 19));
  EXPECT_TRUE(r.Connected(20, 21));
  EXPECT_FALSE(r.Connected(0, 21));

  // Params mismatch on install is rejected.
  GraphZeppelin other(MakeConfig(n, 18));
  ASSERT_TRUE(other.Init().ok());
  EXPECT_EQ(other.LoadSnapshot(loaded.value()).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(GraphSnapshot::LoadFromFile(path + ".missing").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(GraphSnapshotTest, LegacyCheckpointMagicStillLoads) {
  // Pre-GraphSnapshot checkpoints used magic "GZCKPT01" over the same
  // byte layout; they must stay restorable.
  const std::string path =
      std::string(::testing::TempDir()) + "/legacy_magic.snap";
  const GraphSnapshot snapshot = SnapshotOf(16, 3, {Edge(1, 2)});
  std::vector<uint8_t> bytes = snapshot.Serialize();
  std::memcpy(bytes.data(), "GZCKPT01", 8);

  Result<GraphSnapshot> from_bytes =
      GraphSnapshot::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(from_bytes.ok()) << from_bytes.status().ToString();
  EXPECT_TRUE(from_bytes.value() == snapshot);

  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  Result<GraphSnapshot> from_file = GraphSnapshot::LoadFromFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_TRUE(from_file.value() == snapshot);
  std::remove(path.c_str());
}

TEST(GraphSnapshotTest, NodeRangeDeltasMoveStateExactly) {
  // The elastic-migration algebra: extracting ranges of A and folding
  // them into an empty snapshot rebuilds A's sketches; folding the same
  // delta back into A cancels it there (XOR "move"). Deltas carry no
  // update count by design.
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 7;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const GraphSnapshot a = SnapshotOf(n, 21, edges);
  const GraphSnapshot empty = SnapshotOf(n, 21, {});

  GraphSnapshot rebuilt = empty;
  GraphSnapshot drained = a;
  for (const auto& [lo, hi] :
       std::vector<std::pair<uint64_t, uint64_t>>{{0, 17}, {17, 48}}) {
    const std::vector<uint8_t> delta = a.ExtractNodeRange(lo, hi);
    EXPECT_EQ(delta.size(),
              GraphSnapshot::SerializedRangeSizeFor(a.params(), lo, hi));
    ASSERT_TRUE(
        rebuilt.MergeSerializedNodeRange(delta.data(), delta.size()).ok());
    ASSERT_TRUE(
        drained.MergeSerializedNodeRange(delta.data(), delta.size()).ok());
  }
  // Counts are untouched by deltas; align them before bitwise compare.
  EXPECT_EQ(rebuilt.num_updates(), 0u);
  rebuilt.AddUpdates(a.num_updates());
  EXPECT_TRUE(rebuilt == a);
  drained.AddUpdates(a.num_updates() - drained.num_updates());
  // Every sketch in the drained snapshot is zeroed — it equals the
  // empty instance's snapshot (after count alignment).
  GraphSnapshot zero = empty;
  zero.AddUpdates(a.num_updates());
  EXPECT_TRUE(drained == zero);
}

TEST(GraphSnapshotTest, NodeRangeDeltaRejectsGarbage) {
  const uint64_t n = 32;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 10; ++i) edges.emplace_back(i, i + 1);
  GraphSnapshot snap = SnapshotOf(n, 3, edges);
  const std::vector<uint8_t> delta = snap.ExtractNodeRange(4, 20);

  // Truncation, trailing garbage, a bad magic and a params mismatch
  // all bounce without touching the snapshot.
  const GraphSnapshot before = snap;
  EXPECT_EQ(snap.MergeSerializedNodeRange(delta.data(), delta.size() - 1)
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<uint8_t> padded = delta;
  padded.push_back(0);
  EXPECT_EQ(
      snap.MergeSerializedNodeRange(padded.data(), padded.size()).code(),
      StatusCode::kInvalidArgument);
  std::vector<uint8_t> bad_magic = delta;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(
      snap.MergeSerializedNodeRange(bad_magic.data(), bad_magic.size())
          .code(),
      StatusCode::kInvalidArgument);
  GraphSnapshot other_seed = SnapshotOf(n, 4, edges);
  EXPECT_EQ(
      other_seed.MergeSerializedNodeRange(delta.data(), delta.size())
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(snap == before);

  // A whole-snapshot byte stream is not a range delta and vice versa.
  const std::vector<uint8_t> full = snap.Serialize();
  EXPECT_EQ(snap.MergeSerializedNodeRange(full.data(), full.size()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(snap.MergeSerialized(delta.data(), delta.size()).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphSnapshotTest, ParallelBoruvkaMatchesSequentialBitwise) {
  // Large enough to cross the engine's parallel thresholds (sampling
  // needs >= 1024 live components in a round).
  const uint64_t n = 2048;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.003;
  ep.seed = 9;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const GraphSnapshot snapshot = SnapshotOf(n, 23, edges);

  const ConnectivityResult seq = Connectivity(snapshot, /*num_threads=*/1);
  const ConnectivityResult par = Connectivity(snapshot, /*num_threads=*/4);
  ASSERT_FALSE(seq.failed);
  ASSERT_FALSE(par.failed);
  EXPECT_EQ(seq.spanning_forest, par.spanning_forest);
  EXPECT_EQ(seq.component_of, par.component_of);
  EXPECT_EQ(seq.num_components, par.num_components);
  EXPECT_EQ(seq.rounds_used, par.rounds_used);

  AdjacencyMatrixChecker checker(n);
  for (const Edge& e : edges) checker.Update({e, UpdateType::kInsert});
  EXPECT_EQ(seq.num_components,
            checker.ConnectedComponents().num_components);
}

TEST(GraphSnapshotTest, MidStreamSnapshotThenContinue) {
  // The snapshot freezes a stream position; the instance keeps
  // ingesting and a later snapshot reflects the extra updates.
  const uint64_t n = 24;
  GraphZeppelin gz(MakeConfig(n, 29));
  ASSERT_TRUE(gz.Init().ok());
  gz.Update({Edge(0, 1), UpdateType::kInsert});
  const GraphSnapshot early = gz.Snapshot();
  gz.Update({Edge(1, 2), UpdateType::kInsert});
  const GraphSnapshot late = gz.Snapshot();

  EXPECT_EQ(early.num_updates(), 1u);
  EXPECT_EQ(late.num_updates(), 2u);
  const ConnectivityResult r_early = Connectivity(early);
  const ConnectivityResult r_late = Connectivity(late);
  EXPECT_FALSE(r_early.Connected(0, 2));
  EXPECT_TRUE(r_late.Connected(0, 2));
}

}  // namespace
}  // namespace gz
