// Tests for the vectorized sketch-update kernel: every SIMD kernel must
// be bitwise-identical to the scalar path — lane hashes, bucket depths,
// checksums, serialized sketches, and end-to-end GraphSnapshot bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/graph_zeppelin.h"
#include "sketch/cube_sketch.h"
#include "sketch/node_sketch.h"
#include "sketch/sketch_kernel.h"
#include "util/random.h"
#include "util/xxhash.h"

namespace gz {
namespace {

std::vector<SketchKernel> SupportedKernels() {
  std::vector<SketchKernel> kernels = {SketchKernel::kScalar};
  if (SketchKernelSupported(SketchKernel::kAvx2)) {
    kernels.push_back(SketchKernel::kAvx2);
  }
  if (SketchKernelSupported(SketchKernel::kAvx512)) {
    kernels.push_back(SketchKernel::kAvx512);
  }
  return kernels;
}

CubeSketchParams MakeParams(uint64_t n, uint64_t seed, int cols = 7) {
  CubeSketchParams p;
  p.vector_len = n;
  p.seed = seed;
  p.cols = cols;
  return p;
}

// RAII: restore the auto-resolved kernel when a test that forces
// kernels finishes (tests share one process).
struct KernelRestorer {
  ~KernelRestorer() { ForceSketchKernel(BestSupportedSketchKernel()); }
};

// ---- Dispatch surface ----------------------------------------------------

TEST(SketchKernelTest, ParseNames) {
  SketchKernel k;
  ASSERT_TRUE(ParseSketchKernelName("scalar", &k));
  EXPECT_EQ(k, SketchKernel::kScalar);
  ASSERT_TRUE(ParseSketchKernelName("avx2", &k));
  EXPECT_EQ(k, SketchKernel::kAvx2);
  ASSERT_TRUE(ParseSketchKernelName("avx512", &k));
  EXPECT_EQ(k, SketchKernel::kAvx512);
  ASSERT_TRUE(ParseSketchKernelName("auto", &k));
  EXPECT_EQ(k, BestSupportedSketchKernel());
  EXPECT_FALSE(ParseSketchKernelName("", &k));
  EXPECT_FALSE(ParseSketchKernelName("AVX2", &k));
  EXPECT_FALSE(ParseSketchKernelName("sse", &k));
}

TEST(SketchKernelTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(SketchKernelSupported(SketchKernel::kScalar));
  EXPECT_TRUE(SketchKernelSupported(BestSupportedSketchKernel()));
  EXPECT_STREQ(SketchKernelName(SketchKernel::kScalar), "scalar");
  EXPECT_STREQ(SketchKernelName(SketchKernel::kAvx2), "avx2");
  EXPECT_STREQ(SketchKernelName(SketchKernel::kAvx512), "avx512");
}

// ---- Lane hashes ---------------------------------------------------------

TEST(SketchKernelTest, HashBatchMatchesScalarHash) {
  SplitMix64 rng(7);
  // Counts sweep lane-width boundaries for both 4- and 8-lane groups.
  for (size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 63u,
                       100u, 257u}) {
    std::vector<uint64_t> values(count);
    for (uint64_t& v : values) v = rng.Next();
    const uint64_t seed = rng.Next();
    std::vector<uint64_t> expect(count);
    for (size_t i = 0; i < count; ++i) {
      expect[i] = XxHash64Word(values[i], seed);
    }
    for (SketchKernel k : SupportedKernels()) {
      std::vector<uint64_t> out(count, 0);
      XxHash64WordBatch(k, values.data(), count, seed, out.data());
      EXPECT_EQ(out, expect) << "kernel=" << SketchKernelName(k)
                             << " count=" << count;
    }
  }
}

// ---- Randomized cross-kernel streams -------------------------------------

TEST(SketchKernelTest, RandomStreamsBitwiseEqualAcrossKernels) {
  // Inserts and deletes are both toggles; random index streams over
  // small domains revisit indices constantly, exercising cancellation.
  // vector_len covers 1, 2, and non-powers-of-two per the kernel
  // contract; batch sizes cross both lane widths and force tails.
  const std::vector<SketchKernel> kernels = SupportedKernels();
  for (uint64_t vector_len : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000ULL,
                              12345ULL, 1ULL << 40}) {
    SplitMix64 rng(vector_len * 31 + 1);
    std::vector<CubeSketch> sketches;
    for (size_t i = 0; i < kernels.size(); ++i) {
      sketches.emplace_back(MakeParams(vector_len, 99));
    }
    const size_t batch_sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17,
                                  31, 32, 33, 64, 100, 255};
    for (size_t bs : batch_sizes) {
      std::vector<uint64_t> batch(bs);
      for (uint64_t& idx : batch) idx = rng.NextBelow(vector_len);
      for (size_t i = 0; i < kernels.size(); ++i) {
        sketches[i].UpdateBatchWithKernel(kernels[i], batch.data(), bs);
      }
    }
    std::vector<uint8_t> scalar_bytes(sketches[0].SerializedSize());
    sketches[0].SerializeTo(scalar_bytes.data());
    for (size_t i = 1; i < kernels.size(); ++i) {
      EXPECT_EQ(sketches[0], sketches[i])
          << "kernel=" << SketchKernelName(kernels[i])
          << " vector_len=" << vector_len;
      std::vector<uint8_t> bytes(sketches[i].SerializedSize());
      sketches[i].SerializeTo(bytes.data());
      EXPECT_EQ(scalar_bytes, bytes)
          << "serialized divergence, kernel=" << SketchKernelName(kernels[i])
          << " vector_len=" << vector_len;
    }
  }
}

TEST(SketchKernelTest, BatchMatchesPerUpdateLoopForEveryKernel) {
  SplitMix64 rng(1234);
  const uint64_t n = 50000;
  std::vector<uint64_t> indices(301);
  for (uint64_t& idx : indices) idx = rng.NextBelow(n);

  CubeSketch reference(MakeParams(n, 5));
  for (uint64_t idx : indices) reference.Update(idx);

  for (SketchKernel k : SupportedKernels()) {
    CubeSketch batched(MakeParams(n, 5));
    batched.UpdateBatchWithKernel(k, indices.data(), indices.size());
    EXPECT_EQ(reference, batched) << "kernel=" << SketchKernelName(k);
  }
}

TEST(SketchKernelTest, NodeSketchBatchIdenticalUnderForcedKernels) {
  KernelRestorer restore;
  SplitMix64 rng(77);
  NodeSketchParams np;
  np.num_nodes = 300;
  np.seed = 21;
  std::vector<uint64_t> indices(500);
  const uint64_t edge_space = NumPossibleEdges(np.num_nodes);
  for (uint64_t& idx : indices) idx = rng.NextBelow(edge_space);

  NodeSketch reference(np);
  for (uint64_t idx : indices) reference.Update(idx);

  for (SketchKernel k : SupportedKernels()) {
    ForceSketchKernel(k);
    NodeSketch batched(np);
    batched.UpdateBatch(indices.data(), indices.size());
    EXPECT_EQ(reference, batched) << "kernel=" << SketchKernelName(k);
  }
}

// ---- Depth saturation ----------------------------------------------------

// XXH64's word variant is a bijection in the seed for fixed input, so
// we can invert it and craft a column seed making a chosen encoded
// index hash to exactly 0 — the depth-saturation corner (depth ==
// rows - 1 via the h == 0 branch) that random streams can never reach.
uint64_t InvOdd(uint64_t a) {
  uint64_t x = a;  // Newton: converges to a^-1 mod 2^64 in 5 steps.
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}

uint64_t InvXorShiftRight(uint64_t y, int s) {
  uint64_t x = y;
  for (int i = 0; i < 8; ++i) x = y ^ (x >> s);
  return x;
}

uint64_t RotL(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }
uint64_t RotR(uint64_t v, int r) { return (v >> r) | (v << (64 - r)); }

uint64_t SeedMakingHashZero(uint64_t enc) {
  // Forward: h0 = seed + P5 + 8; h1 = h0 ^ round; h2 = rotl(h1,27)*P1
  // + P4; out = avalanche(h2). Run it backwards from out == 0.
  uint64_t h2 = 0;
  h2 = InvXorShiftRight(h2, 32);
  h2 *= InvOdd(kXxPrime3);
  h2 = InvXorShiftRight(h2, 29);
  h2 *= InvOdd(kXxPrime2);
  h2 = InvXorShiftRight(h2, 33);
  const uint64_t h1 = RotR((h2 - kXxPrime4) * InvOdd(kXxPrime1), 27);
  const uint64_t round = RotL(enc * kXxPrime2, 31) * kXxPrime1;
  const uint64_t h0 = h1 ^ round;
  return h0 - kXxPrime5 - 8;
}

TEST(SketchKernelTest, DepthSaturatedLanesMixedInOneLaneGroup) {
  const int cols = 3;
  const int rows = 6;
  const uint64_t saturating_idx = 41;
  const uint64_t zero_seed = SeedMakingHashZero(saturating_idx + 1);
  ASSERT_EQ(XxHash64Word(saturating_idx + 1, zero_seed), 0u)
      << "hash inversion is broken";

  // Column 0 saturates for the crafted index; other columns and the
  // remaining lanes take ordinary random depths.
  SplitMix64 rng(5150);
  std::vector<uint64_t> col_seeds = {zero_seed, rng.Next(), rng.Next()};
  std::vector<uint64_t> gamma_seeds = {rng.Next(), rng.Next(), rng.Next(),
                                       rng.Next()};
  // 11 indices: a full 8-lane group (crafted index inside it) plus a
  // tail, so every kernel mixes saturated and normal lanes.
  std::vector<uint64_t> indices = {3,  17, saturating_idx, 5, 29, 41,
                                   63, 2,  11, 7,  19};

  struct Buckets {
    std::vector<uint64_t> alphas;
    std::vector<uint32_t> gammas;
    uint64_t det_alpha = 0;
    uint32_t det_gamma = 0;
  };
  auto run = [&](SketchKernel k) {
    Buckets b;
    b.alphas.assign(static_cast<size_t>(cols) * rows, 0);
    b.gammas.assign(static_cast<size_t>(cols) * rows, 0);
    CubeSketchKernelArgs args;
    args.indices = indices.data();
    args.count = indices.size();
    args.cols = cols;
    args.rows = rows;
    args.col_seeds = col_seeds.data();
    args.gamma_seeds = gamma_seeds.data();
    args.alphas = b.alphas.data();
    args.gammas = b.gammas.data();
    args.det_alpha = &b.det_alpha;
    args.det_gamma = &b.det_gamma;
    CubeSketchUpdateBatch(k, args);
    return b;
  };

  const Buckets scalar = run(SketchKernel::kScalar);
  for (SketchKernel k : SupportedKernels()) {
    if (k == SketchKernel::kScalar) continue;
    const Buckets simd = run(k);
    EXPECT_EQ(scalar.alphas, simd.alphas) << "kernel=" << SketchKernelName(k);
    EXPECT_EQ(scalar.gammas, simd.gammas) << "kernel=" << SketchKernelName(k);
    EXPECT_EQ(scalar.det_alpha, simd.det_alpha);
    EXPECT_EQ(scalar.det_gamma, simd.det_gamma);
  }

  // The saturated index alone must write every row of column 0 (the
  // h == 0 depth cap), under every kernel.
  for (SketchKernel k : SupportedKernels()) {
    std::vector<uint64_t> just_one = {saturating_idx};
    // Pad with copies so SIMD kernels process it inside a full lane
    // group (even count of toggles cancels; odd count survives).
    std::vector<uint64_t> nine(9, saturating_idx);
    Buckets b;
    b.alphas.assign(static_cast<size_t>(cols) * rows, 0);
    b.gammas.assign(static_cast<size_t>(cols) * rows, 0);
    CubeSketchKernelArgs args;
    args.indices = nine.data();
    args.count = nine.size();
    args.cols = cols;
    args.rows = rows;
    args.col_seeds = col_seeds.data();
    args.gamma_seeds = gamma_seeds.data();
    args.alphas = b.alphas.data();
    args.gammas = b.gammas.data();
    args.det_alpha = &b.det_alpha;
    args.det_gamma = &b.det_gamma;
    CubeSketchUpdateBatch(k, args);
    for (int r = 0; r < rows; ++r) {
      EXPECT_EQ(b.alphas[r], saturating_idx + 1)
          << "kernel=" << SketchKernelName(k) << " row=" << r;
    }
  }
}

// ---- Span-level bounds check ---------------------------------------------

TEST(SketchKernelTest, OutOfRangeBatchAborts) {
  CubeSketch s(MakeParams(10, 1));
  const uint64_t indices[] = {1, 3, 10};
  EXPECT_DEATH(s.UpdateBatch(indices, 3), "batch index out of range");

  NodeSketchParams np;
  np.num_nodes = 4;
  np.seed = 1;
  NodeSketch ns(np);
  const uint64_t bad = NumPossibleEdges(np.num_nodes);
  EXPECT_DEATH(ns.UpdateBatch(&bad, 1), "batch edge index out of range");
}

// ---- End to end ----------------------------------------------------------

TEST(SketchKernelTest, GraphSnapshotBytesIdenticalAcrossKernels) {
  KernelRestorer restore;
  // A full ingest pipeline per kernel — gutters, workers, delta
  // sketches — must produce byte-identical snapshots.
  SplitMix64 rng(90210);
  const uint64_t n = 200;
  std::vector<GraphUpdate> updates;
  for (int i = 0; i < 3000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBelow(n));
    NodeId v = static_cast<NodeId>(rng.NextBelow(n));
    if (u == v) v = (v + 1) % n;
    updates.push_back({Edge(u, v), UpdateType::kInsert});
  }
  // Delete a third of them again (toggle back).
  for (size_t i = 0; i < updates.size(); i += 3) {
    updates.push_back({updates[i].edge, UpdateType::kDelete});
  }

  std::vector<uint8_t> scalar_bytes;
  for (SketchKernel k : SupportedKernels()) {
    ForceSketchKernel(k);
    GraphZeppelinConfig config;
    config.num_nodes = n;
    config.seed = 4242;
    config.num_workers = 2;
    GraphZeppelin gz(config);
    GZ_CHECK_OK(gz.Init());
    gz.Update(updates.data(), updates.size());
    gz.Flush();
    const std::vector<uint8_t> bytes = gz.Snapshot().Serialize();
    if (k == SketchKernel::kScalar) {
      scalar_bytes = bytes;
    } else {
      EXPECT_EQ(scalar_bytes, bytes)
          << "snapshot divergence under kernel " << SketchKernelName(k);
    }
  }
}

}  // namespace
}  // namespace gz
