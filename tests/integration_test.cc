// Full-pipeline integration tests: generator -> stream transform ->
// stream file -> GraphZeppelin (all configs) -> connectivity, verified
// against the exact checker at multiple checkpoints — the paper's
// Section 6.3 methodology at test scale.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>

#include "baseline/matrix_checker.h"
#include "core/graph_zeppelin.h"
#include "stream/kronecker_generator.h"
#include "stream/stream_file.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

using Buffering = GraphZeppelinConfig::Buffering;
using Storage = GraphZeppelinConfig::Storage;

void ExpectSamePartition(const ConnectivityResult& got,
                         const ConnectivityResult& expect, uint64_t n) {
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j])
          << i << " vs " << j;
    }
  }
}

TEST(IntegrationTest, KroneckerStreamThroughFileToQuery) {
  // kron7-style dense stream, round-tripped through the binary file
  // format, ingested by GraphZeppelin, checked at 25/50/75/100%.
  const int scale = 7;
  KroneckerParams kp;
  kp.scale = scale;
  kp.density = 0.4;
  kp.seed = 2;
  KroneckerGenerator gen(kp);
  const uint64_t n = gen.num_nodes();

  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 2;
  const StreamTransformResult stream = BuildStream(gen.Generate(), tp);

  const std::string path =
      std::string(::testing::TempDir()) + "/integration_kron.gzst";
  ASSERT_TRUE(WriteStreamFile(path, n, stream.updates).ok());

  GraphZeppelinConfig config;
  config.num_nodes = n;
  config.seed = 77;
  config.num_workers = 2;
  config.disk_dir = ::testing::TempDir();
  GraphZeppelin gz(config);
  ASSERT_TRUE(gz.Init().ok());
  AdjacencyMatrixChecker checker(n);

  StreamReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.num_updates(), stream.updates.size());
  const uint64_t total = reader.num_updates();
  uint64_t consumed = 0;
  uint64_t next_checkpoint = total / 4;
  GraphUpdate u;
  while (reader.Next(&u)) {
    gz.Update(u);
    checker.Update(u);
    ++consumed;
    if (consumed == next_checkpoint || consumed == total) {
      ExpectSamePartition(gz.ListSpanningForest(),
                          checker.ConnectedComponents(), n);
      next_checkpoint += total / 4;
    }
  }
  EXPECT_TRUE(reader.status().ok());

  // Final graph: the disconnected nodes must be isolated.
  const ConnectivityResult final_result = gz.ListSpanningForest();
  for (NodeId d : stream.disconnected_nodes) {
    for (NodeId other = 0; other < n; ++other) {
      if (other == d) continue;
      if (final_result.component_of[other] == final_result.component_of[d]) {
        // d's component must contain only other disconnected singletons —
        // i.e. nobody, since singletons keep distinct roots.
        ADD_FAILURE() << "disconnected node " << d << " shares component";
      }
    }
  }
  std::remove(path.c_str());
}

class IntegrationConfigTest
    : public ::testing::TestWithParam<std::tuple<Buffering, Storage>> {};

TEST_P(IntegrationConfigTest, DenseKroneckerAllConfigs) {
  const auto [buffering, storage] = GetParam();
  KroneckerParams kp;
  kp.scale = 6;  // 64 nodes, ~1000 edges at density 0.5.
  kp.density = 0.5;
  kp.seed = 5;
  KroneckerGenerator gen(kp);
  const uint64_t n = gen.num_nodes();

  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 5;
  tp.churn_fraction = 0.1;
  tp.phantom_fraction = 0.1;
  const StreamTransformResult stream = BuildStream(gen.Generate(), tp);

  GraphZeppelinConfig config;
  config.num_nodes = n;
  config.seed = 123;
  config.buffering = buffering;
  config.storage = storage;
  config.num_workers = 3;
  config.disk_dir = ::testing::TempDir();
  config.gutter_tree_buffer_bytes = 1 << 12;
  config.gutter_tree_fanout = 8;
  GraphZeppelin gz(config);
  ASSERT_TRUE(gz.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    gz.Update(u);
    checker.Update(u);
  }
  ExpectSamePartition(gz.ListSpanningForest(), checker.ConnectedComponents(),
                      n);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, IntegrationConfigTest,
    ::testing::Combine(::testing::Values(Buffering::kLeafOnly,
                                         Buffering::kGutterTree),
                       ::testing::Values(Storage::kRam, Storage::kDisk)),
    [](const ::testing::TestParamInfo<std::tuple<Buffering, Storage>>& info) {
      std::string name =
          std::get<0>(info.param) == Buffering::kLeafOnly ? "LeafOnly"
                                                          : "GutterTree";
      name += std::get<1>(info.param) == Storage::kRam ? "Ram" : "Disk";
      return name;
    });

TEST(IntegrationTest, SoakAllConfigsWithCheckpointHandoff) {
  // kron9-scale soak: each of the four buffering x storage configs
  // ingests half the stream, checkpoints, hands off to a *fresh*
  // instance (different buffering) that finishes the stream; every
  // final answer must match the exact checker.
  KroneckerParams kp;
  kp.scale = 9;
  kp.density = 0.5;
  kp.seed = 99;
  KroneckerGenerator gen(kp);
  const uint64_t n = gen.num_nodes();
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 99;
  const StreamTransformResult stream = BuildStream(gen.Generate(), tp);
  const size_t half = stream.updates.size() / 2;

  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) checker.Update(u);
  const size_t expect = checker.ConnectedComponents().num_components;

  const std::pair<Buffering, Storage> configs[] = {
      {Buffering::kLeafOnly, Storage::kRam},
      {Buffering::kLeafOnly, Storage::kDisk},
      {Buffering::kGutterTree, Storage::kRam},
      {Buffering::kGutterTree, Storage::kDisk},
  };
  int config_index = 0;
  for (const auto& [buffering, storage] : configs) {
    GraphZeppelinConfig first_config;
    first_config.num_nodes = n;
    first_config.seed = 500 + config_index;
    first_config.buffering = buffering;
    first_config.storage = storage;
    first_config.num_workers = 2;
    first_config.disk_dir = ::testing::TempDir();
    first_config.instance_tag = "soak_a" + std::to_string(config_index);
    GraphZeppelin first(first_config);
    ASSERT_TRUE(first.Init().ok());
    for (size_t i = 0; i < half; ++i) first.Update(stream.updates[i]);
    const std::string ckpt = std::string(::testing::TempDir()) +
                             "/soak_" + std::to_string(config_index) +
                             ".ckpt";
    ASSERT_TRUE(first.SaveCheckpoint(ckpt).ok());

    // Handoff to the *other* buffering structure; sketches carry over.
    GraphZeppelinConfig second_config = first_config;
    second_config.buffering = buffering == Buffering::kLeafOnly
                                  ? Buffering::kGutterTree
                                  : Buffering::kLeafOnly;
    second_config.instance_tag = "soak_b" + std::to_string(config_index);
    GraphZeppelin second(second_config);
    ASSERT_TRUE(second.Init().ok());
    ASSERT_TRUE(second.LoadCheckpoint(ckpt).ok());
    for (size_t i = half; i < stream.updates.size(); ++i) {
      second.Update(stream.updates[i]);
    }
    const ConnectivityResult r = second.ListSpanningForest();
    ASSERT_FALSE(r.failed) << "config " << config_index;
    EXPECT_EQ(r.num_components, expect) << "config " << config_index;
    std::remove(ckpt.c_str());
    ++config_index;
  }
}

TEST(IntegrationTest, ReliabilityMiniTrial) {
  // Scaled-down Section 6.3: many independent streams and query points,
  // expecting zero sketch failures and zero wrong partitions.
  int failures = 0;
  for (uint64_t trial = 0; trial < 12; ++trial) {
    KroneckerParams kp;
    kp.scale = 5;
    kp.density = 0.3;
    kp.seed = trial;
    KroneckerGenerator gen(kp);
    const uint64_t n = gen.num_nodes();
    StreamTransformParams tp;
    tp.num_nodes = n;
    tp.seed = trial;
    const StreamTransformResult stream = BuildStream(gen.Generate(), tp);

    GraphZeppelinConfig config;
    config.num_nodes = n;
    config.seed = trial * 17 + 3;
    config.num_workers = 2;
    config.disk_dir = ::testing::TempDir();
    GraphZeppelin gz(config);
    ASSERT_TRUE(gz.Init().ok());
    AdjacencyMatrixChecker checker(n);
    for (const GraphUpdate& u : stream.updates) {
      gz.Update(u);
      checker.Update(u);
    }
    const ConnectivityResult got = gz.ListSpanningForest();
    const ConnectivityResult expect = checker.ConnectedComponents();
    if (got.failed || got.num_components != expect.num_components) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace gz
