// Tests for the Kronecker and Erdős–Rényi graph generators.
#include <gtest/gtest.h>

#include <set>

#include "dsu/dsu.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/kronecker_generator.h"

namespace gz {
namespace {

bool IsSimple(const EdgeList& edges) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : edges) {
    if (e.u == e.v) return false;
    if (e.u > e.v) return false;  // Must be normalized.
    if (!seen.insert({e.u, e.v}).second) return false;
  }
  return true;
}

TEST(KroneckerGeneratorTest, EdgeCountNearTarget) {
  KroneckerParams p;
  p.scale = 9;  // 512 nodes, ~65k possible edges.
  p.density = 0.5;
  p.seed = 3;
  KroneckerGenerator gen(p);
  const EdgeList edges = gen.Generate();
  const double target =
      p.density * static_cast<double>(NumPossibleEdges(gen.num_nodes()));
  EXPECT_GT(static_cast<double>(edges.size()), target * 0.93);
  EXPECT_LT(static_cast<double>(edges.size()), target * 1.07);
}

TEST(KroneckerGeneratorTest, ProducesSimpleGraph) {
  KroneckerParams p;
  p.scale = 8;
  p.density = 0.4;
  const EdgeList edges = KroneckerGenerator(p).Generate();
  EXPECT_TRUE(IsSimple(edges));
}

TEST(KroneckerGeneratorTest, DeterministicBySeed) {
  KroneckerParams p;
  p.scale = 7;
  p.seed = 42;
  const EdgeList a = KroneckerGenerator(p).Generate();
  const EdgeList b = KroneckerGenerator(p).Generate();
  EXPECT_EQ(a, b);
  p.seed = 43;
  const EdgeList c = KroneckerGenerator(p).Generate();
  EXPECT_NE(a, c);
}

TEST(KroneckerGeneratorTest, SkewedDegreesAtLowDensity) {
  // Kronecker graphs concentrate edges among low-id vertices (initiator
  // A = 0.57 favors the 0-bit quadrant).
  KroneckerParams p;
  p.scale = 10;
  p.density = 0.02;
  p.seed = 5;
  KroneckerGenerator gen(p);
  const EdgeList edges = gen.Generate();
  const uint64_t n = gen.num_nodes();
  std::vector<int> degree(n, 0);
  for (const Edge& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  uint64_t low_half = 0, high_half = 0;
  for (uint64_t v = 0; v < n; ++v) {
    (v < n / 2 ? low_half : high_half) += degree[v];
  }
  EXPECT_GT(low_half, high_half * 2);
}

TEST(KroneckerGeneratorTest, PairWeightSymmetric) {
  KroneckerParams p;
  p.scale = 6;
  KroneckerGenerator gen(p);
  EXPECT_DOUBLE_EQ(gen.PairWeight(3, 17), gen.PairWeight(17, 3));
}

class KroneckerDensitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(KroneckerDensitySweepTest, CalibrationHitsTarget) {
  // The class-histogram calibration must hit the target density even
  // when clipping at probability 1 kicks in for heavy pairs.
  KroneckerParams p;
  p.scale = 9;
  p.density = GetParam();
  p.seed = 11;
  KroneckerGenerator gen(p);
  const EdgeList edges = gen.Generate();
  const double target =
      p.density * static_cast<double>(NumPossibleEdges(gen.num_nodes()));
  EXPECT_GT(static_cast<double>(edges.size()), target * 0.93);
  EXPECT_LT(static_cast<double>(edges.size()), target * 1.07);
}

INSTANTIATE_TEST_SUITE_P(Densities, KroneckerDensitySweepTest,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  ErdosRenyiParams p;
  p.num_nodes = 400;
  p.p = 0.3;
  p.seed = 7;
  const EdgeList edges = ErdosRenyiGenerator(p).Generate();
  const double expect = 0.3 * static_cast<double>(NumPossibleEdges(400));
  EXPECT_GT(static_cast<double>(edges.size()), expect * 0.9);
  EXPECT_LT(static_cast<double>(edges.size()), expect * 1.1);
  EXPECT_TRUE(IsSimple(edges));
}

TEST(ErdosRenyiTest, FullDensityIsCompleteGraph) {
  ErdosRenyiParams p;
  p.num_nodes = 30;
  p.p = 1.0;
  const EdgeList edges = ErdosRenyiGenerator(p).Generate();
  EXPECT_EQ(edges.size(), NumPossibleEdges(30));
}

TEST(RandomConnectedGraphTest, ExactEdgeCountAndConnected) {
  const uint64_t n = 100;
  const uint64_t m = 250;
  const EdgeList edges = RandomConnectedGraph(n, m, 9);
  EXPECT_EQ(edges.size(), m);
  EXPECT_TRUE(IsSimple(edges));
  Dsu dsu(n);
  for (const Edge& e : edges) dsu.Union(e.u, e.v);
  EXPECT_EQ(dsu.num_sets(), 1u);
}

TEST(RandomConnectedGraphTest, TreeCase) {
  const EdgeList edges = RandomConnectedGraph(50, 49, 2);
  EXPECT_EQ(edges.size(), 49u);
  Dsu dsu(50);
  for (const Edge& e : edges) EXPECT_TRUE(dsu.Union(e.u, e.v));
}

}  // namespace
}  // namespace gz
