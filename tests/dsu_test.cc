// Tests for the disjoint-set union substrate.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dsu/dsu.h"
#include "util/random.h"

namespace gz {
namespace {

TEST(DsuTest, InitiallyAllSingletons) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(dsu.Find(i), i);
}

TEST(DsuTest, UnionMergesAndReportsNovelty) {
  Dsu dsu(4);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_FALSE(dsu.Union(1, 0));
  EXPECT_TRUE(dsu.Union(2, 3));
  EXPECT_TRUE(dsu.Union(0, 3));
  EXPECT_FALSE(dsu.Union(1, 2));
  EXPECT_EQ(dsu.num_sets(), 1u);
}

TEST(DsuTest, FindIsIdempotent) {
  Dsu dsu(10);
  dsu.Union(1, 2);
  dsu.Union(2, 3);
  const size_t root = dsu.Find(3);
  EXPECT_EQ(dsu.Find(3), root);
  EXPECT_EQ(dsu.Find(root), root);
  EXPECT_EQ(dsu.Find(1), root);
}

TEST(DsuTest, RootsEnumeration) {
  Dsu dsu(6);
  dsu.Union(0, 1);
  dsu.Union(2, 3);
  const std::vector<size_t> roots = dsu.Roots();
  EXPECT_EQ(roots.size(), 4u);  // {0,1}, {2,3}, {4}, {5}
  for (size_t i = 0; i + 1 < roots.size(); ++i) {
    EXPECT_LT(roots[i], roots[i + 1]);  // Sorted.
  }
}

TEST(DsuTest, LabelsPartitionConsistently) {
  Dsu dsu(8);
  dsu.Union(0, 4);
  dsu.Union(4, 6);
  dsu.Union(1, 3);
  const std::vector<size_t> labels = dsu.Labels();
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_EQ(labels[0], labels[6]);
  EXPECT_EQ(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[0]);
}

TEST(DsuTest, OutOfRangeAborts) {
  Dsu dsu(3);
  EXPECT_DEATH(dsu.Find(3), "x < parent_.size");
}

// Property test: DSU agrees with a naive label-propagation reference.
class DsuRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DsuRandomTest, MatchesNaiveReference) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  const size_t n = 200;
  Dsu dsu(n);
  std::vector<size_t> naive(n);
  for (size_t i = 0; i < n; ++i) naive[i] = i;

  for (int step = 0; step < 300; ++step) {
    const size_t a = rng.NextBelow(n);
    const size_t b = rng.NextBelow(n);
    if (a == b) continue;
    dsu.Union(a, b);
    const size_t la = naive[a], lb = naive[b];
    if (la != lb) {
      for (size_t i = 0; i < n; ++i) {
        if (naive[i] == lb) naive[i] = la;
      }
    }
  }
  // Compare partitions (labels may differ; the partition must match).
  std::map<size_t, size_t> canon_dsu, canon_naive;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t d = dsu.Find(i);
    if (canon_dsu.find(d) == canon_dsu.end()) canon_dsu[d] = count++;
  }
  count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (canon_naive.find(naive[i]) == canon_naive.end()) {
      canon_naive[naive[i]] = count++;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(dsu.Find(i) == dsu.Find(j), naive[i] == naive[j])
          << i << "," << j;
    }
  }
  EXPECT_EQ(dsu.num_sets(), canon_naive.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsuRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gz
