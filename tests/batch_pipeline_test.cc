// End-to-end tests for the flat pooled-batch ingestion pipeline
// (gutters -> BatchPool slabs -> ring WorkQueue -> Graph Workers ->
// sketch store): a 4-way buffering x storage matrix with mid-stream
// queries, plus a multithreaded BatchPool stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "baseline/hash_adjacency_graph.h"
#include "buffer/update_batch.h"
#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"
#include "util/random.h"

namespace gz {
namespace {

// ---- 4-way matrix: {leaf-only, gutter tree} x {RAM, disk} ---------------

struct PipelineCase {
  GraphZeppelinConfig::Buffering buffering;
  GraphZeppelinConfig::Storage storage;
  const char* name;
};

class BatchPipelineMatrixTest
    : public ::testing::TestWithParam<PipelineCase> {};

void ExpectSameComponents(const ConnectivityResult& got,
                          const ConnectivityResult& want, uint64_t n,
                          const char* where) {
  ASSERT_FALSE(got.failed) << where;
  EXPECT_EQ(got.num_components, want.num_components) << where;
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                want.component_of[i] == want.component_of[j])
          << where << ": nodes " << i << "," << j;
    }
  }
}

TEST_P(BatchPipelineMatrixTest, IngestQueryContinueRequery) {
  const PipelineCase& c = GetParam();
  const uint64_t n = 64;

  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.08;
  ep.seed = 7;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 7;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);
  ASSERT_GT(stream.updates.size(), 100u);
  const size_t half = stream.updates.size() / 2;

  GraphZeppelinConfig config;
  config.num_nodes = n;
  config.seed = 13;
  config.num_workers = 3;
  config.buffering = c.buffering;
  config.storage = c.storage;
  config.disk_dir = ::testing::TempDir();
  GraphZeppelin gz(config);
  ASSERT_TRUE(gz.Init().ok());

  HashAdjacencyGraph reference(n);

  // First half through the bulk span API.
  gz.Update(stream.updates.data(), half);
  for (size_t i = 0; i < half; ++i) reference.Update(stream.updates[i]);

  // Mid-stream query: flushes buffers, drains workers, queries.
  ExpectSameComponents(gz.ListSpanningForest(),
                       reference.ConnectedComponents(), n, c.name);

  // Continue ingesting (single-update API this time: exercises the
  // API-boundary span buffering after a flush cycle).
  for (size_t i = half; i < stream.updates.size(); ++i) {
    gz.Update(stream.updates[i]);
    reference.Update(stream.updates[i]);
  }
  EXPECT_EQ(gz.num_updates_ingested(), stream.updates.size());

  // Re-query: the pipeline must have stayed consistent across the
  // flush / reuse cycle.
  ExpectSameComponents(gz.ListSpanningForest(),
                       reference.ConnectedComponents(), n, c.name);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchPipelineMatrixTest,
    ::testing::Values(
        PipelineCase{GraphZeppelinConfig::Buffering::kLeafOnly,
                     GraphZeppelinConfig::Storage::kRam, "leaf_ram"},
        PipelineCase{GraphZeppelinConfig::Buffering::kLeafOnly,
                     GraphZeppelinConfig::Storage::kDisk, "leaf_disk"},
        PipelineCase{GraphZeppelinConfig::Buffering::kGutterTree,
                     GraphZeppelinConfig::Storage::kRam, "tree_ram"},
        PipelineCase{GraphZeppelinConfig::Buffering::kGutterTree,
                     GraphZeppelinConfig::Storage::kDisk, "tree_disk"}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return info.param.name;
    });

// ---- BatchPool ----------------------------------------------------------

TEST(BatchPoolTest, AcquireGivesEmptySlabOfRequestedCapacity) {
  BatchPool pool(32);
  UpdateBatch* b = pool.Acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 0u);
  EXPECT_EQ(b->capacity, 32u);
  EXPECT_FALSE(b->full());
  for (uint64_t i = 0; i < 32; ++i) b->Append(i);
  EXPECT_TRUE(b->full());
  pool.Release(b);
}

TEST(BatchPoolTest, RecyclesSlabsInsteadOfGrowing) {
  BatchPool pool(16);
  UpdateBatch* first = pool.Acquire();
  pool.Release(first);
  UpdateBatch* second = pool.Acquire();
  EXPECT_EQ(first, second);  // LIFO free list hands the slab back.
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  pool.Release(second);
  for (int i = 0; i < 100; ++i) pool.Release(pool.Acquire());
  EXPECT_EQ(pool.slabs_allocated(), 1u);  // Steady state: no growth.
}

TEST(BatchPoolTest, ReleasedSlabComesBackCleared) {
  BatchPool pool(8);
  UpdateBatch* b = pool.Acquire();
  b->node = 5;
  b->Append(123);
  pool.Release(b);
  UpdateBatch* again = pool.Acquire();
  EXPECT_EQ(again->count, 0u);
  pool.Release(again);
}

// Satellite stress test: 8 threads acquire slabs, stamp them with a
// thread-unique pattern, verify the pattern survives, release. Catches
// double-handout (two threads holding one slab) and free-list
// corruption under contention.
TEST(BatchPoolTest, EightThreadAcquireReleaseStress) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 20000;
  constexpr uint32_t kCap = 16;
  BatchPool pool(kCap);
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &corrupt, t] {
      SplitMix64 rng(static_cast<uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kItersPerThread; ++i) {
        // Hold a small random number of slabs at once to vary free-list
        // pressure.
        UpdateBatch* held[4] = {nullptr, nullptr, nullptr, nullptr};
        const int n_held = 1 + static_cast<int>(rng.NextBelow(4));
        for (int h = 0; h < n_held; ++h) {
          UpdateBatch* b = pool.Acquire();
          if (b->count != 0) corrupt = true;
          b->node = static_cast<NodeId>(t);
          const uint64_t stamp =
              (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
          while (!b->full()) b->Append(stamp);
          held[h] = b;
        }
        for (int h = 0; h < n_held; ++h) {
          UpdateBatch* b = held[h];
          // If another thread also got this slab, our stamps are gone.
          if (b->node != static_cast<NodeId>(t) || b->count != kCap) {
            corrupt = true;
          }
          const uint64_t stamp =
              (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(i);
          for (uint32_t k = 0; k < kCap; ++k) {
            if (b->edge_indices()[k] != stamp) corrupt = true;
          }
          pool.Release(b);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_EQ(pool.outstanding(), 0);
  // The pool never needs more slabs than the peak held at once.
  EXPECT_LE(pool.slabs_allocated(), 4u * kThreads);
}

}  // namespace
}  // namespace gz
