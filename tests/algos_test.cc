// Tests for the extended sketch algorithms: spanning-forest
// decomposition, bridges / 2-edge-connected components, bipartiteness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algos/bipartiteness.h"
#include "algos/bridges.h"
#include "algos/spanning_forests.h"
#include "core/connectivity.h"
#include "dsu/dsu.h"
#include "stream/erdos_renyi_generator.h"
#include "util/random.h"

namespace gz {
namespace {

std::vector<NodeSketch> SketchGraph(uint64_t num_nodes, uint64_t seed,
                                    const EdgeList& edges, int rounds) {
  NodeSketchParams p;
  p.num_nodes = num_nodes;
  p.seed = seed;
  p.rounds = rounds;
  std::vector<NodeSketch> sketches;
  sketches.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) sketches.emplace_back(p);
  for (const Edge& e : edges) {
    const uint64_t idx = EdgeToIndex(e, num_nodes);
    sketches[e.u].Update(idx);
    sketches[e.v].Update(idx);
  }
  return sketches;
}

std::set<std::pair<NodeId, NodeId>> ToSet(const EdgeList& edges) {
  std::set<std::pair<NodeId, NodeId>> out;
  for (const Edge& e : edges) out.insert({e.u, e.v});
  return out;
}

// ---------------- spanning forest decomposition -------------------------

TEST(SpanningForestsTest, TreePeelsToOneForest) {
  const uint64_t n = 16;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  auto sketches = SketchGraph(n, 1, edges, RoundsForForests(n, 2));
  const ForestDecomposition d =
      ExtractSpanningForests(&sketches, 2).value();
  ASSERT_FALSE(d.failed);
  ASSERT_EQ(d.forests.size(), 1u);  // Second phase finds no edges.
  EXPECT_EQ(ToSet(d.forests[0]), ToSet(edges));
}

TEST(SpanningForestsTest, CyclePeelsToTreePlusEdge) {
  const uint64_t n = 10;
  EdgeList edges;
  for (NodeId i = 0; i < n; ++i) {
    edges.emplace_back(i, static_cast<NodeId>((i + 1) % n));
  }
  auto sketches = SketchGraph(n, 2, edges, RoundsForForests(n, 2));
  const ForestDecomposition d =
      ExtractSpanningForests(&sketches, 2).value();
  ASSERT_FALSE(d.failed);
  ASSERT_EQ(d.forests.size(), 2u);
  EXPECT_EQ(d.forests[0].size(), n - 1);
  EXPECT_EQ(d.forests[1].size(), 1u);
  // The union is exactly the cycle.
  EXPECT_EQ(ToSet(d.CertificateEdges()), ToSet(edges));
}

class SpanningForestsPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SpanningForestsPropertyTest, ForestsAreEdgeDisjointSubForests) {
  const uint64_t seed = GetParam();
  const uint64_t n = 48;
  const EdgeList edges = RandomConnectedGraph(n, 140, seed);
  const int k = 3;
  auto sketches = SketchGraph(n, seed + 50, edges, RoundsForForests(n, k));
  const ForestDecomposition d =
      ExtractSpanningForests(&sketches, k).value();
  ASSERT_FALSE(d.failed);
  ASSERT_GE(d.forests.size(), 1u);

  const auto edge_set = ToSet(edges);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const EdgeList& forest : d.forests) {
    Dsu forest_dsu(n);
    for (const Edge& e : forest) {
      // Subset of the true edges.
      EXPECT_TRUE(edge_set.count({e.u, e.v}) > 0);
      // Acyclic within the forest.
      EXPECT_TRUE(forest_dsu.Union(e.u, e.v));
      // Disjoint across forests.
      EXPECT_TRUE(seen.insert({e.u, e.v}).second);
    }
  }
  // First forest spans the (connected) graph.
  EXPECT_EQ(d.forests[0].size(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanningForestsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SpanningForestsTest, EmptyGraphYieldsNoForests) {
  auto sketches = SketchGraph(8, 3, {}, RoundsForForests(8, 2));
  const ForestDecomposition d =
      ExtractSpanningForests(&sketches, 2).value();
  EXPECT_FALSE(d.failed);
  EXPECT_TRUE(d.forests.empty());
}

// Both validation edges of the k parameter: the request often arrives
// from a CLI or a wire query, so a bad k must bounce as InvalidArgument
// (never clamp, never abort).
TEST(SpanningForestsTest, RejectsKBelowOne) {
  auto sketches = SketchGraph(8, 3, {Edge(0, 1)}, RoundsForForests(8, 2));
  for (const int k : {0, -1, -7}) {
    auto copy = sketches;
    const Result<ForestDecomposition> r = ExtractSpanningForests(&copy, k);
    ASSERT_FALSE(r.ok()) << "k=" << k;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SpanningForestsTest, RejectsKBeyondRoundBudget) {
  // rounds = budget for exactly 2 forests: k = 3 must be refused, and
  // the refusal must not silently clamp to a smaller certificate.
  auto sketches = SketchGraph(8, 3, {Edge(0, 1)}, RoundsForForests(8, 2));
  EXPECT_EQ(MaxForestsForRounds(8, RoundsForForests(8, 2)), 2);
  {
    auto copy = sketches;
    const Result<ForestDecomposition> r = ExtractSpanningForests(&copy, 3);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // The largest admissible k still works.
  const Result<ForestDecomposition> ok = ExtractSpanningForests(&sketches, 2);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// ---------------- bridges ------------------------------------------------

TEST(BridgesTest, PathAllBridges) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 6; ++i) edges.emplace_back(i, i + 1);
  EXPECT_EQ(FindBridges(6, edges).size(), 5u);
}

TEST(BridgesTest, CycleHasNone) {
  EdgeList edges;
  for (NodeId i = 0; i < 6; ++i) {
    edges.emplace_back(i, static_cast<NodeId>((i + 1) % 6));
  }
  EXPECT_TRUE(FindBridges(6, edges).empty());
}

TEST(BridgesTest, TwoTrianglesJoinedByBridge) {
  EdgeList edges = {Edge(0, 1), Edge(1, 2), Edge(0, 2),   // Triangle A.
                    Edge(3, 4), Edge(4, 5), Edge(3, 5),   // Triangle B.
                    Edge(2, 3)};                          // Bridge.
  const EdgeList bridges = FindBridges(6, edges);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], Edge(2, 3));

  const std::vector<NodeId> labels = TwoEdgeConnectedComponents(6, edges);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[3], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(BridgesTest, DisconnectedGraph) {
  EdgeList edges = {Edge(0, 1), Edge(2, 3), Edge(3, 4), Edge(2, 4)};
  const EdgeList bridges = FindBridges(6, edges);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], Edge(0, 1));
}

class BridgesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BridgesPropertyTest, MatchesNaiveRemoveAndRecount) {
  const uint64_t seed = GetParam();
  const uint64_t n = 24;
  SplitMix64 rng(seed);
  // Random sparse graph (bridges are common when sparse).
  std::set<std::pair<NodeId, NodeId>> edge_set;
  while (edge_set.size() < 30) {
    NodeId a = static_cast<NodeId>(rng.NextBelow(n));
    NodeId b = static_cast<NodeId>(rng.NextBelow(n));
    if (a == b) continue;
    Edge e(a, b);
    edge_set.insert({e.u, e.v});
  }
  EdgeList edges;
  for (const auto& [u, v] : edge_set) edges.emplace_back(u, v);

  auto count_components = [&](const EdgeList& list) {
    Dsu dsu(n);
    for (const Edge& e : list) dsu.Union(e.u, e.v);
    return dsu.num_sets();
  };
  const size_t base = count_components(edges);
  const auto bridge_set = ToSet(FindBridges(n, edges));

  for (size_t skip = 0; skip < edges.size(); ++skip) {
    EdgeList without;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i != skip) without.push_back(edges[i]);
    }
    const bool is_bridge = count_components(without) > base;
    EXPECT_EQ(bridge_set.count({edges[skip].u, edges[skip].v}) > 0, is_bridge)
        << "edge " << edges[skip].u << "-" << edges[skip].v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgesPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- The headline composition: bridges of a sketched stream -------------

TEST(BridgesTest, CertificateFromSketchesPreservesBridges) {
  // Two cliques joined by one bridge plus a pendant path: the k=2
  // certificate extracted from sketches must reproduce G's bridges.
  const uint64_t n = 14;
  EdgeList edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(4, 5);    // Bridge between cliques.
  edges.emplace_back(9, 10);   // Pendant path 9-10-11.
  edges.emplace_back(10, 11);

  auto sketches = SketchGraph(n, 9, edges, RoundsForForests(n, 2));
  const ForestDecomposition d =
      ExtractSpanningForests(&sketches, 2).value();
  ASSERT_FALSE(d.failed);
  const EdgeList cert = d.CertificateEdges();

  const auto bridges_from_cert = ToSet(FindBridges(n, cert));
  const auto bridges_exact = ToSet(FindBridges(n, edges));
  EXPECT_EQ(bridges_from_cert, bridges_exact);
  EXPECT_EQ(bridges_exact.count({4, 5}), 1u);
  EXPECT_EQ(bridges_exact.count({9, 10}), 1u);
  EXPECT_EQ(bridges_exact.count({10, 11}), 1u);
  EXPECT_EQ(bridges_exact.size(), 3u);
}

// ---------------- bipartiteness ------------------------------------------

GraphZeppelinConfig SmallConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

TEST(BipartitenessTest, EvenCycleIsBipartite) {
  BipartitenessSketch bp(SmallConfig(8, 1));
  ASSERT_TRUE(bp.Init().ok());
  for (NodeId i = 0; i < 8; ++i) {
    bp.Update({Edge(i, static_cast<NodeId>((i + 1) % 8)),
               UpdateType::kInsert});
  }
  const BipartitenessResult r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.whole_graph_bipartite);
}

TEST(BipartitenessTest, OddCycleIsNot) {
  BipartitenessSketch bp(SmallConfig(8, 2));
  ASSERT_TRUE(bp.Init().ok());
  for (NodeId i = 0; i < 5; ++i) {
    bp.Update({Edge(i, static_cast<NodeId>((i + 1) % 5)),
               UpdateType::kInsert});
  }
  const BipartitenessResult r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_FALSE(r.whole_graph_bipartite);
  EXPECT_FALSE(r.component_bipartite[0]);
  EXPECT_TRUE(r.component_bipartite[6]);  // Isolated vertex: trivially so.
}

TEST(BipartitenessTest, PerComponentVerdicts) {
  // Component A = odd triangle {0,1,2}; component B = even square
  // {4,5,6,7}.
  BipartitenessSketch bp(SmallConfig(10, 3));
  ASSERT_TRUE(bp.Init().ok());
  bp.Update({Edge(0, 1), UpdateType::kInsert});
  bp.Update({Edge(1, 2), UpdateType::kInsert});
  bp.Update({Edge(0, 2), UpdateType::kInsert});
  bp.Update({Edge(4, 5), UpdateType::kInsert});
  bp.Update({Edge(5, 6), UpdateType::kInsert});
  bp.Update({Edge(6, 7), UpdateType::kInsert});
  bp.Update({Edge(4, 7), UpdateType::kInsert});
  const BipartitenessResult r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_FALSE(r.whole_graph_bipartite);
  EXPECT_FALSE(r.component_bipartite[0]);
  EXPECT_FALSE(r.component_bipartite[2]);
  EXPECT_TRUE(r.component_bipartite[4]);
  EXPECT_TRUE(r.component_bipartite[7]);
}

TEST(BipartitenessTest, DeletionRestoresBipartiteness) {
  BipartitenessSketch bp(SmallConfig(8, 4));
  ASSERT_TRUE(bp.Init().ok());
  // Even cycle plus a chord creating an odd cycle.
  for (NodeId i = 0; i < 6; ++i) {
    bp.Update({Edge(i, static_cast<NodeId>((i + 1) % 6)),
               UpdateType::kInsert});
  }
  bp.Update({Edge(0, 2), UpdateType::kInsert});  // Odd chord.
  BipartitenessResult r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_FALSE(r.whole_graph_bipartite);

  bp.Update({Edge(0, 2), UpdateType::kDelete});
  r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.whole_graph_bipartite);
}

class BipartitenessPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BipartitenessPropertyTest, RandomBipartiteGraphsPass) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  const uint64_t n = 32;
  BipartitenessSketch bp(SmallConfig(n, seed + 10));
  ASSERT_TRUE(bp.Init().ok());
  // Random bipartite graph: edges only between even and odd vertices.
  std::set<std::pair<NodeId, NodeId>> used;
  for (int i = 0; i < 60; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBelow(n / 2) * 2);       // Even.
    NodeId b = static_cast<NodeId>(rng.NextBelow(n / 2) * 2 + 1);   // Odd.
    Edge e(a, b);
    if (!used.insert({e.u, e.v}).second) continue;
    bp.Update({e, UpdateType::kInsert});
  }
  const BipartitenessResult r = bp.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.whole_graph_bipartite);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartitenessPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gz
