// Serving-tier suite: the epoch/watermark-keyed SnapshotCache behind
// CachedSnapshot(), the multi-session listener, and QuerySession — the
// read-side client that answers queries from shard listeners without
// ever touching the coordinator.
//
// The load-bearing property everywhere: a cached or delta-refreshed
// snapshot must be BITWISE identical to a full re-fold at the same
// (epoch, watermark) position — through ingest, add/split/remove
// schedules, shard kill/restart, and concurrent reader sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "core/graph_zeppelin.h"
#include "distributed/query_session.h"
#include "distributed/shard_cluster.h"
#include "distributed/shard_process.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "util/check.h"

namespace gz {
namespace {

using Mode = ShardedGraphZeppelin::Mode;

constexpr uint64_t kNumNodes = 96;
constexpr char kSecret[] = "serving-tier-secret";

GraphZeppelinConfig BaseConfig(uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = kNumNodes;
  c.seed = seed;
  c.num_workers = 1;
  c.disk_dir = ::testing::TempDir();
  return c;
}

// Insert/delete chaos stream (the reshard suite's shape, smaller).
std::vector<GraphUpdate> BuildStream(uint64_t seed) {
  ErdosRenyiParams ep;
  ep.num_nodes = kNumNodes;
  ep.p = 0.08;
  ep.seed = seed + 1000;
  EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  std::vector<Edge> live;
  uint64_t rng = seed * 7919 + 13;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int pass = 0; pass < 2; ++pass) {
    for (const Edge& e : edges) {
      updates.push_back({e, UpdateType::kInsert});
      live.push_back(e);
      if (next() % 100 < 30) {
        const size_t pick = next() % live.size();
        updates.push_back({live[pick], UpdateType::kDelete});
        live.erase(live.begin() + pick);
      }
    }
  }
  return updates;
}

// Chunks a refresh pull sweep covers for one shard at this suite's
// nodes-per-chunk granularity.
constexpr uint64_t kChunk = 16;
constexpr uint64_t kChunksPerShard = (kNumNodes + kChunk - 1) / kChunk;

class ServingTierModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ServingTierModeTest, CachedSnapshotBitwiseEqualsFullFold) {
  // The acceptance pin: at every position along an ingest + reshard
  // schedule, CachedSnapshot() == Snapshot() bitwise — sketches AND
  // update count — and a repeat call at an unmoved position is
  // answered with ZERO data pulls.
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = kChunk;
  ShardedGraphZeppelin sharded(BaseConfig(21), 3, GetParam(), options);
  ASSERT_TRUE(sharded.Init().ok());
  const std::vector<GraphUpdate> updates = BuildStream(21);
  const size_t burst = updates.size() / 6 + 1;
  size_t fed = 0;
  const auto feed_burst = [&] {
    const size_t count = std::min(burst, updates.size() - fed);
    sharded.Update(updates.data() + fed, count);
    fed += count;
  };
  const auto check_pinned = [&](const char* step) {
    GraphSnapshot full = sharded.Snapshot();
    const GraphSnapshot* cached = nullptr;
    Status s = sharded.CachedSnapshot(&cached);
    ASSERT_TRUE(s.ok()) << step << ": " << s.ToString();
    EXPECT_TRUE(*cached == full) << step;
    EXPECT_EQ(cached->num_updates(), full.num_updates()) << step;
    // Nothing moved since: the repeat is served from cache, bitwise
    // identical, zero pulls.
    const uint64_t pulls = sharded.snapshot_cache().range_pulls();
    s = sharded.CachedSnapshot(&cached);
    ASSERT_TRUE(s.ok()) << step;
    EXPECT_TRUE(*cached == full) << step << " (cached repeat)";
    EXPECT_EQ(sharded.snapshot_cache().range_pulls(), pulls)
        << step << ": a fresh cache must not pull";
  };

  feed_burst();
  check_pinned("first burst");
  feed_burst();
  check_pinned("second burst");

  Result<int> added = sharded.AddShard();
  ASSERT_TRUE(added.ok());
  feed_burst();
  check_pinned("after add");

  ASSERT_TRUE(sharded.SplitShard(0).ok());
  feed_burst();
  check_pinned("after split");

  ASSERT_TRUE(sharded.RemoveShard(added.value()).ok());
  while (fed < updates.size()) feed_burst();
  check_pinned("after remove, stream done");
}

TEST_P(ServingTierModeTest, DeltaRefreshPullsOnlyMovedShards) {
  // Cache freshness is per shard: a reshard that touches shards A and
  // B must refresh by pulling node deltas from A and B ONLY — the
  // unmoved third shard contributes its cached content untouched.
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = kChunk;
  ShardedGraphZeppelin sharded(BaseConfig(33), 3, GetParam(), options);
  ASSERT_TRUE(sharded.Init().ok());
  const std::vector<GraphUpdate> updates = BuildStream(33);
  sharded.Update(updates.data(), updates.size());

  const GraphSnapshot* cached = nullptr;
  ASSERT_TRUE(sharded.CachedSnapshot(&cached).ok());
  const uint64_t cold_pulls = sharded.snapshot_cache().range_pulls();
  EXPECT_EQ(sharded.snapshot_cache().cold_builds(), 1u);
  EXPECT_EQ(cold_pulls, 3 * kChunksPerShard);  // Cold: every shard.

  // A split with no interleaved ingest moves exactly two watermarks:
  // the source (its delta_seq advances per extracted chunk) and the
  // new target.
  ASSERT_TRUE(sharded.SplitShard(0).ok());
  ASSERT_TRUE(sharded.CachedSnapshot(&cached).ok());
  EXPECT_EQ(sharded.snapshot_cache().range_pulls() - cold_pulls,
            2 * kChunksPerShard)
      << "refresh must pull from the two moved shards, not all four";
  EXPECT_EQ(sharded.snapshot_cache().cold_builds(), 1u)
      << "a delta refresh must not rebuild from scratch";
  GraphSnapshot full = sharded.Snapshot();
  EXPECT_TRUE(*cached == full);
}

INSTANTIATE_TEST_SUITE_P(Modes, ServingTierModeTest,
                         ::testing::Values(Mode::kInProcess, Mode::kProcess),
                         [](const auto& info) {
                           return info.param == Mode::kInProcess
                                      ? "InProcess"
                                      : "Process";
                         });

TEST(ServingTierFaultTest, CacheServesAtLastPositionWhileShardIsDown) {
  // Watermarks come from the coordinator's own durability bookkeeping,
  // so a FRESH cache answers with zero RPCs even while a shard is down;
  // a refresh that needs the dead shard fails with a precise error; a
  // restart (checkpoint restore + replay) makes the next refresh exact.
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = kChunk;
  ShardCluster cluster(BaseConfig(55), 3, options);
  ASSERT_TRUE(cluster.Start().ok());
  const std::vector<GraphUpdate> updates = BuildStream(55);
  const size_t half = updates.size() / 2;
  ASSERT_TRUE(cluster.Update(updates.data(), half).ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());  // Replay budget for restart.

  const GraphSnapshot* cached = nullptr;
  ASSERT_TRUE(cluster.CachedSnapshot(&cached).ok());
  Result<GraphSnapshot> full = cluster.Snapshot();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(*cached == full.value());

  cluster.KillShard(1);
  const uint64_t pulls = cluster.snapshot_cache().range_pulls();
  ASSERT_TRUE(cluster.CachedSnapshot(&cached).ok())
      << "a fresh cache must serve with a shard down";
  EXPECT_TRUE(*cached == full.value());
  EXPECT_EQ(cluster.snapshot_cache().range_pulls(), pulls);

  // Push the position forward; the refresh now needs the dead shard.
  (void)cluster.Update(updates.data() + half, updates.size() - half);
  const Status stale = cluster.CachedSnapshot(&cached);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.message().find("down"), std::string::npos);

  ASSERT_TRUE(cluster.RestartShard(1).ok());
  ASSERT_TRUE(cluster.CachedSnapshot(&cached).ok());
  full = cluster.Snapshot();
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(*cached == full.value())
      << "post-restart refresh must fold replayed state exactly";
  ASSERT_TRUE(cluster.Shutdown().ok());
}

// ---- TCP serving tier -----------------------------------------------------

// Listener fleet + coordinator + QuerySession readers over loopback.
class ServingTierTcpTest : public ::testing::Test {
 protected:
  void StartFleet(int num_shards) {
    GZ_CHECK_OK(StartListenerShards(
        DefaultShardBinary(), num_shards, ::testing::TempDir(),
        ::testing::TempDir() + "/gz_serving_l", kSecret, &listeners_,
        &endpoints_));
  }
  QuerySessionOptions ReaderOptions(const std::string& secret = kSecret) {
    QuerySessionOptions qo;
    qo.endpoints = endpoints_;
    qo.auth_secret = secret;
    qo.nodes_per_chunk = kChunk;
    return qo;
  }
  std::vector<std::unique_ptr<ListenerShard>> listeners_;
  std::vector<std::string> endpoints_;
};

TEST_F(ServingTierTcpTest, ConcurrentReadersStayBitwiseExactThroughASplit) {
  // The chaos drill: reader sessions hammer the fleet while the
  // coordinator ingests and runs a live BeginSplitShard migration.
  // Every successfully served answer came off the seqlock at ONE
  // position; at quiesce points reader answers are bitwise equal to
  // the coordinator's full fold. A reader killed mid-session and a
  // reader with the wrong secret disturb nothing.
  StartFleet(3);
  ShardClusterOptions options;
  options.auth_secret = kSecret;
  options.shard_endpoints = endpoints_;
  options.migrate_nodes_per_chunk = kChunk;
  ShardedGraphZeppelin sharded(BaseConfig(77), 3, Mode::kProcess, options);
  ASSERT_TRUE(sharded.Init().ok());
  // A fourth listener for the split target: the new shard must serve
  // readers too, so it gets a real endpoint rather than a local child.
  std::vector<std::string> grown_endpoints;
  GZ_CHECK_OK(StartListenerShards(
      DefaultShardBinary(), 1, ::testing::TempDir(),
      ::testing::TempDir() + "/gz_serving_x", kSecret, &listeners_,
      &grown_endpoints));

  const std::vector<GraphUpdate> updates = BuildStream(77);
  const size_t half = updates.size() / 2;
  sharded.Update(updates.data(), half);
  sharded.Flush();

  // Quiesced bitwise pin, reader vs coordinator.
  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  const GraphSnapshot* served = nullptr;
  Status s = session.Snapshot(&served);
  ASSERT_TRUE(s.ok()) << s.ToString();
  {
    GraphSnapshot full = sharded.Snapshot();
    EXPECT_TRUE(*served == full);
    EXPECT_EQ(served->num_updates(), full.num_updates());
  }
  // Unmoved position: answered from the reader's cache, zero pulls.
  const uint64_t pulls = session.cache().range_pulls();
  ASSERT_TRUE(session.Snapshot(&served).ok());
  EXPECT_EQ(session.cache().range_pulls(), pulls);
  EXPECT_EQ(session.last_refresh_rounds(), 1);

  // Wrong-secret reader drill: refused at the handshake, before any
  // frame of graph state moves.
  {
    QuerySession intruder(ReaderOptions("not-the-secret"));
    EXPECT_FALSE(intruder.Connect().ok());
  }

  // Chaos phase: 2 reader threads query continuously while the
  // coordinator splits shard 0 with ingest between pump steps.
  std::atomic<bool> stop{false};
  std::atomic<int> served_ok{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      QuerySession qs(ReaderOptions());
      if (!qs.Connect().ok()) return;
      while (!stop.load()) {
        Result<ConnectivityResult> cc = qs.Connectivity(1);
        // A moving position may legitimately exhaust the seqlock's
        // retry budget mid-migration; any served answer must be a
        // coherent snapshot (Boruvka on garbage would fail/crash).
        if (cc.ok()) {
          served_ok.fetch_add(1);
          EXPECT_FALSE(cc.value().failed) << "reader " << r;
        }
      }
    });
  }
  // A reader killed mid-flight: connect, query once, vanish abruptly.
  {
    QuerySession doomed(ReaderOptions());
    ASSERT_TRUE(doomed.Connect().ok());
    const GraphSnapshot* snap = nullptr;
    ASSERT_TRUE(doomed.Snapshot(&snap).ok());
  }  // Dtor drops all its connections with no goodbye.

  Result<int> target = sharded.BeginSplitShard(0, grown_endpoints[0]);
  ASSERT_TRUE(target.ok());
  size_t fed = half;
  while (sharded.migration_active()) {
    const size_t count = std::min<size_t>(64, updates.size() - fed);
    if (count > 0) {
      sharded.Update(updates.data() + fed, count);
      fed += count;
    }
    ASSERT_TRUE(sharded.PumpMigration().ok());
  }
  while (fed < updates.size()) {
    const size_t count = std::min<size_t>(256, updates.size() - fed);
    sharded.Update(updates.data() + fed, count);
    fed += count;
  }
  sharded.Flush();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(served_ok.load(), 0) << "no reader ever served an answer";

  // Quiesce again. The cluster gained a listener, so a session must
  // (re-)connect with the full endpoint set — the documented contract —
  // and then serve the post-split position bitwise.
  std::vector<std::string> all_endpoints = endpoints_;
  all_endpoints.push_back(grown_endpoints[0]);
  QuerySessionOptions grown_options = ReaderOptions();
  grown_options.endpoints = all_endpoints;
  QuerySession grown_session(std::move(grown_options));
  ASSERT_TRUE(grown_session.Connect().ok());
  s = grown_session.Snapshot(&served);
  ASSERT_TRUE(s.ok()) << s.ToString();
  GraphSnapshot full = sharded.Snapshot();
  EXPECT_TRUE(*served == full);
  EXPECT_EQ(served->num_updates(), updates.size());

  // And the writer path survived every reader drill above.
  const ConnectivityResult coord = sharded.ListSpanningForest();
  const ConnectivityResult reader_cc = Connectivity(*served, 1);
  ASSERT_FALSE(coord.failed);
  ASSERT_FALSE(reader_cc.failed);
  EXPECT_EQ(coord.num_components, reader_cc.num_components);
}

TEST_F(ServingTierTcpTest, SessionLimitRefusesTheOverflowReaderCleanly) {
  // Bounded sessions: with GZ_SHARD_MAX_SESSIONS=2 the third session
  // is refused with a clean kResourceExhausted error — not a hang, not
  // a silent close — and the admitted sessions keep working.
  ::setenv("GZ_SHARD_MAX_SESSIONS", "2", 1);
  StartFleet(1);
  ::unsetenv("GZ_SHARD_MAX_SESSIONS");
  const Result<ShardEndpoint> ep = ParseShardEndpoint(endpoints_[0]);
  ASSERT_TRUE(ep.ok());
  TcpShardTransport first(ep.value(), kSecret, ShardSessionRole::kReader);
  TcpShardTransport second(ep.value(), kSecret, ShardSessionRole::kReader);
  ASSERT_TRUE(first.Connect().ok());
  ASSERT_TRUE(second.Connect().ok());
  TcpShardTransport overflow(ep.value(), kSecret,
                             ShardSessionRole::kReader);
  const Status s = overflow.Connect();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("session limit"), std::string::npos);
  // The admitted sessions still answer.
  ShardAck ack;
  EXPECT_TRUE(
      first.CallAck(ShardMessageType::kPing, nullptr, 0, &ack).ok());
  EXPECT_TRUE(
      second.CallAck(ShardMessageType::kPing, nullptr, 0, &ack).ok());
}

TEST_F(ServingTierTcpTest, StalledPreAuthPeerDoesNotBlockTheWriter) {
  // The DoS window the multi-session listener closes: a peer that
  // connects and goes silent — pre-handshake, or mid-frame as a reader
  // — stalls only its own session thread. The coordinator connects,
  // configures and serves regardless.
  StartFleet(1);
  const Result<ShardEndpoint> ep = ParseShardEndpoint(endpoints_[0]);
  ASSERT_TRUE(ep.ok());

  // Silent pre-auth connection, parked for the whole test.
  struct addrinfo hints = {}, *addrs = nullptr;
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port = std::to_string(ep.value().port);
  ASSERT_EQ(::getaddrinfo("127.0.0.1", port.c_str(), &hints, &addrs), 0);
  const int silent_fd =
      ::socket(addrs->ai_family, addrs->ai_socktype, addrs->ai_protocol);
  ASSERT_GE(silent_fd, 0);
  ASSERT_EQ(::connect(silent_fd, addrs->ai_addr, addrs->ai_addrlen), 0);
  ::freeaddrinfo(addrs);

  // The writer attaches and operates THROUGH the stalled peer's window.
  ShardClusterOptions options;
  options.auth_secret = kSecret;
  options.shard_endpoints = endpoints_;
  ShardCluster cluster(BaseConfig(91), 1, options);
  ASSERT_TRUE(cluster.Start().ok());
  const std::vector<GraphUpdate> updates = BuildStream(91);
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());

  // A reader stalled MID-FRAME (header only, payload never comes)
  // likewise stalls only itself.
  TcpShardTransport stalled(ep.value(), kSecret,
                            ShardSessionRole::kReader);
  ASSERT_TRUE(stalled.Connect().ok());
  const uint8_t partial[4] = {0x47, 0x5A, 0x53, 0x50};  // Header prefix.
  ASSERT_EQ(::send(stalled.fd(), partial, sizeof(partial), MSG_NOSIGNAL),
            4);

  Result<ShardStats> stats = cluster.Stats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_updates, updates.size());
  // A well-behaved reader admitted alongside the two stalled peers is
  // served normally.
  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  const GraphSnapshot* served = nullptr;
  ASSERT_TRUE(session.Snapshot(&served).ok());
  Result<GraphSnapshot> full = cluster.Snapshot();
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(*served == full.value());
  ::close(silent_fd);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_F(ServingTierTcpTest, SilentListenerYieldsDeadlineExceededNotAHang) {
  // The reader-hang bug: a listener that accepts and AUTHENTICATES,
  // then never answers another byte, used to park the QuerySession in
  // a blocking recv() forever. With a receive deadline the stalled
  // request fails with DeadlineExceeded in bounded time, and the dead
  // connection is excluded from later sweeps instead of re-hanging.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd,
                          reinterpret_cast<struct sockaddr*>(&addr),
                          &addr_len),
            0);
  const int port = ntohs(addr.sin_port);

  // The impostor: speaks the v3 handshake honestly, then goes mute.
  std::atomic<bool> stop{false};
  std::atomic<int> session_fd{-1};
  std::thread silent_listener([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    session_fd.store(fd);
    if (!ServerHandshake(fd, kSecret).ok()) return;
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  QuerySessionOptions qo;
  qo.endpoints = {"tcp://127.0.0.1:" + std::to_string(port)};
  qo.auth_secret = kSecret;
  qo.nodes_per_chunk = kChunk;
  qo.receive_deadline_seconds = 1;
  QuerySession session(qo);
  ASSERT_TRUE(session.Connect().ok());  // Handshake really completes.

  const auto t0 = std::chrono::steady_clock::now();
  const GraphSnapshot* served = nullptr;
  Status s = session.Snapshot(&served);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  // Bounded: one deadline (1s) plus slack, nowhere near a hang.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                .count(),
            10);

  // The connection is now marked dead: later probes fail fast with the
  // saved error instead of waiting out another deadline.
  const auto t1 = std::chrono::steady_clock::now();
  bool fresh = false;
  s = session.PollPositions(&fresh);
  const auto poll_elapsed = std::chrono::steady_clock::now() - t1;
  EXPECT_FALSE(s.ok());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                poll_elapsed)
                .count(),
            1000);

  stop.store(true);
  if (session_fd.load() >= 0) ::close(session_fd.load());
  ::close(listen_fd);
  silent_listener.join();
}

TEST_F(ServingTierTcpTest, DuplicateShardIdIsAnErrorFromPollAndSnapshot) {
  // Misconfiguration drill: two UNRELATED single-shard clusters both
  // serve shard id 0 at replication 1. A session dialed across both is
  // pointed at garbage — Snapshot() always said so, and PollPositions()
  // must report the same FailedPrecondition rather than disguising the
  // config error as mere staleness.
  StartFleet(2);
  ShardClusterOptions options_a;
  options_a.auth_secret = kSecret;
  options_a.shard_endpoints = {endpoints_[0]};
  ShardCluster cluster_a(BaseConfig(101), 1, options_a);
  ASSERT_TRUE(cluster_a.Start().ok());
  ShardClusterOptions options_b;
  options_b.auth_secret = kSecret;
  options_b.shard_endpoints = {endpoints_[1]};
  // Same config on purpose: identical geometry gets PAST the
  // geometry-agreement check, so the duplicate id itself must trip.
  ShardCluster cluster_b(BaseConfig(101), 1, options_b);
  ASSERT_TRUE(cluster_b.Start().ok());
  const std::vector<GraphUpdate> updates = BuildStream(101);
  ASSERT_TRUE(cluster_a.Update(updates.data(), updates.size()).ok());
  ASSERT_TRUE(cluster_b.Update(updates.data(), updates.size()).ok());

  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  const GraphSnapshot* served = nullptr;
  Status s = session.Snapshot(&served);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  EXPECT_NE(s.message().find("serve shard id"), std::string::npos)
      << s.ToString();

  bool fresh = true;
  s = session.PollPositions(&fresh);
  ASSERT_FALSE(s.ok()) << "a misconfigured session must not poll Ok";
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  EXPECT_NE(s.message().find("serve shard id"), std::string::npos)
      << s.ToString();

  ASSERT_TRUE(cluster_a.Shutdown().ok());
  ASSERT_TRUE(cluster_b.Shutdown().ok());
}

TEST_F(ServingTierTcpTest, ReaderFailsOverToAliveReplicaMidSweep) {
  // Replication on the read side: both replicas of one shard serve
  // readers, and a session dialed across both survives the death of
  // either listener — the position sweep and the content pulls fail
  // over to the live group member, bitwise-identically. Only when the
  // LAST replica dies does the session surface an error.
  StartFleet(2);  // Two listeners, ONE shard at R=2 (shard-major).
  ShardClusterOptions options;
  options.auth_secret = kSecret;
  options.shard_endpoints = endpoints_;
  options.replication_factor = 2;
  ShardCluster cluster(BaseConfig(111), 1, options);
  ASSERT_TRUE(cluster.Start().ok());
  const std::vector<GraphUpdate> updates = BuildStream(111);
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());
  ASSERT_TRUE(cluster.Flush().ok());
  Result<GraphSnapshot> full = cluster.Snapshot();
  ASSERT_TRUE(full.ok());

  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  const GraphSnapshot* served = nullptr;
  Status s = session.Snapshot(&served);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(*served == full.value());

  // Replica 0's listener dies mid-session. The sweep marks its
  // connection dead and the group's surviving member answers.
  listeners_[0]->Stop();
  s = session.Snapshot(&served);
  ASSERT_TRUE(s.ok()) << "one live replica left: " << s.ToString();
  EXPECT_TRUE(*served == full.value());

  // The last replica dies: now the shard is genuinely uncovered and
  // the session says so instead of serving a stale answer as fresh.
  listeners_[1]->Stop();
  EXPECT_FALSE(session.Snapshot(&served).ok());
  cluster.Shutdown();  // Both children are already gone; best effort.
}

}  // namespace
}  // namespace gz
