// Tests for the edge-set -> insert/delete stream transform and its
// paper guarantees (i)-(iv).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

StreamTransformResult MakeStream(uint64_t num_nodes, uint64_t seed,
                                 double churn = 0.05, double phantom = 0.05,
                                 int disconnect = 0) {
  EdgeList edges = RandomConnectedGraph(num_nodes, num_nodes * 3, seed);
  StreamTransformParams p;
  p.num_nodes = num_nodes;
  p.seed = seed;
  p.churn_fraction = churn;
  p.phantom_fraction = phantom;
  p.disconnect_count = disconnect;
  return BuildStream(edges, p);
}

TEST(StreamTransformTest, GuaranteeInsertBeforeDelete) {
  const StreamTransformResult r = MakeStream(200, 1);
  std::set<std::pair<NodeId, NodeId>> present;
  for (const GraphUpdate& u : r.updates) {
    const auto key = std::make_pair(u.edge.u, u.edge.v);
    if (u.type == UpdateType::kInsert) {
      EXPECT_TRUE(present.insert(key).second)
          << "double insert of " << u.edge.u << "-" << u.edge.v;
    } else {
      EXPECT_EQ(present.erase(key), 1u)
          << "delete of absent " << u.edge.u << "-" << u.edge.v;
    }
  }
}

TEST(StreamTransformTest, GuaranteeAlternatingTypesPerEdge) {
  const StreamTransformResult r = MakeStream(200, 2);
  std::map<std::pair<NodeId, NodeId>, UpdateType> last;
  for (const GraphUpdate& u : r.updates) {
    const auto key = std::make_pair(u.edge.u, u.edge.v);
    const auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_NE(it->second, u.type)
          << "consecutive same-type updates for an edge";
    }
    last[key] = u.type;
  }
}

TEST(StreamTransformTest, GuaranteeFinalEdgeSetMatches) {
  const StreamTransformResult r = MakeStream(200, 3);
  std::set<std::pair<NodeId, NodeId>> present;
  for (const GraphUpdate& u : r.updates) {
    const auto key = std::make_pair(u.edge.u, u.edge.v);
    if (u.type == UpdateType::kInsert) {
      present.insert(key);
    } else {
      present.erase(key);
    }
  }
  std::set<std::pair<NodeId, NodeId>> expected;
  for (const Edge& e : r.final_edges) expected.insert({e.u, e.v});
  EXPECT_EQ(present, expected);
}

TEST(StreamTransformTest, GuaranteeDisconnectedNodesIsolated) {
  const StreamTransformResult r = MakeStream(200, 4);
  EXPECT_FALSE(r.disconnected_nodes.empty());
  std::set<NodeId> disconnected(r.disconnected_nodes.begin(),
                                r.disconnected_nodes.end());
  for (const Edge& e : r.final_edges) {
    EXPECT_EQ(disconnected.count(e.u), 0u);
    EXPECT_EQ(disconnected.count(e.v), 0u);
  }
}

TEST(StreamTransformTest, DisconnectCountHonored) {
  const StreamTransformResult r =
      MakeStream(200, 5, 0.05, 0.05, /*disconnect=*/7);
  EXPECT_EQ(r.disconnected_nodes.size(), 7u);
}

TEST(StreamTransformTest, DisconnectDisabled) {
  const StreamTransformResult r =
      MakeStream(100, 6, 0.0, 0.0, /*disconnect=*/-1);
  EXPECT_TRUE(r.disconnected_nodes.empty());
  // Without churn/phantoms/disconnection, the stream is pure inserts.
  for (const GraphUpdate& u : r.updates) {
    EXPECT_EQ(u.type, UpdateType::kInsert);
  }
}

TEST(StreamTransformTest, ChurnAndPhantomsAddDeletes) {
  EdgeList edges = RandomConnectedGraph(300, 1200, 7);
  StreamTransformParams p;
  p.num_nodes = 300;
  p.seed = 7;
  p.churn_fraction = 0.2;
  p.phantom_fraction = 0.1;
  p.disconnect_count = -1;
  const StreamTransformResult r = BuildStream(edges, p);
  // Stream length > |E| because of churn triples and phantom pairs.
  EXPECT_GT(r.updates.size(), edges.size() + edges.size() / 10);
  size_t deletes = 0;
  for (const GraphUpdate& u : r.updates) {
    deletes += u.type == UpdateType::kDelete;
  }
  EXPECT_GT(deletes, 0u);
}

TEST(StreamTransformTest, PhantomEdgesNeverSurvive) {
  EdgeList edges = RandomConnectedGraph(150, 400, 8);
  std::set<std::pair<NodeId, NodeId>> input;
  for (const Edge& e : edges) input.insert({e.u, e.v});

  StreamTransformParams p;
  p.num_nodes = 150;
  p.seed = 8;
  p.phantom_fraction = 0.3;
  p.disconnect_count = -1;
  const StreamTransformResult r = BuildStream(edges, p);
  for (const Edge& e : r.final_edges) {
    EXPECT_TRUE(input.count({e.u, e.v}) > 0)
        << "phantom edge survived to the final graph";
  }
}

TEST(StreamTransformTest, FinalEdgesPreservedWithoutDisconnection) {
  // With disconnection off, churn and phantoms must not change the
  // final edge set: it equals the input exactly.
  EdgeList edges = RandomConnectedGraph(120, 500, 12);
  std::set<std::pair<NodeId, NodeId>> input;
  for (const Edge& e : edges) input.insert({e.u, e.v});

  StreamTransformParams p;
  p.num_nodes = 120;
  p.seed = 12;
  p.churn_fraction = 0.5;
  p.phantom_fraction = 0.5;
  p.disconnect_count = -1;
  const StreamTransformResult r = BuildStream(edges, p);
  std::set<std::pair<NodeId, NodeId>> final_set;
  for (const Edge& e : r.final_edges) final_set.insert({e.u, e.v});
  EXPECT_EQ(final_set, input);
}

TEST(StreamTransformTest, UpdateCountAccounting) {
  // Without churn/phantoms, every non-disconnected edge contributes one
  // update and every disconnected-incident edge two.
  EdgeList edges = RandomConnectedGraph(100, 400, 13);
  StreamTransformParams p;
  p.num_nodes = 100;
  p.seed = 13;
  p.churn_fraction = 0.0;
  p.phantom_fraction = 0.0;
  p.disconnect_count = 5;
  const StreamTransformResult r = BuildStream(edges, p);
  const size_t surviving = r.final_edges.size();
  const size_t removed = edges.size() - surviving;
  EXPECT_EQ(r.updates.size(), surviving + 2 * removed);
}

TEST(StreamTransformTest, EmptyInputYieldsEmptyStream) {
  StreamTransformParams p;
  p.num_nodes = 10;
  p.seed = 14;
  p.disconnect_count = -1;
  const StreamTransformResult r = BuildStream({}, p);
  EXPECT_TRUE(r.updates.empty());
  EXPECT_TRUE(r.final_edges.empty());
}

TEST(StreamTransformTest, DeterministicBySeed) {
  const StreamTransformResult a = MakeStream(100, 9);
  const StreamTransformResult b = MakeStream(100, 9);
  EXPECT_EQ(a.updates, b.updates);
  const StreamTransformResult c = MakeStream(100, 10);
  EXPECT_NE(a.updates, c.updates);
}

}  // namespace
}  // namespace gz
