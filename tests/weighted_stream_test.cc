// Tests for the weighted stream file format and its interplay with the
// MSF-weight sketch.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "algos/msf_weight.h"
#include "stream/weighted_stream_file.h"

namespace gz {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(WeightedStreamFileTest, RoundTrip) {
  const std::string path = TempPath("weighted_roundtrip.gzws");
  std::vector<WeightedUpdate> updates = {
      {{Edge(0, 1), UpdateType::kInsert}, 3},
      {{Edge(1, 2), UpdateType::kInsert}, 7},
      {{Edge(0, 1), UpdateType::kDelete}, 3},
  };
  ASSERT_TRUE(WriteWeightedStreamFile(path, 10, updates).ok());

  uint64_t num_nodes = 0;
  auto readback = ReadWeightedStreamFile(path, &num_nodes);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(num_nodes, 10u);
  EXPECT_EQ(readback.value(), updates);
  std::remove(path.c_str());
}

TEST(WeightedStreamFileTest, RejectsUnweightedMagic) {
  const std::string path = TempPath("weighted_magic.gzws");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "GZST````````````````````";  // Unweighted magic.
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  WeightedStreamReader reader;
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(WeightedStreamFileTest, MissingFileNotFound) {
  WeightedStreamReader reader;
  EXPECT_EQ(reader.Open(TempPath("no_such.gzws")).code(),
            StatusCode::kNotFound);
}

TEST(WeightedStreamFileTest, FeedsMsfSketchEndToEnd) {
  // Triangle weights 1,1,5 plus an insert/delete pair: MSF = 2.
  const std::string path = TempPath("weighted_msf.gzws");
  std::vector<WeightedUpdate> updates = {
      {{Edge(0, 1), UpdateType::kInsert}, 1},
      {{Edge(1, 2), UpdateType::kInsert}, 1},
      {{Edge(0, 2), UpdateType::kInsert}, 5},
      {{Edge(3, 4), UpdateType::kInsert}, 2},
      {{Edge(3, 4), UpdateType::kDelete}, 2},
  };
  ASSERT_TRUE(WriteWeightedStreamFile(path, 8, updates).ok());

  WeightedStreamReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  GraphZeppelinConfig config;
  config.num_nodes = reader.num_nodes();
  config.seed = 3;
  config.disk_dir = ::testing::TempDir();
  MsfWeightSketch msf(config, /*max_weight=*/5);
  ASSERT_TRUE(msf.Init().ok());
  WeightedUpdate wu;
  while (reader.Next(&wu)) {
    msf.Update(wu.update.edge, wu.weight, wu.update.type);
  }
  ASSERT_TRUE(reader.status().ok());

  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gz
