// Tests for the stream-file ingestion driver and the string node-id
// mapper.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/matrix_checker.h"
#include "core/stream_ingestor.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/node_id_mapper.h"
#include "stream/stream_file.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

GraphZeppelinConfig MakeConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(StreamIngestorTest, IngestsWholeFileAndMatchesChecker) {
  const uint64_t n = 40;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 3;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 3;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);
  const std::string path = TempPath("ingest_whole.gzst");
  ASSERT_TRUE(WriteStreamFile(path, n, stream.updates).ok());

  GraphZeppelin gz(MakeConfig(n, 7));
  ASSERT_TRUE(gz.Init().ok());
  const Result<uint64_t> ingested = IngestStreamFile(&gz, path);
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(ingested.value(), stream.updates.size());

  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) checker.Update(u);
  const ConnectivityResult got = gz.ListSpanningForest();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components,
            checker.ConnectedComponents().num_components);
  std::remove(path.c_str());
}

TEST(StreamIngestorTest, ProgressCallbacksFire) {
  const uint64_t n = 16;
  std::vector<GraphUpdate> updates;
  for (NodeId i = 0; i + 1 < 11; ++i) {
    updates.push_back({Edge(i, i + 1), UpdateType::kInsert});
  }
  const std::string path = TempPath("ingest_progress.gzst");
  ASSERT_TRUE(WriteStreamFile(path, n, updates).ok());

  GraphZeppelin gz(MakeConfig(n, 8));
  ASSERT_TRUE(gz.Init().ok());
  std::vector<uint64_t> checkpoints;
  const Result<uint64_t> ingested = IngestStreamFile(
      &gz, path, /*callback_every=*/3,
      [&checkpoints](const IngestProgress& p) {
        checkpoints.push_back(p.consumed);
        EXPECT_EQ(p.total, 10u);
      });
  ASSERT_TRUE(ingested.ok());
  // Every 3 updates plus the final call: 3, 6, 9, 10.
  EXPECT_EQ(checkpoints, (std::vector<uint64_t>{3, 6, 9, 10}));
  std::remove(path.c_str());
}

TEST(StreamIngestorTest, ProgressCallbackNotDuplicatedOnExactMultiple) {
  // Regression: when the stream length is an exact multiple of
  // callback_every, the boundary callback at the last update IS the
  // completion callback — it must not fire a second time ({3, 6, 9},
  // not {3, 6, 9, 9}).
  const uint64_t n = 16;
  std::vector<GraphUpdate> updates;
  for (NodeId i = 0; i + 1 < 10; ++i) {
    updates.push_back({Edge(i, i + 1), UpdateType::kInsert});
  }
  ASSERT_EQ(updates.size(), 9u);
  const std::string path = TempPath("ingest_progress_exact.gzst");
  ASSERT_TRUE(WriteStreamFile(path, n, updates).ok());

  GraphZeppelin gz(MakeConfig(n, 8));
  ASSERT_TRUE(gz.Init().ok());
  std::vector<uint64_t> checkpoints;
  const Result<uint64_t> ingested = IngestStreamFile(
      &gz, path, /*callback_every=*/3,
      [&checkpoints](const IngestProgress& p) {
        checkpoints.push_back(p.consumed);
        EXPECT_EQ(p.total, 9u);
      });
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(checkpoints, (std::vector<uint64_t>{3, 6, 9}));
  std::remove(path.c_str());
}

TEST(StreamIngestorTest, MissingFileReported) {
  GraphZeppelin gz(MakeConfig(8, 9));
  ASSERT_TRUE(gz.Init().ok());
  const Result<uint64_t> r = IngestStreamFile(&gz, TempPath("no.gzst"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StreamIngestorTest, NodeCountMismatchRejected) {
  const std::string path = TempPath("ingest_mismatch.gzst");
  ASSERT_TRUE(WriteStreamFile(path, 100,
                              {{Edge(0, 1), UpdateType::kInsert}})
                  .ok());
  GraphZeppelin gz(MakeConfig(8, 10));  // Too small for the stream.
  ASSERT_TRUE(gz.Init().ok());
  const Result<uint64_t> r = IngestStreamFile(&gz, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------- NodeIdMapper -------------------------------------------

TEST(NodeIdMapperTest, AssignsDenseIdsInOrder) {
  NodeIdMapper mapper(10);
  EXPECT_EQ(mapper.IdFor("alice"), 0u);
  EXPECT_EQ(mapper.IdFor("bob"), 1u);
  EXPECT_EQ(mapper.IdFor("alice"), 0u);  // Stable.
  EXPECT_EQ(mapper.size(), 2u);
}

TEST(NodeIdMapperTest, FindDoesNotAssign) {
  NodeIdMapper mapper(10);
  EXPECT_FALSE(mapper.Find("carol").has_value());
  mapper.IdFor("carol");
  ASSERT_TRUE(mapper.Find("carol").has_value());
  EXPECT_EQ(*mapper.Find("carol"), 0u);
  EXPECT_EQ(mapper.size(), 1u);
}

TEST(NodeIdMapperTest, NameOfInverts) {
  NodeIdMapper mapper(10);
  const NodeId a = mapper.IdFor("gene_X");
  const NodeId b = mapper.IdFor("gene_Y");
  EXPECT_EQ(mapper.NameOf(a), "gene_X");
  EXPECT_EQ(mapper.NameOf(b), "gene_Y");
}

TEST(NodeIdMapperTest, CapacityEnforced) {
  NodeIdMapper mapper(2);
  mapper.IdFor("a");
  mapper.IdFor("b");
  EXPECT_DEATH(mapper.IdFor("c"), "capacity exhausted");
}

TEST(NodeIdMapperTest, DrivesAStringNamedStream) {
  // End-to-end: a stream naming nodes by strings, mapped on the fly.
  NodeIdMapper mapper(8);
  GraphZeppelin gz(MakeConfig(8, 11));
  ASSERT_TRUE(gz.Init().ok());
  const std::pair<const char*, const char*> string_edges[] = {
      {"server-a", "server-b"},
      {"server-b", "server-c"},
      {"db-1", "db-2"},
  };
  for (const auto& [x, y] : string_edges) {
    gz.Update({Edge(mapper.IdFor(x), mapper.IdFor(y)), UpdateType::kInsert});
  }
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.Connected(*mapper.Find("server-a"), *mapper.Find("server-c")));
  EXPECT_FALSE(r.Connected(*mapper.Find("server-a"), *mapper.Find("db-1")));
}

}  // namespace
}  // namespace gz
