// Tests for CubeSketch: recovery, zero detection, linearity, failure
// probability, serialization.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "sketch/cube_sketch.h"
#include "util/random.h"

namespace gz {
namespace {

CubeSketchParams MakeParams(uint64_t n, uint64_t seed, int cols = 7) {
  CubeSketchParams p;
  p.vector_len = n;
  p.seed = seed;
  p.cols = cols;
  return p;
}

TEST(CubeSketchTest, EmptySketchReportsZero) {
  CubeSketch s(MakeParams(1000, 1));
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(CubeSketchTest, SingletonAlwaysRecovered) {
  // A vector with exactly one nonzero entry is recovered by the
  // deterministic bucket with probability 1.
  for (uint64_t idx : {0ULL, 1ULL, 500ULL, 999ULL}) {
    CubeSketch s(MakeParams(1000, 3));
    s.Update(idx);
    const SketchSample sample = s.Query();
    ASSERT_EQ(sample.kind, SampleKind::kGood) << "idx=" << idx;
    EXPECT_EQ(sample.index, idx);
  }
}

TEST(CubeSketchTest, DoubleToggleCancelsToZero) {
  CubeSketch s(MakeParams(1000, 5));
  s.Update(123);
  s.Update(123);
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(CubeSketchTest, IndexZeroIsValid) {
  // Index 0 must not be confused with "empty" (the +1 encoding).
  CubeSketch s(MakeParams(10, 7));
  s.Update(0);
  const SketchSample sample = s.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, 0u);
}

TEST(CubeSketchTest, ClearResets) {
  CubeSketch s(MakeParams(1000, 9));
  for (uint64_t i = 0; i < 50; ++i) s.Update(i);
  s.Clear();
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(CubeSketchTest, UpdateBatchMatchesLoop) {
  std::vector<uint64_t> indices = {1, 5, 9, 5, 200, 1, 77};
  CubeSketch a(MakeParams(1000, 11));
  CubeSketch b(MakeParams(1000, 11));
  for (uint64_t idx : indices) a.Update(idx);
  b.UpdateBatch(indices.data(), indices.size());
  EXPECT_EQ(a, b);
}

TEST(CubeSketchTest, OutOfRangeUpdateAborts) {
  CubeSketch s(MakeParams(10, 1));
  EXPECT_DEATH(s.Update(10), "idx < params_.vector_len");
}

TEST(CubeSketchTest, MergeParamMismatchAborts) {
  CubeSketch a(MakeParams(10, 1));
  CubeSketch b(MakeParams(10, 2));
  EXPECT_DEATH(a.Merge(b), "different parameters");
}

// --- Property: queries on random vectors return true support members ---

class CubeSketchRecoveryTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, uint64_t>> {};

TEST_P(CubeSketchRecoveryTest, RecoversSupportMember) {
  const auto [vector_len, support, seed] = GetParam();
  SplitMix64 rng(seed * 7919 + 1);
  int failures = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    CubeSketch s(MakeParams(vector_len, seed * 1000 + trial));
    std::set<uint64_t> in;
    while (in.size() < static_cast<size_t>(support)) {
      in.insert(rng.NextBelow(vector_len));
    }
    for (uint64_t idx : in) s.Update(idx);
    const SketchSample sample = s.Query();
    if (sample.kind == SampleKind::kFail) {
      ++failures;
      continue;
    }
    ASSERT_EQ(sample.kind, SampleKind::kGood);
    // Soundness: a Good answer must be a real support member.
    EXPECT_TRUE(in.count(sample.index) > 0)
        << "returned non-member " << sample.index;
  }
  // delta = 1/100 per sketch; 40 trials should essentially never fail
  // more than a couple of times.
  EXPECT_LE(failures, 3) << "suspiciously high failure rate";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeSketchRecoveryTest,
    ::testing::Combine(::testing::Values<uint64_t>(100, 10000, 1000000),
                       ::testing::Values(1, 2, 7, 50),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// --- Property: linearity -------------------------------------------------

class CubeSketchLinearityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CubeSketchLinearityTest, MergeEqualsSketchOfSymmetricDifference) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  const uint64_t n = 5000;
  CubeSketch sa(MakeParams(n, 42));
  CubeSketch sb(MakeParams(n, 42));
  CubeSketch sc(MakeParams(n, 42));  // Sketch of f_a XOR f_b.
  for (int i = 0; i < 200; ++i) {
    const uint64_t idx = rng.NextBelow(n);
    if (rng.NextBool(0.5)) {
      sa.Update(idx);
      sc.Update(idx);
    } else {
      sb.Update(idx);
      sc.Update(idx);
    }
  }
  sa.Merge(sb);
  EXPECT_EQ(sa, sc);
}

TEST_P(CubeSketchLinearityTest, SharedEntriesCancelOnMerge) {
  const uint64_t seed = GetParam();
  const uint64_t n = 5000;
  CubeSketch sa(MakeParams(n, 42));
  CubeSketch sb(MakeParams(n, 42));
  // Same single entry in both: the merge is the zero vector.
  sa.Update(seed % n);
  sb.Update(seed % n);
  sa.Merge(sb);
  EXPECT_EQ(sa.Query().kind, SampleKind::kZero);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeSketchLinearityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Observed failure rate stays below the design bound ------------------

TEST(CubeSketchTest, FailureRateBelowDelta) {
  // cols = 7 targets delta = 1/100. Measure over many random vectors.
  SplitMix64 rng(4242);
  const uint64_t n = 100000;
  int failures = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    CubeSketch s(MakeParams(n, 100000 + t));
    const int support = 1 + static_cast<int>(rng.NextBelow(300));
    std::set<uint64_t> in;
    while (in.size() < static_cast<size_t>(support)) {
      in.insert(rng.NextBelow(n));
    }
    for (uint64_t idx : in) s.Update(idx);
    if (s.Query().kind == SampleKind::kFail) ++failures;
  }
  // Expected failures ~ trials * delta = 4. Allow generous slack.
  EXPECT_LE(failures, 12);
}

// --- Serialization --------------------------------------------------------

TEST(CubeSketchTest, SerializationRoundTrip) {
  CubeSketch a(MakeParams(4096, 17));
  SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) a.Update(rng.NextBelow(4096));

  std::vector<uint8_t> buf(a.SerializedSize());
  a.SerializeTo(buf.data());

  CubeSketch b(MakeParams(4096, 17));
  b.DeserializeFrom(buf.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Query().index, b.Query().index);
}

TEST(CubeSketchTest, SerializedBlobIsXorLinear) {
  // XOR of two serialized blobs == blob of the merged sketch; the
  // on-disk sketch store depends on this.
  CubeSketch a(MakeParams(512, 3));
  CubeSketch b(MakeParams(512, 3));
  a.Update(7);
  a.Update(100);
  b.Update(100);
  b.Update(450);

  std::vector<uint8_t> ba(a.SerializedSize()), bb(b.SerializedSize());
  a.SerializeTo(ba.data());
  b.SerializeTo(bb.data());
  for (size_t i = 0; i < ba.size(); ++i) ba[i] ^= bb[i];

  a.Merge(b);
  std::vector<uint8_t> merged(a.SerializedSize());
  a.SerializeTo(merged.data());
  EXPECT_EQ(ba, merged);
}

TEST(CubeSketchTest, ByteSizeMatchesBucketCount) {
  CubeSketch s(MakeParams(1 << 20, 1));
  // 12 bytes per bucket: cols * rows + 1 deterministic bucket.
  const size_t buckets = static_cast<size_t>(s.cols()) * s.rows() + 1;
  EXPECT_EQ(s.ByteSize(), buckets * 12);
}

TEST(CubeSketchTest, SizeGrowsLogarithmically) {
  const size_t small = CubeSketch(MakeParams(1000, 1)).ByteSize();
  const size_t big = CubeSketch(MakeParams(1000000000ULL, 1)).ByteSize();
  EXPECT_GT(big, small);
  EXPECT_LT(big, small * 4);  // log growth, not linear
}

TEST(CubeSketchTest, MergeIsCommutative) {
  CubeSketch a1(MakeParams(512, 21)), b1(MakeParams(512, 21));
  CubeSketch a2(MakeParams(512, 21)), b2(MakeParams(512, 21));
  for (uint64_t idx : {3ULL, 40ULL, 99ULL}) {
    a1.Update(idx);
    a2.Update(idx);
  }
  for (uint64_t idx : {40ULL, 200ULL}) {
    b1.Update(idx);
    b2.Update(idx);
  }
  a1.Merge(b1);  // a + b
  b2.Merge(a2);  // b + a
  EXPECT_EQ(a1, b2);
}

TEST(CubeSketchTest, QueryIsDeterministic) {
  CubeSketch s(MakeParams(4096, 23));
  SplitMix64 rng(4);
  for (int i = 0; i < 30; ++i) s.Update(rng.NextBelow(4096));
  const SketchSample first = s.Query();
  for (int i = 0; i < 5; ++i) {
    const SketchSample again = s.Query();
    EXPECT_EQ(again.kind, first.kind);
    EXPECT_EQ(again.index, first.index);
  }
}

TEST(CubeSketchTest, SamplesVaryAcrossSeeds) {
  // The sampler must actually sample: across independent hash draws the
  // recovered support member should not be constant.
  std::set<uint64_t> support = {5, 111, 222, 333, 444, 555, 666, 777};
  std::set<uint64_t> recovered;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    CubeSketch s(MakeParams(1000, seed));
    for (uint64_t idx : support) s.Update(idx);
    const SketchSample sample = s.Query();
    if (sample.kind == SampleKind::kGood) recovered.insert(sample.index);
  }
  EXPECT_GE(recovered.size(), 3u);
  for (uint64_t idx : recovered) EXPECT_TRUE(support.count(idx) > 0);
}

TEST(CubeSketchTest, HugeVectorLengthSupported) {
  // Vector lengths near 2^62 (edge index spaces of ~2^31-node graphs).
  const uint64_t n = 1ULL << 62;
  CubeSketch s(MakeParams(n, 9));
  s.Update(n - 1);
  const SketchSample sample = s.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, n - 1);
}

TEST(CubeSketchTest, ColumnCountScalesSizeLinearly) {
  const size_t three = CubeSketch(MakeParams(1 << 20, 1, 3)).ByteSize();
  const size_t nine = CubeSketch(MakeParams(1 << 20, 1, 9)).ByteSize();
  // 9-column sketch has 3x the column buckets (+ shared det bucket).
  EXPECT_GT(nine, three * 2);
  EXPECT_LT(nine, three * 4);
}

}  // namespace
}  // namespace gz
