// Tests for sharded (distributed-style) ingestion: linearity makes
// shard-merged queries exact. Every correctness case runs in both
// execution modes — in-process shard instances and real gz_shard
// worker processes fed over sockets — against one shared ground-truth
// check, since the two modes must be indistinguishable above the API.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algos/bridges.h"
#include "algos/spanning_forests.h"
#include "baseline/matrix_checker.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

using Mode = ShardedGraphZeppelin::Mode;

GraphZeppelinConfig BaseConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

std::string ModeName(Mode mode) {
  return mode == Mode::kInProcess ? "InProcess" : "Process";
}

TEST(ShardedTest, InProcessModeRefusesRemoteEndpoints) {
  // In-process shards have nowhere remote to live: an endpoint list
  // naming tcp:// shards must fail Init() loudly, never silently run
  // everything locally while the user's listeners sit undailed.
  ShardClusterOptions options;
  options.shard_endpoints = {"local:", "tcp://far-away:9001"};
  ShardedGraphZeppelin sharded(BaseConfig(64, 9), 2,
                               ShardedGraphZeppelin::Mode::kInProcess,
                               options);
  const Status s = sharded.Init();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedTest, ShardRoutingDeterministicAndBounded) {
  ShardedGraphZeppelin sharded(BaseConfig(64, 1), 4);
  for (NodeId u = 0; u < 20; ++u) {
    const Edge e(u, static_cast<NodeId>(u + 10));
    const int shard = sharded.ShardFor(e);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, sharded.ShardFor(e));
  }
}

TEST(ShardedTest, RoutingRoughlyBalanced) {
  ShardedGraphZeppelin sharded(BaseConfig(256, 2), 4);
  int counts[4] = {0, 0, 0, 0};
  for (NodeId u = 0; u < 255; ++u) {
    for (NodeId v = u + 1; v < 256; v += 17) {
      ++counts[sharded.ShardFor(Edge(u, v))];
    }
  }
  int total = counts[0] + counts[1] + counts[2] + counts[3];
  for (int c : counts) {
    EXPECT_GT(c, total / 8);
    EXPECT_LT(c, total / 2);
  }
}

TEST(ShardedTest, RoutingIdenticalAcrossModes) {
  // An external stream partitioner must be able to pre-split a stream
  // for either deployment; the hash may not depend on the mode.
  ShardedGraphZeppelin in_process(BaseConfig(128, 5), 5, Mode::kInProcess);
  ShardedGraphZeppelin process(BaseConfig(128, 5), 5, Mode::kProcess);
  for (NodeId u = 0; u < 60; ++u) {
    const Edge e(u, static_cast<NodeId>(u + 13));
    EXPECT_EQ(in_process.ShardFor(e), process.ShardFor(e));
  }
}

TEST(ShardedTest, RoutingIsPureFunctionOfTableAcrossModesAndReshards) {
  // The regression the epoch table exists for: routing must be a pure
  // function of (edge, table) that coordinator, shards and any
  // external partitioner share — in both modes, through elastic
  // reshard operations, with no hidden mode- or history-dependent
  // state. Both facades run the same reshard schedule; after every
  // step their tables are identical and every edge routes identically
  // (and identically to the raw pure function).
  const uint64_t n = 128;
  ShardedGraphZeppelin in_process(BaseConfig(n, 6), 2, Mode::kInProcess);
  ShardedGraphZeppelin process(BaseConfig(n, 6), 2, Mode::kProcess);
  ASSERT_TRUE(in_process.Init().ok());
  ASSERT_TRUE(process.Init().ok());

  auto check_agreement = [&](const char* step) {
    ASSERT_TRUE(in_process.routing_table() == process.routing_table())
        << step;
    for (NodeId u = 0; u < 80; ++u) {
      const Edge e(u, static_cast<NodeId>(u + 11));
      const int expect =
          RouteToShard(e, n, in_process.routing_table());
      EXPECT_EQ(in_process.ShardFor(e), expect) << step;
      EXPECT_EQ(process.ShardFor(e), expect) << step;
    }
  };
  check_agreement("initial");

  ASSERT_TRUE(in_process.AddShard().ok());
  ASSERT_TRUE(process.AddShard().ok());
  check_agreement("after add");

  ASSERT_TRUE(in_process.SplitShard(0).ok());
  ASSERT_TRUE(process.SplitShard(0).ok());
  check_agreement("after split");

  ASSERT_TRUE(in_process.RemoveShard(1).ok());
  ASSERT_TRUE(process.RemoveShard(1).ok());
  check_agreement("after remove");
}

// ---- Dual-mode matrix -----------------------------------------------------

class ShardedModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ShardedModeTest, ElasticOpsBeforeInitAreErrorsNotCrashes) {
  ShardedGraphZeppelin sharded(BaseConfig(32, 9), 2, GetParam());
  EXPECT_EQ(sharded.AddShard().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.BeginRemoveShard(0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.BeginSplitShard(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.PumpMigration().code(),
            StatusCode::kFailedPrecondition);
  // And Init() afterwards still brings the facade up normally.
  ASSERT_TRUE(sharded.Init().ok());
  ASSERT_TRUE(sharded.AddShard().ok());
}

TEST_P(ShardedModeTest, SingleShardMatchesPlainInstance) {
  const uint64_t n = 32;
  ShardedGraphZeppelin sharded(BaseConfig(n, 3), 1, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  GraphZeppelin plain(BaseConfig(n, 3));
  ASSERT_TRUE(plain.Init().ok());

  for (NodeId i = 0; i + 1 < 12; ++i) {
    const GraphUpdate u{Edge(i, i + 1), UpdateType::kInsert};
    sharded.Update(u);
    plain.Update(u);
  }
  const ConnectivityResult a = sharded.ListSpanningForest();
  const ConnectivityResult b = plain.ListSpanningForest();
  ASSERT_FALSE(a.failed);
  ASSERT_FALSE(b.failed);
  EXPECT_EQ(a.num_components, b.num_components);
}

TEST_P(ShardedModeTest, UpdateCountsSumToTotal) {
  ShardedGraphZeppelin sharded(BaseConfig(64, 4), 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  const int total = 200;
  int ingested = 0;
  for (NodeId u = 0; u < 63 && ingested < total; ++u) {
    for (NodeId v = u + 1; v < 64 && ingested < total; v += 3) {
      sharded.Update({Edge(u, v), UpdateType::kInsert});
      ++ingested;
    }
  }
  uint64_t sum = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    sum += sharded.updates_in_shard(s);
  }
  EXPECT_EQ(sum, static_cast<uint64_t>(ingested));
}

TEST_P(ShardedModeTest, ForestDecompositionOverShardedSnapshot) {
  // Composition: the k-edge-connectivity certificate extracted from a
  // *sharded* ingest must expose the same bridge as a single instance.
  const uint64_t n = 16;
  GraphZeppelinConfig base = BaseConfig(n, 8);
  base.rounds = RoundsForForests(n, 2);
  ShardedGraphZeppelin sharded(base, 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());

  // Two triangles joined by one bridge.
  const Edge edges[] = {Edge(0, 1), Edge(1, 2), Edge(0, 2),
                        Edge(3, 4), Edge(4, 5), Edge(3, 5),
                        Edge(2, 3)};
  for (const Edge& e : edges) {
    sharded.Update({e, UpdateType::kInsert});
  }
  const GraphSnapshot snapshot = sharded.Snapshot();
  const Result<ForestDecomposition> extracted =
      ExtractSpanningForests(snapshot, 2);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  const ForestDecomposition& d = extracted.value();
  ASSERT_FALSE(d.failed);
  const EdgeList bridges = FindBridges(n, d.CertificateEdges());
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], Edge(2, 3));
}

TEST_P(ShardedModeTest, SnapshotFoldMatchesSingleInstanceBitwise) {
  // The coordinator's fold — in place for in-process shards, via
  // serialized snapshot frames for worker processes — must produce
  // exactly the snapshot a single instance ingesting the whole stream
  // would: the shard partition of the stream (and the transport) is
  // invisible after aggregation.
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 6;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();

  ShardedGraphZeppelin sharded(BaseConfig(n, 31), 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  GraphZeppelin single(BaseConfig(n, 31));
  ASSERT_TRUE(single.Init().ok());
  for (const Edge& e : edges) {
    sharded.Update({e, UpdateType::kInsert});
    single.Update({e, UpdateType::kInsert});
  }

  const GraphSnapshot folded = sharded.Snapshot();
  const GraphSnapshot expect = single.Snapshot();
  EXPECT_TRUE(folded == expect);
  EXPECT_EQ(folded.num_updates(), edges.size());
}

TEST_P(ShardedModeTest, DiskShardsDoNotCollide) {
  // Several disk-backed shards share a seed; per-shard instance tags
  // (and, in process mode, per-process pids) must keep their backing
  // files separate.
  GraphZeppelinConfig base = BaseConfig(32, 7);
  base.storage = GraphZeppelinConfig::Storage::kDisk;
  ShardedGraphZeppelin sharded(base, 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  for (NodeId i = 0; i + 1 < 16; ++i) {
    sharded.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  const ConnectivityResult r = sharded.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 32u - 16u + 1u);
}

TEST_P(ShardedModeTest, BulkSpanIngestionMatchesSingleUpdates) {
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.08;
  ep.seed = 9;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});

  ShardedGraphZeppelin bulk(BaseConfig(n, 13), 3, GetParam());
  ASSERT_TRUE(bulk.Init().ok());
  bulk.Update(updates.data(), updates.size());

  ShardedGraphZeppelin single(BaseConfig(n, 13), 3, GetParam());
  ASSERT_TRUE(single.Init().ok());
  for (const GraphUpdate& u : updates) single.Update(u);

  EXPECT_TRUE(bulk.Snapshot() == single.Snapshot());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ShardedModeTest,
    ::testing::Values(Mode::kInProcess, Mode::kProcess),
    [](const ::testing::TestParamInfo<Mode>& info) {
      return ModeName(info.param);
    });

// ---- Randomized correctness sweep, both modes -----------------------------

class ShardedCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, Mode>> {};

TEST_P(ShardedCorrectnessTest, MatchesExactCheckerOnRandomStream) {
  const auto [num_shards, seed, mode] = GetParam();
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.12;
  ep.seed = seed;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = seed;
  tp.disconnect_count = 3;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  ShardedGraphZeppelin sharded(BaseConfig(n, seed + 20), num_shards, mode);
  ASSERT_TRUE(sharded.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    sharded.Update(u);
    checker.Update(u);
  }
  const ConnectivityResult got = sharded.ListSpanningForest();
  const ConnectivityResult expect = checker.ConnectedComponents();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndSeeds, ShardedCorrectnessTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(Mode::kInProcess, Mode::kProcess)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t, Mode>>&
           info) {
      return "Shards" + std::to_string(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param)) +
             ModeName(std::get<2>(info.param));
    });

}  // namespace
}  // namespace gz
