// Unit tests for the util substrate: hashing, fields, status, RNG.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/kwise_hash.h"
#include "util/mem_usage.h"
#include "util/sha256.h"
#include "util/mersenne_field.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/xxhash.h"

namespace gz {
namespace {

// ---------------- xxhash ------------------------------------------------

TEST(XxHashTest, Deterministic) {
  const char data[] = "graph zeppelin";
  EXPECT_EQ(XxHash64(data, sizeof(data), 7), XxHash64(data, sizeof(data), 7));
  EXPECT_NE(XxHash64(data, sizeof(data), 7), XxHash64(data, sizeof(data), 8));
}

TEST(XxHashTest, WordMatchesBufferVariant) {
  const std::vector<uint64_t> values = {0, 1, 42, 0xDEADBEEFCAFEULL,
                                        UINT64_MAX};
  for (uint64_t v : values) {
    for (uint64_t seed : std::vector<uint64_t>{0, 1, 999}) {
      EXPECT_EQ(XxHash64Word(v, seed), XxHash64(&v, sizeof(v), seed))
          << "v=" << v << " seed=" << seed;
    }
  }
}

TEST(XxHashTest, VariousLengths) {
  // Exercise all tail paths: 0..40 byte inputs must all hash without
  // colliding trivially.
  std::vector<uint8_t> buf(64, 0xAB);
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= 40; ++len) {
    seen.insert(XxHash64(buf.data(), len, 1));
  }
  EXPECT_EQ(seen.size(), 41u);
}

TEST(XxHashTest, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = XxHash64Word(0x123456789ULL, 5);
    const uint64_t b = XxHash64Word(0x123456789ULL ^ (1ULL << bit), 5);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(XxHashTest, DistributionRoughlyUniform) {
  // Bucket 100k hashes into 16 bins; each bin should be near 6250.
  int bins[16] = {0};
  for (uint64_t i = 0; i < 100000; ++i) {
    ++bins[XxHash64Word(i, 3) & 15];
  }
  for (int b = 0; b < 16; ++b) {
    EXPECT_GT(bins[b], 5500) << "bin " << b;
    EXPECT_LT(bins[b], 7000) << "bin " << b;
  }
}

// ---------------- Mersenne fields ---------------------------------------

TEST(MersenneFieldTest, Reduce31Identities) {
  EXPECT_EQ(Reduce31(0), 0u);
  EXPECT_EQ(Reduce31(kMersenne31), 0u);
  EXPECT_EQ(Reduce31(kMersenne31 + 5), 5u);
  EXPECT_EQ(Reduce31(2 * kMersenne31), 0u);
}

TEST(MersenneFieldTest, Reduce61Identities) {
  EXPECT_EQ(Reduce61(0), 0u);
  EXPECT_EQ(Reduce61(kMersenne61), 0u);
  EXPECT_EQ(Reduce61(static_cast<unsigned __int128>(kMersenne61) * 3 + 7),
            7u);
}

TEST(MersenneFieldTest, MulModAgainstNaive) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.NextBelow(kMersenne31);
    const uint64_t b = rng.NextBelow(kMersenne31);
    const uint64_t expect =
        static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) %
                              kMersenne31);
    EXPECT_EQ(MulMod31(a, b), expect);
  }
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.NextBelow(kMersenne61);
    const uint64_t b = rng.NextBelow(kMersenne61);
    const uint64_t expect =
        static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) %
                              kMersenne61);
    EXPECT_EQ(MulMod61(a, b), expect);
  }
}

TEST(MersenneFieldTest, PowModSmallCases) {
  EXPECT_EQ(PowMod31(2, 10), 1024u);
  EXPECT_EQ(PowMod31(3, 0), 1u);
  EXPECT_EQ(PowMod31(0, 5), 0u);
  EXPECT_EQ(PowMod61(2, 10), 1024u);
  EXPECT_EQ(PowMod61(7, 1), 7u);
}

TEST(MersenneFieldTest, PowModMatchesRepeatedMultiply) {
  SplitMix64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t base = rng.NextBelow(kMersenne61 - 1) + 1;
    const uint64_t e = rng.NextBelow(64);
    uint64_t expect = 1;
    for (uint64_t i = 0; i < e; ++i) expect = MulMod61(expect, base);
    EXPECT_EQ(PowMod61(base, e), expect);
  }
}

TEST(MersenneFieldTest, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and a != 0.
  EXPECT_EQ(PowMod31(12345, kMersenne31 - 1), 1u);
  EXPECT_EQ(PowMod61(987654321, kMersenne61 - 1), 1u);
}

// ---------------- k-wise hash -------------------------------------------

TEST(KWiseHashTest, DeterministicAndSeedSensitive) {
  KWiseHash h1(42, 2), h2(42, 2), h3(43, 2);
  EXPECT_EQ(h1.Hash(7), h2.Hash(7));
  EXPECT_NE(h1.Hash(7), h3.Hash(7));
}

TEST(KWiseHashTest, OutputInField) {
  KWiseHash h(1, 4);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Hash(x), kMersenne61);
}

TEST(KWiseHashTest, HashRangeBounded) {
  KWiseHash h(5, 2);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.HashRange(x, 17), 17u);
}

TEST(KWiseHashTest, PairwiseUniformOverFamily) {
  // 2-wise independence is a property of the *family*: for fixed inputs
  // (x, y), the pair (h(x), h(y)) must be uniform over random draws of
  // the hash function. Sample 2000 independently seeded functions.
  int bins[4][4] = {};
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    KWiseHash h(seed, 2);
    bins[h.HashRange(123, 4)][h.HashRange(456, 4)]++;
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_GT(bins[i][j], 60) << i << "," << j;  // expect ~125
      EXPECT_LT(bins[i][j], 200) << i << "," << j;
    }
  }
}

TEST(KWiseHashTest, HigherDegreeFamilies) {
  // k = 3 and 4 evaluate consistently and stay in the field.
  for (int k : {3, 4}) {
    KWiseHash h(17, k);
    EXPECT_EQ(h.k(), k);
    for (uint64_t x = 0; x < 200; ++x) {
      EXPECT_LT(h.Hash(x), kMersenne61);
      EXPECT_EQ(h.Hash(x), h.Hash(x));
    }
  }
}

// ---------------- Status / Result ---------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------- RNG ----------------------------------------------------

TEST(SplitMix64Test, DeterministicBySeed) {
  SplitMix64 a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(SplitMix64Test, NextBelowInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(13), 13u);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, BoolProbability) {
  SplitMix64 rng(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25);
  EXPECT_GT(heads, 2100);
  EXPECT_LT(heads, 2900);
}

// ---------------- misc utils ---------------------------------------------

TEST(MemUsageTest, RssIsPositive) { EXPECT_GT(CurrentRssBytes(), 0u); }

TEST(MemUsageTest, FormatBytes) {
  char buf[32];
  EXPECT_STREQ(FormatBytes(512, buf, sizeof(buf)), "512 B");
  EXPECT_STREQ(FormatBytes(2048, buf, sizeof(buf)), "2.00 KiB");
  EXPECT_STREQ(FormatBytes(3 * 1024 * 1024, buf, sizeof(buf)), "3.00 MiB");
}

TEST(TimerTest, MeasuresElapsedAndFormatsRates) {
  WallTimer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), 0.0);
  char buf[32];
  EXPECT_STREQ(FormatRate(2.5e6, buf, sizeof(buf)), "2.50M");
  EXPECT_STREQ(FormatRate(1500, buf, sizeof(buf)), "1.5K");
}

// ---- CRC32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The classic check value plus the RFC 3720 (iSCSI) test patterns —
  // these pin the polynomial, reflection and finalization exactly, so
  // the wire checksum is interoperable, not just self-consistent.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShotAtEverySplit) {
  // The streamed-frame path folds payload pieces of arbitrary sizes;
  // any split must equal the one-shot CRC.
  std::vector<uint8_t> buf(257);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t want = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); split += 13) {
    uint32_t crc = Crc32cExtend(0, buf.data(), split);
    crc = Crc32cExtend(crc, buf.data() + split, buf.size() - split);
    EXPECT_EQ(crc, want) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEveryByteFlip) {
  std::vector<uint8_t> buf(64, 0x5C);
  const uint32_t want = Crc32c(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    for (const uint8_t flip : {0x01, 0x80, 0xFF}) {
      buf[i] ^= flip;
      EXPECT_NE(Crc32c(buf.data(), buf.size()), want);
      buf[i] ^= flip;
    }
  }
}

// ---- SHA-256 / HMAC -------------------------------------------------------

std::string HexOf(const uint8_t digest[kSha256Bytes]) {
  char buf[2 * kSha256Bytes + 1];
  for (size_t i = 0; i < kSha256Bytes; ++i) {
    std::snprintf(buf + 2 * i, 3, "%02x", digest[i]);
  }
  return std::string(buf, 2 * kSha256Bytes);
}

TEST(Sha256Test, FipsVectors) {
  uint8_t digest[kSha256Bytes];
  Sha256("", 0, digest);
  EXPECT_EQ(HexOf(digest),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
            "7852b855");
  Sha256("abc", 3, digest);
  EXPECT_EQ(HexOf(digest),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
            "f20015ad");
  // Two-block message (56 bytes forces the padding split).
  const char* msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                    "nopq";
  Sha256(msg, std::strlen(msg), digest);
  EXPECT_EQ(HexOf(digest),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
            "19db06c1");
}

TEST(Sha256Test, HmacRfc4231Vectors) {
  uint8_t digest[kSha256Bytes];
  // Test case 1.
  std::vector<uint8_t> key(20, 0x0b);
  HmacSha256(key.data(), key.size(), "Hi There", 8, digest);
  EXPECT_EQ(HexOf(digest),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
            "2e32cff7");
  // Test case 2 (short ASCII key).
  const char* data2 = "what do ya want for nothing?";
  HmacSha256("Jefe", 4, data2, std::strlen(data2), digest);
  EXPECT_EQ(HexOf(digest),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
            "64ec3843");
  // Test case 6 (131-byte key exercises the hash-the-key path).
  key.assign(131, 0xaa);
  const char* data6 =
      "Test Using Larger Than Block-Size Key - Hash Key First";
  HmacSha256(key.data(), key.size(), data6, std::strlen(data6), digest);
  EXPECT_EQ(HexOf(digest),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
            "0ee37f54");
}

TEST(Sha256Test, ConstantTimeEqualCompares) {
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {1, 2, 3, 4};
  const uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEqual(a, b, 4));
  EXPECT_FALSE(ConstantTimeEqual(a, c, 4));
}

}  // namespace
}  // namespace gz
