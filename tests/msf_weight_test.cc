// Tests for the MSF-weight sketch (level-graph component counting).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "algos/msf_weight.h"
#include "dsu/dsu.h"
#include "util/random.h"

namespace gz {
namespace {

GraphZeppelinConfig MakeConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

struct WeightedEdge {
  Edge edge;
  uint32_t weight;
};

// Exact MSF weight by Kruskal.
uint64_t KruskalWeight(uint64_t n, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  Dsu dsu(n);
  uint64_t total = 0;
  for (const WeightedEdge& we : edges) {
    if (dsu.Union(we.edge.u, we.edge.v)) total += we.weight;
  }
  return total;
}

TEST(MsfWeightTest, SingleEdge) {
  MsfWeightSketch msf(MakeConfig(8, 1), /*max_weight=*/4);
  ASSERT_TRUE(msf.Init().ok());
  msf.Update(Edge(0, 1), 3, UpdateType::kInsert);
  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 3u);
  EXPECT_EQ(r.num_components, 7u);
}

TEST(MsfWeightTest, PathWithMixedWeights) {
  // Path 0-1-2-3 with weights 2, 1, 4: MSF weight = 7.
  MsfWeightSketch msf(MakeConfig(8, 2), 5);
  ASSERT_TRUE(msf.Init().ok());
  msf.Update(Edge(0, 1), 2, UpdateType::kInsert);
  msf.Update(Edge(1, 2), 1, UpdateType::kInsert);
  msf.Update(Edge(2, 3), 4, UpdateType::kInsert);
  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 7u);
}

TEST(MsfWeightTest, HeavyEdgeAvoidedWhenCycleExists) {
  // Triangle with weights 1, 1, 5: MSF picks the two light edges.
  MsfWeightSketch msf(MakeConfig(8, 3), 5);
  ASSERT_TRUE(msf.Init().ok());
  msf.Update(Edge(0, 1), 1, UpdateType::kInsert);
  msf.Update(Edge(1, 2), 1, UpdateType::kInsert);
  msf.Update(Edge(0, 2), 5, UpdateType::kInsert);
  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 2u);
}

TEST(MsfWeightTest, DeletionRaisesWeight) {
  // Same triangle; deleting a light edge forces the heavy one in.
  MsfWeightSketch msf(MakeConfig(8, 4), 5);
  ASSERT_TRUE(msf.Init().ok());
  msf.Update(Edge(0, 1), 1, UpdateType::kInsert);
  msf.Update(Edge(1, 2), 1, UpdateType::kInsert);
  msf.Update(Edge(0, 2), 5, UpdateType::kInsert);
  msf.Update(Edge(1, 2), 1, UpdateType::kDelete);
  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 6u);  // Edges (0,1)=1 and (0,2)=5.
}

TEST(MsfWeightTest, DisconnectedForest) {
  // Two components: edge (0,1) w=2 and edge (4,5) w=3.
  MsfWeightSketch msf(MakeConfig(8, 5), 4);
  ASSERT_TRUE(msf.Init().ok());
  msf.Update(Edge(0, 1), 2, UpdateType::kInsert);
  msf.Update(Edge(4, 5), 3, UpdateType::kInsert);
  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, 5u);
  EXPECT_EQ(r.num_components, 6u);
}

TEST(MsfWeightTest, WeightOutOfRangeAborts) {
  MsfWeightSketch msf(MakeConfig(8, 6), 3);
  ASSERT_TRUE(msf.Init().ok());
  EXPECT_DEATH(msf.Update(Edge(0, 1), 4, UpdateType::kInsert),
               "weight out of");
  EXPECT_DEATH(msf.Update(Edge(0, 1), 0, UpdateType::kInsert),
               "weight out of");
}

class MsfWeightPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(MsfWeightPropertyTest, MatchesKruskalOnRandomWeightedGraphs) {
  const auto [seed, max_weight] = GetParam();
  const uint64_t n = 24;
  SplitMix64 rng(seed);
  MsfWeightSketch msf(MakeConfig(n, seed + 30), max_weight);
  ASSERT_TRUE(msf.Init().ok());

  std::vector<WeightedEdge> edges;
  std::set<std::pair<NodeId, NodeId>> used;
  for (int i = 0; i < 50; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBelow(n));
    NodeId b = static_cast<NodeId>(rng.NextBelow(n));
    if (a == b) continue;
    Edge e(a, b);
    if (!used.insert({e.u, e.v}).second) continue;
    const uint32_t w = 1 + static_cast<uint32_t>(rng.NextBelow(max_weight));
    edges.push_back(WeightedEdge{e, w});
    msf.Update(e, w, UpdateType::kInsert);
  }

  const MsfWeightResult r = msf.Query();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.weight, KruskalWeight(n, edges));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsfWeightPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4),
                       ::testing::Values<uint32_t>(2, 5, 8)));

}  // namespace
}  // namespace gz
