// Tests for the binary stream file reader/writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "stream/erdos_renyi_generator.h"
#include "stream/stream_file.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(StreamFileTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.gzst");
  std::vector<GraphUpdate> updates = {
      {Edge(0, 1), UpdateType::kInsert},
      {Edge(1, 2), UpdateType::kInsert},
      {Edge(0, 1), UpdateType::kDelete},
  };
  ASSERT_TRUE(WriteStreamFile(path, 10, updates).ok());

  uint64_t num_nodes = 0;
  Result<std::vector<GraphUpdate>> readback = ReadStreamFile(path, &num_nodes);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(num_nodes, 10u);
  EXPECT_EQ(readback.value(), updates);
  std::remove(path.c_str());
}

TEST(StreamFileTest, HeaderCountsUpdates) {
  const std::string path = TempPath("header.gzst");
  StreamWriter writer;
  ASSERT_TRUE(writer.Open(path, 5).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        writer.Append({Edge(0, static_cast<NodeId>(i + 1)),
                       UpdateType::kInsert})
            .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  StreamReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.num_updates(), 4u);
  EXPECT_EQ(reader.num_nodes(), 5u);
  GraphUpdate u;
  int count = 0;
  while (reader.Next(&u)) ++count;
  EXPECT_EQ(count, 4);
  EXPECT_TRUE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(StreamFileTest, MissingFileIsNotFound) {
  StreamReader reader;
  const Status s = reader.Open(TempPath("does_not_exist.gzst"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StreamFileTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.gzst");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "this is not a stream file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  StreamReader reader;
  const Status s = reader.Open(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StreamFileTest, TruncatedFileReportsIoError) {
  const std::string path = TempPath("truncated.gzst");
  std::vector<GraphUpdate> updates(10, {Edge(0, 1), UpdateType::kInsert});
  // Interleave legally: insert/delete alternating.
  for (size_t i = 0; i < updates.size(); ++i) {
    updates[i].type = (i % 2 == 0) ? UpdateType::kInsert : UpdateType::kDelete;
  }
  ASSERT_TRUE(WriteStreamFile(path, 4, updates).ok());
  // Chop off the last record.
  ASSERT_EQ(::truncate(path.c_str(), 24 + 9 * 9), 0);

  StreamReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  GraphUpdate u;
  int count = 0;
  while (reader.Next(&u)) ++count;
  EXPECT_EQ(count, 9);
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(StreamFileTest, LargeGeneratedStreamRoundTrips) {
  const std::string path = TempPath("large.gzst");
  EdgeList edges = RandomConnectedGraph(500, 3000, 11);
  StreamTransformParams p;
  p.num_nodes = 500;
  p.seed = 11;
  const StreamTransformResult r = BuildStream(edges, p);
  ASSERT_TRUE(WriteStreamFile(path, 500, r.updates).ok());

  uint64_t num_nodes = 0;
  Result<std::vector<GraphUpdate>> readback = ReadStreamFile(path, &num_nodes);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value().size(), r.updates.size());
  EXPECT_EQ(readback.value(), r.updates);
  std::remove(path.c_str());
}

TEST(StreamFileTest, DoubleOpenFails) {
  const std::string path = TempPath("double_open.gzst");
  StreamWriter writer;
  ASSERT_TRUE(writer.Open(path, 2).ok());
  EXPECT_EQ(writer.Open(path, 2).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(writer.Close().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gz
