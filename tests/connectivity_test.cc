// Tests for Boruvka-over-sketches connectivity, checked against exact
// references on structured and random graphs.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/matrix_checker.h"
#include "stream/stream_file.h"
#include "core/connectivity.h"
#include "dsu/dsu.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_types.h"
#include "util/random.h"

namespace gz {
namespace {

// Builds per-node sketches directly from an edge list (no buffering).
std::vector<NodeSketch> SketchGraph(uint64_t num_nodes, uint64_t seed,
                                    const EdgeList& edges) {
  NodeSketchParams p;
  p.num_nodes = num_nodes;
  p.seed = seed;
  std::vector<NodeSketch> sketches;
  sketches.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) sketches.emplace_back(p);
  for (const Edge& e : edges) {
    const uint64_t idx = EdgeToIndex(e, num_nodes);
    sketches[e.u].Update(idx);
    sketches[e.v].Update(idx);
  }
  return sketches;
}

// Verifies a claimed spanning forest against the true edge set and the
// true partition: forest edges must be real, acyclic, and produce the
// same partition.
void CheckForest(const ConnectivityResult& result, uint64_t num_nodes,
                 const EdgeList& edges) {
  std::set<std::pair<NodeId, NodeId>> edge_set;
  for (const Edge& e : edges) edge_set.insert({e.u, e.v});

  Dsu truth(num_nodes);
  for (const Edge& e : edges) truth.Union(e.u, e.v);

  Dsu forest_dsu(num_nodes);
  for (const Edge& e : result.spanning_forest) {
    EXPECT_TRUE(edge_set.count({e.u, e.v}) > 0)
        << "forest contains non-edge " << e.u << "-" << e.v;
    EXPECT_TRUE(forest_dsu.Union(e.u, e.v)) << "forest has a cycle";
  }
  EXPECT_EQ(result.num_components, truth.num_sets());
  // Partitions must match exactly.
  for (uint64_t i = 0; i < num_nodes; ++i) {
    for (uint64_t j = i + 1; j < num_nodes; ++j) {
      EXPECT_EQ(result.component_of[i] == result.component_of[j],
                truth.Find(i) == truth.Find(j))
          << i << " vs " << j;
    }
  }
}

TEST(ConnectivityTest, EmptyGraphAllIsolated) {
  auto sketches = SketchGraph(8, 1, {});
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 8u);
  EXPECT_TRUE(r.spanning_forest.empty());
}

TEST(ConnectivityTest, SingleEdge) {
  auto sketches = SketchGraph(4, 2, {Edge(1, 2)});
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 3u);
  ASSERT_EQ(r.spanning_forest.size(), 1u);
  EXPECT_EQ(r.spanning_forest[0], Edge(1, 2));
}

TEST(ConnectivityTest, PathGraph) {
  EdgeList edges;
  const uint64_t n = 32;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  auto sketches = SketchGraph(n, 3, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.spanning_forest.size(), n - 1);
  CheckForest(r, n, edges);
}

TEST(ConnectivityTest, StarGraph) {
  EdgeList edges;
  const uint64_t n = 64;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);
  auto sketches = SketchGraph(n, 4, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
  CheckForest(r, n, edges);
}

TEST(ConnectivityTest, GiantStarFoldIsBitwiseIdenticalForAnyThreadCount) {
  // A star is the worst case the tree-reduction fold exists for: after
  // round one EVERYTHING merges into a single component, so the whole
  // per-round XOR fold lands in one group. The pairwise reduction must
  // spread that group over the pool AND stay bitwise-invisible: the
  // result and the post-run scratch sketches (the folded bytes
  // themselves) must be identical for every thread count.
  EdgeList edges;
  const uint64_t n = 4096;  // Above the pool-spawn floor.
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);

  auto baseline = SketchGraph(n, 6, edges);
  const ConnectivityResult want =
      BoruvkaConnectivity(&baseline, 0, -1, /*num_threads=*/1);
  EXPECT_FALSE(want.failed);
  EXPECT_EQ(want.num_components, 1u);
  CheckForest(want, n, edges);

  for (const int threads : {2, 4, 8}) {
    auto sketches = SketchGraph(n, 6, edges);
    const ConnectivityResult got =
        BoruvkaConnectivity(&sketches, 0, -1, threads);
    EXPECT_EQ(got.failed, want.failed) << threads << " threads";
    EXPECT_EQ(got.num_components, want.num_components);
    EXPECT_EQ(got.rounds_used, want.rounds_used);
    EXPECT_EQ(got.spanning_forest, want.spanning_forest)
        << threads << " threads";
    EXPECT_EQ(got.component_of, want.component_of);
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(sketches[i] == baseline[i])
          << "sketch " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(ConnectivityTest, CompleteGraph) {
  EdgeList edges;
  const uint64_t n = 24;
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  auto sketches = SketchGraph(n, 5, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
  CheckForest(r, n, edges);
}

TEST(ConnectivityTest, TwoCliquesStayApart) {
  EdgeList edges;
  const uint64_t n = 20;
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = 10; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) edges.emplace_back(u, v);
  }
  auto sketches = SketchGraph(n, 6, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 2u);
  CheckForest(r, n, edges);
}

TEST(ConnectivityTest, ComponentsFromLabelsGroups) {
  std::vector<NodeId> labels = {0, 0, 2, 2, 4};
  const auto components = ComponentsFromLabels(labels);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(components[2], (std::vector<NodeId>{4}));
}

// Property sweep: random graphs across densities and seeds, verified
// against Kruskal on an exact adjacency matrix.
class ConnectivityRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, uint64_t>> {
};

TEST_P(ConnectivityRandomTest, MatchesKruskalReference) {
  const auto [num_nodes, density, seed] = GetParam();
  ErdosRenyiParams ep;
  ep.num_nodes = num_nodes;
  ep.p = density;
  ep.seed = seed;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();

  auto sketches = SketchGraph(num_nodes, seed * 101 + 7, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  ASSERT_FALSE(r.failed);
  CheckForest(r, num_nodes, edges);

  // Cross-check against the matrix checker's Kruskal.
  AdjacencyMatrixChecker checker(num_nodes);
  for (const Edge& e : edges) {
    checker.Update({e, UpdateType::kInsert});
  }
  const ConnectivityResult kruskal = checker.ConnectedComponents();
  EXPECT_EQ(r.num_components, kruskal.num_components);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivityRandomTest,
    ::testing::Combine(::testing::Values<uint64_t>(16, 64, 128),
                       ::testing::Values(0.01, 0.1, 0.5),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(ConnectivityTest, ConnectedPointQuery) {
  auto sketches = SketchGraph(8, 9, {Edge(0, 1), Edge(1, 2), Edge(4, 5)});
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.Connected(0, 2));
  EXPECT_TRUE(r.Connected(4, 5));
  EXPECT_FALSE(r.Connected(0, 4));
  EXPECT_FALSE(r.Connected(3, 6));
  EXPECT_TRUE(r.Connected(7, 7));
}

TEST(ConnectivityTest, ConnectedOutOfRangeNodeIsFalse) {
  // Regression: out-of-range node ids used to index component_of
  // unchecked (UB); they must simply report "not connected".
  auto sketches = SketchGraph(8, 9, {Edge(0, 1)});
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  ASSERT_FALSE(r.failed);
  EXPECT_FALSE(r.Connected(0, 8));
  EXPECT_FALSE(r.Connected(8, 0));
  EXPECT_FALSE(r.Connected(12345, 67890));
  EXPECT_FALSE(r.Connected(0, static_cast<NodeId>(-1)));
  // In-range behavior is unchanged.
  EXPECT_TRUE(r.Connected(0, 1));

  // An empty (default) result connects nothing, in range or not.
  const ConnectivityResult empty;
  EXPECT_FALSE(empty.Connected(0, 0));
}

TEST(ConnectivityTest, SpanningForestStreamOutput) {
  // Problem 1: the answer is itself an insert-only edge stream.
  const uint64_t n = 16;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 10; ++i) edges.emplace_back(i, i + 1);
  auto sketches = SketchGraph(n, 10, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  ASSERT_FALSE(r.failed);

  const std::string path =
      std::string(::testing::TempDir()) + "/forest_stream.gzst";
  ASSERT_TRUE(WriteSpanningForestStream(r, n, path).ok());

  uint64_t read_nodes = 0;
  auto readback = ReadStreamFile(path, &read_nodes);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(read_nodes, n);
  ASSERT_EQ(readback.value().size(), r.spanning_forest.size());
  // All inserts, and replaying them reproduces the same partition.
  Dsu dsu(n);
  for (const GraphUpdate& u : readback.value()) {
    EXPECT_EQ(u.type, UpdateType::kInsert);
    dsu.Union(u.edge.u, u.edge.v);
  }
  EXPECT_EQ(dsu.num_sets(), r.num_components);
  std::remove(path.c_str());
}

TEST(ConnectivityTest, RoundWindowRestrictsWork) {
  // With a 1-round window on a path graph, Boruvka cannot finish and
  // must report failure.
  EdgeList edges;
  for (NodeId i = 0; i + 1 < 16; ++i) edges.emplace_back(i, i + 1);
  auto sketches = SketchGraph(16, 11, edges);
  const ConnectivityResult r =
      BoruvkaConnectivity(&sketches, /*first_round=*/0, /*num_rounds=*/1);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.rounds_used, 1);
}

TEST(ConnectivityTest, WrongSketchCountAborts) {
  NodeSketchParams p;
  p.num_nodes = 8;
  p.seed = 1;
  std::vector<NodeSketch> sketches;
  for (int i = 0; i < 4; ++i) sketches.emplace_back(p);  // Too few.
  EXPECT_DEATH(BoruvkaConnectivity(&sketches), "one node sketch per vertex");
}

TEST(ConnectivityTest, BadRoundWindowAborts) {
  auto sketches = SketchGraph(8, 12, {Edge(0, 1)});
  const int rounds = sketches[0].rounds();
  EXPECT_DEATH(BoruvkaConnectivity(&sketches, rounds, 1),
               "first_round");
}

TEST(ConnectivityTest, ManySmallComponents) {
  // Disjoint triangles.
  EdgeList edges;
  const uint64_t n = 60;
  for (NodeId base = 0; base < n; base += 3) {
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base + 1, base + 2);
    edges.emplace_back(base, base + 2);
  }
  auto sketches = SketchGraph(n, 8, edges);
  const ConnectivityResult r = BoruvkaConnectivity(&sketches);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, n / 3);
  CheckForest(r, n, edges);
}

}  // namespace
}  // namespace gz
