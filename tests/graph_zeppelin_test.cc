// End-to-end tests of the GraphZeppelin system across all four
// buffering x storage configurations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baseline/matrix_checker.h"
#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

using Buffering = GraphZeppelinConfig::Buffering;
using Storage = GraphZeppelinConfig::Storage;

GraphZeppelinConfig MakeConfig(uint64_t num_nodes, uint64_t seed,
                               Buffering buffering, Storage storage) {
  GraphZeppelinConfig c;
  c.num_nodes = num_nodes;
  c.seed = seed;
  c.num_workers = 2;
  c.buffering = buffering;
  c.storage = storage;
  c.disk_dir = ::testing::TempDir();
  c.gutter_tree_buffer_bytes = 1 << 12;  // Small: force tree traffic.
  c.gutter_tree_fanout = 8;
  return c;
}

class GraphZeppelinConfigTest
    : public ::testing::TestWithParam<std::tuple<Buffering, Storage>> {};

TEST_P(GraphZeppelinConfigTest, SmallGraphEndToEnd) {
  const auto [buffering, storage] = GetParam();
  GraphZeppelin gz(MakeConfig(64, 7, buffering, storage));
  ASSERT_TRUE(gz.Init().ok());

  // Two components: a path 0..9 and a triangle 20-21-22.
  for (NodeId i = 0; i + 1 < 10; ++i) {
    gz.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  gz.Update({Edge(20, 21), UpdateType::kInsert});
  gz.Update({Edge(21, 22), UpdateType::kInsert});
  gz.Update({Edge(20, 22), UpdateType::kInsert});

  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  // 64 - 10 - 3 singletons + path + triangle.
  EXPECT_EQ(r.num_components, 64u - 10u - 3u + 2u);
  EXPECT_EQ(r.component_of[0], r.component_of[9]);
  EXPECT_EQ(r.component_of[20], r.component_of[22]);
  EXPECT_NE(r.component_of[0], r.component_of[20]);
}

TEST_P(GraphZeppelinConfigTest, DeletionsDisconnect) {
  const auto [buffering, storage] = GetParam();
  GraphZeppelin gz(MakeConfig(16, 9, buffering, storage));
  ASSERT_TRUE(gz.Init().ok());

  gz.Update({Edge(0, 1), UpdateType::kInsert});
  gz.Update({Edge(1, 2), UpdateType::kInsert});
  gz.Update({Edge(1, 2), UpdateType::kDelete});

  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.component_of[0], r.component_of[1]);
  EXPECT_NE(r.component_of[1], r.component_of[2]);
}

TEST_P(GraphZeppelinConfigTest, QueriesMidStreamThenContinue) {
  const auto [buffering, storage] = GetParam();
  GraphZeppelin gz(MakeConfig(32, 11, buffering, storage));
  ASSERT_TRUE(gz.Init().ok());

  gz.Update({Edge(0, 1), UpdateType::kInsert});
  const ConnectivityResult r1 = gz.ListSpanningForest();
  ASSERT_FALSE(r1.failed);
  EXPECT_EQ(r1.num_components, 31u);

  // Ingestion continues after the query.
  gz.Update({Edge(1, 2), UpdateType::kInsert});
  gz.Update({Edge(2, 3), UpdateType::kInsert});
  const ConnectivityResult r2 = gz.ListSpanningForest();
  ASSERT_FALSE(r2.failed);
  EXPECT_EQ(r2.num_components, 29u);
  EXPECT_EQ(r2.component_of[0], r2.component_of[3]);
}

TEST_P(GraphZeppelinConfigTest, RandomStreamMatchesExactChecker) {
  const auto [buffering, storage] = GetParam();
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 21;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 21;
  tp.disconnect_count = 4;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  GraphZeppelin gz(MakeConfig(n, 23, buffering, storage));
  ASSERT_TRUE(gz.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    gz.Update(u);
    checker.Update(u);
  }
  const ConnectivityResult got = gz.ListSpanningForest();
  const ConnectivityResult expect = checker.ConnectedComponents();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  // Partitions must agree exactly.
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j]);
    }
  }
  EXPECT_EQ(gz.num_updates_ingested(), stream.updates.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GraphZeppelinConfigTest,
    ::testing::Combine(::testing::Values(Buffering::kLeafOnly,
                                         Buffering::kGutterTree),
                       ::testing::Values(Storage::kRam, Storage::kDisk)),
    [](const ::testing::TestParamInfo<std::tuple<Buffering, Storage>>& info) {
      std::string name =
          std::get<0>(info.param) == Buffering::kLeafOnly ? "LeafOnly"
                                                          : "GutterTree";
      name += std::get<1>(info.param) == Storage::kRam ? "Ram" : "Disk";
      return name;
    });

TEST(GraphZeppelinTest, DestructionWithBufferedUpdatesIsClean) {
  // Destroying an instance with unflushed gutters and queued batches
  // must shut down workers without deadlock or crash.
  for (auto buffering : {Buffering::kLeafOnly, Buffering::kGutterTree}) {
    GraphZeppelin gz(MakeConfig(32, 71, buffering, Storage::kRam));
    ASSERT_TRUE(gz.Init().ok());
    for (NodeId i = 0; i + 1 < 32; ++i) {
      gz.Update({Edge(i, i + 1), UpdateType::kInsert});
    }
    // No flush, no query: destructor runs with work in flight.
  }
  SUCCEED();
}

TEST(GraphZeppelinTest, InitRequiredBeforeUpdate) {
  GraphZeppelin gz(MakeConfig(8, 1, Buffering::kLeafOnly, Storage::kRam));
  EXPECT_DEATH(gz.Update({Edge(0, 1), UpdateType::kInsert}), "Init");
}

TEST(GraphZeppelinTest, DoubleInitFails) {
  GraphZeppelin gz(MakeConfig(8, 1, Buffering::kLeafOnly, Storage::kRam));
  ASSERT_TRUE(gz.Init().ok());
  EXPECT_EQ(gz.Init().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphZeppelinTest, ByteSizeAccounting) {
  GraphZeppelin ram(MakeConfig(64, 2, Buffering::kLeafOnly, Storage::kRam));
  ASSERT_TRUE(ram.Init().ok());
  EXPECT_GT(ram.RamByteSize(), ram.node_sketch_bytes() * 64);
  EXPECT_EQ(ram.DiskByteSize(), 0u);

  GraphZeppelin disk(
      MakeConfig(64, 3, Buffering::kGutterTree, Storage::kDisk));
  ASSERT_TRUE(disk.Init().ok());
  EXPECT_GT(disk.DiskByteSize(), disk.node_sketch_bytes() * 64);
  // On disk, RAM holds only buffers/metadata: far below the sketch total.
  EXPECT_LT(disk.RamByteSize(), disk.DiskByteSize());
}

TEST(GraphZeppelinTest, ConfigurableRounds) {
  GraphZeppelinConfig c =
      MakeConfig(64, 4, Buffering::kLeafOnly, Storage::kRam);
  c.rounds = 3;
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  EXPECT_EQ(gz.sketch_params().rounds, 3);
}

TEST(GraphZeppelinTest, GroupedGuttersMatchChecker) {
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.2;
  ep.seed = 51;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 51;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  GraphZeppelinConfig c = MakeConfig(n, 52, Buffering::kLeafOnly,
                                     Storage::kRam);
  c.nodes_per_gutter_group = 6;  // Section 4.1 node groups.
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    gz.Update(u);
    checker.Update(u);
  }
  const ConnectivityResult got = gz.ListSpanningForest();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components,
            checker.ConnectedComponents().num_components);
}

TEST(GraphZeppelinTest, GutterTreeWithNodeGroupsMatchesChecker) {
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 61;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 61;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);

  GraphZeppelinConfig c =
      MakeConfig(n, 62, Buffering::kGutterTree, Storage::kDisk);
  c.nodes_per_gutter_group = 5;
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) {
    gz.Update(u);
    checker.Update(u);
  }
  const ConnectivityResult got = gz.ListSpanningForest();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components,
            checker.ConnectedComponents().num_components);
}

TEST(GraphZeppelinTest, HotNodeUnderManyWorkers) {
  // Every edge touches node 0: all batches race on one sketch. The
  // delta-XOR merge must serialize correctly.
  GraphZeppelinConfig c =
      MakeConfig(64, 63, Buffering::kLeafOnly, Storage::kRam);
  c.num_workers = 8;
  c.gutter_fraction = 1e-9;  // One-update batches: maximum contention.
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  for (NodeId v = 1; v < 64; ++v) {
    gz.Update({Edge(0, v), UpdateType::kInsert});
  }
  for (NodeId v = 32; v < 64; ++v) {
    gz.Update({Edge(0, v), UpdateType::kDelete});
  }
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u + 32u);  // Star of 32 + 32 singletons.
  EXPECT_TRUE(r.Connected(0, 31));
  EXPECT_FALSE(r.Connected(0, 32));
}

TEST(GraphZeppelinTest, UnwritableDiskDirFailsInit) {
  GraphZeppelinConfig c =
      MakeConfig(8, 64, Buffering::kGutterTree, Storage::kDisk);
  c.disk_dir = "/nonexistent_dir_for_gz_test";
  GraphZeppelin gz(c);
  EXPECT_FALSE(gz.Init().ok());
}

TEST(GraphZeppelinTest, TinyGuttersStillCorrect) {
  GraphZeppelinConfig c =
      MakeConfig(24, 53, Buffering::kLeafOnly, Storage::kRam);
  c.gutter_fraction = 1e-9;  // Clamps to one update per gutter.
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  for (NodeId i = 0; i + 1 < 24; ++i) {
    gz.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
}

TEST(GraphZeppelinTest, MinimalTwoNodeGraph) {
  GraphZeppelin gz(MakeConfig(2, 54, Buffering::kLeafOnly, Storage::kRam));
  ASSERT_TRUE(gz.Init().ok());
  gz.Update({Edge(0, 1), UpdateType::kInsert});
  ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
  gz.Update({Edge(0, 1), UpdateType::kDelete});
  r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 2u);
}

TEST(GraphZeppelinTest, OutOfRangeNodeAborts) {
  GraphZeppelin gz(MakeConfig(8, 55, Buffering::kLeafOnly, Storage::kRam));
  ASSERT_TRUE(gz.Init().ok());
  EXPECT_DEATH(gz.Update({Edge(0, 8), UpdateType::kInsert}), "v < num_nodes");
}

class GraphZeppelinSeedSweepTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(GraphZeppelinSeedSweepTest, NeverWrongAcrossSeeds) {
  // A miniature Section 6.3 inside the unit suite: many sketch seeds on
  // one stream, every answer exact.
  const uint64_t seed = GetParam();
  const uint64_t n = 40;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 5;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 5;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);
  AdjacencyMatrixChecker checker(n);
  for (const GraphUpdate& u : stream.updates) checker.Update(u);
  const size_t expect = checker.ConnectedComponents().num_components;

  GraphZeppelin gz(MakeConfig(n, seed * 7919 + 13, Buffering::kLeafOnly,
                              Storage::kRam));
  ASSERT_TRUE(gz.Init().ok());
  for (const GraphUpdate& u : stream.updates) gz.Update(u);
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphZeppelinSeedSweepTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(GraphZeppelinTest, ManyWorkersProduceSameAnswer) {
  GraphZeppelinConfig c =
      MakeConfig(32, 5, Buffering::kLeafOnly, Storage::kRam);
  c.num_workers = 8;
  GraphZeppelin gz(c);
  ASSERT_TRUE(gz.Init().ok());
  for (NodeId i = 0; i + 1 < 32; ++i) {
    gz.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  const ConnectivityResult r = gz.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 1u);
}

}  // namespace
}  // namespace gz
