// Randomized resharding chaos suite: a seeded random schedule of
// insert/delete updates interleaved with AddShard / RemoveShard /
// SplitShard operations at random points, in ALL execution modes:
// in-process shard instances, real gz_shard worker processes over
// socketpairs, and worker processes attached over loopback TCP
// (`gz_shard --listen` + auth secret) — the full listener-mode
// transport under every resharding drill.
//
// The property under test is the tentpole claim of elastic resharding:
// through ANY reshard schedule the stream never pauses (updates are fed
// between every migration step and an ingest-progress assertion
// enforces they really flowed), and the final folded snapshot is
// bitwise-identical — sketches AND update count — to a single
// GraphZeppelin instance that ingested the identical stream with no
// sharding at all. Schedules cover N -> M active-shard transitions
// across {1..4} -> {1..4}, including both corners.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "core/graph_zeppelin.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "util/status.h"

namespace gz {
namespace {

using Mode = ShardedGraphZeppelin::Mode;

// The execution substrate a schedule runs on; kProcessTcp is process
// mode whose initial shards are listener-mode gz_shards dialed over
// loopback TCP (elastic children spawn locally — a mixed cluster, the
// harder case).
enum class Substrate { kInProcess, kProcess, kProcessTcp };

constexpr uint64_t kNumNodes = 96;
constexpr int kMaxShards = 4;

GraphZeppelinConfig BaseConfig(uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = kNumNodes;
  c.seed = seed;
  c.num_workers = 1;
  c.disk_dir = ::testing::TempDir();
  return c;
}

// A random insert/delete stream: edges from an Erdos-Renyi graph are
// inserted in random order; along the way, random already-inserted
// edges are deleted (and may be re-inserted by a later pass). The
// ground truth is whatever a single instance computes — the suite
// checks shard-schedule invisibility, not graph semantics.
std::vector<GraphUpdate> BuildChaosStream(uint64_t seed) {
  ErdosRenyiParams ep;
  ep.num_nodes = kNumNodes;
  ep.p = 0.08;
  ep.seed = seed + 1000;
  EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::mt19937_64 rng(seed * 7919 + 13);
  std::shuffle(edges.begin(), edges.end(), rng);

  std::vector<GraphUpdate> updates;
  std::vector<Edge> live;
  for (int pass = 0; pass < 3; ++pass) {
    for (const Edge& e : edges) {
      updates.push_back({e, UpdateType::kInsert});
      live.push_back(e);
      if (!live.empty() && rng() % 100 < 35) {
        const size_t pick = rng() % live.size();
        updates.push_back({live[pick], UpdateType::kDelete});
        live.erase(live.begin() + pick);
      }
    }
  }
  return updates;
}

// One reshard operation, chosen to steer the active count toward
// `target_shards` while staying inside [1, kMaxShards]. Returns a
// human-readable label for failure messages.
std::string RandomReshardOp(ShardedGraphZeppelin* sharded,
                            std::mt19937_64* rng, int target_shards) {
  const std::vector<int> active = sharded->ActiveShards();
  const int count = static_cast<int>(active.size());
  bool grow;
  if (count <= 1) {
    grow = true;
  } else if (count >= kMaxShards) {
    grow = false;
  } else if (count < target_shards) {
    grow = true;
  } else if (count > target_shards) {
    grow = false;
  } else {
    grow = ((*rng)() % 2) == 0;
  }
  if (grow) {
    // Split moves state and exercises migration; Add is the cheap
    // path. Flip between them.
    if (((*rng)() % 2) == 0) {
      const int source = active[(*rng)() % active.size()];
      Result<int> id = sharded->BeginSplitShard(source);
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      return "split(" + std::to_string(source) + ")";
    }
    Result<int> id = sharded->AddShard();
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return "add -> " + std::to_string(id.ok() ? id.value() : -1);
  }
  const int victim = active[(*rng)() % active.size()];
  Status s = sharded->BeginRemoveShard(victim);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return "remove(" + std::to_string(victim) + ")";
}

struct Schedule {
  int start_shards;
  int end_shards;
  uint64_t seed;
};

class ReshardChaosTest
    : public ::testing::TestWithParam<std::tuple<Schedule, Substrate>> {};

TEST_P(ReshardChaosTest, FoldedSnapshotBitwiseEqualsSingleInstance) {
  const auto [schedule, substrate] = GetParam();
  const Mode mode = substrate == Substrate::kInProcess ? Mode::kInProcess
                                                       : Mode::kProcess;
  std::mt19937_64 rng(schedule.seed);
  const std::vector<GraphUpdate> updates = BuildChaosStream(schedule.seed);
  const GraphZeppelinConfig base = BaseConfig(schedule.seed + 5);

  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 12;  // Many pump steps per reshard.
  std::vector<std::unique_ptr<ListenerShard>> listeners;
  if (substrate == Substrate::kProcessTcp) {
    options.auth_secret = "reshard-chaos-secret";
    ASSERT_TRUE(StartListenerShards(DefaultShardBinary(),
                                    schedule.start_shards,
                                    ::testing::TempDir(),
                                    ::testing::TempDir() + "/gz_reshard_l",
                                    options.auth_secret, &listeners,
                                    &options.shard_endpoints)
                    .ok());
  }
  ShardedGraphZeppelin sharded(base, schedule.start_shards, mode, options);
  ASSERT_TRUE(sharded.Init().ok());

  // Feed plan: the stream goes out in small bursts; reshard ops fire at
  // random burst indices, and while a migration is active one burst is
  // fed between every two pump steps.
  const size_t burst = updates.size() / 40 + 1;
  size_t fed = 0;
  auto feed_burst = [&] {
    if (fed >= updates.size()) return false;
    const size_t count = std::min(burst, updates.size() - fed);
    sharded.Update(updates.data() + fed, count);
    fed += count;
    return true;
  };

  // Enough ops to reach the target count plus some churn on the way.
  const int churn = 1 + static_cast<int>(rng() % 3);
  int ops_left =
      std::abs(schedule.end_shards - schedule.start_shards) + 2 * churn;
  std::vector<std::string> op_log;
  while (fed < updates.size() || ops_left > 0 ||
         sharded.migration_active()) {
    if (sharded.migration_active()) {
      // THE zero-stream-pause property: ingestion interleaves with
      // every migration step. feed_before/feed_after prove updates
      // actually flowed while this migration was active.
      const size_t feed_before = fed;
      while (sharded.migration_active()) {
        feed_burst();
        ASSERT_TRUE(sharded.PumpMigration().ok()) << op_log.back();
      }
      if (feed_before < updates.size()) {
        ASSERT_GT(fed, feed_before)
            << "stream paused during " << op_log.back();
      }
      continue;
    }
    if (ops_left > 0 && (fed >= updates.size() || rng() % 4 == 0)) {
      // Bias the tail ops toward the target so the schedule lands on
      // end_shards exactly.
      const int remaining_adjust = std::abs(
          schedule.end_shards -
          static_cast<int>(sharded.ActiveShards().size()));
      const int target = (ops_left > remaining_adjust)
                             ? (rng() % kMaxShards) + 1
                             : schedule.end_shards;
      op_log.push_back(RandomReshardOp(&sharded, &rng, target));
      --ops_left;
      continue;
    }
    feed_burst();
  }
  ASSERT_EQ(static_cast<int>(sharded.ActiveShards().size()),
            schedule.end_shards)
      << ::testing::PrintToString(op_log);

  // Ground truth: one instance, no sharding, identical stream.
  GraphZeppelin single(base);
  ASSERT_TRUE(single.Init().ok());
  single.Update(updates.data(), updates.size());

  GraphSnapshot folded = sharded.Snapshot();
  GraphSnapshot expect = single.Snapshot();
  EXPECT_EQ(folded.num_updates(), updates.size());
  EXPECT_TRUE(folded == expect) << ::testing::PrintToString(op_log);

  const ConnectivityResult got = Connectivity(std::move(folded));
  const ConnectivityResult want = Connectivity(std::move(expect));
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, want.num_components);
  EXPECT_EQ(got.component_of, want.component_of);
}

TEST(ReshardReplicationTest, ReconcileUnderALiveSplitStaysBitwise) {
  // Replication meets elasticity: at R=2, kill one replica of the
  // split SOURCE while its migration is mid-flight, reconcile it back
  // WITHOUT pausing the migration or the stream, finish the split, and
  // the final fold — including one served by the repaired replica
  // alone — must be bitwise-identical to an unsharded instance.
  const uint64_t seed = 171;
  const std::vector<GraphUpdate> updates = BuildChaosStream(seed);
  const GraphZeppelinConfig base = BaseConfig(seed + 5);
  ShardClusterOptions options;
  options.replication_factor = 2;
  options.migrate_nodes_per_chunk = 12;
  ShardCluster cluster(base, 2, options);
  ASSERT_TRUE(cluster.Start().ok());

  const size_t burst = updates.size() / 30 + 1;
  size_t fed = 0;
  const auto feed_burst = [&] {
    if (fed >= updates.size()) return;
    const size_t count = std::min(burst, updates.size() - fed);
    ASSERT_TRUE(cluster.Update(updates.data() + fed, count).ok());
    fed += count;
  };
  for (int i = 0; i < 8; ++i) feed_burst();

  Result<int> target = cluster.BeginSplitShard(0);
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  ASSERT_TRUE(cluster.PumpMigration().ok());
  feed_burst();
  ASSERT_TRUE(cluster.PumpMigration().ok());

  cluster.KillReplica(0, 1);  // The source loses a replica mid-split.
  // The migration keeps pumping on the surviving replicas, with
  // ingestion interleaved — zero pause on either axis.
  feed_burst();
  ASSERT_TRUE(cluster.PumpMigration().ok());
  feed_burst();

  // Anti-entropy mid-migration: the dead replica rejoins while chunks
  // are still moving (its repaired content includes the half-finished
  // migration — linear diffs don't care).
  uint64_t repaired = 0;
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_GT(repaired, 0u);
  EXPECT_FALSE(cluster.replica_down(0, 1));

  while (cluster.migration_active()) {
    feed_burst();
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  while (fed < updates.size()) feed_burst();

  GraphZeppelin single(base);
  ASSERT_TRUE(single.Init().ok());
  single.Update(updates.data(), updates.size());
  const GraphSnapshot expect = single.Snapshot();

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == expect);

  // The mid-split repair really converged: the repaired replica can
  // carry the post-split source by itself.
  cluster.KillReplica(0, 0);
  folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == expect);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

// Four N -> M transitions covering both corners of {1..4}, each on all
// three substrates: 12 randomized schedules total.
INSTANTIATE_TEST_SUITE_P(
    Schedules, ReshardChaosTest,
    ::testing::Combine(
        ::testing::Values(Schedule{1, 4, 17}, Schedule{4, 1, 29},
                          Schedule{2, 3, 43}, Schedule{3, 2, 59}),
        ::testing::Values(Substrate::kInProcess, Substrate::kProcess,
                          Substrate::kProcessTcp)),
    [](const ::testing::TestParamInfo<std::tuple<Schedule, Substrate>>&
           info) {
      const Schedule& schedule = std::get<0>(info.param);
      const Substrate substrate = std::get<1>(info.param);
      return "From" + std::to_string(schedule.start_shards) + "To" +
             std::to_string(schedule.end_shards) +
             (substrate == Substrate::kInProcess  ? "InProcess"
              : substrate == Substrate::kProcess ? "Process"
                                                 : "ProcessTcp");
    });

}  // namespace
}  // namespace gz
