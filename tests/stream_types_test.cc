// Tests for edge/update types and the edge <-> index bijection.
#include <gtest/gtest.h>

#include "stream/stream_types.h"
#include "util/random.h"

namespace gz {
namespace {

TEST(EdgeTest, NormalizesEndpointOrder) {
  Edge e(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_EQ(e, Edge(2, 5));
}

TEST(EdgeTest, OrderingIsLexicographic) {
  EXPECT_LT(Edge(0, 1), Edge(0, 2));
  EXPECT_LT(Edge(0, 9), Edge(1, 2));
}

TEST(EdgeTest, SelfLoopAborts) {
  EXPECT_DEATH(Edge(3, 3), "self-loop");
}

TEST(NumPossibleEdgesTest, SmallValues) {
  EXPECT_EQ(NumPossibleEdges(2), 1u);
  EXPECT_EQ(NumPossibleEdges(3), 3u);
  EXPECT_EQ(NumPossibleEdges(10), 45u);
  EXPECT_EQ(NumPossibleEdges(1ULL << 17), (1ULL << 17) * ((1ULL << 17) - 1) / 2);
}

// Exhaustive bijection check for a sweep of small node counts.
class EdgeIndexBijectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeIndexBijectionTest, RoundTripsExhaustively) {
  const uint64_t n = GetParam();
  uint64_t expected_idx = 0;
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const Edge e(u, v);
      const EdgeIndex idx = EdgeToIndex(e, n);
      EXPECT_EQ(idx, expected_idx) << "u=" << u << " v=" << v;
      EXPECT_EQ(IndexToEdge(idx, n), e);
      ++expected_idx;
    }
  }
  EXPECT_EQ(expected_idx, NumPossibleEdges(n));
}

INSTANTIATE_TEST_SUITE_P(SmallNodeCounts, EdgeIndexBijectionTest,
                         ::testing::Values(2, 3, 5, 17, 64, 100));

TEST(EdgeIndexTest, RandomRoundTripsAtLargeScale) {
  // 2^20 nodes: indices up to ~5.5e11; float-assisted inversion must be
  // exact everywhere, including row boundaries.
  const uint64_t n = 1ULL << 20;
  SplitMix64 rng(77);
  for (int i = 0; i < 20000; ++i) {
    const EdgeIndex idx = rng.NextBelow(NumPossibleEdges(n));
    const Edge e = IndexToEdge(idx, n);
    EXPECT_EQ(EdgeToIndex(e, n), idx);
  }
}

TEST(EdgeIndexTest, BoundaryIndices) {
  const uint64_t n = 1000;
  EXPECT_EQ(IndexToEdge(0, n), Edge(0, 1));
  EXPECT_EQ(IndexToEdge(n - 2, n), Edge(0, static_cast<NodeId>(n - 1)));
  EXPECT_EQ(IndexToEdge(n - 1, n), Edge(1, 2));  // First index of row 1.
  EXPECT_EQ(IndexToEdge(NumPossibleEdges(n) - 1, n),
            Edge(static_cast<NodeId>(n - 2), static_cast<NodeId>(n - 1)));
}

TEST(GraphUpdateTest, Equality) {
  GraphUpdate a{Edge(1, 2), UpdateType::kInsert};
  GraphUpdate b{Edge(2, 1), UpdateType::kInsert};
  GraphUpdate c{Edge(1, 2), UpdateType::kDelete};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace gz
