// Standing-query suite: the registry's answer-diff contract, the
// coordinator evaluation surface, and the push-notified watch over the
// serving tier.
//
// The load-bearing property everywhere: every notification's answer is
// bitwise-equal to a fresh connectivity fold of the snapshot it was
// evaluated from, at the position it reports — through ingest, a live
// split migration, and a replica SIGKILL with active subscriptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/matrix_checker.h"
#include "core/connectivity.h"
#include "core/graph_zeppelin.h"
#include "core/standing_query.h"
#include "distributed/query_session.h"
#include "distributed/shard_cluster.h"
#include "distributed/shard_process.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "util/check.h"

namespace gz {
namespace {

using Mode = ShardedGraphZeppelin::Mode;

constexpr uint64_t kNumNodes = 96;
constexpr char kSecret[] = "standing-query-secret";

GraphZeppelinConfig BaseConfig(uint64_t seed, uint64_t num_nodes = kNumNodes) {
  GraphZeppelinConfig c;
  c.num_nodes = num_nodes;
  c.seed = seed;
  c.num_workers = 1;
  c.disk_dir = ::testing::TempDir();
  return c;
}

// The bitwise bar: re-fold the snapshot the notification reports (at a
// DIFFERENT thread count than the evaluation used — the fold is
// bitwise-deterministic for any count) and re-derive the answer; it
// must equal the notified answer structurally.
void VerifyNotificationBitwise(const StandingQueryNotification& n,
                               const GraphSnapshot& snapshot) {
  EXPECT_EQ(snapshot.num_updates(), n.num_updates);
  const ConnectivityResult fresh = Connectivity(snapshot, 2);
  ASSERT_FALSE(fresh.failed) << "fresh fold failed at the notified position";
  const StandingQueryAnswer want = DeriveStandingAnswer(n.spec, fresh);
  EXPECT_TRUE(n.answer == want)
      << "notification (query " << n.query_id << ", seq " << n.sequence
      << ", updates " << n.num_updates
      << ") disagrees with a fresh fold of its own snapshot";
}

// Insert/delete chaos stream (the serving suite's shape).
std::vector<GraphUpdate> BuildStream(uint64_t seed) {
  ErdosRenyiParams ep;
  ep.num_nodes = kNumNodes;
  ep.p = 0.08;
  ep.seed = seed + 1000;
  EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  std::vector<Edge> live;
  uint64_t rng = seed * 7919 + 13;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (const Edge& e : edges) {
    updates.push_back({e, UpdateType::kInsert});
    live.push_back(e);
    if (next() % 100 < 30) {
      const size_t pick = next() % live.size();
      updates.push_back({live[pick], UpdateType::kDelete});
      live.erase(live.begin() + pick);
    }
  }
  return updates;
}

// ---- Registry -------------------------------------------------------------

class StandingQueryRegistryTest : public ::testing::Test {
 protected:
  // One graph instance; Snapshot() at successive positions gives the
  // registry a sequence of evaluation inputs.
  void SetUp() override {
    gz_ = std::make_unique<GraphZeppelin>(BaseConfig(5, 16));
    ASSERT_TRUE(gz_->Init().ok());
  }

  GraphSnapshot SnapAfter(const std::vector<GraphUpdate>& updates) {
    for (const GraphUpdate& u : updates) gz_->Update(u);
    return gz_->Snapshot();
  }

  // Evaluate + collect, verifying every notification bitwise.
  size_t Evaluate(StandingQueryRegistry* reg, const GraphSnapshot& snap,
                  uint64_t epoch) {
    const Result<size_t> fired = reg->Evaluate(
        snap, epoch, 1,
        [this](const StandingQueryNotification& n,
               const GraphSnapshot& snapshot) {
          VerifyNotificationBitwise(n, snapshot);
          fired_.push_back(n);
        });
    GZ_CHECK_OK(fired.status());
    return fired.value();
  }

  std::unique_ptr<GraphZeppelin> gz_;
  std::vector<StandingQueryNotification> fired_;
};

TEST_F(StandingQueryRegistryTest, FirstEvaluationNotifiesEveryQuery) {
  StandingQueryRegistry reg;
  const uint64_t connected_id =
      reg.Add({StandingQueryKind::kConnected, 0, 1});
  reg.Add({StandingQueryKind::kComponentCount, 0, 0});
  reg.Add({StandingQueryKind::kSpanningForest, 0, 0});
  EXPECT_TRUE(reg.HasUnevaluated());

  const GraphSnapshot snap =
      SnapAfter({{Edge(0, 1), UpdateType::kInsert}});
  EXPECT_EQ(Evaluate(&reg, snap, 1), 3u);
  EXPECT_FALSE(reg.HasUnevaluated());
  ASSERT_EQ(fired_.size(), 3u);
  for (const StandingQueryNotification& n : fired_) {
    EXPECT_EQ(n.sequence, 1u) << "initial answers are sequence 1";
    EXPECT_EQ(n.epoch, 1u);
    EXPECT_EQ(n.num_updates, 1u);
    if (n.query_id == connected_id) {
      EXPECT_TRUE(n.answer.connected);
    }
    if (n.spec.kind == StandingQueryKind::kSpanningForest) {
      EXPECT_TRUE(std::is_sorted(n.answer.forest.begin(),
                                 n.answer.forest.end()))
          << "forest answers are canonicalized";
    }
  }
  // Same position again: one more fold, zero notifications.
  EXPECT_EQ(Evaluate(&reg, snap, 1), 0u);
  EXPECT_EQ(reg.evaluations(), 2u);
  EXPECT_EQ(reg.notifications(), 3u);
}

TEST_F(StandingQueryRegistryTest, ChangedAnswersNotifyAndCoalesce) {
  StandingQueryRegistry reg;
  const uint64_t id = reg.Add({StandingQueryKind::kConnected, 0, 2});
  const GraphSnapshot s1 =
      SnapAfter({{Edge(0, 1), UpdateType::kInsert}});
  const GraphSnapshot s2 =
      SnapAfter({{Edge(1, 2), UpdateType::kInsert}});
  const GraphSnapshot s3 =
      SnapAfter({{Edge(1, 2), UpdateType::kDelete}});

  EXPECT_EQ(Evaluate(&reg, s1, 1), 1u);  // Initial: not connected.
  EXPECT_FALSE(fired_.back().answer.connected);
  EXPECT_EQ(Evaluate(&reg, s2, 1), 1u);  // Flipped: connected.
  EXPECT_TRUE(fired_.back().answer.connected);
  EXPECT_EQ(fired_.back().sequence, 2u);
  EXPECT_EQ(Evaluate(&reg, s3, 1), 1u);  // Flipped back.
  EXPECT_FALSE(fired_.back().answer.connected);
  EXPECT_EQ(fired_.back().sequence, 3u);

  // Coalescing: a fresh registry evaluating s1 then s3 — the answer
  // went false -> true -> false entirely BETWEEN evaluations, so
  // nothing fires at s3 (same answer as last notified, only the
  // position moved).
  StandingQueryRegistry fresh;
  fresh.Add({StandingQueryKind::kConnected, 0, 2});
  EXPECT_EQ(Evaluate(&fresh, s1, 1), 1u);
  EXPECT_EQ(Evaluate(&fresh, s3, 1), 0u);

  // Remove: the id is gone (idempotently), and nothing fires for it.
  EXPECT_TRUE(reg.Remove(id));
  EXPECT_FALSE(reg.Remove(id));
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(Evaluate(&reg, s2, 1), 0u);
}

TEST_F(StandingQueryRegistryTest, LateAddedQueryGetsItsInitialAnswer) {
  StandingQueryRegistry reg;
  reg.Add({StandingQueryKind::kComponentCount, 0, 0});
  const GraphSnapshot snap =
      SnapAfter({{Edge(0, 1), UpdateType::kInsert}});
  EXPECT_EQ(Evaluate(&reg, snap, 1), 1u);
  // A new query at an UNMOVED position: HasUnevaluated() tells the
  // driver to evaluate anyway, and only the newcomer fires.
  reg.Add({StandingQueryKind::kConnected, 0, 1});
  EXPECT_TRUE(reg.HasUnevaluated());
  EXPECT_EQ(Evaluate(&reg, snap, 1), 1u);
  EXPECT_EQ(fired_.back().sequence, 1u);
  EXPECT_TRUE(fired_.back().answer.connected);
}

// ---- Coordinator surface --------------------------------------------------

class StandingQueryCoordinatorTest : public ::testing::TestWithParam<Mode> {};

TEST_P(StandingQueryCoordinatorTest, EvaluationsBitwiseVerifiableMidStream) {
  ShardedGraphZeppelin sharded(BaseConfig(33), 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  StandingQueryRegistry& reg = sharded.standing_queries();
  reg.Add({StandingQueryKind::kConnected, 0, 5});
  reg.Add({StandingQueryKind::kComponentCount, 0, 0});
  reg.Add({StandingQueryKind::kSpanningForest, 0, 0});

  const std::vector<GraphUpdate> updates = BuildStream(33);
  AdjacencyMatrixChecker checker(kNumNodes);
  std::vector<StandingQueryNotification> fired;
  const auto notifier = [&fired](const StandingQueryNotification& n,
                                 const GraphSnapshot& snapshot) {
    VerifyNotificationBitwise(n, snapshot);
    fired.push_back(n);
  };

  const size_t burst = updates.size() / 5 + 1;
  size_t fed = 0;
  size_t last_components = 0;
  while (fed < updates.size()) {
    const size_t count = std::min(burst, updates.size() - fed);
    sharded.Update(updates.data() + fed, count);
    for (size_t i = 0; i < count; ++i) checker.Update(updates[fed + i]);
    fed += count;
    const Result<size_t> n = sharded.EvaluateStandingQueries(1, notifier);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    // The exact-answer pin, against the dense baseline: the component
    // count notified at this position (or the unchanged one standing
    // since an earlier burst) is the true count.
    for (auto it = fired.rbegin(); it != fired.rend(); ++it) {
      if (it->spec.kind == StandingQueryKind::kComponentCount) {
        last_components = it->answer.num_components;
        break;
      }
    }
    EXPECT_EQ(last_components,
              checker.ConnectedComponents().num_components)
        << "after " << fed << " updates";
  }
  EXPECT_GE(fired.size(), 3u);  // At least every initial answer.
  // An evaluation at the final (unmoved) position fires nothing.
  const Result<size_t> again = sharded.EvaluateStandingQueries(1, notifier);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StandingQueryCoordinatorTest,
    ::testing::Values(Mode::kInProcess, Mode::kProcess),
    [](const ::testing::TestParamInfo<Mode>& info) {
      return info.param == Mode::kInProcess ? "InProcess" : "Process";
    });

// ---- Chaos: a live split under standing queries ---------------------------

enum class Transport { kLocal, kTcp };

class StandingQueryClusterTest : public ::testing::TestWithParam<Transport> {
 protected:
  ShardClusterOptions MakeOptions(int num_shards) {
    ShardClusterOptions options;
    options.migrate_nodes_per_chunk = 16;
    if (GetParam() == Transport::kTcp) {
      options.auth_secret = kSecret;
      GZ_CHECK_OK(StartListenerShards(
          DefaultShardBinary(), num_shards, ::testing::TempDir(),
          ::testing::TempDir() + "/gz_standing_l", kSecret, &listeners_,
          &options.shard_endpoints));
    }
    return options;
  }

  // Where a grown shard lives: a fresh listener on TCP, a local child
  // otherwise.
  std::string GrowEndpoint() {
    if (GetParam() == Transport::kLocal) return std::string();
    std::vector<std::string> endpoints;
    GZ_CHECK_OK(StartListenerShards(
        DefaultShardBinary(), 1, ::testing::TempDir(),
        ::testing::TempDir() + "/gz_standing_x", kSecret, &listeners_,
        &endpoints));
    return endpoints.back();
  }

  std::vector<std::unique_ptr<ListenerShard>> listeners_;
};

TEST_P(StandingQueryClusterTest, NotificationsStayExactThroughASplit) {
  // The tentpole drill, coordinator-driven: standing queries evaluated
  // between pump steps of a LIVE BeginSplitShard migration, with
  // ingest interleaved. Every notification must pass the bitwise bar
  // at its own position, and the component count must track the dense
  // baseline at every evaluated position.
  ShardedGraphZeppelin sharded(BaseConfig(55), 3, Mode::kProcess,
                               MakeOptions(3));
  ASSERT_TRUE(sharded.Init().ok());
  StandingQueryRegistry& reg = sharded.standing_queries();
  reg.Add({StandingQueryKind::kConnected, 1, 2});
  reg.Add({StandingQueryKind::kComponentCount, 0, 0});
  reg.Add({StandingQueryKind::kSpanningForest, 0, 0});

  const std::vector<GraphUpdate> updates = BuildStream(55);
  AdjacencyMatrixChecker checker(kNumNodes);
  size_t last_components = 0;
  std::vector<StandingQueryNotification> fired;
  const auto notifier = [&fired](const StandingQueryNotification& n,
                                 const GraphSnapshot& snapshot) {
    VerifyNotificationBitwise(n, snapshot);
    fired.push_back(n);
  };
  const auto evaluate_and_pin = [&](const char* step) {
    const Result<size_t> n = sharded.EvaluateStandingQueries(1, notifier);
    ASSERT_TRUE(n.ok()) << step << ": " << n.status().ToString();
    for (auto it = fired.rbegin(); it != fired.rend(); ++it) {
      if (it->spec.kind == StandingQueryKind::kComponentCount) {
        last_components = it->answer.num_components;
        break;
      }
    }
    EXPECT_EQ(last_components,
              checker.ConnectedComponents().num_components)
        << step;
  };
  const auto feed = [&](size_t from, size_t count) {
    sharded.Update(updates.data() + from, count);
    for (size_t i = 0; i < count; ++i) checker.Update(updates[from + i]);
  };

  const size_t half = updates.size() / 2;
  feed(0, half);
  evaluate_and_pin("pre-split");

  Result<int> target = sharded.BeginSplitShard(0, GrowEndpoint());
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  size_t fed = half;
  int pumps = 0;
  while (sharded.migration_active()) {
    const size_t count = std::min<size_t>(48, updates.size() - fed);
    if (count > 0) {
      feed(fed, count);
      fed += count;
    }
    ASSERT_TRUE(sharded.PumpMigration().ok());
    // Evaluate on a cadence MID-migration: standing queries must stay
    // exact while chunks are in flight.
    if (++pumps % 3 == 0) evaluate_and_pin("mid-split");
  }
  if (fed < updates.size()) {
    feed(fed, updates.size() - fed);
  }
  sharded.Flush();
  evaluate_and_pin("post-split");
  EXPECT_GE(fired.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, StandingQueryClusterTest,
    ::testing::Values(Transport::kLocal, Transport::kTcp),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return info.param == Transport::kLocal ? "Local" : "Tcp";
    });

// ---- The push-notified watch over the serving tier ------------------------

class StandingQueryWatchTest : public ::testing::Test {
 protected:
  void StartFleet(int num_listeners) {
    GZ_CHECK_OK(StartListenerShards(
        DefaultShardBinary(), num_listeners, ::testing::TempDir(),
        ::testing::TempDir() + "/gz_standing_w", kSecret, &listeners_,
        &endpoints_));
  }
  QuerySessionOptions ReaderOptions() {
    QuerySessionOptions qo;
    qo.endpoints = endpoints_;
    qo.auth_secret = kSecret;
    qo.nodes_per_chunk = 16;
    return qo;
  }
  // Spin until `done` holds or the deadline passes.
  template <typename Pred>
  bool WaitFor(Pred done, int timeout_ms = 15000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return true;
  }

  std::vector<std::unique_ptr<ListenerShard>> listeners_;
  std::vector<std::string> endpoints_;
};

TEST_F(StandingQueryWatchTest, PushNotifiedWatchSurvivesReplicaKill) {
  // The serving-tier tentpole drill: a QuerySession watch with live
  // kSubscribe push streams, against ONE shard at R=2. Subscriptions
  // must stay live and every notification bitwise-exact through a
  // replica SIGKILL with the watch running.
  StartFleet(2);  // Two listeners, one shard id, shard-major at R=2.
  ShardClusterOptions options;
  options.auth_secret = kSecret;
  options.shard_endpoints = endpoints_;
  options.replication_factor = 2;
  ShardCluster cluster(BaseConfig(111), 1, options);
  ASSERT_TRUE(cluster.Start().ok());

  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  const uint64_t connected_id =
      session.AddStandingQuery({StandingQueryKind::kConnected, 0, 1});
  session.AddStandingQuery({StandingQueryKind::kComponentCount, 0, 0});

  std::mutex mu;
  std::vector<StandingQueryNotification> fired;
  std::atomic<int> verify_failures{0};
  StandingWatchOptions watch;
  watch.poll_interval_ms = 100;
  watch.subscribe = true;
  ASSERT_TRUE(session
                  .StartWatch(watch,
                              [&](const StandingQueryNotification& n,
                                  const GraphSnapshot& snapshot) {
                                // gtest EXPECTs are thread-safe enough
                                // for counting, but keep a hard counter
                                // too so the main thread can assert.
                                const size_t before =
                                    ::testing::Test::HasFailure() ? 1 : 0;
                                VerifyNotificationBitwise(n, snapshot);
                                if (!before && ::testing::Test::HasFailure()) {
                                  verify_failures.fetch_add(1);
                                }
                                std::lock_guard<std::mutex> lock(mu);
                                fired.push_back(n);
                              })
                  .ok());
  // Both replicas accept the subscription (opened asynchronously on
  // the watcher thread, so wait rather than assert immediately).
  EXPECT_TRUE(WaitFor([&] { return session.watch_notify_streams() == 2; }))
      << "push subscriptions never came up on both replicas";

  const auto notified = [&](auto pred) {
    std::lock_guard<std::mutex> lock(mu);
    return std::any_of(fired.begin(), fired.end(), pred);
  };
  // Initial answers arrive without any ingest.
  ASSERT_TRUE(WaitFor([&] {
    return session.watch_notifications() >= 2;
  })) << "initial answers never arrived";

  // A pushed change: insert (0,1); the connected watch must flip.
  const GraphUpdate connect01{Edge(0, 1), UpdateType::kInsert};
  ASSERT_TRUE(cluster.Update(&connect01, 1).ok());
  ASSERT_TRUE(WaitFor([&] {
    return notified([&](const StandingQueryNotification& n) {
      return n.query_id == connected_id && n.answer.connected;
    });
  })) << "connected(0,1) flip was never pushed";

  // Replica 0 dies by SIGKILL, subscriptions active. The watch drops
  // that notify stream and keeps running off the survivor.
  listeners_[0]->Stop();

  // More changes after the kill: the surviving replica's pushes (or
  // the cadence fallback) must still deliver them, bitwise-exact.
  const std::vector<GraphUpdate> more = {
      {Edge(1, 2), UpdateType::kInsert},
      {Edge(2, 3), UpdateType::kInsert},
  };
  // The fan-out to the dead replica fences it; the live one ingests.
  (void)cluster.Update(more.data(), more.size());
  ASSERT_TRUE(WaitFor([&] {
    return notified([&](const StandingQueryNotification& n) {
      return n.spec.kind == StandingQueryKind::kComponentCount &&
             n.num_updates == 3;
    });
  })) << "no component-count notification at the final position";

  const size_t streams = session.watch_notify_streams();
  EXPECT_LE(streams, 1u) << "the killed replica's stream must be dropped";
  session.StopWatch();
  EXPECT_EQ(verify_failures.load(), 0);
  // The final answers, pinned against an identical-seed reference
  // instance: merged shard content is bitwise the single-instance
  // sketch, so the folds agree exactly.
  GraphZeppelin ref(BaseConfig(111));
  ASSERT_TRUE(ref.Init().ok());
  ref.Update(connect01);
  for (const GraphUpdate& u : more) ref.Update(u);
  const ConnectivityResult want = ref.ListSpanningForest();
  ASSERT_FALSE(want.failed);
  std::lock_guard<std::mutex> lock(mu);
  for (auto it = fired.rbegin(); it != fired.rend(); ++it) {
    if (it->spec.kind == StandingQueryKind::kComponentCount &&
        it->num_updates == 3) {
      EXPECT_EQ(it->answer.num_components, want.num_components);
      break;
    }
  }
  cluster.Shutdown();  // One child is already gone; best effort.
}

TEST_F(StandingQueryWatchTest, PollOnlyWatchDeliversWithoutSubscriptions) {
  // --no-subscribe degenerates to pure cadence polling; the delivery
  // contract is identical, just later.
  StartFleet(1);
  ShardClusterOptions options;
  options.auth_secret = kSecret;
  options.shard_endpoints = endpoints_;
  ShardCluster cluster(BaseConfig(17), 1, options);
  ASSERT_TRUE(cluster.Start().ok());

  QuerySession session(ReaderOptions());
  ASSERT_TRUE(session.Connect().ok());
  session.AddStandingQuery({StandingQueryKind::kComponentCount, 0, 0});
  std::atomic<int> verify_failures{0};
  StandingWatchOptions watch;
  watch.poll_interval_ms = 50;
  watch.subscribe = false;
  ASSERT_TRUE(session
                  .StartWatch(watch,
                              [&](const StandingQueryNotification& n,
                                  const GraphSnapshot& snapshot) {
                                VerifyNotificationBitwise(n, snapshot);
                              })
                  .ok());
  EXPECT_EQ(session.watch_notify_streams(), 0u);
  ASSERT_TRUE(WaitFor([&] {
    return session.watch_notifications() >= 1;
  })) << "initial answer never arrived by polling";
  const GraphUpdate u{Edge(4, 5), UpdateType::kInsert};
  ASSERT_TRUE(cluster.Update(&u, 1).ok());
  ASSERT_TRUE(WaitFor([&] {
    return session.watch_notifications() >= 2;
  })) << "changed answer never arrived by polling";
  session.StopWatch();
  EXPECT_EQ(verify_failures.load(), 0);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

}  // namespace
}  // namespace gz
