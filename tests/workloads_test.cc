// Workload subsystem tests: the count-min heavy-hitter side sketch
// (exactness of the linear fold, canonical serialization, distributed
// identity through live resharding), sliding-window connectivity (the
// expiry-delete discipline against an explicit last-W ground truth,
// the mixed-slab XOR-cancellation regression, watchable window
// queries), and k-edge-connectivity certification on known graphs.
//
// The distributed cases mirror sharded_test / shard_cluster_test: every
// answer must be identical — bitwise for serialized folds, exact for
// CM counters — between a single-process instance and a sharded
// cluster, in both execution modes and over both transports.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "algos/spanning_forests.h"
#include "baseline/matrix_checker.h"
#include "core/connectivity.h"
#include "core/graph_zeppelin.h"
#include "distributed/shard_cluster.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "workloads/count_min.h"
#include "workloads/k_connectivity.h"
#include "workloads/window_ingestor.h"
#include "workloads/windowed_connectivity.h"

namespace gz {
namespace {

using Mode = ShardedGraphZeppelin::Mode;

GraphZeppelinConfig BaseConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 1;
  c.disk_dir = ::testing::TempDir();
  return c;
}

// A config with heavy-hitter tracking on. The candidate budget is
// roomy on purpose: bitwise fold identity holds only while no
// candidate table saturates (admission order differs across
// partitions once keys are dropped).
GraphZeppelinConfig HHConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c = BaseConfig(n, seed);
  c.heavy_hitter_width = 512;
  c.heavy_hitter_depth = 4;
  c.heavy_hitter_candidates = 1 << 14;
  return c;
}

std::string ModeName(Mode mode) {
  return mode == Mode::kInProcess ? "InProcess" : "Process";
}

// ---- CountMinSketch -------------------------------------------------------

TEST(CountMinTest, TurnstileEstimatesExactWhenSparse) {
  CountMinParams p;
  p.seed = 7;
  p.width = 1024;
  p.depth = 4;
  CountMinSketch cm(p);
  for (uint64_t k = 1; k <= 20; ++k) {
    cm.Add(k, static_cast<int64_t>(k));
  }
  cm.Add(5, -2);  // Turnstile: deletes subtract.
  for (uint64_t k = 1; k <= 20; ++k) {
    const int64_t truth = (k == 5) ? 3 : static_cast<int64_t>(k);
    EXPECT_EQ(cm.Estimate(k), truth) << "key " << k;
  }
  EXPECT_EQ(cm.Estimate(999), 0);  // Untouched key: no false mass here.
}

TEST(CountMinTest, MergeIsLinear) {
  CountMinParams p;
  p.seed = 9;
  p.width = 256;
  p.depth = 4;
  CountMinSketch a(p), b(p), all(p);
  for (uint64_t k = 0; k < 40; ++k) {
    // Keys 0..39 split between the halves, with overlap at 10..19.
    if (k < 20) a.Add(k, 2);
    if (k >= 10) b.Add(k, 3);
    if (k < 20) all.Add(k, 2);
    if (k >= 10) all.Add(k, 3);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  // Counter-wise identity, not just estimate agreement: the merge IS
  // the sum of the grids.
  EXPECT_EQ(a.counters(), all.counters());
}

TEST(CountMinTest, MergeRejectsMismatchedGeometryOrSeed) {
  CountMinParams p;
  p.width = 256;
  p.depth = 4;
  CountMinSketch base(p);
  {
    CountMinParams q = p;
    q.width = 512;
    CountMinSketch other(q);
    EXPECT_EQ(base.Merge(other).code(), StatusCode::kInvalidArgument);
  }
  {
    CountMinParams q = p;
    q.seed = p.seed + 1;
    CountMinSketch other(q);
    EXPECT_EQ(base.Merge(other).code(), StatusCode::kInvalidArgument);
  }
}

// ---- HeavyHitterSketch ----------------------------------------------------

HeavyHitterParams SmallHHParams(uint64_t n) {
  HeavyHitterParams p;
  p.num_nodes = n;
  p.seed = 11;
  p.width = 512;
  p.depth = 4;
  p.candidates = 1024;
  return p;
}

TEST(HeavyHitterTest, CountsAndTopKExactOnSmallStream) {
  const uint64_t n = 16;
  HeavyHitterSketch hh(SmallHHParams(n));
  std::vector<GraphUpdate> updates;
  for (int i = 0; i < 5; ++i) updates.push_back({Edge(0, 1), UpdateType::kInsert});
  for (int i = 0; i < 2; ++i) updates.push_back({Edge(2, 3), UpdateType::kInsert});
  updates.push_back({Edge(0, 1), UpdateType::kDelete});
  updates.push_back({Edge(4, 5), UpdateType::kInsert});
  hh.Update(updates.data(), updates.size());

  EXPECT_EQ(hh.updates_applied(), updates.size());
  EXPECT_EQ(hh.EdgeCount(Edge(0, 1)), 4);
  EXPECT_EQ(hh.EdgeCount(Edge(2, 3)), 2);
  EXPECT_EQ(hh.EdgeCount(Edge(4, 5)), 1);
  // Degrees count BOTH endpoints per update, signed.
  EXPECT_EQ(hh.DegreeCount(0), 4);
  EXPECT_EQ(hh.DegreeCount(1), 4);
  EXPECT_EQ(hh.DegreeCount(3), 2);
  EXPECT_EQ(hh.DegreeCount(5), 1);
  EXPECT_EQ(hh.DegreeCount(9), 0);

  const auto top = hh.TopEdges(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, EdgeToIndex(Edge(0, 1), n));
  EXPECT_EQ(top[0].count, 4);
  EXPECT_EQ(top[1].key, EdgeToIndex(Edge(2, 3), n));
  EXPECT_EQ(top[1].count, 2);
  const auto degrees = hh.TopDegrees(2);
  ASSERT_EQ(degrees.size(), 2u);
  EXPECT_EQ(degrees[0].count, 4);
  EXPECT_FALSE(hh.saturated());
}

TEST(HeavyHitterTest, TopKTieBreaksByKeyAscending) {
  const uint64_t n = 16;
  HeavyHitterSketch hh(SmallHHParams(n));
  // Three edges, same count: ranking must be deterministic so folded
  // and single-process sketches agree.
  const Edge edges[] = {Edge(7, 9), Edge(0, 3), Edge(2, 5)};
  for (const Edge& e : edges) hh.Update({e, UpdateType::kInsert});
  const auto top = hh.TopEdges(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_LT(top[0].key, top[1].key);
  EXPECT_LT(top[1].key, top[2].key);
}

TEST(HeavyHitterTest, SerializeRoundTripIsCanonical) {
  const uint64_t n = 32;
  HeavyHitterSketch hh(SmallHHParams(n));
  for (NodeId u = 0; u + 1 < 20; ++u) {
    hh.Update({Edge(u, u + 1), UpdateType::kInsert});
  }
  const std::vector<uint8_t> bytes = hh.Serialize();
  Result<HeavyHitterSketch> back = HeavyHitterSketch::Deserialize(
      bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value().params() == hh.params());
  EXPECT_EQ(back.value().updates_applied(), hh.updates_applied());
  EXPECT_EQ(back.value().EdgeCount(Edge(3, 4)), 1);
  // Canonical: re-serialization reproduces the bytes exactly.
  EXPECT_EQ(back.value().Serialize(), bytes);
}

TEST(HeavyHitterTest, DeserializeRejectsGarbage) {
  const uint64_t n = 16;
  HeavyHitterSketch hh(SmallHHParams(n));
  hh.Update({Edge(1, 2), UpdateType::kInsert});
  std::vector<uint8_t> bytes = hh.Serialize();

  // Truncations at every prefix must bounce, never crash or overread.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{16}, bytes.size() - 1}) {
    Result<HeavyHitterSketch> r =
        HeavyHitterSketch::Deserialize(bytes.data(), cut);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
  // Bad magic.
  std::vector<uint8_t> bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(HeavyHitterSketch::Deserialize(bad.data(), bad.size()).ok());
  // Trailing junk is a framing error, not silently ignored.
  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(HeavyHitterSketch::Deserialize(bad.data(), bad.size()).ok());
}

TEST(HeavyHitterTest, PartitionedFoldIsBitwiseIdenticalToSingleStream) {
  // The distributed exactness argument in miniature: partition a
  // stream across three sketches (as shard routing would), sum-merge,
  // and the folded sketch's canonical bytes equal the single-stream
  // sketch's.
  const uint64_t n = 64;
  HeavyHitterSketch parts[3] = {HeavyHitterSketch(SmallHHParams(n)),
                                HeavyHitterSketch(SmallHHParams(n)),
                                HeavyHitterSketch(SmallHHParams(n))};
  HeavyHitterSketch single(SmallHHParams(n));
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 13;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  size_t i = 0;
  for (const Edge& e : edges) {
    const GraphUpdate u{e, UpdateType::kInsert};
    parts[i++ % 3].Update(u);
    single.Update(u);
  }
  ASSERT_TRUE(parts[0].Merge(parts[1]).ok());
  ASSERT_TRUE(parts[0].Merge(parts[2]).ok());
  EXPECT_EQ(parts[0].Serialize(), single.Serialize());
}

TEST(HeavyHitterTest, SaturationIsReportedNotSilent) {
  HeavyHitterParams p = SmallHHParams(32);
  p.candidates = 4;
  HeavyHitterSketch hh(p);
  for (NodeId u = 0; u + 1 < 20; ++u) {
    hh.Update({Edge(u, u + 1), UpdateType::kInsert});
  }
  EXPECT_TRUE(hh.saturated());
  // Counts stay exact even for dropped candidates; only top-k
  // enumeration is lossy.
  EXPECT_EQ(hh.EdgeCount(Edge(15, 16)), 1);
  EXPECT_LE(hh.TopEdges(20).size(), 4u);
}

// ---- GraphZeppelin integration --------------------------------------------

TEST(HeavyHitterTest, InstanceTracksOnBothUpdatePaths) {
  const uint64_t n = 32;
  GraphZeppelin off(BaseConfig(n, 3));
  ASSERT_TRUE(off.Init().ok());
  EXPECT_EQ(off.heavy_hitters(), nullptr);  // Disabled by default.

  GraphZeppelin gz(HHConfig(n, 3));
  ASSERT_TRUE(gz.Init().ok());
  ASSERT_NE(gz.heavy_hitters(), nullptr);
  // Single-update path.
  gz.Update({Edge(0, 1), UpdateType::kInsert});
  // Span path (the zero-alloc bulk route).
  std::vector<GraphUpdate> span;
  span.push_back({Edge(0, 1), UpdateType::kInsert});
  span.push_back({Edge(0, 1), UpdateType::kDelete});
  span.push_back({Edge(2, 3), UpdateType::kInsert});
  gz.Update(span.data(), span.size());

  EXPECT_EQ(gz.heavy_hitters()->updates_applied(), 4u);
  EXPECT_EQ(gz.heavy_hitters()->EdgeCount(Edge(0, 1)), 1);
  EXPECT_EQ(gz.heavy_hitters()->EdgeCount(Edge(2, 3)), 1);
  EXPECT_EQ(gz.heavy_hitters()->DegreeCount(0), 1);
}

// ---- Distributed identity, both modes -------------------------------------

class WorkloadShardedTest : public ::testing::TestWithParam<Mode> {};

TEST_P(WorkloadShardedTest, HeavyHitterFoldMatchesSingleInstanceBitwise) {
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.12;
  ep.seed = 17;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});
  // A few deletes so the turnstile path is exercised end to end.
  for (size_t i = 0; i < 5 && i < edges.size(); ++i) {
    updates.push_back({edges[i], UpdateType::kDelete});
  }

  const GraphZeppelinConfig config = HHConfig(n, 23);
  ShardedGraphZeppelin sharded(config, 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  GraphZeppelin single(config);
  ASSERT_TRUE(single.Init().ok());
  sharded.Update(updates.data(), updates.size());
  single.Update(updates.data(), updates.size());

  Result<HeavyHitterSketch> folded = sharded.HeavyHitters();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  ASSERT_NE(single.heavy_hitters(), nullptr);
  EXPECT_EQ(folded.value().Serialize(), single.heavy_hitters()->Serialize());
  EXPECT_EQ(folded.value().updates_applied(), updates.size());
}

TEST_P(WorkloadShardedTest, HeavyHittersDisabledIsFailedPrecondition) {
  ShardedGraphZeppelin sharded(BaseConfig(32, 5), 2, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  EXPECT_EQ(sharded.HeavyHitters().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(WorkloadShardedTest, HeavyHittersSurviveLiveSplitAndRemove) {
  // CM counters are additive state the XOR migration deltas do not
  // carry: a split must leave the sum untouched (source keeps its
  // counters, target starts empty) and a remove must fold the retired
  // shard's counters into every later answer. Ingestion stays live
  // through the split, exactly like the reshard chaos drills.
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.15;
  ep.seed = 29;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});

  const GraphZeppelinConfig config = HHConfig(n, 31);
  ShardedGraphZeppelin sharded(config, 2, GetParam());
  ASSERT_TRUE(sharded.Init().ok());
  GraphZeppelin single(config);
  ASSERT_TRUE(single.Init().ok());

  size_t fed = 0;
  auto feed_burst = [&](size_t count) {
    count = std::min(count, updates.size() - fed);
    if (count == 0) return;
    sharded.Update(updates.data() + fed, count);
    single.Update(updates.data() + fed, count);
    fed += count;
  };

  feed_burst(updates.size() / 3);
  Result<int> target = sharded.BeginSplitShard(0);
  ASSERT_TRUE(target.ok()) << target.status().ToString();
  while (sharded.migration_active()) {
    feed_burst(64);  // Live split: ingestion interleaves with chunks.
    ASSERT_TRUE(sharded.PumpMigration().ok());
  }
  feed_burst(updates.size() / 3);
  // Remove a shard: its counters retire into the coordinator.
  ASSERT_TRUE(sharded.RemoveShard(1).ok());
  feed_burst(updates.size());  // The rest.
  ASSERT_EQ(fed, updates.size());

  Result<HeavyHitterSketch> folded = sharded.HeavyHitters();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().Serialize(), single.heavy_hitters()->Serialize());

  // And the connectivity answer still matches too (the split/remove
  // was invisible on both planes).
  const ConnectivityResult got = sharded.ListSpanningForest();
  const ConnectivityResult want = single.ListSpanningForest();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, want.num_components);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, WorkloadShardedTest,
    ::testing::Values(Mode::kInProcess, Mode::kProcess),
    [](const ::testing::TestParamInfo<Mode>& info) {
      return ModeName(info.param);
    });

// ---- Cluster-level workloads over both transports -------------------------

enum class Transport { kLocal, kTcp };

constexpr char kWorkloadSecret[] = "workloads-test-secret";

class WorkloadClusterTest : public ::testing::TestWithParam<Transport> {
 protected:
  ShardClusterOptions MakeOptions(int num_listeners,
                                  ShardClusterOptions options = {}) {
    if (GetParam() == Transport::kTcp) {
      options.auth_secret = kWorkloadSecret;
      GZ_CHECK_OK(StartListenerShards(
          DefaultShardBinary(), num_listeners, ::testing::TempDir(),
          ::testing::TempDir() + "/gz_wl_listener_", kWorkloadSecret,
          &listeners_, &options.shard_endpoints));
    }
    return options;
  }

  std::vector<std::unique_ptr<ListenerShard>> listeners_;
};

TEST_P(WorkloadClusterTest, ReplicatedHeavyHittersMatchSingleProcess) {
  // R=2: replicas of a shard ingest the same updates, so the fold must
  // read ONE replica per shard (kOnePerShard), not sum both. The
  // cluster's answer equals a single unsharded instance's, bitwise.
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.08;
  ep.seed = 37;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  std::vector<GraphUpdate> updates;
  for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});

  const GraphZeppelinConfig config = HHConfig(n, 41);
  ShardClusterOptions options;
  options.replication_factor = 2;
  ShardCluster cluster(config, 2, MakeOptions(2 * 2, options));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());

  GraphZeppelin single(config);
  ASSERT_TRUE(single.Init().ok());
  single.Update(updates.data(), updates.size());

  Result<HeavyHitterSketch> folded = cluster.HeavyHitters();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().Serialize(), single.heavy_hitters()->Serialize());
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(WorkloadClusterTest, ErdosRenyiForestsArePairwiseEdgeDisjoint) {
  // The decomposition pin on the full distributed path: peel k forests
  // from a CLUSTER's folded snapshot of a randomized ER stream; the
  // forests must be pairwise edge-disjoint and each a subgraph of the
  // streamed graph.
  const uint64_t n = 32;
  const int k = 3;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.3;
  ep.seed = 43;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();

  GraphZeppelinConfig config = BaseConfig(n, 47);
  config.rounds = RoundsForForests(n, k);
  ShardCluster cluster(config, 2, MakeOptions(2));
  ASSERT_TRUE(cluster.Start().ok());
  for (const Edge& e : edges) {
    const GraphUpdate u{e, UpdateType::kInsert};
    ASSERT_TRUE(cluster.Update(&u, 1).ok());
  }
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();

  const Result<ForestDecomposition> extracted =
      ExtractSpanningForests(folded.value(), k);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  const ForestDecomposition& d = extracted.value();
  ASSERT_FALSE(d.failed);
  ASSERT_EQ(d.forests.size(), static_cast<size_t>(k));

  std::set<uint64_t> streamed;
  for (const Edge& e : edges) streamed.insert(EdgeToIndex(e, n));
  std::set<uint64_t> seen;
  size_t total = 0;
  for (const EdgeList& forest : d.forests) {
    for (const Edge& e : forest) {
      const uint64_t key = EdgeToIndex(e, n);
      EXPECT_TRUE(streamed.count(key)) << "forest edge not in the stream";
      // Pairwise disjoint <=> no key appears in two forests.
      EXPECT_TRUE(seen.insert(key).second) << "edge in two forests";
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Transports, WorkloadClusterTest,
    ::testing::Values(Transport::kLocal, Transport::kTcp),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return info.param == Transport::kLocal ? "Local" : "Tcp";
    });

// ---- Sliding window -------------------------------------------------------

// Explicit last-W ground truth: a deque of the W most recent
// observations; the windowed graph is the set of distinct edges in it.
class ExplicitWindow {
 public:
  ExplicitWindow(uint64_t num_nodes, size_t window)
      : num_nodes_(num_nodes), window_(window) {}

  void Observe(const Edge& e) {
    ring_.push_back(e);
    ++counts_[EdgeToIndex(e, num_nodes_)];
    if (ring_.size() > window_) {
      const Edge old = ring_.front();
      ring_.pop_front();
      auto it = counts_.find(EdgeToIndex(old, num_nodes_));
      if (--it->second == 0) counts_.erase(it);
    }
  }

  size_t live_edges() const { return counts_.size(); }

  ConnectivityResult Components() const {
    AdjacencyMatrixChecker checker(num_nodes_);
    for (const auto& [key, count] : counts_) {
      checker.Update({IndexToEdge(key, num_nodes_), UpdateType::kInsert});
    }
    return checker.ConnectedComponents();
  }

 private:
  uint64_t num_nodes_;
  size_t window_;
  std::deque<Edge> ring_;
  std::map<uint64_t, int> counts_;
};

void ExpectSamePartition(const ConnectivityResult& got,
                         const ConnectivityResult& want, uint64_t n) {
  ASSERT_FALSE(got.failed);
  ASSERT_FALSE(want.failed);
  EXPECT_EQ(got.num_components, want.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                want.component_of[i] == want.component_of[j])
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(WindowIngestorTest, MatchesExplicitLastWindowGroundTruth) {
  const uint64_t n = 24;
  const size_t W = 40;
  GraphZeppelin gz(BaseConfig(n, 53));
  ASSERT_TRUE(gz.Init().ok());
  WindowIngestorParams wp;
  wp.num_nodes = n;
  wp.window = W;
  WindowIngestor window(wp, [&gz](const GraphUpdate* u, size_t c) {
    gz.Update(u, c);
  });
  ExplicitWindow truth(n, W);

  std::mt19937_64 rng(59);
  for (int i = 1; i <= 400; ++i) {
    const NodeId u = static_cast<NodeId>(rng() % n);
    NodeId v = static_cast<NodeId>(rng() % (n - 1));
    if (v >= u) ++v;
    const Edge e(std::min(u, v), std::max(u, v));
    window.Observe(e);
    truth.Observe(e);
    if (i % 50 == 0) {
      window.Flush();
      EXPECT_EQ(window.live_edges(), truth.live_edges());
      const ConnectivityResult got =
          Connectivity(gz.Snapshot(), /*threads=*/1);
      ExpectSamePartition(got, truth.Components(), n);
    }
  }
  EXPECT_EQ(window.observations(), 400u);
  // Drain: the stream ended, the window decays to empty.
  window.ExpireAll();
  const ConnectivityResult empty = Connectivity(gz.Snapshot(), 1);
  ASSERT_FALSE(empty.failed);
  EXPECT_EQ(empty.num_components, n);
  EXPECT_EQ(window.live_edges(), 0u);
}

TEST(WindowIngestorTest, ReobservationRefreshesWithoutToggling) {
  // The XOR guard: re-observing a live edge must NOT re-insert it
  // (which would toggle it out of the sketches) — it refreshes the
  // edge's presence in the window.
  const uint64_t n = 8;
  std::vector<GraphUpdate> emitted;
  WindowIngestorParams wp;
  wp.num_nodes = n;
  wp.window = 3;
  WindowIngestor window(wp, [&emitted](const GraphUpdate* u, size_t c) {
    emitted.insert(emitted.end(), u, u + c);
  });
  for (int i = 0; i < 5; ++i) window.Observe(Edge(0, 1));
  window.Flush();
  ASSERT_EQ(emitted.size(), 1u);  // One insert, ever.
  EXPECT_EQ(emitted[0].type, UpdateType::kInsert);
  EXPECT_EQ(window.live_edges(), 1u);
  // Only when every retained observation of the edge has expired does
  // the delete go out.
  window.Observe(Edge(2, 3));
  window.Observe(Edge(4, 5));
  window.Observe(Edge(6, 7));  // Pushes the last (0,1) out.
  window.Flush();
  int deletes_01 = 0;
  for (const GraphUpdate& u : emitted) {
    if (u.edge == Edge(0, 1) && u.type == UpdateType::kDelete) ++deletes_01;
  }
  EXPECT_EQ(deletes_01, 1);
  EXPECT_EQ(window.live_edges(), 3u);
}

TEST(WindowIngestorTest, MixedInsertAndExpiryDeleteSlabFoldsToEmpty) {
  // The satellite regression: one emitted slab may carry an edge's
  // insert AND its own expiry delete (short window, long span). Pushed
  // through the pooled batch pipeline as a single span, the slab must
  // fold to the empty sketch — XOR cancellation inside one batch.
  const uint64_t n = 16;
  std::vector<GraphUpdate> slab;
  WindowIngestorParams wp;
  wp.num_nodes = n;
  wp.window = 1;  // Every new observation expires the previous one.
  wp.emit_span = 1024;  // Nothing flushes early: ONE slab at the end.
  size_t sink_calls = 0;
  WindowIngestor window(wp, [&](const GraphUpdate* u, size_t c) {
    ++sink_calls;
    slab.insert(slab.end(), u, u + c);
  });
  window.Observe(Edge(0, 1));
  window.Observe(Edge(2, 3));
  window.Observe(Edge(4, 5));
  window.ExpireAll();
  ASSERT_EQ(sink_calls, 1u);
  ASSERT_EQ(slab.size(), 6u);  // 3 inserts + 3 expiry deletes, mixed.

  // The precondition this test exists for: the same edge's insert and
  // delete live in the SAME slab.
  bool has_insert = false, has_delete = false;
  for (const GraphUpdate& u : slab) {
    if (u.edge == Edge(0, 1)) {
      (u.type == UpdateType::kInsert ? has_insert : has_delete) = true;
    }
  }
  ASSERT_TRUE(has_insert && has_delete);

  GraphZeppelin gz(BaseConfig(n, 61));
  ASSERT_TRUE(gz.Init().ok());
  gz.Update(slab.data(), slab.size());  // One span -> batch pipeline.
  GraphZeppelin fresh(BaseConfig(n, 61));
  ASSERT_TRUE(fresh.Init().ok());
  // Sketch content identical to the never-touched instance. (The
  // update COUNTS differ by construction — 6 vs 0 — so compare the
  // sketches, which is what "folds to the empty sketch" means.)
  EXPECT_TRUE(gz.Snapshot().sketches() == fresh.Snapshot().sketches());
}

TEST(WindowedConnectivityTest, NotificationsVerifyAgainstFreshWindowedFold) {
  // Watchable window queries: every notification must (a) reproduce
  // from the snapshot it carries, and (b) match a FRESH windowed
  // instance driven to the same observation position — the window
  // fold, not the cumulative graph.
  const uint64_t n = 12;
  const size_t W = 8;
  WindowedConnectivityParams params;
  params.config = BaseConfig(n, 67);
  params.window.num_nodes = n;
  params.window.window = W;

  WindowedConnectivity wc(params);
  ASSERT_TRUE(wc.Init().ok());
  wc.standing_queries().Add({StandingQueryKind::kConnected, 0, 11});
  wc.standing_queries().Add({StandingQueryKind::kComponentCount, 0, 0});

  // A path 0-..-11 built left to right; with W=8 the early edges expire
  // as later ones arrive, so connected(0,11) is NEVER true and the
  // component count moves both up (expiry) and down (arrival).
  std::vector<Edge> stream;
  for (NodeId i = 0; i + 1 < n; ++i) stream.push_back(Edge(i, i + 1));
  for (NodeId i = 0; i + 1 < n; ++i) stream.push_back(Edge(i, i + 1));

  struct Seen {
    StandingQuerySpec spec;
    StandingQueryAnswer answer;
    uint64_t position;  // Observation count at evaluation time.
  };
  std::vector<Seen> seen;
  uint64_t observed = 0;
  for (const Edge& e : stream) {
    wc.Observe(e);
    ++observed;
    if (observed % 4 == 0) {
      const Result<size_t> fired = wc.EvaluateStandingQueries(
          1, [&](const StandingQueryNotification& notification,
                 const GraphSnapshot& snapshot) {
            // (a) The carried snapshot reproduces the answer bitwise.
            const ConnectivityResult fold = Connectivity(snapshot, 1);
            EXPECT_TRUE(DeriveStandingAnswer(notification.spec, fold) ==
                        notification.answer);
            seen.push_back({notification.spec, notification.answer,
                            observed});
          });
      ASSERT_TRUE(fired.ok()) << fired.status().ToString();
    }
  }
  ASSERT_FALSE(seen.empty());
  bool connected_notified = false;

  // (b) Replay a fresh windowed instance to each notified position.
  for (const Seen& s : seen) {
    WindowedConnectivity replay(params);
    ASSERT_TRUE(replay.Init().ok());
    for (uint64_t i = 0; i < s.position; ++i) replay.Observe(stream[i]);
    const ConnectivityResult fold = replay.Connectivity();
    EXPECT_TRUE(DeriveStandingAnswer(s.spec, fold) == s.answer)
        << "position " << s.position;
    if (s.spec.kind == StandingQueryKind::kConnected) {
      connected_notified = true;
      EXPECT_FALSE(s.answer.connected);  // 0 and 11 never coexist in W=8.
    }
  }
  EXPECT_TRUE(connected_notified);  // Initial answer always notifies.
}

// ---- k-edge-connectivity --------------------------------------------------

GraphSnapshot SnapshotOf(uint64_t n, uint64_t seed, int k,
                         const EdgeList& edges) {
  GraphZeppelinConfig config = BaseConfig(n, seed);
  config.rounds = RoundsForForests(n, k);
  GraphZeppelin gz(config);
  GZ_CHECK_OK(gz.Init());
  for (const Edge& e : edges) gz.Update({e, UpdateType::kInsert});
  return gz.Snapshot();
}

TEST(KConnectivityTest, PathCertifiesConnectivityOne) {
  const uint64_t n = 8;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back(Edge(i, i + 1));
  const Result<KConnectivityResult> r =
      KEdgeConnectivity(SnapshotOf(n, 71, 2, edges), 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().sketch_failed);
  EXPECT_EQ(r.value().certified_connectivity, 1);
  EXPECT_FALSE(r.value().is_k_edge_connected);
}

TEST(KConnectivityTest, CycleCertifiesConnectivityTwo) {
  const uint64_t n = 8;
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back(Edge(i, i + 1));
  edges.push_back(Edge(0, n - 1));
  {
    const Result<KConnectivityResult> r =
        KEdgeConnectivity(SnapshotOf(n, 73, 2, edges), 2);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().certified_connectivity, 2);
    EXPECT_TRUE(r.value().is_k_edge_connected);
  }
  {
    // Asking beyond the true connectivity: the exact cap shows through.
    const Result<KConnectivityResult> r =
        KEdgeConnectivity(SnapshotOf(n, 73, 3, edges), 3);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().certified_connectivity, 2);
    EXPECT_FALSE(r.value().is_k_edge_connected);
  }
}

TEST(KConnectivityTest, BridgedCliquesCertifyConnectivityOne) {
  // Two K4s joined by a single bridge: locally 3-edge-connected, but
  // the bridge caps the graph at 1 — the certificate must retain it.
  const uint64_t n = 8;
  EdgeList edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) edges.push_back(Edge(u, v));
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) edges.push_back(Edge(u, v));
  }
  edges.push_back(Edge(3, 4));
  const Result<KConnectivityResult> r =
      KEdgeConnectivity(SnapshotOf(n, 79, 2, edges), 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().certified_connectivity, 1);
  EXPECT_FALSE(r.value().is_k_edge_connected);
  // The certificate is small regardless of local density.
  EXPECT_LE(r.value().certificate.size(), 2 * (n - 1));
}

TEST(KConnectivityTest, DisconnectedCertifiesZero) {
  const uint64_t n = 8;
  const EdgeList edges = {Edge(0, 1), Edge(2, 3)};
  const Result<KConnectivityResult> r =
      KEdgeConnectivity(SnapshotOf(n, 83, 2, edges), 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().certified_connectivity, 0);
  EXPECT_FALSE(r.value().is_k_edge_connected);
}

TEST(KConnectivityTest, RejectsInvalidK) {
  const uint64_t n = 8;
  const EdgeList edges = {Edge(0, 1)};
  const GraphSnapshot snap = SnapshotOf(n, 89, 2, edges);
  EXPECT_EQ(KEdgeConnectivity(snap, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Beyond the snapshot's round budget: rejected, not clamped.
  const int over = MaxForestsForRounds(n, snap.rounds()) + 1;
  EXPECT_EQ(KEdgeConnectivity(snap, over).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KConnectivityTest, EdgeConnectivityHelperCapsAndHandlesIsolation) {
  // K4: lambda = 3.
  EdgeList k4;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) k4.push_back(Edge(u, v));
  }
  EXPECT_EQ(EdgeConnectivityUpTo(4, k4, 5), 3);
  EXPECT_EQ(EdgeConnectivityUpTo(4, k4, 2), 2);  // The cap caps.
  // An isolated vertex separates for free.
  EXPECT_EQ(EdgeConnectivityUpTo(5, k4, 3), 0);
  // Single vertex: trivially infinite, capped.
  EXPECT_EQ(EdgeConnectivityUpTo(1, {}, 3), 3);
}

}  // namespace
}  // namespace gz
