// Tests for GraphZeppelin checkpoint save/restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "baseline/matrix_checker.h"
#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/stream_transform.h"

namespace gz {
namespace {

GraphZeppelinConfig MakeConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 2;
  c.disk_dir = ::testing::TempDir();
  return c;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, SaveRestoreRoundTrip) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  const uint64_t n = 32;

  GraphZeppelin original(MakeConfig(n, 5));
  ASSERT_TRUE(original.Init().ok());
  for (NodeId i = 0; i + 1 < 10; ++i) {
    original.Update({Edge(i, i + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());
  const ConnectivityResult expect = original.ListSpanningForest();

  GraphZeppelin restored(MakeConfig(n, 5));
  ASSERT_TRUE(restored.Init().ok());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.num_updates_ingested(), 9u);
  const ConnectivityResult got = restored.ListSpanningForest();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  std::remove(path.c_str());
}

TEST(CheckpointTest, IngestionContinuesAfterRestore) {
  const std::string path = TempPath("ckpt_continue.bin");
  const uint64_t n = 48;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 11;
  StreamTransformParams tp;
  tp.num_nodes = n;
  tp.seed = 11;
  const StreamTransformResult stream =
      BuildStream(ErdosRenyiGenerator(ep).Generate(), tp);
  const size_t half = stream.updates.size() / 2;

  // First half on instance A, checkpoint, second half on instance B.
  GraphZeppelin a(MakeConfig(n, 21));
  ASSERT_TRUE(a.Init().ok());
  AdjacencyMatrixChecker checker(n);
  for (size_t i = 0; i < half; ++i) {
    a.Update(stream.updates[i]);
    checker.Update(stream.updates[i]);
  }
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  GraphZeppelin b(MakeConfig(n, 21));
  ASSERT_TRUE(b.Init().ok());
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());
  for (size_t i = half; i < stream.updates.size(); ++i) {
    b.Update(stream.updates[i]);
    checker.Update(stream.updates[i]);
  }
  const ConnectivityResult got = b.ListSpanningForest();
  const ConnectivityResult expect = checker.ConnectedComponents();
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, expect.num_components);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(got.component_of[i] == got.component_of[j],
                expect.component_of[i] == expect.component_of[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, WorksWithDiskStore) {
  const std::string path = TempPath("ckpt_disk.bin");
  GraphZeppelinConfig config = MakeConfig(16, 31);
  config.storage = GraphZeppelinConfig::Storage::kDisk;
  GraphZeppelin a(config);
  ASSERT_TRUE(a.Init().ok());
  a.Update({Edge(3, 7), UpdateType::kInsert});
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  GraphZeppelinConfig config_b = MakeConfig(16, 31);
  config_b.storage = GraphZeppelinConfig::Storage::kDisk;
  config_b.instance_tag = "restore";
  GraphZeppelin b(config_b);
  ASSERT_TRUE(b.Init().ok());
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());
  const ConnectivityResult r = b.ListSpanningForest();
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.component_of[3], r.component_of[7]);
  std::remove(path.c_str());
}

TEST(CheckpointTest, SameSeedDiskInstancesSharingDirDoNotCollide) {
  // Two disk-backed instances with identical seed, no instance_tag and
  // the same disk_dir (the two-processes-sharing-/tmp hazard, modeled
  // in-process where it is strictly harder: PIDs match too). Backing
  // file names must still differ, so neither corrupts the other.
  GraphZeppelinConfig config = MakeConfig(32, 77);
  config.storage = GraphZeppelinConfig::Storage::kDisk;
  config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;

  GraphZeppelin a(config);
  GraphZeppelin b(config);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());

  // Disjoint edge sets; interleaved ingestion maximizes the chance that
  // shared backing files would produce cross-talk.
  AdjacencyMatrixChecker check_a(32), check_b(32);
  for (NodeId i = 0; i + 1 < 10; ++i) {
    const GraphUpdate ua{Edge(i, i + 1), UpdateType::kInsert};
    const GraphUpdate ub{Edge(i + 20, i + 21), UpdateType::kInsert};
    a.Update(ua);
    check_a.Update(ua);
    b.Update(ub);
    check_b.Update(ub);
  }
  const ConnectivityResult ra = a.ListSpanningForest();
  const ConnectivityResult rb = b.ListSpanningForest();
  ASSERT_FALSE(ra.failed);
  ASSERT_FALSE(rb.failed);
  EXPECT_EQ(ra.num_components,
            check_a.ConnectedComponents().num_components);
  EXPECT_EQ(rb.num_components,
            check_b.ConnectedComponents().num_components);
  // a's chain and b's chain are disjoint: a must not see b's edges.
  EXPECT_TRUE(ra.component_of[0] == ra.component_of[9]);
  EXPECT_FALSE(ra.component_of[0] == ra.component_of[20]);
  EXPECT_TRUE(rb.component_of[20] == rb.component_of[29]);
  EXPECT_FALSE(rb.component_of[20] == rb.component_of[0]);
}

TEST(CheckpointTest, SeedMismatchRejected) {
  const std::string path = TempPath("ckpt_mismatch.bin");
  GraphZeppelin a(MakeConfig(16, 1));
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  GraphZeppelin b(MakeConfig(16, 2));  // Different seed.
  ASSERT_TRUE(b.Init().ok());
  EXPECT_EQ(b.LoadCheckpoint(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, NodeCountMismatchRejected) {
  const std::string path = TempPath("ckpt_nodes.bin");
  GraphZeppelin a(MakeConfig(16, 1));
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  GraphZeppelin b(MakeConfig(32, 1));
  ASSERT_TRUE(b.Init().ok());
  EXPECT_EQ(b.LoadCheckpoint(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  GraphZeppelin gz(MakeConfig(16, 1));
  ASSERT_TRUE(gz.Init().ok());
  EXPECT_EQ(gz.LoadCheckpoint(TempPath("no_such.ckpt")).code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, TruncatedFileIsIoError) {
  const std::string path = TempPath("ckpt_trunc.bin");
  GraphZeppelin a(MakeConfig(16, 1));
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());
  ASSERT_EQ(::truncate(path.c_str(), 100), 0);

  GraphZeppelin b(MakeConfig(16, 1));
  ASSERT_TRUE(b.Init().ok());
  EXPECT_EQ(b.LoadCheckpoint(path).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("ckpt_garbage.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not a checkpoint at all, sorry";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  GraphZeppelin gz(MakeConfig(16, 1));
  ASSERT_TRUE(gz.Init().ok());
  EXPECT_EQ(gz.LoadCheckpoint(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gz
