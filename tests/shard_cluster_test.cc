// Multi-process sharded ingestion: real gz_shard worker processes fed
// over sockets, queried via serialized-snapshot aggregation, with fault
// injection (SIGKILL mid-stream, restart from checkpoint, replay) that
// must be invisible in the final result.
//
// Every drill runs over BOTH transports: local (fork/exec children
// over socketpairs) and loopback TCP (real `gz_shard --listen`
// processes dialed by endpoint, with an auth secret) — the transport
// must be invisible in every result too. A TCP "SIGKILL" is a
// connection abort: the listener discards its instance and re-accepts,
// the same state loss recovered the same way.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_zeppelin.h"
#include "distributed/shard_cluster.h"
#include "distributed/shard_transport.h"
#include "stream/erdos_renyi_generator.h"
#include "util/status.h"

namespace gz {
namespace {

GraphZeppelinConfig BaseConfig(uint64_t n, uint64_t seed) {
  GraphZeppelinConfig c;
  c.num_nodes = n;
  c.seed = seed;
  c.num_workers = 1;
  c.disk_dir = ::testing::TempDir();
  return c;
}

enum class Transport { kLocal, kTcp };

constexpr char kTestSecret[] = "cluster-test-secret";

class ShardClusterTest : public ::testing::TestWithParam<Transport> {
 protected:
  // Options for an `num_shards`-shard cluster on the transport under
  // test: local mode leaves `options` untouched; TCP mode stands up
  // one listener-mode gz_shard per shard and points an endpoint at it.
  ShardClusterOptions MakeOptions(int num_shards,
                                  ShardClusterOptions options = {}) {
    if (GetParam() == Transport::kTcp) {
      options.auth_secret = kTestSecret;
      GZ_CHECK_OK(StartListenerShards(
          DefaultShardBinary(), num_shards, ::testing::TempDir(),
          ::testing::TempDir() + "/gz_listener_", kTestSecret, &listeners_,
          &options.shard_endpoints));
    }
    return options;
  }

  // One more listener (for AddShard-onto-a-new-machine drills). Harness
  // failure aborts at the cause rather than surfacing as a confusing
  // endpoint-parse error deep inside the drill.
  std::string SpawnListener() {
    std::vector<std::string> endpoints;
    GZ_CHECK_OK(StartListenerShards(
        DefaultShardBinary(), 1, ::testing::TempDir(),
        ::testing::TempDir() + "/gz_listener_", kTestSecret, &listeners_,
        &endpoints));
    return endpoints.back();
  }

  std::vector<std::unique_ptr<ListenerShard>> listeners_;
};

// A long toggle stream over a fixed edge set: `reps` passes of inserts.
// Sketch updates are XOR toggles, so an odd rep count leaves exactly
// the base graph; this scales update volume without changing the
// answer.
std::vector<GraphUpdate> ToggleStream(const EdgeList& edges, int reps) {
  std::vector<GraphUpdate> updates;
  updates.reserve(edges.size() * reps);
  for (int r = 0; r < reps; ++r) {
    for (const Edge& e : edges) {
      updates.push_back({e, UpdateType::kInsert});
    }
  }
  return updates;
}

// Ground truth: one in-process GraphZeppelin ingesting the same stream.
GraphSnapshot SingleProcessSnapshot(const GraphZeppelinConfig& base,
                                    const std::vector<GraphUpdate>& updates) {
  GraphZeppelin single(base);
  GZ_CHECK_OK(single.Init());
  single.Update(updates.data(), updates.size());
  return single.Snapshot();
}

TEST_P(ShardClusterTest, MillionUpdatesAcrossThreeProcessesMatchBitwise) {
  // Acceptance bar: >= 1M updates across >= 3 shard processes, queried
  // via serialized-snapshot aggregation, bitwise-identical to one
  // in-process instance ingesting the identical stream.
  const uint64_t n = 512;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.02;
  ep.seed = 11;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  ASSERT_GT(edges.size(), 1000u);
  const int reps =
      static_cast<int>(1'000'000 / edges.size()) | 1;  // Odd: graph stays.
  const std::vector<GraphUpdate> updates = ToggleStream(edges, reps);
  ASSERT_GE(updates.size(), 1'000'000u);

  const GraphZeppelinConfig base = BaseConfig(n, 77);
  ShardCluster cluster(base, 3, MakeOptions(3));
  ASSERT_TRUE(cluster.Start().ok());
  // Feed in bursts, as a stream driver would.
  const size_t burst = 100'000;
  for (size_t off = 0; off < updates.size(); off += burst) {
    const size_t count = std::min(burst, updates.size() - off);
    ASSERT_TRUE(cluster.Update(updates.data() + off, count).ok());
  }
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());

  const GraphSnapshot expect = SingleProcessSnapshot(base, updates);
  EXPECT_TRUE(folded.value() == expect);

  const ConnectivityResult got = Connectivity(std::move(folded).value());
  const ConnectivityResult want = Connectivity(expect);
  ASSERT_FALSE(got.failed);
  EXPECT_EQ(got.num_components, want.num_components);
  EXPECT_EQ(got.component_of, want.component_of);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, KillRestartFromCheckpointReplaysToBitwiseIdentical) {
  // The fault-injection drill: SIGKILL a shard mid-stream, restart it
  // from its last checkpoint, replay the coordinator's unacked batches,
  // and the final connectivity result must be bitwise-identical to a
  // run that never crashed.
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 21;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 5);
  const size_t third = updates.size() / 3;

  const GraphZeppelinConfig base = BaseConfig(n, 91);
  ShardCluster cluster(base, 3, MakeOptions(3));
  ASSERT_TRUE(cluster.Start().ok());

  // Phase 1: first third, then checkpoint every shard.
  ASSERT_TRUE(cluster.Update(updates.data(), third).ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());
  EXPECT_EQ(cluster.unacked_updates(1), 0u);

  // Phase 2: second third, then murder shard 1 mid-stream.
  ASSERT_TRUE(cluster.Update(updates.data() + third, third).ok());
  cluster.KillShard(1);
  std::vector<bool> alive = cluster.HealthCheck();
  EXPECT_TRUE(alive[0]);
  EXPECT_FALSE(alive[1]);
  EXPECT_TRUE(alive[2]);

  // Phase 3: ingestion continues while shard 1 is down — its slice
  // buffers in the coordinator's unacked log. Barriers refuse until the
  // shard is restored.
  ASSERT_TRUE(
      cluster.Update(updates.data() + 2 * third, updates.size() - 2 * third)
          .ok());
  EXPECT_GT(cluster.unacked_updates(1), 0u);
  EXPECT_EQ(cluster.Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cluster.Snapshot().ok());

  // Restart: restore the checkpoint, replay everything since.
  ASSERT_TRUE(cluster.RestartShard(1).ok());
  alive = cluster.HealthCheck();
  EXPECT_TRUE(alive[1]);

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());

  const GraphSnapshot expect = SingleProcessSnapshot(base, updates);
  EXPECT_TRUE(folded.value() == expect);
  const ConnectivityResult got = Connectivity(std::move(folded).value());
  const ConnectivityResult want = Connectivity(expect);
  ASSERT_FALSE(got.failed);
  ASSERT_FALSE(want.failed);
  EXPECT_EQ(got.num_components, want.num_components);
  EXPECT_EQ(got.component_of, want.component_of);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, KillBeforeAnyCheckpointReplaysFromScratch) {
  // No checkpoint yet: the unacked log covers the whole stream, so a
  // restart rebuilds the shard from zero.
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.08;
  ep.seed = 31;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 1);

  const GraphZeppelinConfig base = BaseConfig(n, 17);
  ShardCluster cluster(base, 3, MakeOptions(3));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size() / 2).ok());
  cluster.KillShard(2);
  ASSERT_TRUE(cluster
                  .Update(updates.data() + updates.size() / 2,
                          updates.size() - updates.size() / 2)
                  .ok());
  ASSERT_TRUE(cluster.RestartShard(2).ok());

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const GraphSnapshot expect = SingleProcessSnapshot(base, updates);
  EXPECT_TRUE(folded.value() == expect);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, RepeatedKillsOfDifferentShards) {
  // Every shard dies at least once; checkpoints interleave with kills.
  const uint64_t n = 96;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.06;
  ep.seed = 41;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);
  const size_t chunk = updates.size() / 4;

  const GraphZeppelinConfig base = BaseConfig(n, 53);
  ShardCluster cluster(base, 3, MakeOptions(3));
  ASSERT_TRUE(cluster.Start().ok());

  ASSERT_TRUE(cluster.Update(updates.data(), chunk).ok());
  cluster.KillShard(0);
  {
    const Status restarted = cluster.RestartShard(0);
    ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  }

  ASSERT_TRUE(cluster.Update(updates.data() + chunk, chunk).ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());
  cluster.KillShard(1);
  ASSERT_TRUE(cluster.Update(updates.data() + 2 * chunk, chunk).ok());
  ASSERT_TRUE(cluster.RestartShard(1).ok());

  cluster.KillShard(2);
  ASSERT_TRUE(cluster
                  .Update(updates.data() + 3 * chunk,
                          updates.size() - 3 * chunk)
                  .ok());
  ASSERT_TRUE(cluster.RestartShard(2).ok());

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const GraphSnapshot expect = SingleProcessSnapshot(base, updates);
  EXPECT_TRUE(folded.value() == expect);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, AutoCheckpointBoundsTheUnackedLogs) {
  // With a checkpoint interval set, ingestion alone must truncate the
  // durability logs — coordinator memory is bounded by the interval,
  // not the stream length.
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.1;
  ep.seed = 61;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 9);

  const GraphZeppelinConfig base = BaseConfig(n, 23);
  ShardClusterOptions options;
  options.checkpoint_interval_updates = 256;
  ShardCluster cluster(base, 3, MakeOptions(3, options));
  ASSERT_TRUE(cluster.Start().ok());
  for (size_t off = 0; off < updates.size(); off += 100) {
    const size_t count = std::min<size_t>(100, updates.size() - off);
    ASSERT_TRUE(cluster.Update(updates.data() + off, count).ok());
  }
  // Every log was truncated along the way, never explicitly.
  for (int s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_LT(cluster.unacked_updates(s), updates.size() / 2);
  }
  // Auto-checkpoints are real checkpoints: kill + restart recovers.
  cluster.KillShard(0);
  {
    const Status restarted = cluster.RestartShard(0);
    ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  }
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, UnwritableCheckpointDirFailsWithoutFencingShards) {
  // An application-level checkpoint failure (every shard replies
  // kError in sync) must surface as an error WITHOUT marking healthy
  // shards down or leaving replies queued: the very next barrier and
  // snapshot still work and are correct.
  const uint64_t n = 64;
  GraphZeppelinConfig base = BaseConfig(n, 67);
  ShardClusterOptions options;
  options.checkpoint_dir = "/nonexistent-checkpoint-dir";
  ShardCluster cluster(base, 3, MakeOptions(3, options));
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<GraphUpdate> updates;
  for (NodeId u = 0; u + 1 < 40; ++u) {
    updates.push_back({Edge(u, u + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());

  EXPECT_EQ(cluster.Checkpoint().code(), StatusCode::kIoError);
  for (int s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_FALSE(cluster.shard_down(s)) << "shard " << s;
    EXPECT_GT(cluster.unacked_updates(s), 0u);  // Nothing truncated.
  }
  ASSERT_TRUE(cluster.Flush().ok());  // Reply stream still 1:1.
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, StatsReportPerShardStreamPositions) {
  const GraphZeppelinConfig base = BaseConfig(64, 3);
  ShardCluster cluster(base, 3, MakeOptions(3));
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<GraphUpdate> updates;
  for (NodeId u = 0; u + 1 < 40; ++u) {
    updates.push_back({Edge(u, u + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());
  ASSERT_TRUE(cluster.Flush().ok());
  uint64_t total = 0;
  for (int s = 0; s < cluster.num_shards(); ++s) {
    Result<ShardStats> stats = cluster.Stats(s);
    ASSERT_TRUE(stats.ok());
    total += stats.value().num_updates;
    EXPECT_GT(stats.value().ram_bytes, 0u);
  }
  EXPECT_EQ(total, updates.size());
  ASSERT_TRUE(cluster.Shutdown().ok());
}

// ---- Elastic resharding ---------------------------------------------------

TEST_P(ShardClusterTest, RemoveShardUnderLoadMatchesBitwise) {
  // Updates must keep flowing between every migration step — zero
  // stream pause — and the final fold must be bitwise-identical to a
  // single instance that never sharded at all.
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 71;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 5);

  const GraphZeppelinConfig base = BaseConfig(n, 111);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;  // Several pump steps.
  ShardCluster cluster(base, 3, MakeOptions(3, options));
  ASSERT_TRUE(cluster.Start().ok());

  const size_t burst = updates.size() / 24 + 1;
  size_t fed = 0;
  auto feed_burst = [&] {
    if (fed >= updates.size()) return false;
    const size_t count = std::min(burst, updates.size() - fed);
    EXPECT_TRUE(cluster.Update(updates.data() + fed, count).ok());
    fed += count;
    return true;
  };
  for (int i = 0; i < 4; ++i) feed_burst();

  ASSERT_TRUE(cluster.BeginRemoveShard(1).ok());
  size_t bursts_during_migration = 0;
  while (cluster.migration_active()) {
    if (feed_burst()) ++bursts_during_migration;
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  EXPECT_GT(bursts_during_migration, 2u);  // The stream never paused.
  EXPECT_TRUE(cluster.shard_removed(1));
  EXPECT_EQ(cluster.num_active_shards(), 2);
  while (feed_burst()) {
  }

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, AddAndSplitShardsUnderLoadMatchBitwise) {
  const uint64_t n = 96;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.06;
  ep.seed = 81;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);

  const GraphZeppelinConfig base = BaseConfig(n, 131);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 1, MakeOptions(1, options));
  ASSERT_TRUE(cluster.Start().ok());

  const size_t third = updates.size() / 3;
  ASSERT_TRUE(cluster.Update(updates.data(), third).ok());

  // 1 -> 2 by AddShard: instant (an empty shard is the XOR identity).
  Result<int> added = cluster.AddShard();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 1);
  ASSERT_TRUE(cluster.Update(updates.data() + third, third).ok());

  // 2 -> 3 by splitting shard 0, feeding between pump steps.
  Result<int> split = cluster.BeginSplitShard(0);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split.value(), 2);
  size_t fed = 2 * third;
  while (cluster.migration_active()) {
    if (fed < updates.size()) {
      const size_t count = std::min(third / 4 + 1, updates.size() - fed);
      ASSERT_TRUE(cluster.Update(updates.data() + fed, count).ok());
      fed += count;
    }
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  while (fed < updates.size()) {
    const size_t count = std::min(third / 4 + 1, updates.size() - fed);
    ASSERT_TRUE(cluster.Update(updates.data() + fed, count).ok());
    fed += count;
  }
  EXPECT_EQ(cluster.num_active_shards(), 3);
  // The split moved real state: the new shard is not empty.
  Result<ShardStats> stats = cluster.Stats(2);
  ASSERT_TRUE(stats.ok());

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, KillSourceMidMigrationRestartReissueConverges) {
  // The drill: SIGKILL the migration source after the epoch bump and
  // mid-chunk-stream, before any checkpoint ack covers the migration
  // deltas. Restart + unacked replay + pending-delta replay + the
  // re-issued remaining chunks must converge to the same bytes.
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 91;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 5);
  const size_t quarter = updates.size() / 4;

  const GraphZeppelinConfig base = BaseConfig(n, 151);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 3, MakeOptions(3, options));
  ASSERT_TRUE(cluster.Start().ok());

  ASSERT_TRUE(cluster.Update(updates.data(), quarter).ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());
  ASSERT_TRUE(cluster.Update(updates.data() + quarter, quarter).ok());

  ASSERT_TRUE(cluster.BeginRemoveShard(1).ok());  // Epoch bump.
  ASSERT_TRUE(cluster.PumpMigration().ok());      // A couple of chunks...
  ASSERT_TRUE(cluster.PumpMigration().ok());
  cluster.KillShard(1);  // ...then murder the source.
  EXPECT_GT(cluster.pending_delta_count(1), 0u);  // Cancels in flight.

  // The stream keeps flowing while the source is down.
  ASSERT_TRUE(cluster.Update(updates.data() + 2 * quarter, quarter).ok());
  // Pumping against a dead source refuses instead of corrupting.
  EXPECT_EQ(cluster.PumpMigration().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(cluster.RestartShard(1).ok());
  while (cluster.migration_active()) {
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  ASSERT_TRUE(cluster
                  .Update(updates.data() + 3 * quarter,
                          updates.size() - 3 * quarter)
                  .ok());

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, KillTargetMidMigrationRestartConverges) {
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 101;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);
  const size_t third = updates.size() / 3;

  const GraphZeppelinConfig base = BaseConfig(n, 171);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 3, MakeOptions(3, options));
  ASSERT_TRUE(cluster.Start().ok());

  ASSERT_TRUE(cluster.Update(updates.data(), third).ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());

  ASSERT_TRUE(cluster.BeginRemoveShard(2).ok());
  ASSERT_TRUE(cluster.PumpMigration().ok());
  const int target = cluster.migration_target();
  cluster.KillShard(target);  // Installed chunks not yet checkpointed.
  EXPECT_GT(cluster.pending_delta_count(target), 0u);

  ASSERT_TRUE(cluster.Update(updates.data() + third, third).ok());
  ASSERT_TRUE(cluster.RestartShard(target).ok());
  while (cluster.migration_active()) {
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  ASSERT_TRUE(cluster
                  .Update(updates.data() + 2 * third,
                          updates.size() - 2 * third)
                  .ok());

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, TargetDiesUndetectedMidSplitStillConverges) {
  // The nastiest chunk-failure interleaving: the migration target dies
  // WITHOUT the coordinator noticing (no KillShard fencing), so the
  // next pump extracts fine and only the install send fails. The
  // source's XOR-cancel for that chunk must still be delivered (or its
  // shard fenced) — if it were silently stranded, later deltas would
  // close the sequence gap and the chunk would cancel out of the
  // global fold for good.
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 107;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);
  const size_t half = updates.size() / 2;

  const GraphZeppelinConfig base = BaseConfig(n, 211);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 2, MakeOptions(2, options));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), half).ok());

  Result<int> split = cluster.BeginSplitShard(0);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_TRUE(cluster.PumpMigration().ok());
  cluster.KillShard(split.value(), /*observed=*/false);
  // This pump extracts from the healthy source, then fails to install
  // on the dead target; the coordinator must fence the target itself.
  EXPECT_FALSE(cluster.PumpMigration().ok());
  EXPECT_TRUE(cluster.shard_down(split.value()));

  ASSERT_TRUE(cluster.RestartShard(split.value()).ok());
  while (cluster.migration_active()) {
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  ASSERT_TRUE(cluster.Update(updates.data() + half, updates.size() - half)
                  .ok());
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, CheckpointMidMigrationCoversDeltasExactly) {
  // A checkpoint between pump steps truncates the pending-delta logs;
  // a kill + restart AFTER it must replay only what the checkpoint
  // does not cover — the delta-sequence reconciliation in action.
  const uint64_t n = 96;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.07;
  ep.seed = 113;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);
  const size_t half = updates.size() / 2;

  const GraphZeppelinConfig base = BaseConfig(n, 191);
  ShardClusterOptions options;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 2, MakeOptions(2, options));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), half).ok());

  ASSERT_TRUE(cluster.BeginRemoveShard(0).ok());
  ASSERT_TRUE(cluster.PumpMigration().ok());
  ASSERT_TRUE(cluster.PumpMigration().ok());
  ASSERT_TRUE(cluster.Checkpoint().ok());  // Covers the chunks so far.
  EXPECT_EQ(cluster.pending_delta_count(0), 0u);
  EXPECT_EQ(cluster.pending_delta_count(1), 0u);

  ASSERT_TRUE(cluster.PumpMigration().ok());  // One uncovered chunk...
  cluster.KillShard(0);
  ASSERT_TRUE(cluster.Update(updates.data() + half, updates.size() - half)
                  .ok());
  ASSERT_TRUE(cluster.RestartShard(0).ok());  // ...replayed here.
  while (cluster.migration_active()) {
    ASSERT_TRUE(cluster.PumpMigration().ok());
  }
  EXPECT_TRUE(cluster.shard_removed(0));

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, DiskBackedShardProcessesWork) {
  // Disk-backed gutter tree + on-disk sketch store inside each worker
  // process; per-process pids keep backing files separate.
  GraphZeppelinConfig base = BaseConfig(64, 7);
  base.storage = GraphZeppelinConfig::Storage::kDisk;
  base.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
  ShardCluster cluster(base, 2, MakeOptions(2));
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<GraphUpdate> updates;
  for (NodeId u = 0; u + 1 < 32; ++u) {
    updates.push_back({Edge(u, u + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const ConnectivityResult r = Connectivity(std::move(folded).value());
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.num_components, 64u - 32u + 1u);
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, AddShardOnTcpEndpointGrowsAcrossMachines) {
  // Elastic growth onto "another machine": AddShard with a tcp://
  // endpoint attaches a listener-mode shard to a running cluster (a
  // mixed local+tcp cluster when the base transport is local). The
  // result must stay bitwise-identical to an unsharded instance.
  const uint64_t n = 96;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.06;
  ep.seed = 121;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);
  const size_t half = updates.size() / 2;

  const GraphZeppelinConfig base = BaseConfig(n, 231);
  ShardClusterOptions options = MakeOptions(2);
  // TCP endpoints need the handshake secret even in local base mode.
  options.auth_secret = kTestSecret;
  ShardCluster cluster(base, 2, options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), half).ok());

  Result<int> added = cluster.AddShard(SpawnListener());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(cluster.Update(updates.data() + half, updates.size() - half)
                  .ok());
  // The tcp shard really participates: it owns slots and took updates.
  Result<ShardStats> stats = cluster.Stats(added.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().num_updates, 0u);

  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));

  // And it can be drained back out (remove pumps its state to
  // survivors over the same wire).
  ASSERT_TRUE(cluster.RemoveShard(added.value()).ok());
  Result<GraphSnapshot> after = cluster.Snapshot();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

// ---- Replication ----------------------------------------------------------

TEST_P(ShardClusterTest, ReplicaKillDrillRepairsWithZeroStreamPause) {
  // The replication acceptance drill: at R=2, SIGKILL one replica of a
  // shard mid-stream. Ingestion and queries continue with ZERO pause
  // (the surviving replica carries the shard), the killed replica
  // rejoins via reconnect + anti-entropy — no checkpoint restore, no
  // replay — and afterwards it can serve the shard ALONE, bitwise
  // identical to a single unsharded instance.
  const uint64_t n = 128;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.05;
  ep.seed = 221;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 5);
  const size_t third = updates.size() / 3;

  const GraphZeppelinConfig base = BaseConfig(n, 241);
  ShardClusterOptions options;
  options.replication_factor = 2;
  options.migrate_nodes_per_chunk = 16;
  // 3 shards x 2 replicas: the TCP variant needs one listener per
  // REPLICA (endpoints are shard-major, replicas consecutive).
  ShardCluster cluster(base, 3, MakeOptions(3 * 2, options));
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.replication(), 2);

  ASSERT_TRUE(cluster.Update(updates.data(), third).ok());
  cluster.KillReplica(1, 1);  // Murder one replica mid-stream.
  EXPECT_TRUE(cluster.replica_down(1, 1));
  EXPECT_FALSE(cluster.replica_down(1, 0));

  // Zero stream pause: ingestion keeps flowing...
  ASSERT_TRUE(cluster.Update(updates.data() + third, third).ok());
  // ...and so do queries — the fold fails over to the live replica.
  {
    Result<GraphSnapshot> folded = cluster.Snapshot();
    ASSERT_TRUE(folded.ok()) << folded.status().ToString();
    const std::vector<GraphUpdate> prefix(updates.begin(),
                                          updates.begin() + 2 * third);
    EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, prefix));
  }

  // Rejoin: reconnect + reconcile. The replica comes back empty and
  // anti-entropy transfers exactly the reference's content.
  uint64_t repaired = 0;
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_GT(repaired, 0u);
  EXPECT_FALSE(cluster.replica_down(1, 1));
  for (const bool alive : cluster.HealthCheck()) EXPECT_TRUE(alive);

  // Finish the stream, then kill the OTHER replica: the repaired one
  // now carries the shard alone, and the fold must still be bitwise
  // identical to the unsharded ground truth.
  ASSERT_TRUE(cluster
                  .Update(updates.data() + 2 * third,
                          updates.size() - 2 * third)
                  .ok());
  cluster.KillReplica(1, 0);
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));

  // And a second reconcile rejoins replica 0 from the repaired one.
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_FALSE(cluster.replica_down(1, 0));
  ASSERT_TRUE(cluster.Flush().ok());  // All-replica barrier works again.
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, PeriodicReconcileRejoinsAKilledReplica) {
  // The cadence knob: with reconcile_interval_updates set, ingestion
  // alone rejoins a dead replica — no manual Reconcile() call.
  const uint64_t n = 64;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.08;
  ep.seed = 231;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 5);

  const GraphZeppelinConfig base = BaseConfig(n, 251);
  ShardClusterOptions options;
  options.replication_factor = 2;
  options.reconcile_interval_updates = 200;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 2, MakeOptions(2 * 2, options));
  ASSERT_TRUE(cluster.Start().ok());

  const size_t quarter = updates.size() / 4;
  ASSERT_TRUE(cluster.Update(updates.data(), quarter).ok());
  cluster.KillReplica(0, 1);
  // Feed well past the interval in driver-sized bursts; a periodic
  // pass fires inside Update() and repairs the replica along the way.
  size_t fed = quarter;
  while (fed < updates.size()) {
    const size_t count = std::min<size_t>(100, updates.size() - fed);
    ASSERT_TRUE(cluster.Update(updates.data() + fed, count).ok());
    fed += count;
  }
  EXPECT_FALSE(cluster.replica_down(0, 1))
      << "periodic reconcile never rejoined the replica";

  // The rejoined replica serves the shard alone, bitwise.
  cluster.KillReplica(0, 0);
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, ReconcileDetectsAndRepairsInjectedDivergence) {
  // Silent corruption drill: fold a rogue delta into one replica
  // BEHIND the coordinator's books. Folds from the healthy replica are
  // unaffected; Reconcile() must detect the divergence (the corrupted
  // copy cannot be a reference — its position disagrees with the
  // books), repair it chunk-by-chunk, and converge: a second pass
  // finds nothing, and the repaired replica serves the shard alone.
  const uint64_t n = 96;
  ErdosRenyiParams ep;
  ep.num_nodes = n;
  ep.p = 0.06;
  ep.seed = 241;
  const EdgeList edges = ErdosRenyiGenerator(ep).Generate();
  const std::vector<GraphUpdate> updates = ToggleStream(edges, 3);

  const GraphZeppelinConfig base = BaseConfig(n, 261);
  ShardClusterOptions options;
  options.replication_factor = 2;
  options.migrate_nodes_per_chunk = 16;
  ShardCluster cluster(base, 2, MakeOptions(2 * 2, options));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());

  // A rogue same-geometry delta nobody logged.
  GraphZeppelin rogue(base);
  ASSERT_TRUE(rogue.Init().ok());
  for (NodeId u = 0; u + 1 < 10; ++u) {
    rogue.Update({Edge(u, u + 1), UpdateType::kInsert});
  }
  const GraphSnapshot rogue_snap = rogue.Snapshot();
  const std::vector<uint8_t> delta = rogue_snap.ExtractNodeRange(0, n);
  ASSERT_TRUE(cluster.CorruptReplicaForTest(0, 1, delta).ok());

  // The healthy replica still answers for the shard.
  const GraphSnapshot expect = SingleProcessSnapshot(base, updates);
  {
    Result<GraphSnapshot> folded = cluster.Snapshot();
    ASSERT_TRUE(folded.ok()) << folded.status().ToString();
    EXPECT_TRUE(folded.value() == expect);
  }

  uint64_t repaired = 0;
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_GT(repaired, 0u) << "the injected divergence went undetected";
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_EQ(repaired, 0u) << "a repaired cluster must reconcile clean";

  cluster.KillReplica(0, 0);
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  EXPECT_TRUE(folded.value() == expect)
      << "the repaired replica's content still diverges";
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST_P(ShardClusterTest, ReconcileIsANoOpOnAHealthyUnreplicatedCluster) {
  // R=1 parity: Reconcile() exists but has nothing to compare a lone
  // replica against — a healthy cluster reconciles clean with zero
  // repairs and an unchanged fold.
  const GraphZeppelinConfig base = BaseConfig(64, 271);
  ShardCluster cluster(base, 2, MakeOptions(2));
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<GraphUpdate> updates;
  for (NodeId u = 0; u + 1 < 40; ++u) {
    updates.push_back({Edge(u, u + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());
  uint64_t repaired = 7;
  ASSERT_TRUE(cluster.Reconcile(&repaired).ok());
  EXPECT_EQ(repaired, 0u);
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_TRUE(folded.value() == SingleProcessSnapshot(base, updates));
  ASSERT_TRUE(cluster.Shutdown().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ShardClusterTest,
    ::testing::Values(Transport::kLocal, Transport::kTcp),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return info.param == Transport::kLocal ? "Local" : "Tcp";
    });

TEST(ShardClusterTcpTest, WrongAuthSecretFailsStartWithoutCrash) {
  // A coordinator holding the wrong secret must be told so at Start()
  // — a clean FailedPrecondition, no crash on either side, and the
  // listener survives to serve a correctly keyed coordinator next.
  ListenerShard listener;
  ASSERT_TRUE(listener
                  .Start(DefaultShardBinary(), ::testing::TempDir(),
                         ::testing::TempDir() + "/gz_wrong_secret.log",
                         "right-secret")
                  .ok());
  const GraphZeppelinConfig base = BaseConfig(64, 3);
  {
    ShardClusterOptions options;
    options.shard_endpoints = {listener.endpoint()};
    options.auth_secret = "wrong-secret";
    ShardCluster cluster(base, 1, options);
    const Status s = cluster.Start();
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(s.message().find("authentication"), std::string::npos);
  }
  ASSERT_TRUE(listener.Running());
  ShardClusterOptions options;
  options.shard_endpoints = {listener.endpoint()};
  options.auth_secret = "right-secret";
  ShardCluster cluster(base, 1, options);
  ASSERT_TRUE(cluster.Start().ok());
  std::vector<GraphUpdate> updates;
  for (NodeId u = 0; u + 1 < 16; ++u) {
    updates.push_back({Edge(u, u + 1), UpdateType::kInsert});
  }
  ASSERT_TRUE(cluster.Update(updates.data(), updates.size()).ok());
  Result<GraphSnapshot> folded = cluster.Snapshot();
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded.value().num_updates(), updates.size());
  ASSERT_TRUE(cluster.Shutdown().ok());
}

TEST(ShardClusterTcpTest, MalformedEndpointFailsStartCleanly) {
  const GraphZeppelinConfig base = BaseConfig(64, 5);
  ShardClusterOptions options;
  options.shard_endpoints = {"carrier-pigeon://coop:7"};
  ShardCluster cluster(base, 1, options);
  const Status s = cluster.Start();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ShardClusterConfigTest, OutOfRangeReplicationFactorFailsStartCleanly) {
  const GraphZeppelinConfig base = BaseConfig(64, 9);
  for (const int r : {0, -1, 9}) {
    ShardClusterOptions options;
    options.replication_factor = r;
    ShardCluster cluster(base, 2, options);
    const Status s = cluster.Start();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "factor " << r;
  }
}

TEST(ShardClusterConfigTest, TooManyEndpointsForTheReplicaLayoutFailStart) {
  // 2 shards x 2 replicas = 4 endpoint positions; a fifth entry has
  // nowhere to go and must be a config error, not a silent drop.
  const GraphZeppelinConfig base = BaseConfig(64, 13);
  ShardClusterOptions options;
  options.replication_factor = 2;
  options.shard_endpoints = {"local:", "local:", "local:", "local:",
                             "local:"};
  ShardCluster cluster(base, 2, options);
  const Status s = cluster.Start();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gz
