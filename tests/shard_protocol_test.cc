// Shard protocol conformance: every frame type must round-trip, and
// malformed / truncated / version-mismatched input must surface as
// Status errors — never a crash — on both the coordinator side
// (RecvFrame and the payload codecs) and the shard side (ShardServer
// over an in-process socketpair).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "distributed/shard_protocol.h"
#include "distributed/shard_server.h"

namespace gz {
namespace {

class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }
  void CloseA() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseB() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

// Hand-crafts a frame header; `magic`/`version` default to valid so a
// test can corrupt exactly one field.
void WriteRawHeader(int fd, uint16_t type, uint64_t payload_bytes,
                    uint32_t magic = ShardFrameHeader::kMagic,
                    uint16_t version = ShardFrameHeader::kVersion) {
  uint8_t buf[ShardFrameHeader::kBytes];
  std::memcpy(buf, &magic, 4);
  std::memcpy(buf + 4, &version, 2);
  std::memcpy(buf + 6, &type, 2);
  std::memcpy(buf + 8, &payload_bytes, 8);
  ASSERT_TRUE(WriteFull(fd, buf, sizeof(buf)).ok());
}

// ---- Frame round trips ----------------------------------------------------

TEST(ShardProtocolTest, EveryMessageTypeRoundTrips) {
  SocketPair sp;
  const uint8_t payload[5] = {1, 2, 3, 4, 5};
  ShardFrame frame;
  for (uint16_t t = static_cast<uint16_t>(ShardMessageType::kConfig);
       t <= static_cast<uint16_t>(ShardMessageType::kError); ++t) {
    const ShardMessageType type = static_cast<ShardMessageType>(t);
    ASSERT_TRUE(SendFrame(sp.a(), type, payload, sizeof(payload)).ok());
    ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
    EXPECT_EQ(frame.type, type);
    ASSERT_EQ(frame.payload.size(), sizeof(payload));
    EXPECT_EQ(std::memcmp(frame.payload.data(), payload, sizeof(payload)),
              0);
  }
}

TEST(ShardProtocolTest, EmptyPayloadRoundTrips) {
  SocketPair sp;
  ASSERT_TRUE(
      SendFrame(sp.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ShardProtocolTest, ScatterGatherSendMatchesPlainSend) {
  SocketPair sp;
  const uint8_t a[3] = {10, 11, 12};
  const uint8_t b[4] = {20, 21, 22, 23};
  ASSERT_TRUE(SendFrame2(sp.a(), ShardMessageType::kUpdateBatch, a,
                         sizeof(a), b, sizeof(b))
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  ASSERT_EQ(frame.payload.size(), 7u);
  EXPECT_EQ(frame.payload[0], 10);
  EXPECT_EQ(frame.payload[3], 20);
  EXPECT_EQ(frame.payload[6], 23);
}

TEST(ShardProtocolTest, HeaderThenStreamedPayloadRoundTrips) {
  // The shard's snapshot reply path: header first, payload streamed in
  // pieces afterwards.
  SocketPair sp;
  ASSERT_TRUE(
      SendFrameHeader(sp.a(), ShardMessageType::kSnapshotBytes, 6).ok());
  ASSERT_TRUE(WriteFull(sp.a(), "abc", 3).ok());
  ASSERT_TRUE(WriteFull(sp.a(), "def", 3).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kSnapshotBytes);
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()),
            "abcdef");
}

// ---- Malformed input on the receiving side --------------------------------

TEST(ShardProtocolTest, BadMagicIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 /*magic=*/0xDEADBEEF);
  ShardFrame frame;
  const Status s = RecvFrame(sp.b(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, VersionMismatchIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 ShardFrameHeader::kMagic, /*version=*/2);
  ShardFrame frame;
  const Status s = RecvFrame(sp.b(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(ShardProtocolTest, UnknownTypeIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), /*type=*/999, 0);
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, OversizedPayloadLengthIsInvalidArgument) {
  // A garbage length field must be rejected before any allocation.
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing),
                 ShardFrameHeader::kMaxPayloadBytes + 1);
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, TruncatedPayloadIsIoError) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing),
                 /*payload_bytes=*/100);
  ASSERT_TRUE(WriteFull(sp.a(), "short", 5).ok());
  sp.CloseA();  // EOF mid-payload.
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kIoError);
}

TEST(ShardProtocolTest, TruncatedHeaderIsIoError) {
  SocketPair sp;
  ASSERT_TRUE(WriteFull(sp.a(), "GZ", 2).ok());
  sp.CloseA();
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kIoError);
}

TEST(ShardProtocolTest, WriteToClosedPeerIsIoErrorNotSignal) {
  // A SIGKILLed shard must surface as IoError; SIGPIPE would kill the
  // coordinator.
  SocketPair sp;
  sp.CloseB();
  std::vector<uint8_t> big(1 << 20, 0xAB);
  const Status s =
      SendFrame(sp.a(), ShardMessageType::kUpdateBatch, big.data(),
                big.size());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---- Payload codecs -------------------------------------------------------

TEST(ShardProtocolTest, ConfigPayloadRoundTrips) {
  ShardConfig in;
  in.config.num_nodes = 1234;
  in.config.seed = 99;
  in.config.cols = 9;
  in.config.rounds = 17;
  in.config.num_workers = 3;
  in.config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
  in.config.storage = GraphZeppelinConfig::Storage::kDisk;
  in.config.gutter_fraction = 0.25;
  in.config.nodes_per_gutter_group = 4;
  in.config.disk_dir = "/tmp/somewhere";
  in.config.instance_tag = "shard7";
  in.config.gutter_tree_buffer_bytes = 1 << 20;
  in.config.gutter_tree_fanout = 32;
  in.config.query_threads = 2;
  in.restore_checkpoint = "/tmp/ckpt.bin";

  const std::vector<uint8_t> bytes = EncodeShardConfig(in);
  ShardConfig out;
  ASSERT_TRUE(DecodeShardConfig(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.config.num_nodes, in.config.num_nodes);
  EXPECT_EQ(out.config.seed, in.config.seed);
  EXPECT_EQ(out.config.cols, in.config.cols);
  EXPECT_EQ(out.config.rounds, in.config.rounds);
  EXPECT_EQ(out.config.num_workers, in.config.num_workers);
  EXPECT_EQ(out.config.buffering, in.config.buffering);
  EXPECT_EQ(out.config.storage, in.config.storage);
  EXPECT_EQ(out.config.gutter_fraction, in.config.gutter_fraction);
  EXPECT_EQ(out.config.nodes_per_gutter_group,
            in.config.nodes_per_gutter_group);
  EXPECT_EQ(out.config.disk_dir, in.config.disk_dir);
  EXPECT_EQ(out.config.instance_tag, in.config.instance_tag);
  EXPECT_EQ(out.config.gutter_tree_buffer_bytes,
            in.config.gutter_tree_buffer_bytes);
  EXPECT_EQ(out.config.gutter_tree_fanout, in.config.gutter_tree_fanout);
  EXPECT_EQ(out.config.query_threads, in.config.query_threads);
  EXPECT_EQ(out.restore_checkpoint, in.restore_checkpoint);
}

TEST(ShardProtocolTest, TruncatedConfigPayloadIsInvalidArgument) {
  ShardConfig in;
  in.config.num_nodes = 64;
  const std::vector<uint8_t> bytes = EncodeShardConfig(in);
  ShardConfig out;
  for (size_t cut : {0ul, 1ul, 8ul, bytes.size() - 1}) {
    EXPECT_EQ(DecodeShardConfig(bytes.data(), cut, &out).code(),
              StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
  // Trailing garbage is rejected too (framing gave the exact length).
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(DecodeShardConfig(padded.data(), padded.size(), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, AckAndErrorPayloadsRoundTrip) {
  ShardAck ack;
  ack.value0 = 42;
  ack.value1 = 7;
  const std::vector<uint8_t> ack_bytes = EncodeShardAck(ack);
  ShardAck ack_out;
  ASSERT_TRUE(DecodeShardAck(ack_bytes.data(), ack_bytes.size(), &ack_out)
                  .ok());
  EXPECT_EQ(ack_out.value0, 42u);
  EXPECT_EQ(ack_out.value1, 7u);
  EXPECT_EQ(DecodeShardAck(ack_bytes.data(), 3, &ack_out).code(),
            StatusCode::kInvalidArgument);

  const Status err = Status::NotFound("no such checkpoint");
  const std::vector<uint8_t> err_bytes = EncodeShardError(err);
  bool decode_ok = false;
  const Status decoded =
      DecodeShardError(err_bytes.data(), err_bytes.size(), &decode_ok);
  EXPECT_TRUE(decode_ok);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_NE(decoded.message().find("no such checkpoint"),
            std::string::npos);
  const Status bad = DecodeShardError(err_bytes.data(), 2, &decode_ok);
  EXPECT_FALSE(decode_ok);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

// ---- Shard-side conformance (ShardServer over a socketpair) ---------------

class ShardServerFixture : public ::testing::Test {
 protected:
  void StartServer() {
    server_thread_ = std::thread([this] {
      serve_status_ = ShardServer(sp_.b()).Serve();
    });
  }
  void StopServer() {
    if (!stopped_) {
      SendFrame(sp_.a(), ShardMessageType::kShutdown, nullptr, 0);
      ShardFrame frame;
      RecvFrame(sp_.a(), &frame);  // Drain the shutdown ack.
    }
    if (server_thread_.joinable()) server_thread_.join();
    stopped_ = true;
  }
  void TearDown() override { StopServer(); }

  // Sends a valid config; expects the ack.
  void Configure(uint64_t num_nodes = 16) {
    ShardConfig sc;
    sc.config.num_nodes = num_nodes;
    sc.config.seed = 5;
    sc.config.num_workers = 1;
    sc.config.disk_dir = ::testing::TempDir();
    const std::vector<uint8_t> payload = EncodeShardConfig(sc);
    ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig,
                          payload.data(), payload.size())
                    .ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kAck);
  }

  // Expects the next reply to be a kError decoding to `code`.
  void ExpectErrorReply(StatusCode code) {
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kError);
    bool decode_ok = false;
    const Status s =
        DecodeShardError(frame.payload.data(), frame.payload.size(),
                         &decode_ok);
    EXPECT_TRUE(decode_ok);
    EXPECT_EQ(s.code(), code);
  }

  SocketPair sp_;
  std::thread server_thread_;
  Status serve_status_;
  bool stopped_ = false;
};

TEST_F(ShardServerFixture, RequestBeforeConfigIsErrorNotCrash) {
  StartServer();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
  // The server survived; configure and use it normally.
  Configure();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
}

TEST_F(ShardServerFixture, MalformedConfigPayloadIsErrorNotCrash) {
  StartServer();
  const uint8_t garbage[7] = {1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig, garbage,
                        sizeof(garbage))
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  Configure();  // Still serving.
}

TEST_F(ShardServerFixture, RaggedUpdateBatchErrorIsStickyAcrossBarriers) {
  // UPDATE_BATCH is fire-and-forget: an unsolicited error reply would
  // shift every later reply by one, so the failure surfaces as the
  // reply to later barriers instead — and stays sticky, because a
  // dropped batch is permanent divergence. If one barrier consumed the
  // error, a retried CHECKPOINT would succeed and the coordinator
  // would truncate the unacked log that is the only repair material.
  StartServer();
  Configure();
  const uint8_t ragged[13] = {0};  // Not a multiple of sizeof(GraphUpdate).
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kUpdateBatch, ragged,
                        sizeof(ragged))
                  .ok());
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kCheckpoint, "x", 1).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);  // Still poisoned.
  // Pings still ack (liveness is intact; only the data is suspect) and
  // the reply stream stays 1:1.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
}

TEST_F(ShardServerFixture, OutOfRangeUpdateDropsBatchAndPoisonsBarriers) {
  StartServer();
  Configure(/*num_nodes=*/16);
  GraphUpdate bad;
  bad.edge.u = 3;
  bad.edge.v = 99;  // >= num_nodes; would GZ_CHECK-abort if ingested.
  bad.type = UpdateType::kInsert;
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kUpdateBatch, &bad,
                        sizeof(bad))
                  .ok());
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);  // Sticky.
}

TEST_F(ShardServerFixture, UpdateBatchBeforeConfigDefersErrorToo) {
  // Even "shard not configured" must not draw an unsolicited reply to
  // a fire-and-forget frame — the reply stream would shift by one.
  StartServer();
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kUpdateBatch, &u, sizeof(u))
          .ok());
  Configure();  // Acks normally: the drop above queued no reply.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);  // Deferred drop.
}

TEST_F(ShardServerFixture, OutOfRangeConfigIsErrorNotCrash) {
  // Structurally valid payload, semantically impossible geometry: the
  // decoder must bounce it before GraphZeppelin's GZ_CHECKs can abort
  // the worker.
  StartServer();
  ShardConfig sc;
  sc.config.num_nodes = 16;
  sc.config.cols = 0;  // Would abort sketch construction.
  sc.config.disk_dir = ::testing::TempDir();
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig, payload.data(),
                        payload.size())
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  Configure();  // Still serving; a sane config succeeds.
}

TEST_F(ShardServerFixture, EmptyCheckpointPathIsErrorNotCrash) {
  StartServer();
  Configure();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kCheckpoint, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, UnwritableCheckpointPathIsErrorNotCrash) {
  StartServer();
  Configure();
  const char path[] = "/nonexistent-dir/ckpt.bin";
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kCheckpoint, path,
                        sizeof(path) - 1)
                  .ok());
  ExpectErrorReply(StatusCode::kIoError);
}

TEST_F(ShardServerFixture, ReplyTypeFrameOnRequestStreamIsError) {
  StartServer();
  Configure();
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kAck, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, BadMagicTerminatesServeWithErrorReply) {
  StartServer();
  WriteRawHeader(sp_.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 /*magic=*/0x12345678);
  // Framing is lost: the shard sends a best-effort error and exits its
  // loop with a non-OK status (a crash would be a test failure here).
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, VersionMismatchTerminatesServeWithErrorReply) {
  StartServer();
  WriteRawHeader(sp_.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 ShardFrameHeader::kMagic, /*version=*/7);
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, CoordinatorHangupEndsServeCleanly) {
  StartServer();
  Configure();
  sp_.CloseA();
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_EQ(serve_status_.code(), StatusCode::kIoError);
  stopped_ = true;
}

// ---- Routing --------------------------------------------------------------

TEST(ShardProtocolTest, RoutingIsDeterministicAndBounded) {
  for (NodeId u = 0; u < 40; ++u) {
    const Edge e(u, static_cast<NodeId>(u + 7));
    const int shard = RouteToShard(e, 64, 5);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 5);
    EXPECT_EQ(shard, RouteToShard(e, 64, 5));
  }
}

}  // namespace
}  // namespace gz
