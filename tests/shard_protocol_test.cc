// Shard protocol conformance: every frame type must round-trip, and
// malformed / truncated / corrupted / version-mismatched input must
// surface as Status errors — never a crash, never an accepted frame —
// on both the coordinator side (RecvFrame and the payload codecs) and
// the shard side (ShardServer over an in-process socketpair). v3 adds
// the CRC32C trailer (exhaustive byte-flip sweep below), the
// authenticated HELLO handshake, and the ShardEndpoint grammar.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "distributed/shard_endpoint.h"
#include "distributed/shard_protocol.h"
#include "distributed/shard_server.h"
#include "util/crc32c.h"
#include "util/sha256.h"

namespace gz {
namespace {

class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }
  // Fresh pair (a test restarting a server needs a new connection).
  void Reset() {
    CloseA();
    CloseB();
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void CloseA() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseB() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

// Hand-crafts a frame header; `magic`/`version` default to valid so a
// test can corrupt exactly one field.
void WriteRawHeader(int fd, uint16_t type, uint64_t payload_bytes,
                    uint32_t magic = ShardFrameHeader::kMagic,
                    uint16_t version = ShardFrameHeader::kVersion) {
  uint8_t buf[ShardFrameHeader::kBytes];
  std::memcpy(buf, &magic, 4);
  std::memcpy(buf + 4, &version, 2);
  std::memcpy(buf + 6, &type, 2);
  std::memcpy(buf + 8, &payload_bytes, 8);
  ASSERT_TRUE(WriteFull(fd, buf, sizeof(buf)).ok());
}

// ---- Frame round trips ----------------------------------------------------

TEST(ShardProtocolTest, EveryMessageTypeRoundTrips) {
  SocketPair sp;
  const uint8_t payload[5] = {1, 2, 3, 4, 5};
  ShardFrame frame;
  for (uint16_t t = static_cast<uint16_t>(ShardMessageType::kConfig);
       t <= static_cast<uint16_t>(ShardMessageType::kStatsReply); ++t) {
    const ShardMessageType type = static_cast<ShardMessageType>(t);
    ASSERT_TRUE(SendFrame(sp.a(), type, payload, sizeof(payload)).ok());
    ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
    EXPECT_EQ(frame.type, type);
    ASSERT_EQ(frame.payload.size(), sizeof(payload));
    EXPECT_EQ(std::memcmp(frame.payload.data(), payload, sizeof(payload)),
              0);
  }
}

TEST(ShardProtocolTest, EmptyPayloadRoundTrips) {
  SocketPair sp;
  ASSERT_TRUE(
      SendFrame(sp.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ShardProtocolTest, ScatterGatherSendMatchesPlainSend) {
  SocketPair sp;
  const uint8_t a[3] = {10, 11, 12};
  const uint8_t b[4] = {20, 21, 22, 23};
  ASSERT_TRUE(SendFrame2(sp.a(), ShardMessageType::kUpdateBatch, a,
                         sizeof(a), b, sizeof(b))
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  ASSERT_EQ(frame.payload.size(), 7u);
  EXPECT_EQ(frame.payload[0], 10);
  EXPECT_EQ(frame.payload[3], 20);
  EXPECT_EQ(frame.payload[6], 23);
}

TEST(ShardProtocolTest, HeaderThenStreamedPayloadRoundTrips) {
  // The shard's snapshot reply path: header first, payload streamed in
  // pieces afterwards, checksum accumulated alongside and sent last.
  SocketPair sp;
  FrameCrc crc;
  ASSERT_TRUE(
      SendFrameHeader(sp.a(), ShardMessageType::kSnapshotBytes, 6, &crc)
          .ok());
  crc.Fold("abc", 3);
  ASSERT_TRUE(WriteFull(sp.a(), "abc", 3).ok());
  crc.Fold("def", 3);
  ASSERT_TRUE(WriteFull(sp.a(), "def", 3).ok());
  ASSERT_TRUE(SendFrameTrailer(sp.a(), crc).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kSnapshotBytes);
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()),
            "abcdef");
}

TEST(ShardProtocolTest, StreamedFrameWithWrongCrcIsRejected) {
  // A streamed frame whose producer folded different bytes than it
  // wrote must bounce exactly like a corrupted buffered frame.
  SocketPair sp;
  FrameCrc crc;
  ASSERT_TRUE(
      SendFrameHeader(sp.a(), ShardMessageType::kSnapshotBytes, 3, &crc)
          .ok());
  crc.Fold("abc", 3);
  ASSERT_TRUE(WriteFull(sp.a(), "abX", 3).ok());  // Wrote differently.
  ASSERT_TRUE(SendFrameTrailer(sp.a(), crc).ok());
  ShardFrame frame;
  const Status s = RecvFrame(sp.b(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
}

// ---- Malformed input on the receiving side --------------------------------

TEST(ShardProtocolTest, BadMagicIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 /*magic=*/0xDEADBEEF);
  ShardFrame frame;
  const Status s = RecvFrame(sp.b(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, VersionMismatchIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 ShardFrameHeader::kMagic,
                 /*version=*/ShardFrameHeader::kVersion + 1);
  ShardFrame frame;
  const Status s = RecvFrame(sp.b(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(ShardProtocolTest, UnknownTypeIsInvalidArgument) {
  SocketPair sp;
  WriteRawHeader(sp.a(), /*type=*/999, 0);
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, OversizedPayloadLengthIsInvalidArgument) {
  // A garbage length field must be rejected before any allocation.
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing),
                 ShardFrameHeader::kMaxPayloadBytes + 1);
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, TruncatedPayloadIsIoError) {
  SocketPair sp;
  WriteRawHeader(sp.a(), static_cast<uint16_t>(ShardMessageType::kPing),
                 /*payload_bytes=*/100);
  ASSERT_TRUE(WriteFull(sp.a(), "short", 5).ok());
  sp.CloseA();  // EOF mid-payload.
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kIoError);
}

TEST(ShardProtocolTest, TruncatedHeaderIsIoError) {
  SocketPair sp;
  ASSERT_TRUE(WriteFull(sp.a(), "GZ", 2).ok());
  sp.CloseA();
  ShardFrame frame;
  EXPECT_EQ(RecvFrame(sp.b(), &frame).code(), StatusCode::kIoError);
}

TEST(ShardProtocolTest, WriteToClosedPeerIsIoErrorNotSignal) {
  // A SIGKILLed shard must surface as IoError; SIGPIPE would kill the
  // coordinator.
  SocketPair sp;
  sp.CloseB();
  std::vector<uint8_t> big(1 << 20, 0xAB);
  const Status s =
      SendFrame(sp.a(), ShardMessageType::kUpdateBatch, big.data(),
                big.size());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---- Payload codecs -------------------------------------------------------

TEST(ShardProtocolTest, ConfigPayloadRoundTrips) {
  ShardConfig in;
  in.config.num_nodes = 1234;
  in.config.seed = 99;
  in.config.cols = 9;
  in.config.rounds = 17;
  in.config.num_workers = 3;
  in.config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
  in.config.storage = GraphZeppelinConfig::Storage::kDisk;
  in.config.gutter_fraction = 0.25;
  in.config.nodes_per_gutter_group = 4;
  in.config.disk_dir = "/tmp/somewhere";
  in.config.instance_tag = "shard7";
  in.config.gutter_tree_buffer_bytes = 1 << 20;
  in.config.gutter_tree_fanout = 32;
  in.config.query_threads = 2;
  in.config.heavy_hitter_width = 4096;
  in.config.heavy_hitter_depth = 5;
  in.config.heavy_hitter_candidates = 777;
  in.shard_id = 7;
  in.table = MakeRoutingTable(9);
  in.table.epoch = 42;
  in.restore_checkpoint = "/tmp/ckpt.bin";

  const std::vector<uint8_t> bytes = EncodeShardConfig(in);
  ShardConfig out;
  ASSERT_TRUE(DecodeShardConfig(bytes.data(), bytes.size(), &out).ok());
  EXPECT_EQ(out.shard_id, 7);
  EXPECT_TRUE(out.table == in.table);
  EXPECT_EQ(out.config.num_nodes, in.config.num_nodes);
  EXPECT_EQ(out.config.seed, in.config.seed);
  EXPECT_EQ(out.config.cols, in.config.cols);
  EXPECT_EQ(out.config.rounds, in.config.rounds);
  EXPECT_EQ(out.config.num_workers, in.config.num_workers);
  EXPECT_EQ(out.config.buffering, in.config.buffering);
  EXPECT_EQ(out.config.storage, in.config.storage);
  EXPECT_EQ(out.config.gutter_fraction, in.config.gutter_fraction);
  EXPECT_EQ(out.config.nodes_per_gutter_group,
            in.config.nodes_per_gutter_group);
  EXPECT_EQ(out.config.disk_dir, in.config.disk_dir);
  EXPECT_EQ(out.config.instance_tag, in.config.instance_tag);
  EXPECT_EQ(out.config.gutter_tree_buffer_bytes,
            in.config.gutter_tree_buffer_bytes);
  EXPECT_EQ(out.config.gutter_tree_fanout, in.config.gutter_tree_fanout);
  EXPECT_EQ(out.config.query_threads, in.config.query_threads);
  EXPECT_EQ(out.config.heavy_hitter_width, in.config.heavy_hitter_width);
  EXPECT_EQ(out.config.heavy_hitter_depth, in.config.heavy_hitter_depth);
  EXPECT_EQ(out.config.heavy_hitter_candidates,
            in.config.heavy_hitter_candidates);
  EXPECT_EQ(out.restore_checkpoint, in.restore_checkpoint);
}

TEST(ShardProtocolTest, ConfigPayloadRejectsBadHeavyHitterGeometry) {
  // The heavy-hitter knobs cross the wire; out-of-range values must
  // bounce in the decoder, not abort sketch construction in the shard.
  ShardConfig base;
  base.config.num_nodes = 64;
  base.table = MakeRoutingTable(1);
  auto expect_rejected = [&](GraphZeppelinConfig mutate) {
    ShardConfig in = base;
    in.config = mutate;
    const std::vector<uint8_t> bytes = EncodeShardConfig(in);
    ShardConfig out;
    EXPECT_EQ(DecodeShardConfig(bytes.data(), bytes.size(), &out).code(),
              StatusCode::kInvalidArgument);
  };
  GraphZeppelinConfig c = base.config;
  c.heavy_hitter_width = 1000;  // Not a power of two.
  expect_rejected(c);
  c = base.config;
  c.heavy_hitter_width = CountMinSketch::kMaxWidth * 2;
  expect_rejected(c);
  c = base.config;
  c.heavy_hitter_width = 1024;
  c.heavy_hitter_depth = CountMinSketch::kMaxDepth + 1;
  expect_rejected(c);
  c = base.config;
  c.heavy_hitter_width = 1024;
  c.heavy_hitter_candidates = 0;
  expect_rejected(c);
  // Width 0 (tracking off) ignores the other knobs entirely.
  c = base.config;
  c.heavy_hitter_width = 0;
  c.heavy_hitter_depth = 200;
  ShardConfig in = base;
  in.config = c;
  const std::vector<uint8_t> bytes = EncodeShardConfig(in);
  ShardConfig out;
  EXPECT_TRUE(DecodeShardConfig(bytes.data(), bytes.size(), &out).ok());
}

TEST(ShardProtocolTest, TruncatedConfigPayloadIsInvalidArgument) {
  ShardConfig in;
  in.config.num_nodes = 64;
  in.table = MakeRoutingTable(2);
  const std::vector<uint8_t> bytes = EncodeShardConfig(in);
  ShardConfig out;
  for (size_t cut : {0ul, 1ul, 8ul, bytes.size() - 1}) {
    EXPECT_EQ(DecodeShardConfig(bytes.data(), cut, &out).code(),
              StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
  // Trailing garbage is rejected too (framing gave the exact length).
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(DecodeShardConfig(padded.data(), padded.size(), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, AckAndErrorPayloadsRoundTrip) {
  ShardAck ack;
  ack.value0 = 42;
  ack.value1 = 7;
  const std::vector<uint8_t> ack_bytes = EncodeShardAck(ack);
  ShardAck ack_out;
  ASSERT_TRUE(DecodeShardAck(ack_bytes.data(), ack_bytes.size(), &ack_out)
                  .ok());
  EXPECT_EQ(ack_out.value0, 42u);
  EXPECT_EQ(ack_out.value1, 7u);
  EXPECT_EQ(DecodeShardAck(ack_bytes.data(), 3, &ack_out).code(),
            StatusCode::kInvalidArgument);

  const Status err = Status::NotFound("no such checkpoint");
  const std::vector<uint8_t> err_bytes = EncodeShardError(err);
  bool decode_ok = false;
  const Status decoded =
      DecodeShardError(err_bytes.data(), err_bytes.size(), &decode_ok);
  EXPECT_TRUE(decode_ok);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_NE(decoded.message().find("no such checkpoint"),
            std::string::npos);
  const Status bad = DecodeShardError(err_bytes.data(), 2, &decode_ok);
  EXPECT_FALSE(decode_ok);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

// ---- Shard-side conformance (ShardServer over a socketpair) ---------------

class ShardServerFixture : public ::testing::Test {
 protected:
  // Launches Serve() on the b side and, by default, completes the
  // client handshake on the a side so tests exercise an established
  // session. Pass handshake=false to poke at the pre-auth state.
  void StartServer(bool handshake = true, const std::string& secret = "") {
    server_thread_ = std::thread([this, secret] {
      serve_status_ = ShardServer(sp_.b(), secret).Serve();
    });
    if (handshake) {
      ASSERT_TRUE(ClientHandshake(sp_.a(), secret).ok());
    }
  }
  void StopServer() {
    if (!stopped_) {
      SendFrame(sp_.a(), ShardMessageType::kShutdown, nullptr, 0);
      ShardFrame frame;
      RecvFrame(sp_.a(), &frame);  // Drain the shutdown ack.
    }
    if (server_thread_.joinable()) server_thread_.join();
    stopped_ = true;
  }
  void TearDown() override { StopServer(); }

  // Sends a valid config; expects the ack. The shard comes up as shard
  // 0 of a single-shard table at `epoch`.
  void Configure(uint64_t num_nodes = 16, uint64_t epoch = 1,
                 const std::string& restore_checkpoint = "") {
    ShardConfig sc;
    sc.config.num_nodes = num_nodes;
    sc.config.seed = 5;
    sc.config.num_workers = 1;
    sc.config.disk_dir = ::testing::TempDir();
    sc.shard_id = 0;
    sc.table = MakeRoutingTable(1);
    sc.table.epoch = epoch;
    sc.restore_checkpoint = restore_checkpoint;
    const std::vector<uint8_t> payload = EncodeShardConfig(sc);
    ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig,
                          payload.data(), payload.size())
                    .ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kAck);
  }

  // Frames `bytes` as an UPDATE_BATCH stamped with `epoch` (the wire
  // prefix every batch carries).
  void SendUpdateBatch(const void* bytes, size_t size, uint64_t epoch = 1) {
    ASSERT_TRUE(SendFrame2(sp_.a(), ShardMessageType::kUpdateBatch, &epoch,
                           sizeof(epoch), bytes, size)
                    .ok());
  }

  // Expects the next reply to be a kError decoding to `code`.
  void ExpectErrorReply(StatusCode code) {
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kError);
    bool decode_ok = false;
    const Status s =
        DecodeShardError(frame.payload.data(), frame.payload.size(),
                         &decode_ok);
    EXPECT_TRUE(decode_ok);
    EXPECT_EQ(s.code(), code);
  }

  SocketPair sp_;
  std::thread server_thread_;
  Status serve_status_;
  bool stopped_ = false;
};

TEST_F(ShardServerFixture, RequestBeforeConfigIsErrorNotCrash) {
  StartServer();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
  // The server survived; configure and use it normally.
  Configure();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
}

TEST_F(ShardServerFixture, MalformedConfigPayloadIsErrorNotCrash) {
  StartServer();
  const uint8_t garbage[7] = {1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig, garbage,
                        sizeof(garbage))
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  Configure();  // Still serving.
}

TEST_F(ShardServerFixture, RaggedUpdateBatchErrorIsStickyAcrossBarriers) {
  // UPDATE_BATCH is fire-and-forget: an unsolicited error reply would
  // shift every later reply by one, so the failure surfaces as the
  // reply to later barriers instead — and stays sticky, because a
  // dropped batch is permanent divergence. If one barrier consumed the
  // error, a retried CHECKPOINT would succeed and the coordinator
  // would truncate the unacked log that is the only repair material.
  StartServer();
  Configure();
  const uint8_t ragged[13] = {0};  // Not a multiple of sizeof(GraphUpdate).
  SendUpdateBatch(ragged, sizeof(ragged));
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kCheckpoint, "x", 1).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);  // Still poisoned.
  // Pings still ack (liveness is intact; only the data is suspect) and
  // the reply stream stays 1:1.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
}

TEST_F(ShardServerFixture, OutOfRangeUpdateDropsBatchAndPoisonsBarriers) {
  StartServer();
  Configure(/*num_nodes=*/16);
  GraphUpdate bad;
  bad.edge.u = 3;
  bad.edge.v = 99;  // >= num_nodes; would GZ_CHECK-abort if ingested.
  bad.type = UpdateType::kInsert;
  SendUpdateBatch(&bad, sizeof(bad));
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);  // Sticky.
}

TEST_F(ShardServerFixture, UpdateBatchBeforeConfigDefersErrorToo) {
  // Even "shard not configured" must not draw an unsolicited reply to
  // a fire-and-forget frame — the reply stream would shift by one.
  StartServer();
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  SendUpdateBatch(&u, sizeof(u));
  Configure();  // Acks normally: the drop above queued no reply.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);  // Deferred drop.
}

TEST_F(ShardServerFixture, OutOfRangeConfigIsErrorNotCrash) {
  // Structurally valid payload, semantically impossible geometry: the
  // decoder must bounce it before GraphZeppelin's GZ_CHECKs can abort
  // the worker.
  StartServer();
  ShardConfig sc;
  sc.config.num_nodes = 16;
  sc.config.cols = 0;  // Would abort sketch construction.
  sc.config.disk_dir = ::testing::TempDir();
  sc.table = MakeRoutingTable(1);
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig, payload.data(),
                        payload.size())
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  Configure();  // Still serving; a sane config succeeds.
}

TEST_F(ShardServerFixture, EmptyCheckpointPathIsErrorNotCrash) {
  StartServer();
  Configure();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kCheckpoint, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, UnwritableCheckpointPathIsErrorNotCrash) {
  StartServer();
  Configure();
  const char path[] = "/nonexistent-dir/ckpt.bin";
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kCheckpoint, path,
                        sizeof(path) - 1)
                  .ok());
  ExpectErrorReply(StatusCode::kIoError);
}

TEST_F(ShardServerFixture, ReplyTypeFrameOnRequestStreamIsError) {
  StartServer();
  Configure();
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kAck, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, BadMagicTerminatesServeWithErrorReply) {
  StartServer(/*handshake=*/false);
  WriteRawHeader(sp_.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 /*magic=*/0x12345678);
  // Framing is lost: the shard sends a best-effort error and exits its
  // loop with a non-OK status (a crash would be a test failure here).
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, VersionMismatchTerminatesServeWithErrorReply) {
  StartServer(/*handshake=*/false);
  WriteRawHeader(sp_.a(), static_cast<uint16_t>(ShardMessageType::kPing), 0,
                 ShardFrameHeader::kMagic, /*version=*/7);
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, CoordinatorHangupEndsServeCleanly) {
  StartServer();
  Configure();
  sp_.CloseA();
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_EQ(serve_status_.code(), StatusCode::kIoError);
  stopped_ = true;
}

// ---- Elastic-resharding conformance ---------------------------------------

TEST_F(ShardServerFixture, StaleEpochUpdateBatchIsDeferredStatusError) {
  // A batch stamped with any epoch other than the shard's current one
  // must be dropped with a deferred Status error (fire-and-forget
  // frames never draw unsolicited replies) — never ingested, never a
  // crash.
  StartServer();
  Configure(/*num_nodes=*/16, /*epoch=*/3);
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  SendUpdateBatch(&u, sizeof(u), /*epoch=*/2);  // Stale.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, FutureEpochUpdateBatchIsDeferredStatusError) {
  StartServer();
  Configure(/*num_nodes=*/16, /*epoch=*/3);
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  SendUpdateBatch(&u, sizeof(u), /*epoch=*/9);  // From the future.
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, EpochFrameAdvancesWhatBatchesMustStamp) {
  StartServer();
  Configure(/*num_nodes=*/16, /*epoch=*/1);
  // Advance to epoch 5; batches stamped 5 now ingest, batches stamped
  // 1 now bounce.
  RoutingTable table = MakeRoutingTable(1);
  table.epoch = 5;
  const std::vector<uint8_t> payload = EncodeRoutingTable(table);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kEpoch, payload.data(),
                        payload.size())
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kAck);

  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  SendUpdateBatch(&u, sizeof(u), /*epoch=*/5);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kStats, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kAck);
  ShardAck ack;
  ASSERT_TRUE(
      DecodeShardAck(frame.payload.data(), frame.payload.size(), &ack).ok());
  EXPECT_EQ(ack.value0, 1u);  // The stamped-current batch was ingested.
}

TEST_F(ShardServerFixture, EpochRegressionIsErrorNotCrash) {
  StartServer();
  Configure(/*num_nodes=*/16, /*epoch=*/6);
  RoutingTable stale = MakeRoutingTable(1);
  stale.epoch = 2;
  const std::vector<uint8_t> payload = EncodeRoutingTable(stale);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kEpoch, payload.data(),
                        payload.size())
                  .ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
}

TEST_F(ShardServerFixture, TruncatedEpochTablePayloadIsErrorNotCrash) {
  StartServer();
  Configure();
  const std::vector<uint8_t> payload =
      EncodeRoutingTable(MakeRoutingTable(1));
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kEpoch, payload.data(),
                        payload.size() / 2)
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, TruncatedMigrateExtractPayloadIsErrorNotCrash) {
  StartServer();
  Configure();
  const uint8_t short_payload[7] = {0};  // Needs two u64s.
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kMigrateExtract,
                        short_payload, sizeof(short_payload))
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, OutOfBoundsMigrateRangeIsErrorNotCrash) {
  StartServer();
  Configure(/*num_nodes=*/16);
  const std::vector<uint8_t> req = EncodeMigrateExtract(4, 99);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kMigrateExtract,
                        req.data(), req.size())
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  const std::vector<uint8_t> empty = EncodeMigrateExtract(4, 4);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kMigrateExtract,
                        empty.data(), empty.size())
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, TruncatedMergeDeltaPayloadIsErrorNotCrash) {
  StartServer();
  Configure();
  const uint8_t garbage[21] = {0};
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kMergeDelta, garbage,
                        sizeof(garbage))
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
}

TEST_F(ShardServerFixture, MigrateExtractRoundTripsThroughMergeDelta) {
  // The migration algebra over the wire: extracting [0, k) and [k, n)
  // and folding both deltas into an empty same-params instance must
  // reproduce the source's snapshot exactly.
  StartServer();
  Configure(/*num_nodes=*/16);
  GraphUpdate updates[3] = {{Edge(0, 1), UpdateType::kInsert},
                            {Edge(1, 9), UpdateType::kInsert},
                            {Edge(12, 15), UpdateType::kInsert}};
  SendUpdateBatch(updates, sizeof(updates));

  auto request_snapshot = [this](GraphSnapshot* out) {
    ASSERT_TRUE(
        SendFrame(sp_.a(), ShardMessageType::kSnapshot, nullptr, 0).ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kSnapshotBytes);
    Result<GraphSnapshot> r =
        GraphSnapshot::Deserialize(frame.payload.data(),
                                   frame.payload.size());
    ASSERT_TRUE(r.ok());
    *out = std::move(r).value();
  };
  GraphSnapshot source;
  request_snapshot(&source);

  GraphZeppelinConfig twin_config;
  twin_config.num_nodes = 16;
  twin_config.seed = 5;
  twin_config.num_workers = 1;
  twin_config.disk_dir = ::testing::TempDir();
  GraphZeppelin twin(twin_config);
  ASSERT_TRUE(twin.Init().ok());
  for (const uint64_t range : {0u, 1u}) {
    const std::vector<uint8_t> req =
        range == 0 ? EncodeMigrateExtract(0, 7) : EncodeMigrateExtract(7, 16);
    ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kMigrateExtract,
                          req.data(), req.size())
                    .ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kMigrateData);
    ASSERT_TRUE(
        twin.MergeSerializedNodeRange(frame.payload.data(),
                                      frame.payload.size())
            .ok());
  }
  GraphSnapshot rebuilt = twin.Snapshot();
  // Deltas carry no update counts by design; compare sketch content.
  rebuilt.AddUpdates(source.num_updates());
  EXPECT_TRUE(rebuilt == source);
}

TEST_F(ShardServerFixture, ConfigEpochOlderThanCheckpointIsErrorNotCrash) {
  // Restore hand-off consistency: a checkpoint saved at epoch 7 must
  // not come back under a config whose table says epoch 3 — that
  // coordinator's view of placement predates the checkpoint.
  StartServer();
  Configure(/*num_nodes=*/16, /*epoch=*/1);
  RoutingTable table = MakeRoutingTable(1);
  table.epoch = 7;
  const std::vector<uint8_t> epoch_payload = EncodeRoutingTable(table);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kEpoch,
                        epoch_payload.data(), epoch_payload.size())
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kAck);
  const std::string ckpt =
      ::testing::TempDir() + "/gz_epoch_mismatch_ckpt.bin";
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kCheckpoint,
                        ckpt.data(), ckpt.size())
                  .ok());
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kAck);
  StopServer();

  // Fresh server, config at an OLDER epoch than the checkpoint.
  sp_.Reset();
  stopped_ = false;
  StartServer();
  ShardConfig sc;
  sc.config.num_nodes = 16;
  sc.config.seed = 5;
  sc.config.num_workers = 1;
  sc.config.disk_dir = ::testing::TempDir();
  sc.table = MakeRoutingTable(1);
  sc.table.epoch = 3;
  sc.restore_checkpoint = ckpt;
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kConfig, payload.data(),
                        payload.size())
                  .ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
  // Same checkpoint under epoch >= 7 restores fine (same server: the
  // failed restore left it unconfigured).
  Configure(/*num_nodes=*/16, /*epoch=*/8, /*restore_checkpoint=*/ckpt);
  ::unlink(ckpt.c_str());
}

// ---- Frame-corruption conformance sweep -----------------------------------

// Serializes one whole frame (header + payload + trailer) through the
// real send path.
std::vector<uint8_t> FrameBytes(ShardMessageType type,
                                const std::vector<uint8_t>& payload) {
  SocketPair sp;
  EXPECT_TRUE(
      SendFrame(sp.a(), type, payload.data(), payload.size()).ok());
  std::vector<uint8_t> bytes(ShardFrameHeader::kBytes + payload.size() +
                             ShardFrameHeader::kCrcBytes);
  EXPECT_TRUE(ReadFull(sp.b(), bytes.data(), bytes.size()).ok());
  return bytes;
}

// A representative payload per v3 frame type: real codec output where
// one exists, so the sweep corrupts exactly the bytes production
// frames carry.
std::vector<uint8_t> RepresentativePayload(ShardMessageType type) {
  switch (type) {
    case ShardMessageType::kConfig: {
      ShardConfig sc;
      sc.config.num_nodes = 64;
      sc.config.disk_dir = "/tmp/x";
      sc.table = MakeRoutingTable(2);
      return EncodeShardConfig(sc);
    }
    case ShardMessageType::kUpdateBatch: {
      std::vector<uint8_t> payload(sizeof(uint64_t) + sizeof(GraphUpdate));
      const uint64_t epoch = 1;
      GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
      std::memcpy(payload.data(), &epoch, sizeof(epoch));
      std::memcpy(payload.data() + sizeof(epoch), &u, sizeof(u));
      return payload;
    }
    case ShardMessageType::kCheckpoint: {
      const std::string path = "/tmp/ckpt.bin";
      return std::vector<uint8_t>(path.begin(), path.end());
    }
    case ShardMessageType::kAck:
      return EncodeShardAck(ShardAck{42, 7});
    case ShardMessageType::kSnapshotBytes:
    case ShardMessageType::kMigrateData:
    case ShardMessageType::kMergeDelta:
      return std::vector<uint8_t>(48, 0xA5);  // Opaque snapshot bytes.
    case ShardMessageType::kError:
      return EncodeShardError(Status::NotFound("x"));
    case ShardMessageType::kEpoch:
      return EncodeRoutingTable(MakeRoutingTable(3));
    case ShardMessageType::kMigrateExtract:
      return EncodeMigrateExtract(0, 32);
    case ShardMessageType::kHello:
      return std::vector<uint8_t>(kHandshakeNonceBytes, 0x11);
    case ShardMessageType::kChallenge:
      return std::vector<uint8_t>(kHandshakeNonceBytes + kSha256Bytes, 0x22);
    case ShardMessageType::kAuth:
      return std::vector<uint8_t>(kSha256Bytes, 0x33);
    case ShardMessageType::kStatsReply: {
      ShardStatsEx stats;
      stats.shard_id = 2;
      stats.epoch = 7;
      stats.num_updates = 1234;
      stats.delta_seq = 3;
      stats.ram_bytes = 1 << 20;
      stats.num_nodes = 64;
      stats.seed = 5;
      stats.cols = 4;
      stats.rounds = 12;
      return EncodeShardStatsEx(stats);
    }
    default:
      // kFlush/kSnapshot/kStats/kStatsEx/kPing/kShutdown: empty.
      return {};
  }
}

TEST(ShardProtocolTest, EveryByteFlipOfEveryFrameTypeIsACleanStatus) {
  // The v3 integrity claim, pinned exhaustively: flip each byte of
  // every frame type — header, payload, trailer — and the receiver
  // must return a Status (checksum or decode error). Never a crash,
  // and NEVER an accepted frame: any accepted flip would mean a
  // corruption the protocol cannot see.
  for (uint16_t t = static_cast<uint16_t>(ShardMessageType::kConfig);
       t <= static_cast<uint16_t>(ShardMessageType::kStatsReply); ++t) {
    const ShardMessageType type = static_cast<ShardMessageType>(t);
    const std::vector<uint8_t> good = FrameBytes(type,
                                                 RepresentativePayload(type));
    // Sanity: the uncorrupted frame is accepted.
    {
      SocketPair sp;
      ASSERT_TRUE(WriteFull(sp.a(), good.data(), good.size()).ok());
      sp.CloseA();
      ShardFrame frame;
      ASSERT_TRUE(RecvFrame(sp.b(), &frame).ok()) << "type " << t;
      EXPECT_EQ(frame.type, type);
    }
    for (size_t i = 0; i < good.size(); ++i) {
      std::vector<uint8_t> corrupt = good;
      corrupt[i] ^= 0x5A;
      SocketPair sp;
      ASSERT_TRUE(WriteFull(sp.a(), corrupt.data(), corrupt.size()).ok());
      // EOF after the frame: a flip in the length field must surface
      // as a short read, not hang waiting for bytes that never come.
      sp.CloseA();
      ShardFrame frame;
      const Status s = RecvFrame(sp.b(), &frame);
      EXPECT_FALSE(s.ok()) << "type " << t << ", flipped byte " << i
                           << " was ACCEPTED";
    }
  }
}

TEST_F(ShardServerFixture, CorruptedFrameFencesTheServerConnection) {
  // Server side of the same property: one corrupted byte in an
  // established session is a lost-framing event — error reply
  // (best-effort), Serve() exits with a Status, no crash, and the
  // poisoned frame was never acted on.
  StartServer();
  Configure(/*num_nodes=*/16);
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  std::vector<uint8_t> payload(sizeof(uint64_t) + sizeof(u));
  const uint64_t epoch = 1;
  std::memcpy(payload.data(), &epoch, sizeof(epoch));
  std::memcpy(payload.data() + sizeof(epoch), &u, sizeof(u));
  std::vector<uint8_t> bytes =
      FrameBytes(ShardMessageType::kUpdateBatch, payload);
  bytes[ShardFrameHeader::kBytes + sizeof(uint64_t)] ^= 0xFF;  // Edge bits.
  ASSERT_TRUE(WriteFull(sp_.a(), bytes.data(), bytes.size()).ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

// ---- Authenticated handshake ----------------------------------------------

TEST_F(ShardServerFixture, MatchingSecretsEstablishAndServe) {
  StartServer(/*handshake=*/true, "super-secret");
  Configure();
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
}

TEST_F(ShardServerFixture, WrongSecretIsRefusedByTheClient) {
  // The server proves first (mutual auth), so a coordinator dialing a
  // shard with the wrong secret discovers the mismatch itself — before
  // handing over any state.
  StartServer(/*handshake=*/false, "server-secret");
  const Status s = ClientHandshake(sp_.a(), "client-secret");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("authentication"), std::string::npos);
  sp_.CloseA();
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, ForgedClientProofIsRefusedByTheServer) {
  // An attacker who watched the challenge but lacks the secret cannot
  // complete: a garbage proof draws a kError and ends the session.
  StartServer(/*handshake=*/false, "server-secret");
  const std::vector<uint8_t> nonce(kHandshakeNonceBytes, 0x42);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kHello, nonce.data(),
                        nonce.size())
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kChallenge);
  const std::vector<uint8_t> forged(kSha256Bytes, 0x00);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kAuth, forged.data(),
                        forged.size())
                  .ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, UpdateBatchCannotBeInjectedBeforeAuth) {
  // THE threat-model property: an unauthenticated peer sending an
  // UPDATE_BATCH as its first frame gets an error and a dead
  // connection — the frame never reaches the ingest path.
  StartServer(/*handshake=*/false, "server-secret");
  GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
  std::vector<uint8_t> payload(sizeof(uint64_t) + sizeof(u));
  const uint64_t epoch = 1;
  std::memcpy(payload.data(), &epoch, sizeof(epoch));
  std::memcpy(payload.data() + sizeof(epoch), &u, sizeof(u));
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kUpdateBatch,
                        payload.data(), payload.size())
                  .ok());
  ExpectErrorReply(StatusCode::kFailedPrecondition);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, PreAuthFrameLengthIsCappedTiny) {
  // The pre-auth allocation-DoS gate: handshake frames are tiny and
  // fixed-size, so a length field even modestly above the handshake
  // cap (let alone the multi-GB protocol cap) is refused BEFORE any
  // allocation or payload read.
  StartServer(/*handshake=*/false, "server-secret");
  WriteRawHeader(sp_.a(), static_cast<uint16_t>(ShardMessageType::kHello),
                 /*payload_bytes=*/1 << 20);
  ExpectErrorReply(StatusCode::kInvalidArgument);
  if (server_thread_.joinable()) server_thread_.join();
  EXPECT_FALSE(serve_status_.ok());
  stopped_ = true;
}

TEST_F(ShardServerFixture, HandshakeFrameMidSessionIsErrorNotCrash) {
  StartServer();
  Configure();
  const std::vector<uint8_t> nonce(kHandshakeNonceBytes, 0x01);
  ASSERT_TRUE(SendFrame(sp_.a(), ShardMessageType::kHello, nonce.data(),
                        nonce.size())
                  .ok());
  ExpectErrorReply(StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      SendFrame(sp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);  // Session survived.
}

// ---- ShardEndpoint grammar ------------------------------------------------

TEST(ShardEndpointTest, ParsesTheGrammar) {
  Result<ShardEndpoint> local = ParseShardEndpoint("local:");
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local.value().local());
  EXPECT_EQ(local.value().ToString(), "local:");
  EXPECT_TRUE(ParseShardEndpoint("").ok());  // Unset slot = local.

  Result<ShardEndpoint> tcp = ParseShardEndpoint("tcp://10.0.0.7:9001");
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp.value().local());
  EXPECT_EQ(tcp.value().host, "10.0.0.7");
  EXPECT_EQ(tcp.value().port, 9001);
  EXPECT_EQ(tcp.value().ToString(), "tcp://10.0.0.7:9001");

  for (const char* bad :
       {"tcp://", "tcp://host", "tcp://host:", "tcp://:80",
        "tcp://host:0", "tcp://host:65536", "tcp://host:12x",
        "udp://host:80", "host:80"}) {
    EXPECT_EQ(ParseShardEndpoint(bad).status().code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
}

// ---- Routing --------------------------------------------------------------

TEST(ShardProtocolTest, RoutingIsDeterministicAndBounded) {
  const RoutingTable table = MakeRoutingTable(5);
  for (NodeId u = 0; u < 40; ++u) {
    const Edge e(u, static_cast<NodeId>(u + 7));
    const int shard = RouteToShard(e, 64, table);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 5);
    EXPECT_EQ(shard, RouteToShard(e, 64, table));
  }
}

TEST(ShardProtocolTest, RoutingTablePayloadRoundTrips) {
  RoutingTable table = MakeRoutingTable(7);
  table.epoch = 19;
  const std::vector<uint8_t> bytes = EncodeRoutingTable(table);
  RoutingTable out;
  ASSERT_TRUE(DecodeRoutingTable(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(out == table);
  // Truncation and trailing garbage are both rejected.
  EXPECT_EQ(DecodeRoutingTable(bytes.data(), bytes.size() - 1, &out).code(),
            StatusCode::kInvalidArgument);
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(DecodeRoutingTable(padded.data(), padded.size(), &out).code(),
            StatusCode::kInvalidArgument);
  // Epoch 0 (unset) and negative owners are structural errors.
  RoutingTable zero = table;
  zero.epoch = 0;
  const std::vector<uint8_t> zero_bytes = EncodeRoutingTable(zero);
  EXPECT_EQ(
      DecodeRoutingTable(zero_bytes.data(), zero_bytes.size(), &out).code(),
      StatusCode::kInvalidArgument);
}

TEST(ShardProtocolTest, RoutingTableCarriesAndBoundsTheReplicationFactor) {
  // Replication rides the routing-table broadcast: the factor must
  // round-trip exactly, default to 1 (the pre-replication wire form),
  // and die in the decoder when out of [1, kMaxReplication].
  RoutingTable table = MakeRoutingTable(3);
  EXPECT_EQ(table.replication, 1u);  // Unreplicated by default.
  table.replication = 4;
  const std::vector<uint8_t> bytes = EncodeRoutingTable(table);
  RoutingTable out;
  ASSERT_TRUE(DecodeRoutingTable(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(out == table);
  EXPECT_EQ(out.replication, 4u);
  for (const uint32_t bad : {0u, RoutingTable::kMaxReplication + 1}) {
    RoutingTable garbled = table;
    garbled.replication = bad;
    const std::vector<uint8_t> enc = EncodeRoutingTable(garbled);
    EXPECT_EQ(DecodeRoutingTable(enc.data(), enc.size(), &out).code(),
              StatusCode::kInvalidArgument)
        << "replication " << bad << " was accepted";
  }
}

TEST(ShardProtocolTest, SyncPositionPayloadRoundTrips) {
  // The anti-entropy finalizer: kSyncPosition asserts the logical
  // {num_updates, delta_seq} position a repaired replica must report.
  const std::vector<uint8_t> bytes =
      EncodeSyncPosition(1ULL << 40, 17);
  uint64_t num_updates = 0, delta_seq = 0;
  ASSERT_TRUE(
      DecodeSyncPosition(bytes.data(), bytes.size(), &num_updates,
                         &delta_seq)
          .ok());
  EXPECT_EQ(num_updates, 1ULL << 40);
  EXPECT_EQ(delta_seq, 17u);
  // Every truncation and any trailing garbage is a structural error.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(DecodeSyncPosition(bytes.data(), cut, &num_updates,
                                 &delta_seq)
                  .code(),
              StatusCode::kInvalidArgument)
        << "truncated to " << cut << " bytes was accepted";
  }
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  const Status s = DecodeSyncPosition(padded.data(), padded.size(),
                                      &num_updates, &delta_seq);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("sync-position"), std::string::npos);
}

TEST(ShardProtocolTest, SlotOwnershipIsBalancedForAnyShardCount) {
  // The old modulo router was biased for non-power-of-two shard
  // counts. Slot routing is uniform over slots by construction (mask
  // reduction); this pins the other half: every shard owns floor or
  // ceil of kNumSlots/num_shards slots, for power-of-two and
  // non-power-of-two counts alike.
  for (const int shards : {1, 2, 3, 5, 6, 7, 8, 12}) {
    const RoutingTable table = MakeRoutingTable(shards);
    std::vector<int> counts(shards, 0);
    for (const int32_t owner : table.owners) {
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, shards);
      ++counts[owner];
    }
    const int floor_share =
        static_cast<int>(RoutingTable::kNumSlots) / shards;
    for (const int c : counts) {
      EXPECT_GE(c, floor_share) << shards << " shards";
      EXPECT_LE(c, floor_share + 1) << shards << " shards";
    }
  }
}

TEST(ShardProtocolTest, RebalanceHelpersKeepOwnershipBalancedAndVersioned) {
  RoutingTable table = MakeRoutingTable(3);
  const RoutingTable added = TableWithShardAdded(table, 3);
  EXPECT_EQ(added.epoch, table.epoch + 1);
  EXPECT_EQ(TableOwners(added), (std::vector<int>{0, 1, 2, 3}));
  int new_count = 0;
  for (const int32_t o : added.owners) new_count += (o == 3);
  EXPECT_EQ(new_count,
            static_cast<int>(RoutingTable::kNumSlots) / 4);

  const RoutingTable removed = TableWithShardRemoved(added, 1);
  EXPECT_EQ(removed.epoch, added.epoch + 1);
  EXPECT_EQ(TableOwners(removed), (std::vector<int>{0, 2, 3}));

  const RoutingTable split = TableWithShardSplit(removed, 0, 4);
  EXPECT_EQ(split.epoch, removed.epoch + 1);
  int source_count = 0, split_count = 0, before = 0;
  for (const int32_t o : removed.owners) before += (o == 0);
  for (const int32_t o : split.owners) {
    source_count += (o == 0);
    split_count += (o == 4);
  }
  EXPECT_EQ(source_count + split_count, before);
  EXPECT_LE(std::abs(source_count - split_count), 1);
  // Slots not owned by the split source are untouched.
  for (uint32_t s = 0; s < RoutingTable::kNumSlots; ++s) {
    if (removed.owners[s] != 0) {
      EXPECT_EQ(split.owners[s], removed.owners[s]);
    }
  }
}

TEST(ShardProtocolTest, EveryLiveShardAlwaysOwnsAtLeastOneSlot) {
  // The invariant the elastic entry points guard (split needs >= 2
  // source slots, add needs a free owner column): no legal sequence of
  // rebalance steps ever produces a zero-slot owner, so the active set
  // always equals TableOwners() and a removal always finds an heir.
  // Drive splits all the way down to 1-slot owners to pin the floor.
  RoutingTable table = MakeRoutingTable(1);
  int next_id = 1;
  bool split_any = true;
  while (split_any) {
    split_any = false;
    const std::vector<int> owners = TableOwners(table);
    for (const int id : owners) {
      if (TableSlotCount(table, id) < 2) continue;  // The entry guard.
      table = TableWithShardSplit(table, id, next_id++);
      split_any = true;
    }
    for (const int id : TableOwners(table)) {
      ASSERT_GE(TableSlotCount(table, id), 1);
    }
  }
  // Fully fragmented: every one of the kNumSlots owners holds exactly
  // one slot, and removals still walk down to a single owner without
  // ever losing a slot.
  EXPECT_EQ(TableOwners(table).size(), RoutingTable::kNumSlots);
  while (TableOwners(table).size() > 1) {
    table = TableWithShardRemoved(table, TableOwners(table).front());
    int total = 0;
    for (const int id : TableOwners(table)) {
      const int n = TableSlotCount(table, id);
      ASSERT_GE(n, 1);
      total += n;
    }
    ASSERT_EQ(total, static_cast<int>(RoutingTable::kNumSlots));
  }
}

// ---- ShardStatsEx codec ---------------------------------------------------

TEST(ShardStatsExTest, RoundTrips) {
  ShardStatsEx stats;
  stats.shard_id = 3;
  stats.epoch = 9;
  stats.num_updates = 1ULL << 40;
  stats.delta_seq = 17;
  stats.ram_bytes = 123456789;
  stats.num_nodes = 1 << 20;
  stats.seed = 0xDEADBEEFCAFEULL;
  stats.cols = 6;
  stats.rounds = 61;
  const std::vector<uint8_t> bytes = EncodeShardStatsEx(stats);
  ShardStatsEx decoded;
  ASSERT_TRUE(DecodeShardStatsEx(bytes.data(), bytes.size(), &decoded).ok());
  EXPECT_EQ(decoded.shard_id, stats.shard_id);
  EXPECT_EQ(decoded.epoch, stats.epoch);
  EXPECT_EQ(decoded.num_updates, stats.num_updates);
  EXPECT_EQ(decoded.delta_seq, stats.delta_seq);
  EXPECT_EQ(decoded.ram_bytes, stats.ram_bytes);
  EXPECT_EQ(decoded.num_nodes, stats.num_nodes);
  EXPECT_EQ(decoded.seed, stats.seed);
  EXPECT_EQ(decoded.cols, stats.cols);
  EXPECT_EQ(decoded.rounds, stats.rounds);
}

TEST(ShardStatsExTest, RejectsTruncationTrailingBytesAndBadRanges) {
  ShardStatsEx stats;
  stats.shard_id = 1;
  stats.epoch = 2;
  stats.num_nodes = 64;
  stats.seed = 5;
  stats.cols = 4;
  stats.rounds = 12;
  const std::vector<uint8_t> bytes = EncodeShardStatsEx(stats);
  ShardStatsEx decoded;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeShardStatsEx(bytes.data(), cut, &decoded).ok())
        << "truncated to " << cut << " bytes was accepted";
  }
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(
      DecodeShardStatsEx(padded.data(), padded.size(), &decoded).ok());
  // Every range cap: this payload feeds zero-snapshot construction on
  // the client, so out-of-range geometry must die in the decoder.
  const auto rejects = [&](ShardStatsEx bad) {
    const std::vector<uint8_t> enc = EncodeShardStatsEx(bad);
    ShardStatsEx out;
    const Status s = DecodeShardStatsEx(enc.data(), enc.size(), &out);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  };
  ShardStatsEx bad = stats;
  bad.shard_id = -1;
  rejects(bad);
  bad = stats;
  bad.epoch = 0;
  rejects(bad);
  bad = stats;
  bad.num_nodes = 1;
  rejects(bad);
  bad = stats;
  bad.cols = 0;
  rejects(bad);
  bad = stats;
  bad.rounds = 5000;
  rejects(bad);
  // The replication factor feeds reader-side replica grouping; zero or
  // beyond the protocol cap is as fatal as broken geometry.
  bad = stats;
  bad.replication = 0;
  rejects(bad);
  bad = stats;
  bad.replication = RoutingTable::kMaxReplication + 1;
  rejects(bad);
}

TEST(ShardStatsExTest, ReplicationFactorRoundTrips) {
  ShardStatsEx stats;
  stats.shard_id = 0;
  stats.epoch = 1;
  stats.num_nodes = 64;
  stats.seed = 5;
  stats.cols = 4;
  stats.rounds = 12;
  EXPECT_EQ(stats.replication, 1u);  // Pre-replication default.
  stats.replication = 3;
  const std::vector<uint8_t> bytes = EncodeShardStatsEx(stats);
  ShardStatsEx decoded;
  ASSERT_TRUE(
      DecodeShardStatsEx(bytes.data(), bytes.size(), &decoded).ok());
  EXPECT_EQ(decoded.replication, 3u);
}

// ---- Reader-role handshake ------------------------------------------------

TEST(ReaderRoleTest, ReaderHandshakeBindsTheRole) {
  SocketPair sp;
  ShardSessionRole role = ShardSessionRole::kWriter;
  std::thread server([&] {
    EXPECT_TRUE(ServerHandshake(sp.b(), "s3cr3t", &role).ok());
  });
  EXPECT_TRUE(
      ClientHandshake(sp.a(), "s3cr3t", ShardSessionRole::kReader).ok());
  server.join();
  EXPECT_EQ(role, ShardSessionRole::kReader);
}

TEST(ReaderRoleTest, WriterHandshakeDefaultsAndStaysCompatible) {
  // The pre-role client call (no role argument) must still produce a
  // writer session — a v3 coordinator and a role-aware listener
  // interoperate without a flag day.
  SocketPair sp;
  ShardSessionRole role = ShardSessionRole::kReader;
  std::thread server([&] {
    EXPECT_TRUE(ServerHandshake(sp.b(), "s3cr3t", &role).ok());
  });
  EXPECT_TRUE(ClientHandshake(sp.a(), "s3cr3t").ok());
  server.join();
  EXPECT_EQ(role, ShardSessionRole::kWriter);
}

TEST(ReaderRoleTest, UnknownRoleByteIsRefused) {
  SocketPair sp;
  Status server_status;
  std::thread server(
      [&] { server_status = ServerHandshake(sp.b(), "s3cr3t", nullptr); });
  uint8_t hello[kHandshakeNonceBytes + 1] = {0};
  hello[kHandshakeNonceBytes] = 7;  // Not a role this protocol knows.
  ASSERT_TRUE(SendFrame(sp.a(), ShardMessageType::kHello, hello,
                        sizeof(hello))
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  server.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(ReaderRoleTest, ReaderRoleWithWriterProofIsRefused) {
  // The role byte travels in cleartext but both proofs commit to it
  // through distinct HMAC domains: a peer that declares the reader
  // role yet proves with the WRITER domain (a downgrade/confusion
  // splice) must fail authentication even though it knows the secret.
  SocketPair sp;
  const std::string secret = "s3cr3t";
  Status server_status;
  std::thread server(
      [&] { server_status = ServerHandshake(sp.b(), secret, nullptr); });
  uint8_t hello[kHandshakeNonceBytes + 1] = {0x42};
  hello[kHandshakeNonceBytes] =
      static_cast<uint8_t>(ShardSessionRole::kReader);
  ASSERT_TRUE(SendFrame(sp.a(), ShardMessageType::kHello, hello,
                        sizeof(hello))
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(sp.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kChallenge);
  ASSERT_EQ(frame.payload.size(), kHandshakeNonceBytes + kSha256Bytes);
  // proof = HMAC(secret, domain16 || client_nonce || server_nonce),
  // with the writer's client domain instead of the reader's.
  uint8_t message[16 + 2 * kHandshakeNonceBytes] = {0};
  std::memcpy(message, "gzsp3-client", sizeof("gzsp3-client") - 1);
  std::memcpy(message + 16, hello, kHandshakeNonceBytes);
  std::memcpy(message + 16 + kHandshakeNonceBytes, frame.payload.data(),
              kHandshakeNonceBytes);
  uint8_t proof[kSha256Bytes];
  HmacSha256(secret.data(), secret.size(), message, sizeof(message), proof);
  ASSERT_TRUE(SendFrame(sp.a(), ShardMessageType::kAuth, proof,
                        sizeof(proof))
                  .ok());
  ASSERT_TRUE(RecvFrame(sp.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  server.join();
  EXPECT_FALSE(server_status.ok());
}

// ---- Reader sessions ------------------------------------------------------

// A writer and a reader session sharing one ShardInstanceState over
// socketpairs — ShardListener's wiring without the TCP, so the
// read-only contract is pinned at the ShardServer layer itself.
class ReaderSessionFixture : public ::testing::Test {
 protected:
  void Start() {
    writer_thread_ = std::thread([this] {
      writer_status_ = ShardServer(wp_.b(), &state_,
                                   ShardSessionRole::kWriter, 30)
                           .Serve();
    });
    reader_thread_ = std::thread([this] {
      reader_status_ = ShardServer(rp_.b(), &state_,
                                   ShardSessionRole::kReader, 30)
                           .Serve();
    });
  }
  void TearDown() override {
    if (writer_thread_.joinable()) {
      SendFrame(wp_.a(), ShardMessageType::kShutdown, nullptr, 0);
      ShardFrame frame;
      RecvFrame(wp_.a(), &frame);
      writer_thread_.join();
      EXPECT_TRUE(writer_status_.ok());
    }
    if (reader_thread_.joinable()) {
      rp_.CloseA();  // Reader hangup; must not disturb the instance.
      reader_thread_.join();
    }
  }

  void Configure(uint64_t num_nodes = 16) {
    ShardConfig sc;
    sc.config.num_nodes = num_nodes;
    sc.config.seed = 5;
    sc.config.num_workers = 1;
    sc.config.disk_dir = ::testing::TempDir();
    sc.shard_id = 0;
    sc.table = MakeRoutingTable(1);
    sc.table.epoch = 1;
    const std::vector<uint8_t> payload = EncodeShardConfig(sc);
    ASSERT_TRUE(SendFrame(wp_.a(), ShardMessageType::kConfig,
                          payload.data(), payload.size())
                    .ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(wp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kAck);
  }

  // One insert through the writer, then a flush (its ack is the
  // barrier that makes the update visible to reader stats).
  void IngestOneEdge() {
    const uint64_t epoch = 1;
    GraphUpdate u{Edge(0, 1), UpdateType::kInsert};
    ASSERT_TRUE(SendFrame2(wp_.a(), ShardMessageType::kUpdateBatch, &epoch,
                           sizeof(epoch), &u, sizeof(u))
                    .ok());
    ASSERT_TRUE(
        SendFrame(wp_.a(), ShardMessageType::kFlush, nullptr, 0).ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(wp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kAck);
  }

  SocketPair wp_, rp_;
  ShardInstanceState state_;
  std::thread writer_thread_, reader_thread_;
  Status writer_status_, reader_status_;
};

TEST_F(ReaderSessionFixture, ReaderServesReadOnlyFramesConcurrently) {
  Start();
  Configure();
  IngestOneEdge();
  ShardFrame frame;
  // PING works even though this session could never have configured.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
  // STATS_EX reports the writer's ingest through the shared instance.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kStatsEx, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kStatsReply);
  ShardStatsEx stats;
  ASSERT_TRUE(DecodeShardStatsEx(frame.payload.data(),
                                 frame.payload.size(), &stats)
                  .ok());
  EXPECT_EQ(stats.shard_id, 0);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.num_updates, 1u);
  EXPECT_EQ(stats.num_nodes, 16u);
  // SNAPSHOT streams the serialized sketch state.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kSnapshot, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kSnapshotBytes);
  EXPECT_FALSE(frame.payload.empty());
}

TEST_F(ReaderSessionFixture, ReaderCannotMutateAndSessionSurvives) {
  Start();
  Configure();
  const auto expect_refused = [&](ShardMessageType type, const void* payload,
                                  size_t payload_bytes) {
    ASSERT_TRUE(SendFrame(rp_.a(), type, payload, payload_bytes).ok());
    ShardFrame frame;
    ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
    ASSERT_EQ(frame.type, ShardMessageType::kError)
        << "frame type " << static_cast<uint16_t>(type);
    bool decode_ok = false;
    const Status s = DecodeShardError(frame.payload.data(),
                                      frame.payload.size(), &decode_ok);
    ASSERT_TRUE(decode_ok);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  };
  // The whole write surface: ingest, reconfigure, checkpoint, epoch
  // bump, migration fold-in, retire.
  const uint64_t epoch = 1;
  GraphUpdate u{Edge(2, 3), UpdateType::kInsert};
  std::vector<uint8_t> batch(sizeof(epoch) + sizeof(u));
  std::memcpy(batch.data(), &epoch, sizeof(epoch));
  std::memcpy(batch.data() + sizeof(epoch), &u, sizeof(u));
  expect_refused(ShardMessageType::kUpdateBatch, batch.data(), batch.size());
  expect_refused(ShardMessageType::kFlush, nullptr, 0);
  expect_refused(ShardMessageType::kCheckpoint, nullptr, 0);
  expect_refused(ShardMessageType::kMergeDelta, nullptr, 0);
  expect_refused(ShardMessageType::kShutdown, nullptr, 0);
  // And the refused update never reached the instance...
  ShardFrame frame;
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kStatsEx, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kStatsReply);
  ShardStatsEx stats;
  ASSERT_TRUE(DecodeShardStatsEx(frame.payload.data(),
                                 frame.payload.size(), &stats)
                  .ok());
  EXPECT_EQ(stats.num_updates, 0u);
  // ...and the writer still works after all those refusals.
  IngestOneEdge();
}

TEST_F(ReaderSessionFixture, UnconfiguredShardRefusesReadsButAnswersPing) {
  Start();
  ShardFrame frame;
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kStatsEx, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kError);
  bool decode_ok = false;
  const Status s = DecodeShardError(frame.payload.data(),
                                    frame.payload.size(), &decode_ok);
  ASSERT_TRUE(decode_ok);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  Configure();
}

TEST_F(ReaderSessionFixture, SubscribeStreamsNotifiesOnPositionChanges) {
  Start();
  Configure();
  // kSubscribe converts the reader session into a notify stream; the
  // immediate first kNotify is the 1:1 reply and carries the current
  // position.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kSubscribe, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kNotify);
  ShardStatsEx stats;
  ASSERT_TRUE(DecodeShardStatsEx(frame.payload.data(),
                                 frame.payload.size(), &stats)
                  .ok());
  EXPECT_EQ(stats.num_updates, 0u);
  EXPECT_EQ(stats.epoch, 1u);
  // Writer ingest pushes a second kNotify without the subscriber
  // sending anything.
  IngestOneEdge();
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kNotify);
  ASSERT_TRUE(DecodeShardStatsEx(frame.payload.data(),
                                 frame.payload.size(), &stats)
                  .ok());
  EXPECT_EQ(stats.num_updates, 1u);
  // Subscriber hangup ends the subscription without disturbing the
  // instance (TearDown's writer shutdown proves the writer survived).
  rp_.CloseA();
  reader_thread_.join();
  EXPECT_FALSE(reader_status_.ok());
}

TEST_F(ReaderSessionFixture, SubscribeRefusedOnUnconfiguredShard) {
  Start();
  // Before kConfig there is no position to subscribe to: kError, and
  // the session continues as a plain reader.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kSubscribe, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kError);
  bool decode_ok = false;
  const Status s = DecodeShardError(frame.payload.data(),
                                    frame.payload.size(), &decode_ok);
  ASSERT_TRUE(decode_ok);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // Unconverted: the same session still answers PING, and a subscribe
  // AFTER configuration converts it.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kPing, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kAck);
  Configure();
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kSubscribe, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kNotify);
}

TEST_F(ReaderSessionFixture, WriterSessionCannotSubscribe) {
  Start();
  Configure();
  // Converting the writer's request/reply stream into a push stream
  // would strand the coordinator: kError, session survives.
  ASSERT_TRUE(
      SendFrame(wp_.a(), ShardMessageType::kSubscribe, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(wp_.a(), &frame).ok());
  ASSERT_EQ(frame.type, ShardMessageType::kError);
  bool decode_ok = false;
  const Status s = DecodeShardError(frame.payload.data(),
                                    frame.payload.size(), &decode_ok);
  ASSERT_TRUE(decode_ok);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  IngestOneEdge();  // The writer still writes.
}

TEST_F(ReaderSessionFixture, NotifyIsNeverAValidRequest) {
  Start();
  Configure();
  // kNotify is a reply-type frame; on the writer stream it draws the
  // generic reply-type refusal and the session survives.
  ASSERT_TRUE(
      SendFrame(wp_.a(), ShardMessageType::kNotify, nullptr, 0).ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(wp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  // On a reader session it is read-only-contract refused the same way.
  ASSERT_TRUE(
      SendFrame(rp_.a(), ShardMessageType::kNotify, nullptr, 0).ok());
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  IngestOneEdge();
}

TEST_F(ReaderSessionFixture, OversizedSubscribeFencesTheSession) {
  // The reader receive cap covers kSubscribe like every other reader
  // request: a huge length prefix is a session fence, not a server
  // allocation.
  Start();
  Configure();
  const std::vector<uint8_t> big(kReaderMaxRequestBytes + 1, 0xEE);
  ASSERT_TRUE(SendFrame(rp_.a(), ShardMessageType::kSubscribe, big.data(),
                        big.size())
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  rp_.CloseA();
  reader_thread_.join();
  EXPECT_FALSE(reader_status_.ok());
}

TEST_F(ReaderSessionFixture, OversizedReaderRequestFencesTheSession) {
  // Reader requests are tiny by construction; the per-session receive
  // cap turns a huge length prefix into a clean session fence instead
  // of a server-side allocation.
  Start();
  Configure();
  const std::vector<uint8_t> big(kReaderMaxRequestBytes + 1, 0xEE);
  ASSERT_TRUE(SendFrame(rp_.a(), ShardMessageType::kStatsEx, big.data(),
                        big.size())
                  .ok());
  ShardFrame frame;
  ASSERT_TRUE(RecvFrame(rp_.a(), &frame).ok());
  EXPECT_EQ(frame.type, ShardMessageType::kError);
  rp_.CloseA();
  reader_thread_.join();
  EXPECT_FALSE(reader_status_.ok());
}

}  // namespace
}  // namespace gz
