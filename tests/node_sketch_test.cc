// Tests for NodeSketch (supernode): round structure, cross-node
// linearity (cut sampling), serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/random.h"

namespace gz {
namespace {

NodeSketchParams MakeParams(uint64_t num_nodes, uint64_t seed,
                            int rounds = 0) {
  NodeSketchParams p;
  p.num_nodes = num_nodes;
  p.seed = seed;
  p.rounds = rounds;
  return p;
}

TEST(NodeSketchTest, DefaultRoundsGrowLogarithmically) {
  EXPECT_EQ(NodeSketch::DefaultRounds(2), 2);
  EXPECT_GE(NodeSketch::DefaultRounds(1024), 10);       // >= log2
  EXPECT_LE(NodeSketch::DefaultRounds(1024), 18);       // ~ log1.5
  EXPECT_GT(NodeSketch::DefaultRounds(1 << 20),
            NodeSketch::DefaultRounds(1 << 10));
}

TEST(NodeSketchTest, ExplicitRoundsRespected) {
  NodeSketch s(MakeParams(100, 1, 5));
  EXPECT_EQ(s.rounds(), 5);
}

TEST(NodeSketchTest, UpdateTouchesEveryRound) {
  NodeSketch s(MakeParams(64, 3));
  const uint64_t idx = EdgeToIndex(Edge(3, 9), 64);
  s.Update(idx);
  for (int r = 0; r < s.rounds(); ++r) {
    const SketchSample sample = s.Query(r);
    ASSERT_EQ(sample.kind, SampleKind::kGood) << "round " << r;
    EXPECT_EQ(sample.index, idx);
  }
}

TEST(NodeSketchTest, RoundsUseIndependentHashes) {
  // Different rounds' subsketches must differ structurally even with
  // identical content (different seeds per round).
  NodeSketch s(MakeParams(64, 3));
  ASSERT_GE(s.rounds(), 2);
  s.Update(5);
  EXPECT_FALSE(s.subsketch(0) == s.subsketch(1));
}

TEST(NodeSketchTest, MergeCancelsSharedEdge) {
  // The defining property: merging the endpoints' sketches removes the
  // edge between them (it is internal to the merged component).
  const uint64_t n = 64;
  NodeSketch su(MakeParams(n, 7));
  NodeSketch sv(MakeParams(n, 7));
  const uint64_t idx = EdgeToIndex(Edge(10, 20), n);
  su.Update(idx);  // Edge incident to u.
  sv.Update(idx);  // Same edge incident to v.
  su.Merge(sv);
  for (int r = 0; r < su.rounds(); ++r) {
    EXPECT_EQ(su.Query(r).kind, SampleKind::kZero) << "round " << r;
  }
}

TEST(NodeSketchTest, MergeExposesCutEdgesOnly) {
  // Component {u, v} with internal edge (u,v) plus cut edge (u,w):
  // after merging, only the cut edge is sampleable.
  const uint64_t n = 64;
  NodeSketch su(MakeParams(n, 11));
  NodeSketch sv(MakeParams(n, 11));
  const uint64_t internal = EdgeToIndex(Edge(1, 2), n);
  const uint64_t cut = EdgeToIndex(Edge(1, 50), n);
  su.Update(internal);
  su.Update(cut);
  sv.Update(internal);
  su.Merge(sv);
  for (int r = 0; r < su.rounds(); ++r) {
    const SketchSample sample = su.Query(r);
    ASSERT_EQ(sample.kind, SampleKind::kGood);
    EXPECT_EQ(sample.index, cut);
  }
}

TEST(NodeSketchTest, SharedSeedsAcrossNodes) {
  // Two NodeSketches with the same params must have identical hash
  // structure: sketching the same content yields equal sketches.
  NodeSketch a(MakeParams(32, 5));
  NodeSketch b(MakeParams(32, 5));
  a.Update(3);
  b.Update(3);
  EXPECT_EQ(a, b);
}

TEST(NodeSketchTest, UpdateBatchMatchesLoop) {
  std::vector<uint64_t> indices = {0, 5, 2, 5, 7};
  NodeSketch a(MakeParams(32, 9));
  NodeSketch b(MakeParams(32, 9));
  for (uint64_t idx : indices) a.Update(idx);
  b.UpdateBatch(indices.data(), indices.size());
  EXPECT_EQ(a, b);
}

TEST(NodeSketchTest, ClearResets) {
  NodeSketch a(MakeParams(32, 9));
  NodeSketch empty(MakeParams(32, 9));
  a.Update(7);
  a.Clear();
  EXPECT_EQ(a, empty);
}

TEST(NodeSketchTest, QueryRoundOutOfRangeAborts) {
  NodeSketch s(MakeParams(32, 1, 3));
  EXPECT_DEATH(s.Query(3), "round");
  EXPECT_DEATH(s.Query(-1), "round");
}

TEST(NodeSketchTest, MergeParamMismatchAborts) {
  NodeSketch a(MakeParams(32, 1));
  NodeSketch b(MakeParams(32, 2));  // Different seed.
  EXPECT_DEATH(a.Merge(b), "different parameters");
}

TEST(NodeSketchTest, SerializationRoundTrip) {
  NodeSketch a(MakeParams(256, 13));
  SplitMix64 rng(1);
  for (int i = 0; i < 64; ++i) {
    a.Update(rng.NextBelow(NumPossibleEdges(256)));
  }
  std::vector<uint8_t> buf(a.SerializedSize());
  a.SerializeTo(buf.data());
  NodeSketch b(MakeParams(256, 13));
  b.DeserializeFrom(buf.data());
  EXPECT_EQ(a, b);
}

TEST(NodeSketchTest, SerializedSizeUniformAcrossInstances) {
  NodeSketch a(MakeParams(256, 13));
  NodeSketch b(MakeParams(256, 13));
  a.Update(1);
  EXPECT_EQ(a.SerializedSize(), b.SerializedSize());
  EXPECT_EQ(a.ByteSize(), a.SerializedSize());
}

TEST(NodeSketchTest, ByteSizeScalesWithLog3) {
  // Node sketch = O(log^3 V) bytes: rounds x rows x cols buckets.
  const size_t small = NodeSketch(MakeParams(1 << 8, 1)).ByteSize();
  const size_t big = NodeSketch(MakeParams(1 << 16, 1)).ByteSize();
  EXPECT_GT(big, small);
  EXPECT_LT(big, small * 30);  // Polylog growth, far below linear (256x).
}

class NodeSketchSeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NodeSketchSeedSweepTest, CutSamplingOnRandomStar) {
  // Star component: center c merged with k leaves; remaining cut edges
  // connect to nodes outside the component.
  const uint64_t seed = GetParam();
  const uint64_t n = 128;
  SplitMix64 rng(seed);
  std::vector<NodeSketch> sketches;
  for (int i = 0; i < 6; ++i) sketches.emplace_back(MakeParams(n, 99));

  // Component = nodes {0..5}; internal star edges 0-1..0-5.
  std::vector<uint64_t> internal, cut;
  for (NodeId v = 1; v <= 5; ++v) {
    const uint64_t idx = EdgeToIndex(Edge(0, v), n);
    internal.push_back(idx);
    sketches[0].Update(idx);
    sketches[v].Update(idx);
  }
  // Cut edges from random members to outside nodes.
  for (int i = 0; i < 3; ++i) {
    const NodeId inside = static_cast<NodeId>(rng.NextBelow(6));
    const NodeId outside = static_cast<NodeId>(6 + rng.NextBelow(n - 6));
    const uint64_t idx = EdgeToIndex(Edge(inside, outside), n);
    cut.push_back(idx);
    sketches[inside].Update(idx);
  }
  for (int i = 1; i < 6; ++i) sketches[0].Merge(sketches[i]);

  const SketchSample sample = sketches[0].Query(0);
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_TRUE(std::find(cut.begin(), cut.end(), sample.index) != cut.end())
      << "sampled a non-cut edge";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeSketchSeedSweepTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gz
