// Tests for the on-disk gutter tree: exactly-once delivery, batch
// purity, flush completeness, multi-level recursion. Emission goes
// through pooled UpdateBatch slabs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "buffer/gutter_tree.h"
#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "util/random.h"

namespace gz {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::map<NodeId, std::multiset<uint64_t>> DrainQueue(WorkQueue* q,
                                                     BatchPool* pool) {
  std::map<NodeId, std::multiset<uint64_t>> got;
  while (q->ApproxSize() > 0) {
    UpdateBatch* batch = q->Pop();
    if (batch == nullptr) break;
    for (uint32_t i = 0; i < batch->count; ++i) {
      got[batch->node].insert(batch->edge_indices()[i]);
    }
    pool->Release(batch);
    q->MarkDone();
  }
  return got;
}

GutterTreeParams SmallParams(uint64_t num_nodes, const std::string& file) {
  GutterTreeParams p;
  p.num_nodes = num_nodes;
  p.file_path = file;
  // Tiny buffers force multi-level structure and frequent flushes.
  p.buffer_bytes = 4 * GutterTree::kRecordBytes * 8;
  p.fanout = 4;
  p.leaf_gutter_updates = 8;
  return p;
}

TEST(GutterTreeTest, InitCreatesBackingFile) {
  const std::string path = TempPath("gt_init.bin");
  WorkQueue q(100);
  BatchPool pool(8);
  GutterTree tree(SmallParams(64, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  EXPECT_GT(tree.DiskByteSize(), 0u);
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(GutterTreeTest, InsertBeforeInitAborts) {
  WorkQueue q(100);
  BatchPool pool(8);
  GutterTree tree(SmallParams(8, TempPath("gt_noinit.bin")), &pool, &q);
  EXPECT_DEATH(tree.Insert(0, 1), "Init");
}

TEST(GutterTreeTest, ForceFlushDeliversEverything) {
  const std::string path = TempPath("gt_flush.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(16, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  tree.Insert(3, 100);
  tree.Insert(9, 200);
  tree.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at(3).count(100), 1u);
  EXPECT_EQ(got.at(9).count(200), 1u);
  std::remove(path.c_str());
}

TEST(GutterTreeTest, BatchesAreNodePure) {
  const std::string path = TempPath("gt_pure.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(32, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  SplitMix64 rng(3);
  for (int i = 0; i < 3000; ++i) {
    tree.Insert(static_cast<NodeId>(rng.NextBelow(32)), rng.Next());
  }
  tree.ForceFlush();
  while (q.ApproxSize() > 0) {
    UpdateBatch* batch = q.Pop();
    ASSERT_NE(batch, nullptr);
    // A batch's destination is one node; every index was inserted for it.
    EXPECT_LT(batch->node, 32u);
    EXPECT_GT(batch->count, 0u);
    pool.Release(batch);
    q.MarkDone();
  }
  std::remove(path.c_str());
}

TEST(GutterTreeTest, InsertBatchMatchesPerUpdateInserts) {
  const std::string path = TempPath("gt_bulk.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(16, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());

  std::vector<GraphUpdate> updates;
  SplitMix64 rng(42);
  for (int i = 0; i < 500; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBelow(16));
    NodeId b = static_cast<NodeId>(rng.NextBelow(16));
    if (a == b) b = (b + 1) % 16;
    updates.push_back({Edge(a, b), UpdateType::kInsert});
  }
  tree.InsertBatch(updates.data(), updates.size());
  tree.ForceFlush();
  const auto got = DrainQueue(&q, &pool);

  std::map<NodeId, std::multiset<uint64_t>> want;
  for (const GraphUpdate& u : updates) {
    const uint64_t idx = EdgeToIndex(u.edge, 16);
    want[u.edge.u].insert(idx);
    want[u.edge.v].insert(idx);
  }
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

// Sweep tree geometries: all must deliver every update exactly once.
class GutterTreeDeliveryTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, size_t, size_t, int>> {};

TEST_P(GutterTreeDeliveryTest, DeliversEveryUpdateExactlyOnce) {
  const auto [num_nodes, fanout, leaf_updates, updates] = GetParam();
  const std::string path = TempPath(
      "gt_deliver_" + std::to_string(num_nodes) + "_" +
      std::to_string(fanout) + "_" + std::to_string(leaf_updates) + ".bin");
  WorkQueue q(1 << 16);
  BatchPool pool(static_cast<uint32_t>(leaf_updates));
  GutterTreeParams p;
  p.num_nodes = num_nodes;
  p.file_path = path;
  p.buffer_bytes = GutterTree::kRecordBytes * fanout * 4;
  p.fanout = fanout;
  p.leaf_gutter_updates = leaf_updates;
  GutterTree tree(p, &pool, &q);
  ASSERT_TRUE(tree.Init().ok());

  SplitMix64 rng(num_nodes * 31 + fanout);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < updates; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(num_nodes));
    const uint64_t idx = rng.NextBelow(1 << 30);
    tree.Insert(node, idx);
    sent[node].insert(idx);
  }
  tree.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  EXPECT_EQ(got, sent);
  EXPECT_GT(tree.bytes_written(), 0u);
  EXPECT_EQ(pool.outstanding(), 0);  // Every emitted slab came back.
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GutterTreeDeliveryTest,
    ::testing::Values(
        std::make_tuple(4ULL, 2UL, 4UL, 500),      // Deep tree, tiny leaves.
        std::make_tuple(64ULL, 4UL, 8UL, 4000),    // Three levels.
        std::make_tuple(64ULL, 64UL, 16UL, 4000),  // Root -> leaves direct.
        std::make_tuple(300ULL, 8UL, 32UL, 8000),  // Uneven ranges.
        std::make_tuple(1000ULL, 16UL, 8UL, 20000)));

TEST(GutterTreeTest, SkewedLoadOnOneNode) {
  // Everything lands in one leaf gutter: exercises the emit-combined
  // path repeatedly.
  const std::string path = TempPath("gt_skew.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(64, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  for (int i = 0; i < 1000; ++i) tree.Insert(7, i);
  tree.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.at(7).size(), 1000u);
  std::remove(path.c_str());
}

class GutterTreeGroupedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GutterTreeGroupedTest, GroupedLeavesDeliverExactlyOnce) {
  const uint64_t group_size = GetParam();
  const std::string path =
      TempPath("gt_grouped_" + std::to_string(group_size) + ".bin");
  WorkQueue q(1 << 16);
  BatchPool pool(16);
  GutterTreeParams p;
  p.num_nodes = 100;
  p.file_path = path;
  p.buffer_bytes = GutterTree::kRecordBytes * 64;
  p.fanout = 4;
  p.leaf_gutter_updates = 16;
  p.nodes_per_group = group_size;
  GutterTree tree(p, &pool, &q);
  ASSERT_TRUE(tree.Init().ok());

  SplitMix64 rng(group_size * 13 + 3);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < 8000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(100));
    const uint64_t idx = rng.NextBelow(1 << 28);
    tree.Insert(node, idx);
    sent[node].insert(idx);
  }
  tree.ForceFlush();
  EXPECT_EQ(DrainQueue(&q, &pool), sent);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GutterTreeGroupedTest,
                         ::testing::Values(1, 3, 8, 100));

TEST(GutterTreeTest, SingleNodeGraph) {
  const std::string path = TempPath("gt_single.bin");
  WorkQueue q(100);
  BatchPool pool(4);
  GutterTreeParams p;
  p.num_nodes = 1;
  p.file_path = path;
  p.buffer_bytes = GutterTree::kRecordBytes * 32;
  p.fanout = 4;
  p.leaf_gutter_updates = 4;
  GutterTree tree(p, &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  for (int i = 0; i < 10; ++i) tree.Insert(0, i);
  tree.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.at(0).size(), 10u);
  std::remove(path.c_str());
}

TEST(GutterTreeTest, IoCountersMonotone) {
  const std::string path = TempPath("gt_io.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(16, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  uint64_t last_written = 0;
  SplitMix64 rng(7);
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 500; ++i) {
      tree.Insert(static_cast<NodeId>(rng.NextBelow(16)), rng.Next());
    }
    tree.ForceFlush();
    DrainQueue(&q, &pool);
    EXPECT_GE(tree.bytes_written(), last_written);
    last_written = tree.bytes_written();
  }
  EXPECT_GT(last_written, 0u);
  std::remove(path.c_str());
}

TEST(GutterTreeTest, DoubleInitFails) {
  const std::string path = TempPath("gt_double.bin");
  WorkQueue q(10);
  BatchPool pool(8);
  GutterTree tree(SmallParams(8, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  EXPECT_EQ(tree.Init().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(GutterTreeTest, RepeatedFlushCyclesStayConsistent) {
  // Ingest / flush / ingest again: the tree must keep delivering
  // correctly across ForceFlush cycles (mid-stream query pattern).
  const std::string path = TempPath("gt_cycles.bin");
  WorkQueue q(1 << 14);
  BatchPool pool(8);
  GutterTree tree(SmallParams(32, path), &pool, &q);
  ASSERT_TRUE(tree.Init().ok());
  SplitMix64 rng(17);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  std::map<NodeId, std::multiset<uint64_t>> got;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 500; ++i) {
      const NodeId node = static_cast<NodeId>(rng.NextBelow(32));
      const uint64_t idx = rng.Next();
      tree.Insert(node, idx);
      sent[node].insert(idx);
    }
    tree.ForceFlush();
    for (auto& [node, indices] : DrainQueue(&q, &pool)) {
      got[node].insert(indices.begin(), indices.end());
    }
    EXPECT_EQ(got, sent) << "cycle " << cycle;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gz
