// Tests for the standard (a, b, c)-bucket l0-sampler baseline.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sketch/l0_standard.h"
#include "util/random.h"

namespace gz {
namespace {

L0SketchParams MakeParams(uint64_t n, uint64_t seed, int cols = 7) {
  L0SketchParams p;
  p.vector_len = n;
  p.seed = seed;
  p.cols = cols;
  return p;
}

TEST(StandardL0Test, EmptyIsZero) {
  StandardL0Sketch s(MakeParams(1000, 1));
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(StandardL0Test, SingletonRecovered) {
  for (uint64_t idx : {0ULL, 1ULL, 999ULL}) {
    StandardL0Sketch s(MakeParams(1000, 2));
    s.Update(idx, 1);
    const SketchSample sample = s.Query();
    ASSERT_EQ(sample.kind, SampleKind::kGood);
    EXPECT_EQ(sample.index, idx);
  }
}

TEST(StandardL0Test, NegativeSingletonRecovered) {
  // Entry value -1 (characteristic-vector semantics for the larger
  // endpoint) must also be sampleable.
  StandardL0Sketch s(MakeParams(1000, 3));
  s.Update(77, -1);
  const SketchSample sample = s.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, 77u);
}

TEST(StandardL0Test, InsertDeleteCancels) {
  StandardL0Sketch s(MakeParams(1000, 4));
  s.Update(123, 1);
  s.Update(123, -1);
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(StandardL0Test, FieldWidthSelection) {
  EXPECT_FALSE(StandardL0Sketch(MakeParams(1000, 1)).wide());
  EXPECT_FALSE(
      StandardL0Sketch(MakeParams(StandardL0Sketch::kNarrowLimit - 1, 1))
          .wide());
  EXPECT_TRUE(
      StandardL0Sketch(MakeParams(StandardL0Sketch::kNarrowLimit, 1)).wide());
  EXPECT_TRUE(StandardL0Sketch(MakeParams(1ULL << 40, 1)).wide());
}

TEST(StandardL0Test, WideRegimeRecovers) {
  const uint64_t n = 1ULL << 40;
  StandardL0Sketch s(MakeParams(n, 5));
  s.Update(n - 1, 1);
  const SketchSample sample = s.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, n - 1);
}

TEST(StandardL0Test, BucketBytesReproducePaperRatios) {
  // Narrow buckets are 24 B (2x CubeSketch's 12 B), wide are 48 B (4x).
  const size_t narrow = StandardL0Sketch(MakeParams(1000, 1)).ByteSize();
  const size_t wide = StandardL0Sketch(MakeParams(1ULL << 32, 1)).ByteSize();
  // Same geometry would give wide = 2x narrow per bucket; more rows for
  // the longer vector push it higher still.
  EXPECT_GT(wide, narrow * 2);
}

class StandardL0RecoveryTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, uint64_t>> {};

TEST_P(StandardL0RecoveryTest, RecoversSupportMember) {
  const auto [vector_len, support, seed] = GetParam();
  SplitMix64 rng(seed * 31 + 7);
  int failures = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    StandardL0Sketch s(MakeParams(vector_len, seed * 517 + trial));
    std::set<uint64_t> in;
    while (in.size() < static_cast<size_t>(support)) {
      in.insert(rng.NextBelow(vector_len));
    }
    for (uint64_t idx : in) s.Update(idx, 1);
    const SketchSample sample = s.Query();
    if (sample.kind == SampleKind::kFail) {
      ++failures;
      continue;
    }
    ASSERT_EQ(sample.kind, SampleKind::kGood);
    EXPECT_TRUE(in.count(sample.index) > 0);
  }
  EXPECT_LE(failures, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StandardL0RecoveryTest,
    ::testing::Combine(::testing::Values<uint64_t>(100, 100000,
                                                   1ULL << 33),
                       ::testing::Values(1, 3, 20),
                       ::testing::Values<uint64_t>(1, 2)));

TEST(StandardL0Test, MergeIsLinear) {
  // Characteristic-vector cancellation: +1 in one sketch and -1 in the
  // other cancel after merging.
  const uint64_t n = 10000;
  StandardL0Sketch a(MakeParams(n, 9));
  StandardL0Sketch b(MakeParams(n, 9));
  a.Update(5, 1);
  a.Update(100, 1);   // Survives: only in a.
  b.Update(5, -1);
  a.Merge(b);
  const SketchSample sample = a.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, 100u);
}

TEST(StandardL0Test, MergeToZero) {
  const uint64_t n = 10000;
  StandardL0Sketch a(MakeParams(n, 10));
  StandardL0Sketch b(MakeParams(n, 10));
  a.Update(42, 1);
  b.Update(42, -1);
  a.Merge(b);
  EXPECT_EQ(a.Query().kind, SampleKind::kZero);
}

TEST(StandardL0Test, InvalidDeltaAborts) {
  StandardL0Sketch s(MakeParams(100, 1));
  EXPECT_DEATH(s.Update(5, 2), "delta");
}

TEST(StandardL0Test, MultiplicityTwoStillRecoverable) {
  // Entry value 2 at one index: a/b = idx still resolves, checksum
  // c = 2*r^idx matches b*r^value.
  StandardL0Sketch s(MakeParams(1000, 21));
  s.Update(55, 1);
  s.Update(55, 1);
  const SketchSample sample = s.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, 55u);
}

TEST(StandardL0Test, FullCancellationAfterManyUpdates) {
  StandardL0Sketch s(MakeParams(100000, 22));
  SplitMix64 rng(5);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 200; ++i) {
    const uint64_t idx = rng.NextBelow(100000);
    inserted.push_back(idx);
    s.Update(idx, 1);
  }
  for (uint64_t idx : inserted) s.Update(idx, -1);
  EXPECT_EQ(s.Query().kind, SampleKind::kZero);
}

TEST(StandardL0Test, WideMergeCancels) {
  const uint64_t n = 1ULL << 35;
  StandardL0Sketch a(MakeParams(n, 23));
  StandardL0Sketch b(MakeParams(n, 23));
  a.Update(n - 5, 1);
  a.Update(77, 1);
  b.Update(n - 5, -1);
  a.Merge(b);
  const SketchSample sample = a.Query();
  ASSERT_EQ(sample.kind, SampleKind::kGood);
  EXPECT_EQ(sample.index, 77u);
}

TEST(StandardL0Test, FailureRateBelowDelta) {
  SplitMix64 rng(777);
  const uint64_t n = 100000;
  int failures = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    StandardL0Sketch s(MakeParams(n, 5000 + t));
    const int support = 1 + static_cast<int>(rng.NextBelow(200));
    std::set<uint64_t> in;
    while (in.size() < static_cast<size_t>(support)) {
      in.insert(rng.NextBelow(n));
    }
    for (uint64_t idx : in) s.Update(idx, 1);
    if (s.Query().kind == SampleKind::kFail) ++failures;
  }
  EXPECT_LE(failures, 8);  // Expected ~2 at delta = 1/100.
}

}  // namespace
}  // namespace gz
