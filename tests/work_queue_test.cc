// Tests for the bounded MPMC work queue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/work_queue.h"

namespace gz {
namespace {

NodeBatch MakeBatch(NodeId node, std::vector<uint64_t> indices) {
  NodeBatch b;
  b.node = node;
  b.edge_indices = std::move(indices);
  return b;
}

TEST(WorkQueueTest, FifoSingleThread) {
  WorkQueue q(10);
  ASSERT_TRUE(q.Push(MakeBatch(1, {10})));
  ASSERT_TRUE(q.Push(MakeBatch(2, {20})));
  NodeBatch out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.node, 1u);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.node, 2u);
}

TEST(WorkQueueTest, InFlightAccounting) {
  WorkQueue q(4);
  EXPECT_EQ(q.InFlight(), 0);
  q.Push(MakeBatch(1, {}));
  q.Push(MakeBatch(2, {}));
  EXPECT_EQ(q.InFlight(), 2);
  NodeBatch out;
  q.Pop(&out);
  EXPECT_EQ(q.InFlight(), 2);  // Popped but not done.
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 1);
  q.Pop(&out);
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 0);
}

TEST(WorkQueueTest, CloseUnblocksConsumers) {
  WorkQueue q(4);
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    NodeBatch out;
    while (q.Pop(&out)) ++popped;
  });
  q.Push(MakeBatch(1, {}));
  q.Push(MakeBatch(2, {}));
  q.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 2);  // Drains remaining batches, then exits.
}

TEST(WorkQueueTest, PushAfterCloseFails) {
  WorkQueue q(4);
  q.Close();
  EXPECT_FALSE(q.Push(MakeBatch(1, {})));
}

TEST(WorkQueueTest, ReopenAllowsAnotherPhase) {
  WorkQueue q(4);
  q.Push(MakeBatch(1, {}));
  NodeBatch out;
  q.Pop(&out);
  q.Close();
  q.Reopen();
  EXPECT_TRUE(q.Push(MakeBatch(2, {})));
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.node, 2u);
}

TEST(WorkQueueTest, BoundedCapacityBlocksProducer) {
  WorkQueue q(2);
  ASSERT_TRUE(q.Push(MakeBatch(1, {})));
  ASSERT_TRUE(q.Push(MakeBatch(2, {})));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(MakeBatch(3, {}));
    third_pushed = true;
  });
  // Give the producer a moment: it must be blocked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  NodeBatch out;
  q.Pop(&out);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(WorkQueueTest, CloseUnblocksBlockedProducer) {
  WorkQueue q(1);
  ASSERT_TRUE(q.Push(MakeBatch(1, {})));
  std::atomic<int> push_result{-1};
  std::thread producer([&] {
    push_result = q.Push(MakeBatch(2, {})) ? 1 : 0;  // Blocks: queue full.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(push_result.load(), -1);
  q.Close();
  producer.join();
  EXPECT_EQ(push_result.load(), 0);  // Rejected after close.
}

TEST(WorkQueueTest, BatchContentSurvivesTransit) {
  WorkQueue q(4);
  std::vector<uint64_t> payload = {7, 8, 9, 1ULL << 40};
  q.Push(MakeBatch(3, payload));
  NodeBatch out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.node, 3u);
  EXPECT_EQ(out.edge_indices, payload);
}

TEST(WorkQueueTest, ManyProducersManyConsumers) {
  WorkQueue q(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<uint64_t> sum_consumed{0};
  std::atomic<int> count_consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      NodeBatch out;
      while (q.Pop(&out)) {
        sum_consumed += out.edge_indices[0];
        ++count_consumed;
        q.MarkDone();
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<uint64_t> sum_produced{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * 10000 + i;
        q.Push(MakeBatch(static_cast<NodeId>(p), {value}));
        sum_produced += value;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(count_consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum_consumed.load(), sum_produced.load());
  EXPECT_EQ(q.InFlight(), 0);
}

}  // namespace
}  // namespace gz
