// Tests for the bounded MPMC work queue (ring of pooled UpdateBatch
// pointers) and its in-flight lifecycle accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/update_batch.h"
#include "buffer/work_queue.h"

namespace gz {
namespace {

UpdateBatch* MakeBatch(BatchPool* pool, NodeId node,
                       std::vector<uint64_t> indices) {
  UpdateBatch* b = pool->Acquire();
  b->node = node;
  for (uint64_t idx : indices) b->Append(idx);
  return b;
}

std::vector<uint64_t> Payload(const UpdateBatch* b) {
  return std::vector<uint64_t>(b->edge_indices(),
                               b->edge_indices() + b->count);
}

TEST(WorkQueueTest, FifoSingleThread) {
  BatchPool pool(8);
  WorkQueue q(10);
  ASSERT_TRUE(q.Push(MakeBatch(&pool, 1, {10})));
  ASSERT_TRUE(q.Push(MakeBatch(&pool, 2, {20})));
  UpdateBatch* out = q.Pop();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->node, 1u);
  pool.Release(out);
  out = q.Pop();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->node, 2u);
  pool.Release(out);
}

TEST(WorkQueueTest, InFlightAccounting) {
  BatchPool pool(8);
  WorkQueue q(4);
  EXPECT_EQ(q.InFlight(), 0);
  q.Push(MakeBatch(&pool, 1, {}));
  q.Push(MakeBatch(&pool, 2, {}));
  EXPECT_EQ(q.InFlight(), 2);
  pool.Release(q.Pop());
  EXPECT_EQ(q.InFlight(), 2);  // Popped but not done.
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 1);
  pool.Release(q.Pop());
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 0);
}

TEST(WorkQueueTest, CloseUnblocksConsumers) {
  BatchPool pool(8);
  WorkQueue q(4);
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    UpdateBatch* out = nullptr;
    while ((out = q.Pop()) != nullptr) {
      pool.Release(out);
      ++popped;
    }
  });
  q.Push(MakeBatch(&pool, 1, {}));
  q.Push(MakeBatch(&pool, 2, {}));
  q.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 2);  // Drains remaining batches, then exits.
}

TEST(WorkQueueTest, PushAfterCloseFails) {
  BatchPool pool(8);
  WorkQueue q(4);
  q.Close();
  UpdateBatch* b = MakeBatch(&pool, 1, {});
  EXPECT_FALSE(q.Push(b));
  pool.Release(b);  // Ownership stayed with the caller.
}

// Regression (lifecycle accounting): a Push that fails because the
// queue is closed must NOT bump the in-flight counter — the batch was
// never enqueued, so counting it would make a later Drain barrier wait
// forever for a MarkDone that can't come.
TEST(WorkQueueTest, RejectedPushLeavesInFlightUntouched) {
  BatchPool pool(8);
  WorkQueue q(2);
  q.Push(MakeBatch(&pool, 1, {}));
  EXPECT_EQ(q.InFlight(), 1);
  q.Close();
  UpdateBatch* rejected = MakeBatch(&pool, 2, {});
  EXPECT_FALSE(q.Push(rejected));
  EXPECT_EQ(q.InFlight(), 1);  // Unchanged: only the enqueued batch.
  pool.Release(rejected);
  // Drain the one real batch; in-flight must reach exactly zero.
  pool.Release(q.Pop());
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 0);
}

// Same regression for a producer that was *blocked on a full queue*
// when Close() arrived: it must give up, return false, and leave the
// counter at the number of actually-enqueued batches.
TEST(WorkQueueTest, BlockedPushRejectedByCloseDoesNotLeakInFlight) {
  BatchPool pool(8);
  WorkQueue q(1);
  ASSERT_TRUE(q.Push(MakeBatch(&pool, 1, {})));
  std::atomic<int> push_result{-1};
  UpdateBatch* blocked = MakeBatch(&pool, 2, {});
  std::thread producer([&] {
    push_result = q.Push(blocked) ? 1 : 0;  // Blocks: queue full.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(push_result.load(), -1);
  q.Close();
  producer.join();
  EXPECT_EQ(push_result.load(), 0);
  EXPECT_EQ(q.InFlight(), 1);  // Only the first batch counts.
  pool.Release(blocked);
  pool.Release(q.Pop());
  q.MarkDone();
  EXPECT_EQ(q.InFlight(), 0);
}

TEST(WorkQueueTest, ReopenAllowsAnotherPhase) {
  BatchPool pool(8);
  WorkQueue q(4);
  q.Push(MakeBatch(&pool, 1, {}));
  pool.Release(q.Pop());
  q.Close();
  q.Reopen();
  EXPECT_TRUE(q.Push(MakeBatch(&pool, 2, {})));
  UpdateBatch* out = q.Pop();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->node, 2u);
  pool.Release(out);
}

TEST(WorkQueueTest, BoundedCapacityBlocksProducer) {
  BatchPool pool(8);
  WorkQueue q(2);
  ASSERT_TRUE(q.Push(MakeBatch(&pool, 1, {})));
  ASSERT_TRUE(q.Push(MakeBatch(&pool, 2, {})));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(MakeBatch(&pool, 3, {}));
    third_pushed = true;
  });
  // Give the producer a moment: it must be blocked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  pool.Release(q.Pop());
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  while (q.ApproxSize() > 0) pool.Release(q.Pop());
}

TEST(WorkQueueTest, BatchContentSurvivesTransit) {
  BatchPool pool(8);
  WorkQueue q(4);
  const std::vector<uint64_t> payload = {7, 8, 9, 1ULL << 40};
  q.Push(MakeBatch(&pool, 3, payload));
  UpdateBatch* out = q.Pop();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->node, 3u);
  EXPECT_EQ(Payload(out), payload);
  pool.Release(out);
}

TEST(WorkQueueTest, ManyProducersManyConsumers) {
  BatchPool pool(8);
  WorkQueue q(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<uint64_t> sum_consumed{0};
  std::atomic<int> count_consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      UpdateBatch* out = nullptr;
      while ((out = q.Pop()) != nullptr) {
        sum_consumed += out->edge_indices()[0];
        ++count_consumed;
        pool.Release(out);
        q.MarkDone();
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<uint64_t> sum_produced{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * 10000 + i;
        q.Push(MakeBatch(&pool, static_cast<NodeId>(p), {value}));
        sum_produced += value;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(count_consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum_consumed.load(), sum_produced.load());
  EXPECT_EQ(q.InFlight(), 0);
  EXPECT_EQ(pool.outstanding(), 0);  // Every slab came back.
}

}  // namespace
}  // namespace gz
