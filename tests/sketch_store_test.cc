// Tests for the in-memory and on-disk sketch stores.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/sketch_store.h"
#include "util/random.h"

namespace gz {
namespace {

NodeSketchParams MakeParams(uint64_t num_nodes, uint64_t seed) {
  NodeSketchParams p;
  p.num_nodes = num_nodes;
  p.seed = seed;
  p.rounds = 4;  // Keep tests fast.
  return p;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

NodeSketch SketchOf(const NodeSketchParams& params,
                    const std::vector<uint64_t>& indices) {
  NodeSketch s(params);
  s.UpdateBatch(indices.data(), indices.size());
  return s;
}

class SketchStoreTest : public ::testing::TestWithParam<bool> {
 protected:
  // Builds a RAM or disk store according to the param.
  std::unique_ptr<SketchStore> MakeStore(const NodeSketchParams& params,
                                         const char* name) {
    if (!GetParam()) return std::make_unique<InMemorySketchStore>(params);
    auto store = std::make_unique<OnDiskSketchStore>(params, TempPath(name));
    GZ_CHECK_OK(store->Init());
    return store;
  }
};

TEST_P(SketchStoreTest, FreshStoreHoldsEmptySketches) {
  const NodeSketchParams params = MakeParams(8, 1);
  auto store = MakeStore(params, "store_fresh.bin");
  NodeSketch out(store->params());
  store->Load(3, &out);
  NodeSketch empty(store->params());
  EXPECT_EQ(out, empty);
}

TEST_P(SketchStoreTest, MergeDeltaAccumulates) {
  const NodeSketchParams params = MakeParams(8, 2);
  auto store = MakeStore(params, "store_acc.bin");
  const NodeSketchParams real = store->params();

  store->MergeDelta(2, SketchOf(real, {1, 5}));
  store->MergeDelta(2, SketchOf(real, {9}));

  NodeSketch expect = SketchOf(real, {1, 5, 9});
  NodeSketch got(real);
  store->Load(2, &got);
  EXPECT_EQ(got, expect);
}

TEST_P(SketchStoreTest, NodesAreIndependent) {
  const NodeSketchParams params = MakeParams(4, 3);
  auto store = MakeStore(params, "store_indep.bin");
  const NodeSketchParams real = store->params();
  store->MergeDelta(0, SketchOf(real, {1}));
  store->MergeDelta(3, SketchOf(real, {2}));

  NodeSketch got0(real), got3(real), empty(real);
  store->Load(0, &got0);
  store->Load(3, &got3);
  EXPECT_EQ(got0, SketchOf(real, {1}));
  EXPECT_EQ(got3, SketchOf(real, {2}));
  NodeSketch got1(real);
  store->Load(1, &got1);
  EXPECT_EQ(got1, empty);
}

TEST_P(SketchStoreTest, XorCancellation) {
  const NodeSketchParams params = MakeParams(4, 4);
  auto store = MakeStore(params, "store_cancel.bin");
  const NodeSketchParams real = store->params();
  store->MergeDelta(1, SketchOf(real, {3}));
  store->MergeDelta(1, SketchOf(real, {3}));  // Same toggle cancels.
  NodeSketch got(real), empty(real);
  store->Load(1, &got);
  EXPECT_EQ(got, empty);
}

TEST_P(SketchStoreTest, ConcurrentMergesMatchSerial) {
  const NodeSketchParams params = MakeParams(16, 5);
  auto store = MakeStore(params, "store_conc.bin");
  const NodeSketchParams real = store->params();

  // 4 threads x 50 deltas, all hammering the same few nodes.
  constexpr int kThreads = 4;
  constexpr int kDeltas = 50;
  std::vector<std::vector<std::vector<uint64_t>>> plans(kThreads);
  SplitMix64 rng(99);
  const uint64_t max_index = NumPossibleEdges(16);
  for (int t = 0; t < kThreads; ++t) {
    for (int d = 0; d < kDeltas; ++d) {
      std::vector<uint64_t> batch;
      for (int i = 0; i < 20; ++i) batch.push_back(rng.NextBelow(max_index));
      plans[t].push_back(std::move(batch));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& batch : plans[t]) {
        const NodeId node = static_cast<NodeId>(batch[0] % 3);
        store->MergeDelta(node, SketchOf(real, batch));
      }
    });
  }
  for (auto& t : threads) t.join();

  // Serial reference.
  std::vector<NodeSketch> expect;
  for (int i = 0; i < 3; ++i) expect.emplace_back(real);
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& batch : plans[t]) {
      const NodeId node = static_cast<NodeId>(batch[0] % 3);
      expect[node].Merge(SketchOf(real, batch));
    }
  }
  for (NodeId node = 0; node < 3; ++node) {
    NodeSketch got(real);
    store->Load(node, &got);
    EXPECT_EQ(got, expect[node]) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(RamAndDisk, SketchStoreTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Disk" : "Ram";
                         });

TEST_P(SketchStoreTest, StoreOverwrites) {
  const NodeSketchParams params = MakeParams(6, 9);
  auto store = MakeStore(params, "store_overwrite.bin");
  const NodeSketchParams real = store->params();
  store->MergeDelta(2, SketchOf(real, {1, 2}));
  // Overwrite with a fresh sketch: prior contents must vanish.
  store->Store(2, SketchOf(real, {4}));
  NodeSketch got(real);
  store->Load(2, &got);
  EXPECT_EQ(got, SketchOf(real, {4}));
}

TEST(OnDiskSketchStoreTest, DiskByteSizeMatchesRecords) {
  const NodeSketchParams params = MakeParams(10, 6);
  OnDiskSketchStore store(params, TempPath("store_size.bin"));
  ASSERT_TRUE(store.Init().ok());
  NodeSketch prototype(store.params());
  EXPECT_EQ(store.DiskByteSize(), prototype.SerializedSize() * 10);
  // RAM footprint excludes the sketches themselves.
  EXPECT_LT(store.RamByteSize(), store.DiskByteSize());
}

TEST(OnDiskSketchStoreTest, TracksIoCounters) {
  const NodeSketchParams params = MakeParams(4, 7);
  OnDiskSketchStore store(params, TempPath("store_io.bin"));
  ASSERT_TRUE(store.Init().ok());
  store.MergeDelta(0, SketchOf(store.params(), {3}));
  EXPECT_GT(store.bytes_read(), 0u);
  EXPECT_GT(store.bytes_written(), 0u);
}

TEST(InMemorySketchStoreTest, RamByteSizeCountsSketches) {
  const NodeSketchParams params = MakeParams(8, 8);
  InMemorySketchStore store(params);
  NodeSketch prototype(store.params());
  EXPECT_GE(store.RamByteSize(), prototype.ByteSize() * 8);
}

}  // namespace
}  // namespace gz
