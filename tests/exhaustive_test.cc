// Exhaustive small-universe tests: enumerate *every* input in a small
// domain and check the full contract. These catch boundary bugs that
// randomized sweeps miss.
#include <gtest/gtest.h>

#include <bitset>
#include <vector>

#include "algos/bipartiteness.h"
#include "algos/bridges.h"
#include "core/connectivity.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "dsu/dsu.h"
#include "sketch/cube_sketch.h"
#include "sketch/l0_standard.h"
#include "sketch/node_sketch.h"
#include "stream/stream_types.h"

namespace gz {
namespace {

// ---- Every subset of a tiny vector universe ------------------------------

TEST(ExhaustiveTest, CubeSketchAllSubsetsOfSmallUniverse) {
  // Universe size 8: all 255 nonempty subsets. Soundness must be
  // perfect (a Good answer is a member); completeness failures must be
  // rare in aggregate.
  const uint64_t n = 8;
  int failures = 0;
  for (uint32_t mask = 1; mask < 256; ++mask) {
    CubeSketchParams p;
    p.vector_len = n;
    p.seed = 1000 + mask;
    CubeSketch s(p);
    for (uint64_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.Update(i);
    }
    const SketchSample sample = s.Query();
    ASSERT_NE(sample.kind, SampleKind::kZero) << "mask " << mask;
    if (sample.kind == SampleKind::kFail) {
      ++failures;
      continue;
    }
    EXPECT_TRUE(mask & (1u << sample.index))
        << "non-member returned for mask " << mask;
  }
  EXPECT_LE(failures, 8);  // delta = 1/100 over 255 trials.
}

TEST(ExhaustiveTest, CubeSketchEverySubsetCancelsToZero) {
  // Inserting a subset then toggling it again is always exactly zero.
  const uint64_t n = 8;
  for (uint32_t mask = 1; mask < 256; ++mask) {
    CubeSketchParams p;
    p.vector_len = n;
    p.seed = 7;
    CubeSketch s(p);
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) s.Update(i);
      }
    }
    EXPECT_EQ(s.Query().kind, SampleKind::kZero) << "mask " << mask;
  }
}

TEST(ExhaustiveTest, StandardL0AllSignedSubsets) {
  // Universe 5, each coordinate in {-1, 0, +1}: all 3^5 = 243 vectors.
  const uint64_t n = 5;
  int failures = 0;
  int nonzero_cases = 0;
  int trit[5];
  for (int code = 0; code < 243; ++code) {
    int c = code;
    bool any = false;
    for (int i = 0; i < 5; ++i) {
      trit[i] = (c % 3) - 1;  // -1, 0, +1
      c /= 3;
      any |= trit[i] != 0;
    }
    L0SketchParams p;
    p.vector_len = n;
    p.seed = 5000 + code;
    StandardL0Sketch s(p);
    for (uint64_t i = 0; i < n; ++i) {
      if (trit[i] != 0) s.Update(i, trit[i]);
    }
    const SketchSample sample = s.Query();
    if (!any) {
      EXPECT_EQ(sample.kind, SampleKind::kZero) << "code " << code;
      continue;
    }
    ++nonzero_cases;
    ASSERT_NE(sample.kind, SampleKind::kZero) << "code " << code;
    if (sample.kind == SampleKind::kFail) {
      ++failures;
      continue;
    }
    EXPECT_NE(trit[sample.index], 0) << "code " << code;
  }
  EXPECT_GT(nonzero_cases, 200);
  EXPECT_LE(failures, 8);
}

// ---- Every graph on a tiny vertex set ------------------------------------

TEST(ExhaustiveTest, BoruvkaMatchesDsuOnAllFourNodeGraphs) {
  // 4 nodes, 6 possible edges: all 64 graphs.
  const uint64_t n = 4;
  for (uint32_t mask = 0; mask < 64; ++mask) {
    NodeSketchParams p;
    p.num_nodes = n;
    p.seed = 300 + mask;
    std::vector<NodeSketch> sketches;
    for (uint64_t i = 0; i < n; ++i) sketches.emplace_back(p);
    Dsu truth(n);
    for (uint64_t idx = 0; idx < 6; ++idx) {
      if (!(mask & (1u << idx))) continue;
      const Edge e = IndexToEdge(idx, n);
      sketches[e.u].Update(idx);
      sketches[e.v].Update(idx);
      truth.Union(e.u, e.v);
    }
    const ConnectivityResult r = BoruvkaConnectivity(&sketches);
    ASSERT_FALSE(r.failed) << "mask " << mask;
    EXPECT_EQ(r.num_components, truth.num_sets()) << "mask " << mask;
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(r.Connected(i, j), truth.Find(i) == truth.Find(j))
            << "mask " << mask << " pair " << i << "," << j;
      }
    }
  }
}

TEST(ExhaustiveTest, BridgesMatchNaiveOnAllFiveNodeGraphs) {
  // 5 nodes, 10 possible edges: all 1024 graphs, every edge classified.
  const uint64_t n = 5;
  for (uint32_t mask = 0; mask < 1024; ++mask) {
    EdgeList edges;
    for (uint64_t idx = 0; idx < 10; ++idx) {
      if (mask & (1u << idx)) edges.push_back(IndexToEdge(idx, n));
    }
    auto component_count = [&](const EdgeList& list) {
      Dsu dsu(n);
      for (const Edge& e : list) dsu.Union(e.u, e.v);
      return dsu.num_sets();
    };
    const size_t base = component_count(edges);
    const EdgeList bridges = FindBridges(n, edges);
    std::bitset<10> bridge_bits;
    for (const Edge& b : bridges) bridge_bits.set(EdgeToIndex(b, n));

    for (size_t skip = 0; skip < edges.size(); ++skip) {
      EdgeList without;
      for (size_t i = 0; i < edges.size(); ++i) {
        if (i != skip) without.push_back(edges[i]);
      }
      const bool is_bridge = component_count(without) > base;
      EXPECT_EQ(bridge_bits.test(EdgeToIndex(edges[skip], n)), is_bridge)
          << "mask " << mask << " edge " << edges[skip].u << "-"
          << edges[skip].v;
    }
  }
}

// ---- Every graph, sharded, in both execution modes -----------------------

class ExhaustiveShardedTest
    : public ::testing::TestWithParam<ShardedGraphZeppelin::Mode> {};

TEST_P(ExhaustiveShardedTest, ShardedMatchesDsuOnAllFourNodeGraphs) {
  // 4 nodes, 6 possible edges: all 64 graphs through 3 shards. One
  // instance serves every mask — after each query the mask's edges are
  // inserted again, which XOR-cancels the sketch state back to the
  // empty graph (linearity), so process mode spawns its worker
  // processes once, not 64 times. The seed is fixed: both modes ingest
  // identical update multisets, so their sketch states — and any
  // sampling failures — are bitwise-identical by construction.
  const uint64_t n = 4;
  GraphZeppelinConfig config;
  config.num_nodes = n;
  config.seed = 501;
  config.num_workers = 1;
  config.disk_dir = ::testing::TempDir();
  ShardedGraphZeppelin sharded(config, 3, GetParam());
  ASSERT_TRUE(sharded.Init().ok());

  for (uint32_t mask = 0; mask < 64; ++mask) {
    Dsu truth(n);
    for (uint64_t idx = 0; idx < 6; ++idx) {
      if (!(mask & (1u << idx))) continue;
      const Edge e = IndexToEdge(idx, n);
      sharded.Update({e, UpdateType::kInsert});
      truth.Union(e.u, e.v);
    }
    const ConnectivityResult r = sharded.ListSpanningForest();
    ASSERT_FALSE(r.failed) << "mask " << mask;
    EXPECT_EQ(r.num_components, truth.num_sets()) << "mask " << mask;
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(r.Connected(i, j), truth.Find(i) == truth.Find(j))
            << "mask " << mask << " pair " << i << "," << j;
      }
    }
    // Toggle the mask back out: the next iteration starts empty.
    for (uint64_t idx = 0; idx < 6; ++idx) {
      if (mask & (1u << idx)) {
        sharded.Update({IndexToEdge(idx, n), UpdateType::kInsert});
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ExhaustiveShardedTest,
    ::testing::Values(ShardedGraphZeppelin::Mode::kInProcess,
                      ShardedGraphZeppelin::Mode::kProcess),
    [](const ::testing::TestParamInfo<ShardedGraphZeppelin::Mode>& info) {
      return info.param == ShardedGraphZeppelin::Mode::kInProcess
                 ? "InProcess"
                 : "Process";
    });

// Brute-force bipartiteness of the subgraph induced by each component.
bool BruteForceBipartite(uint64_t n, const EdgeList& edges) {
  // Try all 2-colorings (n small).
  for (uint32_t coloring = 0; coloring < (1u << n); ++coloring) {
    bool ok = true;
    for (const Edge& e : edges) {
      if (((coloring >> e.u) & 1) == ((coloring >> e.v) & 1)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

TEST(ExhaustiveTest, BipartitenessMatchesBruteForceOnAllFourNodeGraphs) {
  const uint64_t n = 4;
  for (uint32_t mask = 0; mask < 64; ++mask) {
    EdgeList edges;
    for (uint64_t idx = 0; idx < 6; ++idx) {
      if (mask & (1u << idx)) edges.push_back(IndexToEdge(idx, n));
    }
    GraphZeppelinConfig config;
    config.num_nodes = n;
    config.seed = 900 + mask;
    config.num_workers = 1;
    config.disk_dir = ::testing::TempDir();
    BipartitenessSketch bp(config);
    ASSERT_TRUE(bp.Init().ok());
    for (const Edge& e : edges) bp.Update({e, UpdateType::kInsert});
    const BipartitenessResult r = bp.Query();
    ASSERT_FALSE(r.failed) << "mask " << mask;
    EXPECT_EQ(r.whole_graph_bipartite, BruteForceBipartite(n, edges))
        << "mask " << mask;
  }
}

}  // namespace
}  // namespace gz
