// Tests for the leaf-only gutters buffering structure (pooled-slab
// edition: gutters are UpdateBatch slabs recycled through a BatchPool).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "buffer/leaf_gutters.h"
#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "util/random.h"

namespace gz {
namespace {

// Drains everything currently in the queue into a per-node multiset,
// releasing the slabs back to the pool.
std::map<NodeId, std::multiset<uint64_t>> DrainQueue(WorkQueue* q,
                                                     BatchPool* pool) {
  std::map<NodeId, std::multiset<uint64_t>> got;
  while (q->ApproxSize() > 0) {
    UpdateBatch* batch = q->Pop();
    if (batch == nullptr) break;
    for (uint32_t i = 0; i < batch->count; ++i) {
      got[batch->node].insert(batch->edge_indices()[i]);
    }
    pool->Release(batch);
    q->MarkDone();
  }
  return got;
}

std::vector<uint64_t> Payload(const UpdateBatch* b) {
  return std::vector<uint64_t>(b->edge_indices(),
                               b->edge_indices() + b->count);
}

TEST(LeafGuttersTest, EmitsBatchWhenFull) {
  WorkQueue q(100);
  BatchPool pool(3);
  LeafGuttersParams p;
  p.num_nodes = 4;
  p.gutter_capacity = 3;
  LeafGutters gutters(p, &pool, &q);

  gutters.Insert(2, 10);
  gutters.Insert(2, 11);
  EXPECT_EQ(q.ApproxSize(), 0u);  // Not yet full.
  gutters.Insert(2, 12);
  EXPECT_EQ(q.ApproxSize(), 1u);

  UpdateBatch* batch = q.Pop();
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->node, 2u);
  EXPECT_EQ(Payload(batch), (std::vector<uint64_t>{10, 11, 12}));
  pool.Release(batch);
}

TEST(LeafGuttersTest, SeparateGuttersPerNode) {
  WorkQueue q(100);
  BatchPool pool(2);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 2;
  LeafGutters gutters(p, &pool, &q);
  gutters.Insert(0, 1);
  gutters.Insert(1, 2);
  gutters.Insert(2, 3);
  EXPECT_EQ(q.ApproxSize(), 0u);  // Each gutter holds one update.
  gutters.Insert(1, 4);
  EXPECT_EQ(q.ApproxSize(), 1u);
  UpdateBatch* batch = q.Pop();
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->node, 1u);
  pool.Release(batch);
}

TEST(LeafGuttersTest, ForceFlushEmitsPartialGutters) {
  WorkQueue q(100);
  BatchPool pool(10);
  LeafGuttersParams p;
  p.num_nodes = 5;
  p.gutter_capacity = 10;
  LeafGutters gutters(p, &pool, &q);
  gutters.Insert(0, 7);
  gutters.Insert(4, 8);
  gutters.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at(0).count(7), 1u);
  EXPECT_EQ(got.at(4).count(8), 1u);
}

TEST(LeafGuttersTest, ForceFlushOnEmptyIsNoop) {
  WorkQueue q(10);
  BatchPool pool(4);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 4;
  LeafGutters gutters(p, &pool, &q);
  gutters.ForceFlush();
  EXPECT_EQ(q.ApproxSize(), 0u);
}

TEST(LeafGuttersTest, OutOfRangeNodeAborts) {
  WorkQueue q(10);
  BatchPool pool(4);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 4;
  LeafGutters gutters(p, &pool, &q);
  EXPECT_DEATH(gutters.Insert(3, 0), "node < params_.num_nodes");
}

TEST(LeafGuttersTest, DestructorReturnsHeldSlabsToPool) {
  WorkQueue q(10);
  BatchPool pool(8);
  {
    LeafGuttersParams p;
    p.num_nodes = 4;
    p.gutter_capacity = 8;
    LeafGutters gutters(p, &pool, &q);
    gutters.Insert(0, 1);
    gutters.Insert(2, 2);
    EXPECT_EQ(pool.outstanding(), 2);  // Two gutters hold slabs.
  }
  EXPECT_EQ(pool.outstanding(), 0);
}

TEST(LeafGuttersTest, InsertBatchMatchesPerUpdateInserts) {
  // The bulk path must buffer exactly what two Insert calls per edge
  // would.
  WorkQueue q(1 << 10);
  BatchPool pool(4);
  LeafGuttersParams p;
  p.num_nodes = 16;
  p.gutter_capacity = 4;
  LeafGutters gutters(p, &pool, &q);

  std::vector<GraphUpdate> updates;
  SplitMix64 rng(99);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBelow(16));
    NodeId b = static_cast<NodeId>(rng.NextBelow(16));
    if (a == b) b = (b + 1) % 16;
    updates.push_back({Edge(a, b), UpdateType::kInsert});
  }
  gutters.InsertBatch(updates.data(), updates.size());
  gutters.ForceFlush();
  const auto got = DrainQueue(&q, &pool);

  std::map<NodeId, std::multiset<uint64_t>> want;
  for (const GraphUpdate& u : updates) {
    const uint64_t idx = EdgeToIndex(u.edge, 16);
    want[u.edge.u].insert(idx);
    want[u.edge.v].insert(idx);
  }
  EXPECT_EQ(got, want);
}

class LeafGuttersDeliveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LeafGuttersDeliveryTest, DeliversEveryUpdateExactlyOnce) {
  const size_t capacity = GetParam();
  WorkQueue q(1 << 16);
  BatchPool pool(static_cast<uint32_t>(capacity));
  LeafGuttersParams p;
  p.num_nodes = 50;
  p.gutter_capacity = capacity;
  LeafGutters gutters(p, &pool, &q);

  SplitMix64 rng(capacity * 1009 + 1);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < 5000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(50));
    const uint64_t idx = rng.Next();
    gutters.Insert(node, idx);
    sent[node].insert(idx);
  }
  gutters.ForceFlush();
  const auto got = DrainQueue(&q, &pool);
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LeafGuttersDeliveryTest,
                         ::testing::Values(1, 2, 7, 64, 1024));

// --- Node groups (Section 4.1) -------------------------------------------

TEST(LeafGuttersGroupTest, GroupCountRoundsUp) {
  WorkQueue q(100);
  BatchPool pool(4);
  LeafGuttersParams p;
  p.num_nodes = 10;
  p.gutter_capacity = 4;
  p.nodes_per_group = 3;
  LeafGutters gutters(p, &pool, &q);
  EXPECT_EQ(gutters.num_groups(), 4u);  // ceil(10 / 3).
}

TEST(LeafGuttersGroupTest, GroupFlushSplitsPerNode) {
  WorkQueue q(100);
  BatchPool pool(4);
  LeafGuttersParams p;
  p.num_nodes = 8;
  p.gutter_capacity = 4;
  p.nodes_per_group = 4;
  LeafGutters gutters(p, &pool, &q);
  // Nodes 0..3 share group 0; fill it with a mix.
  gutters.Insert(1, 10);
  gutters.Insert(3, 30);
  gutters.Insert(1, 11);
  gutters.Insert(0, 40);  // Fourth record: group flushes.
  EXPECT_EQ(q.ApproxSize(), 3u);  // One batch per node present.

  std::map<NodeId, std::vector<uint64_t>> got;
  while (q.ApproxSize() > 0) {
    UpdateBatch* batch = q.Pop();
    ASSERT_NE(batch, nullptr);
    got[batch->node] = Payload(batch);
    pool.Release(batch);
    q.MarkDone();
  }
  EXPECT_EQ(got.at(1), (std::vector<uint64_t>{10, 11}));  // Order kept.
  EXPECT_EQ(got.at(3), (std::vector<uint64_t>{30}));
  EXPECT_EQ(got.at(0), (std::vector<uint64_t>{40}));
}

class LeafGuttersGroupedDeliveryTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeafGuttersGroupedDeliveryTest, DeliversEverythingExactlyOnce) {
  const uint64_t group_size = GetParam();
  WorkQueue q(1 << 16);
  BatchPool pool(16);
  LeafGuttersParams p;
  p.num_nodes = 50;
  p.gutter_capacity = 16;
  p.nodes_per_group = group_size;
  LeafGutters gutters(p, &pool, &q);

  SplitMix64 rng(group_size * 31 + 5);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < 5000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(50));
    const uint64_t idx = rng.Next();
    gutters.Insert(node, idx);
    sent[node].insert(idx);
  }
  gutters.ForceFlush();
  EXPECT_EQ(DrainQueue(&q, &pool), sent);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, LeafGuttersGroupedDeliveryTest,
                         ::testing::Values(1, 2, 7, 50, 64));

TEST(LeafGuttersTest, PoolGrowsOnlyWithHeldGutters) {
  WorkQueue q(1000);
  BatchPool pool(100);
  LeafGuttersParams p;
  p.num_nodes = 10;
  p.gutter_capacity = 100;
  LeafGutters gutters(p, &pool, &q);
  EXPECT_EQ(pool.slabs_allocated(), 0u);  // Gutters acquire lazily.
  gutters.Insert(0, 1);
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  gutters.Insert(0, 2);  // Same gutter: no new slab.
  EXPECT_EQ(pool.slabs_allocated(), 1u);
}

}  // namespace
}  // namespace gz
