// Tests for the leaf-only gutters buffering structure.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "buffer/leaf_gutters.h"
#include "buffer/work_queue.h"
#include "util/random.h"

namespace gz {
namespace {

// Drains everything currently in the queue into a per-node multiset.
std::map<NodeId, std::multiset<uint64_t>> DrainQueue(WorkQueue* q) {
  std::map<NodeId, std::multiset<uint64_t>> got;
  NodeBatch batch;
  while (q->ApproxSize() > 0 && q->Pop(&batch)) {
    for (uint64_t idx : batch.edge_indices) got[batch.node].insert(idx);
    q->MarkDone();
  }
  return got;
}

TEST(LeafGuttersTest, EmitsBatchWhenFull) {
  WorkQueue q(100);
  LeafGuttersParams p;
  p.num_nodes = 4;
  p.gutter_capacity = 3;
  LeafGutters gutters(p, &q);

  gutters.Insert(2, 10);
  gutters.Insert(2, 11);
  EXPECT_EQ(q.ApproxSize(), 0u);  // Not yet full.
  gutters.Insert(2, 12);
  EXPECT_EQ(q.ApproxSize(), 1u);

  NodeBatch batch;
  ASSERT_TRUE(q.Pop(&batch));
  EXPECT_EQ(batch.node, 2u);
  EXPECT_EQ(batch.edge_indices, (std::vector<uint64_t>{10, 11, 12}));
}

TEST(LeafGuttersTest, SeparateGuttersPerNode) {
  WorkQueue q(100);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 2;
  LeafGutters gutters(p, &q);
  gutters.Insert(0, 1);
  gutters.Insert(1, 2);
  gutters.Insert(2, 3);
  EXPECT_EQ(q.ApproxSize(), 0u);  // Each gutter holds one update.
  gutters.Insert(1, 4);
  EXPECT_EQ(q.ApproxSize(), 1u);
  NodeBatch batch;
  ASSERT_TRUE(q.Pop(&batch));
  EXPECT_EQ(batch.node, 1u);
}

TEST(LeafGuttersTest, ForceFlushEmitsPartialGutters) {
  WorkQueue q(100);
  LeafGuttersParams p;
  p.num_nodes = 5;
  p.gutter_capacity = 10;
  LeafGutters gutters(p, &q);
  gutters.Insert(0, 7);
  gutters.Insert(4, 8);
  gutters.ForceFlush();
  const auto got = DrainQueue(&q);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at(0).count(7), 1u);
  EXPECT_EQ(got.at(4).count(8), 1u);
}

TEST(LeafGuttersTest, ForceFlushOnEmptyIsNoop) {
  WorkQueue q(10);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 4;
  LeafGutters gutters(p, &q);
  gutters.ForceFlush();
  EXPECT_EQ(q.ApproxSize(), 0u);
}

TEST(LeafGuttersTest, OutOfRangeNodeAborts) {
  WorkQueue q(10);
  LeafGuttersParams p;
  p.num_nodes = 3;
  p.gutter_capacity = 4;
  LeafGutters gutters(p, &q);
  EXPECT_DEATH(gutters.Insert(3, 0), "node < params_.num_nodes");
}

class LeafGuttersDeliveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LeafGuttersDeliveryTest, DeliversEveryUpdateExactlyOnce) {
  const size_t capacity = GetParam();
  WorkQueue q(1 << 16);
  LeafGuttersParams p;
  p.num_nodes = 50;
  p.gutter_capacity = capacity;
  LeafGutters gutters(p, &q);

  SplitMix64 rng(capacity * 1009 + 1);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < 5000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(50));
    const uint64_t idx = rng.Next();
    gutters.Insert(node, idx);
    sent[node].insert(idx);
  }
  gutters.ForceFlush();
  const auto got = DrainQueue(&q);
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(Capacities, LeafGuttersDeliveryTest,
                         ::testing::Values(1, 2, 7, 64, 1024));

// --- Node groups (Section 4.1) -------------------------------------------

TEST(LeafGuttersGroupTest, GroupCountRoundsUp) {
  WorkQueue q(100);
  LeafGuttersParams p;
  p.num_nodes = 10;
  p.gutter_capacity = 4;
  p.nodes_per_group = 3;
  LeafGutters gutters(p, &q);
  EXPECT_EQ(gutters.num_groups(), 4u);  // ceil(10 / 3).
}

TEST(LeafGuttersGroupTest, GroupFlushSplitsPerNode) {
  WorkQueue q(100);
  LeafGuttersParams p;
  p.num_nodes = 8;
  p.gutter_capacity = 4;
  p.nodes_per_group = 4;
  LeafGutters gutters(p, &q);
  // Nodes 0..3 share group 0; fill it with a mix.
  gutters.Insert(1, 10);
  gutters.Insert(3, 30);
  gutters.Insert(1, 11);
  gutters.Insert(0, 40);  // Fourth record: group flushes.
  EXPECT_EQ(q.ApproxSize(), 3u);  // One batch per node present.

  std::map<NodeId, std::vector<uint64_t>> got;
  NodeBatch batch;
  while (q.ApproxSize() > 0 && q.Pop(&batch)) {
    got[batch.node] = batch.edge_indices;
    q.MarkDone();
  }
  EXPECT_EQ(got.at(1), (std::vector<uint64_t>{10, 11}));  // Order kept.
  EXPECT_EQ(got.at(3), (std::vector<uint64_t>{30}));
  EXPECT_EQ(got.at(0), (std::vector<uint64_t>{40}));
}

class LeafGuttersGroupedDeliveryTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeafGuttersGroupedDeliveryTest, DeliversEverythingExactlyOnce) {
  const uint64_t group_size = GetParam();
  WorkQueue q(1 << 16);
  LeafGuttersParams p;
  p.num_nodes = 50;
  p.gutter_capacity = 16;
  p.nodes_per_group = group_size;
  LeafGutters gutters(p, &q);

  SplitMix64 rng(group_size * 31 + 5);
  std::map<NodeId, std::multiset<uint64_t>> sent;
  for (int i = 0; i < 5000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.NextBelow(50));
    const uint64_t idx = rng.Next();
    gutters.Insert(node, idx);
    sent[node].insert(idx);
  }
  gutters.ForceFlush();
  EXPECT_EQ(DrainQueue(&q), sent);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, LeafGuttersGroupedDeliveryTest,
                         ::testing::Values(1, 2, 7, 50, 64));

TEST(LeafGuttersTest, RamByteSizeTracksReservedGutters) {
  WorkQueue q(1000);
  LeafGuttersParams p;
  p.num_nodes = 10;
  p.gutter_capacity = 100;
  LeafGutters gutters(p, &q);
  const size_t before = gutters.RamByteSize();
  gutters.Insert(0, 1);  // Triggers reserve of one gutter.
  EXPECT_GT(gutters.RamByteSize(), before);
}

}  // namespace
}  // namespace gz
