// gz_query: a serving-tier client. Dials every shard listener of a
// cluster as an authenticated *reader* session (QuerySession), pulls a
// consistent merged snapshot keyed by the cluster's (epoch, watermark)
// position, and answers graph queries from it — without touching the
// coordinator, whose write path keeps streaming unimpeded.
//
// Replicated clusters need no extra flags: list every replica's
// endpoint and the session groups them by the shard id each reports,
// reading from one live replica per shard (with failover).
//
// Usage:
//   gz_query --endpoints tcp://h:p,tcp://h:p,... [--mode connectivity]
//     [--auth-secret SECRET | --auth-secret-file PATH]
//     [--threads N] [--json] [--top K]
//   gz_query --mode forest --endpoints ... --forest-out forest.gzst
//   gz_query --heavy-hitters K --endpoints ...       (count-min fold)
//   gz_query --k-connectivity K --endpoints ...      (forest peeling)
//   gz_query --mode bipartite --endpoints ... --doubled-endpoints ...
//   gz_query --watch --endpoints ... --watch-count
//     [--watch-connected U:V,...] [--watch-forest] [--poll-ms MS]
//     [--no-subscribe] [--watch-duration SEC] [--watch-max N]
//
// Modes:
//   connectivity  components + spanning-forest size (default)
//   forest        also write the forest as an insert-only stream file
//   bipartite     AGM doubled-graph verdict; --endpoints serves the
//                 primal cluster, --doubled-endpoints the doubled one
//                 (2V nodes), both fed by a BipartitenessSketch-style
//                 writer
//   --watch       standing queries: registers the requested watches,
//                 subscribes to the shards' push-notify streams, and
//                 prints one JSON line per CHANGED answer until
//                 --watch-duration / --watch-max / SIGINT ends it
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "algos/bipartiteness.h"
#include "core/connectivity.h"
#include "distributed/query_session.h"
#include "tools/flags.h"
#include "util/timer.h"
#include "workloads/count_min.h"
#include "workloads/k_connectivity.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gz_query --endpoints tcp://H:P,... [--mode MODE]\n"
      "       [--auth-secret SECRET | --auth-secret-file PATH]\n"
      "       [--threads N] [--json] [--top K]\n"
      "  --mode connectivity   components + forest size (default)\n"
      "  --mode forest         connectivity + --forest-out stream file\n"
      "  --mode bipartite      doubled-graph verdict; needs\n"
      "                        --doubled-endpoints tcp://H:P,...\n"
      "  --endpoints           the cluster's shard listeners, one per\n"
      "                        shard, comma-separated\n"
      "  --auth-secret         shared handshake secret (or\n"
      "                        --auth-secret-file / $GZ_SHARD_AUTH_SECRET)\n"
      "  --threads             Boruvka pool (0 = auto)\n"
      "  --json                one machine-readable JSON line on stdout\n"
      "  --heavy-hitters K     fold the shards' count-min side sketches\n"
      "                        and print the top-K edges and degrees\n"
      "                        (needs a cluster configured with\n"
      "                        heavy_hitter_width > 0)\n"
      "  --k-connectivity K    certify min(edge connectivity, K) from\n"
      "                        the merged snapshot (k forest peels)\n"
      "  --watch               stream standing-query notifications; add\n"
      "                        --watch-count, --watch-forest and/or\n"
      "                        --watch-connected U:V[,U:V...]\n"
      "  --poll-ms             watch fallback poll cadence (default 200)\n"
      "  --no-subscribe        watch by polling only (no push streams)\n"
      "  --watch-duration      stop the watch after SEC seconds (0 = run\n"
      "                        until --watch-max or SIGINT)\n"
      "  --watch-max           stop after N notifications (0 = no limit)\n");
  return 2;
}

std::atomic<bool> g_interrupted{false};

const char* KindName(gz::StandingQueryKind kind) {
  switch (kind) {
    case gz::StandingQueryKind::kConnected:
      return "connected";
    case gz::StandingQueryKind::kComponentCount:
      return "components";
    case gz::StandingQueryKind::kSpanningForest:
      return "forest";
  }
  return "unknown";
}

// The streaming watch loop: registers the requested standing queries,
// starts the watcher (push-notified unless --no-subscribe), and prints
// one JSON line per notification. Exits 0 when a bound (--watch-max /
// --watch-duration / SIGINT) ends the watch, 2 when no watch was
// requested.
int RunWatch(const gz::tools::Flags& flags, gz::QuerySession* session) {
  using namespace gz;
  std::vector<StandingQuerySpec> specs;
  for (const std::string& pair :
       tools::SplitCommaList(flags.GetString("watch-connected", ""))) {
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "gz_query: --watch-connected wants U:V, got %s\n",
                   pair.c_str());
      return 2;
    }
    StandingQuerySpec spec;
    spec.kind = StandingQueryKind::kConnected;
    spec.u = static_cast<NodeId>(std::atoll(pair.substr(0, colon).c_str()));
    spec.v = static_cast<NodeId>(std::atoll(pair.substr(colon + 1).c_str()));
    specs.push_back(spec);
  }
  if (flags.GetBool("watch-count", false)) {
    specs.push_back({StandingQueryKind::kComponentCount, 0, 0});
  }
  if (flags.GetBool("watch-forest", false)) {
    specs.push_back({StandingQueryKind::kSpanningForest, 0, 0});
  }
  if (specs.empty()) {
    std::fprintf(stderr,
                 "gz_query: --watch needs at least one of --watch-count, "
                 "--watch-forest, --watch-connected\n");
    return 2;
  }
  for (const StandingQuerySpec& spec : specs) {
    session->AddStandingQuery(spec);
  }

  const uint64_t max_notifications =
      static_cast<uint64_t>(flags.GetInt("watch-max", 0));
  const double duration = flags.GetDouble("watch-duration", 0.0);
  std::atomic<uint64_t> printed{0};
  StandingWatchOptions options;
  options.poll_interval_ms =
      static_cast<int>(flags.GetInt("poll-ms", 200));
  options.subscribe = !flags.GetBool("no-subscribe", false);
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  const Status s = session->StartWatch(
      options,
      [&printed](const StandingQueryNotification& n, const GraphSnapshot&) {
        // One line per changed answer, flushed: a pipe consumer (the CI
        // subscriber, a dashboard) sees it immediately.
        std::printf("{\"event\":\"notify\",\"query_id\":%llu,"
                    "\"seq\":%llu,\"epoch\":%llu,\"num_updates\":%llu,"
                    "\"kind\":\"%s\",\"u\":%llu,\"v\":%llu,"
                    "\"connected\":%s,\"components\":%zu,"
                    "\"forest_edges\":%zu}\n",
                    static_cast<unsigned long long>(n.query_id),
                    static_cast<unsigned long long>(n.sequence),
                    static_cast<unsigned long long>(n.epoch),
                    static_cast<unsigned long long>(n.num_updates),
                    KindName(n.spec.kind),
                    static_cast<unsigned long long>(n.spec.u),
                    static_cast<unsigned long long>(n.spec.v),
                    n.answer.connected ? "true" : "false",
                    n.answer.num_components, n.answer.forest.size());
        std::fflush(stdout);
        printed.fetch_add(1);
      });
  if (!s.ok()) {
    std::fprintf(stderr, "gz_query: watch: %s\n", s.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, [](int) { g_interrupted.store(true); });
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(duration * 1000));
  while (!g_interrupted.load()) {
    if (max_notifications > 0 && printed.load() >= max_notifications) break;
    if (duration > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Counters read before StopWatch(): it tears the notify streams down.
  const size_t streams = session->watch_notify_streams();
  session->StopWatch();
  const Status err = session->watch_error();
  if (!err.ok()) {
    std::fprintf(stderr, "gz_query: watch ended with: %s\n",
                 err.ToString().c_str());
  }
  std::printf("{\"event\":\"watch_done\",\"notifications\":%llu,"
              "\"evaluations\":%llu,\"notify_streams\":%zu}\n",
              static_cast<unsigned long long>(session->watch_notifications()),
              static_cast<unsigned long long>(session->watch_evaluations()),
              streams);
  return 0;
}

// Heavy-hitter mode: folds one count-min side sketch per shard (see
// QuerySession::HeavyHitters for the exactness argument and caveats)
// and prints the top-K edges and degrees re-estimated against the
// merged grids.
int RunHeavyHitters(gz::QuerySession* session, int top, bool json) {
  using namespace gz;
  WallTimer fold_timer;
  const Result<HeavyHitterSketch> folded = session->HeavyHitters();
  if (!folded.ok()) {
    std::fprintf(stderr, "gz_query: heavy-hitters: %s\n",
                 folded.status().ToString().c_str());
    return 1;
  }
  const double fold_seconds = fold_timer.Seconds();
  const HeavyHitterSketch& hh = folded.value();
  const uint64_t num_nodes = hh.params().num_nodes;
  const std::vector<HeavyHitterEntry> edges =
      hh.TopEdges(static_cast<size_t>(top));
  const std::vector<HeavyHitterEntry> degrees =
      hh.TopDegrees(static_cast<size_t>(top));
  if (json) {
    std::printf("{\"mode\":\"heavy_hitters\",\"updates\":%llu,"
                "\"saturated\":%s,\"fold_seconds\":%.6f,\"edges\":[",
                static_cast<unsigned long long>(hh.updates_applied()),
                hh.saturated() ? "true" : "false", fold_seconds);
    for (size_t i = 0; i < edges.size(); ++i) {
      const Edge e = IndexToEdge(edges[i].key, num_nodes);
      std::printf("%s{\"u\":%llu,\"v\":%llu,\"count\":%lld}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(e.u),
                  static_cast<unsigned long long>(e.v),
                  static_cast<long long>(edges[i].count));
    }
    std::printf("],\"degrees\":[");
    for (size_t i = 0; i < degrees.size(); ++i) {
      std::printf("%s{\"node\":%llu,\"count\":%lld}", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(degrees[i].key),
                  static_cast<long long>(degrees[i].count));
    }
    std::printf("]}\n");
  } else {
    std::printf("heavy hitters  %llu updates folded (%.3fs)%s\n",
                static_cast<unsigned long long>(hh.updates_applied()),
                fold_seconds,
                hh.saturated() ? " [candidate tables saturated]" : "");
    for (const HeavyHitterEntry& entry : edges) {
      const Edge e = IndexToEdge(entry.key, num_nodes);
      std::printf("  edge %llu-%llu count %lld\n",
                  static_cast<unsigned long long>(e.u),
                  static_cast<unsigned long long>(e.v),
                  static_cast<long long>(entry.count));
    }
    for (const HeavyHitterEntry& entry : degrees) {
      std::printf("  degree %llu count %lld\n",
                  static_cast<unsigned long long>(entry.key),
                  static_cast<long long>(entry.count));
    }
  }
  return 0;
}

// Connects a reader session to the given listener endpoints, failing
// the process with a useful message otherwise.
std::unique_ptr<gz::QuerySession> Dial(const std::string& endpoint_list,
                                       const std::string& secret,
                                       const char* what) {
  gz::QuerySessionOptions options;
  options.endpoints = gz::tools::SplitCommaList(endpoint_list);
  options.auth_secret = secret;
  auto session = std::make_unique<gz::QuerySession>(std::move(options));
  const gz::Status s = session->Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_query: connecting %s cluster: %s\n", what,
                 s.ToString().c_str());
    std::exit(1);
  }
  return session;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);
  const std::string endpoints = flags.GetString("endpoints", "");
  if (endpoints.empty()) return Usage();
  const std::string mode = flags.GetString("mode", "connectivity");
  if (mode != "connectivity" && mode != "forest" && mode != "bipartite") {
    return Usage();
  }
  const std::string secret = tools::ResolveAuthSecret(flags, "gz_query");
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const bool json = flags.GetBool("json", false);

  std::unique_ptr<QuerySession> session = Dial(endpoints, secret, "primal");

  if (flags.GetBool("watch", false)) {
    return RunWatch(flags, session.get());
  }

  const int hh_top = static_cast<int>(flags.GetInt("heavy-hitters", 0));
  if (hh_top > 0) {
    return RunHeavyHitters(session.get(), hh_top, json);
  }

  WallTimer refresh_timer;
  const GraphSnapshot* snap = nullptr;
  Status s = session->Snapshot(&snap);
  if (!s.ok()) {
    std::fprintf(stderr, "gz_query: snapshot: %s\n", s.ToString().c_str());
    return 1;
  }
  const double refresh_seconds = refresh_timer.Seconds();

  const int kconn = static_cast<int>(flags.GetInt("k-connectivity", 0));
  if (kconn > 0) {
    WallTimer query_timer;
    const Result<KConnectivityResult> certified =
        KEdgeConnectivity(*snap, kconn);
    const double query_seconds = query_timer.Seconds();
    if (!certified.ok()) {
      std::fprintf(stderr, "gz_query: k-connectivity: %s\n",
                   certified.status().ToString().c_str());
      return 1;
    }
    const KConnectivityResult& kc = certified.value();
    if (kc.sketch_failed) {
      std::fprintf(stderr, "gz_query: sketch query failed\n");
      return 1;
    }
    if (json) {
      std::printf(
          "{\"mode\":\"k_connectivity\",\"k\":%d,"
          "\"certified_connectivity\":%d,\"is_k_edge_connected\":%s,"
          "\"certificate_edges\":%zu,\"refresh_seconds\":%.6f,"
          "\"query_seconds\":%.6f}\n",
          kc.k, kc.certified_connectivity,
          kc.is_k_edge_connected ? "true" : "false", kc.certificate.size(),
          refresh_seconds, query_seconds);
    } else {
      std::printf("k-connectivity  certified min(lambda, %d) = %d — graph "
                  "is %sat least %d-edge-connected\n",
                  kc.k, kc.certified_connectivity,
                  kc.is_k_edge_connected ? "" : "NOT ", kc.k);
      std::printf("certificate     %zu edges across %zu forests "
                  "(query %.3fs)\n",
                  kc.certificate.size(), kc.decomposition.forests.size(),
                  query_seconds);
    }
    return 0;
  }

  if (mode == "bipartite") {
    const std::string doubled_list = flags.GetString("doubled-endpoints", "");
    if (doubled_list.empty()) return Usage();
    std::unique_ptr<QuerySession> doubled_session =
        Dial(doubled_list, secret, "doubled");
    const GraphSnapshot* doubled = nullptr;
    s = doubled_session->Snapshot(&doubled);
    if (!s.ok()) {
      std::fprintf(stderr, "gz_query: doubled snapshot: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (doubled->params().num_nodes != 2 * snap->params().num_nodes) {
      std::fprintf(stderr,
                   "gz_query: doubled cluster has %llu nodes, expected "
                   "2 x %llu — not this graph's doubling\n",
                   static_cast<unsigned long long>(
                       doubled->params().num_nodes),
                   static_cast<unsigned long long>(snap->params().num_nodes));
      return 1;
    }
    WallTimer query_timer;
    const BipartitenessResult verdict =
        BipartitenessFromSnapshots(*snap, *doubled, threads);
    const double query_seconds = query_timer.Seconds();
    if (verdict.failed) {
      std::fprintf(stderr, "gz_query: sketch query failed\n");
      return 1;
    }
    size_t odd = 0;
    for (uint64_t u = 0; u < snap->params().num_nodes; ++u) {
      if (!verdict.component_bipartite[u] &&
          verdict.component_of[u] == static_cast<NodeId>(u)) {
        ++odd;  // Count each non-bipartite component once, at its root.
      }
    }
    if (json) {
      std::printf(
          "{\"mode\":\"bipartite\",\"bipartite\":%s,"
          "\"odd_components\":%zu,\"refresh_seconds\":%.6f,"
          "\"query_seconds\":%.6f}\n",
          verdict.whole_graph_bipartite ? "true" : "false", odd,
          refresh_seconds, query_seconds);
    } else {
      std::printf("graph is %sbipartite (%zu component%s with an odd "
                  "cycle)\n",
                  verdict.whole_graph_bipartite ? "" : "NOT ", odd,
                  odd == 1 ? "" : "s");
    }
    return 0;
  }

  WallTimer query_timer;
  const ConnectivityResult result = gz::Connectivity(*snap, threads);
  const double query_seconds = query_timer.Seconds();
  if (result.failed) {
    std::fprintf(stderr, "gz_query: sketch query failed\n");
    return 1;
  }

  if (mode == "forest") {
    const std::string forest_out = flags.GetString("forest-out", "");
    if (forest_out.empty()) {
      std::fprintf(stderr, "gz_query: --mode forest needs --forest-out\n");
      return 2;
    }
    s = WriteSpanningForestStream(result, snap->params().num_nodes,
                                  forest_out);
    if (!s.ok()) {
      std::fprintf(stderr, "gz_query: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  const SnapshotCache& cache = session->cache();
  if (json) {
    std::printf(
        "{\"mode\":\"%s\",\"num_nodes\":%llu,\"num_updates\":%llu,"
        "\"components\":%zu,\"forest_edges\":%zu,\"rounds\":%d,"
        "\"refresh_seconds\":%.6f,\"query_seconds\":%.6f,"
        "\"seqlock_rounds\":%d,\"range_pulls\":%llu,"
        "\"cold_builds\":%llu}\n",
        mode.c_str(),
        static_cast<unsigned long long>(snap->params().num_nodes),
        static_cast<unsigned long long>(snap->num_updates()),
        result.num_components, result.spanning_forest.size(),
        result.rounds_used, refresh_seconds, query_seconds,
        session->last_refresh_rounds(),
        static_cast<unsigned long long>(cache.range_pulls()),
        static_cast<unsigned long long>(cache.cold_builds()));
  } else {
    std::printf("snapshot  %llu nodes, %llu updates served "
                "(refresh %.3fs, %d seqlock round%s, %llu range pulls)\n",
                static_cast<unsigned long long>(snap->params().num_nodes),
                static_cast<unsigned long long>(snap->num_updates()),
                refresh_seconds, session->last_refresh_rounds(),
                session->last_refresh_rounds() == 1 ? "" : "s",
                static_cast<unsigned long long>(cache.range_pulls()));
    std::printf("query     %.3fs, %d Boruvka rounds\n", query_seconds,
                result.rounds_used);
    std::printf("components %zu, spanning forest %zu edges\n",
                result.num_components, result.spanning_forest.size());
    const int top = static_cast<int>(flags.GetInt("top", 0));
    if (top > 0) {
      auto components = ComponentsFromLabels(result.component_of);
      std::sort(components.begin(), components.end(),
                [](const auto& a, const auto& b) {
                  return a.size() > b.size();
                });
      for (int i = 0; i < top && i < static_cast<int>(components.size());
           ++i) {
        std::printf("  component %d: %zu nodes\n", i + 1,
                    components[i].size());
      }
    }
  }
  return 0;
}
