// gz_snapshot: operate on serialized GraphSnapshot files — the bytes a
// sharded/multi-process deployment ships to its coordinator.
//
// Merges any number of snapshot files (XOR fold; all must share seed
// and sketch geometry), answers the connectivity query on the result,
// and optionally writes the merged snapshot back out. One snapshot file
// in = plain "query a saved checkpoint".
//
// Usage:
//   gz_snapshot --in a.snap,b.snap,... [--out merged.snap]
//     [--threads N] [--top K]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/connectivity.h"
#include "core/graph_snapshot.h"
#include "tools/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);
  const std::string in = flags.GetString("in", "");
  if (in.empty()) {
    std::fprintf(stderr,
                 "usage: gz_snapshot --in A.snap[,B.snap,...] "
                 "[--out MERGED.snap] [--threads N] [--top K]\n");
    return 2;
  }
  std::vector<std::string> paths;
  for (size_t pos = 0; pos < in.size();) {
    const size_t comma = in.find(',', pos);
    const size_t end = comma == std::string::npos ? in.size() : comma;
    if (end > pos) paths.push_back(in.substr(pos, end - pos));
    pos = end + 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "gz_snapshot: --in lists no snapshot files\n");
    return 2;
  }

  GraphSnapshot merged;
  for (size_t i = 0; i < paths.size(); ++i) {
    Result<GraphSnapshot> loaded = GraphSnapshot::LoadFromFile(paths[i]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s failed: %s\n", paths[i].c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (i == 0) {
      merged = std::move(loaded.value());
    } else {
      Status s = merged.Merge(loaded.value());
      if (!s.ok()) {
        std::fprintf(stderr, "merge %s failed: %s\n", paths[i].c_str(),
                     s.ToString().c_str());
        return 1;
      }
    }
  }
  std::printf(
      "merged %zu snapshot(s): %llu nodes, seed %llu, %d rounds, "
      "%llu updates\n",
      paths.size(), static_cast<unsigned long long>(merged.num_nodes()),
      static_cast<unsigned long long>(merged.seed()), merged.rounds(),
      static_cast<unsigned long long>(merged.num_updates()));

  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  WallTimer timer;
  const ConnectivityResult result = Connectivity(merged, threads);
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed; re-ingest with another "
                         "seed\n");
    return 1;
  }
  std::printf("query     %.3fs (%d threads), %d Boruvka rounds\n",
              timer.Seconds(), ResolveQueryThreads(threads),
              result.rounds_used);
  std::printf("components %zu, spanning forest %zu edges\n",
              result.num_components, result.spanning_forest.size());

  const int top = static_cast<int>(flags.GetInt("top", 5));
  if (top > 0) {
    auto components = ComponentsFromLabels(result.component_of);
    std::sort(components.begin(), components.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    for (int i = 0; i < top && i < static_cast<int>(components.size()); ++i) {
      std::printf("  component %d: %zu nodes\n", i + 1,
                  components[i].size());
    }
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status s = merged.SaveToFile(out);
    if (!s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("merged snapshot written to %s\n", out.c_str());
  }
  return 0;
}
