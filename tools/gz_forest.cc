// gz_forest: solve the paper's Problem 1 end to end — read an
// insert/delete edge stream, output an *insert-only* edge stream
// defining a spanning forest of the final graph.
//
// Usage:
//   gz_forest --stream in.gzst --out forest.gzst [--workers N] [--seed N]
#include <cstdio>
#include <string>

#include "core/graph_zeppelin.h"
#include "core/stream_ingestor.h"
#include "stream/stream_file.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);
  const std::string in = flags.GetString("stream", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: gz_forest --stream IN.gzst --out FOREST.gzst "
                 "[--workers N] [--seed N]\n");
    return 2;
  }

  // Peek the node count from the stream header.
  StreamReader probe;
  Status s = probe.Open(in);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const uint64_t num_nodes = probe.num_nodes();
  probe.Close();

  GraphZeppelinConfig config;
  config.num_nodes = num_nodes;
  config.seed = flags.GetInt("seed", 42);
  config.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  GraphZeppelin gz(config);
  s = gz.Init();
  if (!s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Result<uint64_t> ingested = IngestStreamFile(&gz, in);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ingested.status().ToString().c_str());
    return 1;
  }

  const ConnectivityResult result = gz.ListSpanningForest();
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed; retry with another seed\n");
    return 1;
  }
  s = WriteSpanningForestStream(result, num_nodes, out);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "read %llu updates over %llu nodes; wrote spanning forest of %zu "
      "edges (%zu components) to %s\n",
      static_cast<unsigned long long>(ingested.value()),
      static_cast<unsigned long long>(num_nodes),
      result.spanning_forest.size(), result.num_components, out.c_str());
  return 0;
}
