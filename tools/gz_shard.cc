// gz_shard: one shard of a multi-process sharded deployment. Two ways
// to attach it to a coordinator:
//
//   --fd N               spawned by ShardCluster (fork/exec) with a
//                        connected socketpair end as fd N — the local:
//                        endpoint.
//   --listen host:port   standalone: bind, accept one coordinator at a
//                        time, serve it — the tcp://host:port endpoint.
//                        Port 0 asks the kernel for a free port;
//                        --port-file PATH publishes the bound port (for
//                        harnesses that need to discover it). A dropped
//                        connection discards the in-memory instance and
//                        returns to accept — exactly the state loss of
//                        a SIGKILLed local shard, recovered the same
//                        way (reconnect + checkpoint restore + replay).
//                        An orderly SHUTDOWN retires the process.
//
// Either way the first protocol exchange is the authenticated HELLO
// handshake (--auth-secret SECRET or --auth-secret-file PATH, else
// $GZ_SHARD_AUTH_SECRET; default open). A listener on an untrusted
// network MUST carry a secret: without one, anyone who can reach the
// port can inject UPDATE_BATCHes. Then CONFIG arrives (the shard's
// GraphZeppelinConfig, its id, the routing table) and the shard serves
// UPDATE_BATCH / FLUSH / SNAPSHOT / CHECKPOINT / STATS / PING / EPOCH /
// MIGRATE_EXTRACT / MERGE_DELTA / SHUTDOWN. Everything interesting
// lives in ShardServer; this is only argv + socket plumbing.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "distributed/shard_server.h"
#include "tools/flags.h"
#include "util/status.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gz_shard --fd N | --listen host:port [--port-file PATH]\n"
      "       [--auth-secret SECRET | --auth-secret-file PATH]\n"
      "  --fd N        serve the shard protocol on an inherited socket\n"
      "  --listen      bind host:port (port 0 = kernel-assigned) and\n"
      "                serve one coordinator connection at a time\n"
      "  --port-file   write the bound port here once listening\n"
      "  --auth-secret shared handshake secret (or --auth-secret-file /\n"
      "                $GZ_SHARD_AUTH_SECRET); required on untrusted\n"
      "                networks\n");
  return 2;
}

std::string ResolveSecret(const gz::tools::Flags& flags) {
  if (flags.Has("auth-secret")) return flags.GetString("auth-secret", "");
  if (flags.Has("auth-secret-file")) {
    const std::string path = flags.GetString("auth-secret-file", "");
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "gz_shard: cannot read --auth-secret-file %s\n",
                   path.c_str());
      std::exit(2);
    }
    std::string secret;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      secret.append(buf, n);
    }
    std::fclose(f);
    // A trailing newline is an editor artifact, not part of the secret.
    while (!secret.empty() &&
           (secret.back() == '\n' || secret.back() == '\r')) {
      secret.pop_back();
    }
    return secret;
  }
  const char* env = std::getenv("GZ_SHARD_AUTH_SECRET");
  return env != nullptr ? env : "";
}

int RunListener(const std::string& listen, const std::string& port_file,
                const std::string& secret) {
  const size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "gz_shard: --listen wants host:port\n");
    return 2;
  }
  const std::string host = listen.substr(0, colon);
  const std::string port = listen.substr(colon + 1);

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                         &hints, &addrs);
  if (rc != 0) {
    std::fprintf(stderr, "gz_shard: cannot resolve %s: %s\n", listen.c_str(),
                 ::gai_strerror(rc));
    return 1;
  }
  int listen_fd = -1;
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    listen_fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (listen_fd < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd, a->ai_addr, a->ai_addrlen) == 0) break;
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (listen_fd < 0 || ::listen(listen_fd, 4) != 0) {
    std::fprintf(stderr, "gz_shard: cannot listen on %s: %s\n",
                 listen.c_str(), std::strerror(errno));
    return 1;
  }
  struct sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t bound_port = 0;
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      bound_port = ntohs(
          reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port = ntohs(
          reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  if (!port_file.empty()) {
    // Write-then-rename so a polling harness never reads a half-written
    // file.
    const std::string tmp = port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "gz_shard: cannot write --port-file %s\n",
                   tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", bound_port);
    std::fclose(f);
    if (::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::fprintf(stderr, "gz_shard: cannot publish --port-file %s\n",
                   port_file.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "gz_shard: listening on %s (port %u)%s\n",
               listen.c_str(), bound_port,
               secret.empty() ? " WITHOUT an auth secret" : "");

  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "gz_shard: accept: %s\n", std::strerror(errno));
      return 1;
    }
    // Same NODELAY + keepalive tuning as the coordinator's end: a
    // coordinator host that vanishes without a FIN must not wedge this
    // one-connection-at-a-time loop forever — the dead session errors
    // out in ~2min and accept() runs again.
    gz::TuneShardSocket(fd);
    const gz::Status s = gz::ShardServer(fd, secret).Serve();
    ::close(fd);
    if (s.ok()) return 0;  // Orderly SHUTDOWN: the shard retires.
    // Anything else — coordinator crash, auth failure, lost framing —
    // ends the session; the in-memory instance is gone (a fresh
    // ShardServer serves the next connection) and recovery is the
    // coordinator's reconnect + restore + replay.
    std::fprintf(stderr,
                 "gz_shard: session ended (%s); awaiting a new connection\n",
                 s.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  gz::tools::Flags flags(argc, argv);
  const std::string secret = ResolveSecret(flags);
  if (flags.Has("listen")) {
    return RunListener(flags.GetString("listen", ""),
                       flags.GetString("port-file", ""), secret);
  }
  const int fd = static_cast<int>(flags.GetInt("fd", -1));
  if (fd < 0) return Usage();
  const gz::Status s = gz::ShardServer(fd, secret).Serve();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
