// gz_shard: one shard of a multi-process sharded deployment. Spawned
// by ShardCluster (fork/exec) with a connected socket as --fd; receives
// its GraphZeppelinConfig (plus its shard id and the routing table) as
// the first protocol frame, then serves UPDATE_BATCH / FLUSH /
// SNAPSHOT / CHECKPOINT / STATS / PING / EPOCH / MIGRATE_EXTRACT /
// MERGE_DELTA / SHUTDOWN until told to exit. Update batches are
// epoch-stamped; the EPOCH and MIGRATE frames are how the coordinator
// reshards elastically without pausing the stream. Everything
// interesting lives in ShardServer; this is only argv plumbing.
//
// Standalone debugging: gz_shard --fd 0 speaks the protocol on stdin
// (not useful interactively — frames are binary — but lets a recorded
// frame stream replay against a real shard).
#include <cstdio>

#include "distributed/shard_server.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  gz::tools::Flags flags(argc, argv);
  const int fd = static_cast<int>(flags.GetInt("fd", -1));
  if (fd < 0) {
    std::fprintf(stderr,
                 "usage: gz_shard --fd N\n"
                 "  N: connected stream socket speaking the shard "
                 "protocol\n");
    return 2;
  }
  const gz::Status s = gz::ShardServer(fd).Serve();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
