// gz_shard: one shard of a multi-process sharded deployment. Two ways
// to attach it to a coordinator:
//
//   --fd N               spawned by ShardCluster (fork/exec) with a
//                        connected socketpair end as fd N — the local:
//                        endpoint. Single session.
//   --listen host:port   standalone: bind and serve the tcp://host:port
//                        endpoint as a multi-session listener — one
//                        authenticated writer (the coordinator, full
//                        protocol) plus up to --max-sessions-1
//                        authenticated readers (PING / STATS /
//                        STATS_EX / SNAPSHOT / MIGRATE_EXTRACT only),
//                        the serving tier's data plane. Port 0 asks
//                        the kernel for a free port; --port-file PATH
//                        publishes the bound port (for harnesses that
//                        need to discover it). A dropped writer
//                        connection discards the in-memory instance —
//                        exactly the state loss of a SIGKILLed local
//                        shard, recovered the same way (reconnect +
//                        checkpoint restore + replay) — while reader
//                        sessions ride through. An orderly SHUTDOWN
//                        from the writer retires the process.
//
// Either way the first protocol exchange is the authenticated HELLO
// handshake (--auth-secret SECRET or --auth-secret-file PATH, else
// $GZ_SHARD_AUTH_SECRET; default open). A listener on an untrusted
// network MUST carry a secret: without one, anyone who can reach the
// port can inject UPDATE_BATCHes — or read the whole graph state
// through a reader session. Everything interesting lives in
// ShardServer / ShardListener; this is only argv + socket plumbing.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "distributed/shard_listener.h"
#include "distributed/shard_server.h"
#include "tools/flags.h"
#include "util/status.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gz_shard --fd N | --listen host:port [--port-file PATH]\n"
      "       [--auth-secret SECRET | --auth-secret-file PATH]\n"
      "       [--max-sessions N] [--reader-timeout SECONDS]\n"
      "  --fd N        serve the shard protocol on an inherited socket\n"
      "  --listen      bind host:port (port 0 = kernel-assigned) and\n"
      "                serve one writer plus concurrent reader sessions\n"
      "  --port-file   write the bound port here once listening\n"
      "  --auth-secret shared handshake secret (or --auth-secret-file /\n"
      "                $GZ_SHARD_AUTH_SECRET); required on untrusted\n"
      "                networks\n"
      "  --max-sessions   concurrent session bound, writer included\n"
      "                   (default 17, or $GZ_SHARD_MAX_SESSIONS)\n"
      "  --reader-timeout per-read deadline for reader sessions, seconds\n"
      "                   (default 30, or $GZ_SHARD_READER_TIMEOUT)\n");
  return 2;
}

long EnvOr(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atol(value) : fallback;
}

int RunListener(const gz::tools::Flags& flags, const std::string& secret) {
  gz::ShardListenerOptions options;
  options.listen = flags.GetString("listen", "");
  options.port_file = flags.GetString("port-file", "");
  options.auth_secret = secret;
  options.max_sessions = static_cast<int>(
      flags.GetInt("max-sessions", EnvOr("GZ_SHARD_MAX_SESSIONS", 17)));
  options.reader_timeout_seconds = static_cast<int>(flags.GetInt(
      "reader-timeout", EnvOr("GZ_SHARD_READER_TIMEOUT", 30)));
  if (options.max_sessions < 1 || options.reader_timeout_seconds < 1) {
    std::fprintf(stderr,
                 "gz_shard: --max-sessions and --reader-timeout must be "
                 "positive\n");
    return 2;
  }
  gz::ShardListener listener(std::move(options));
  gz::Status s = listener.Bind();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: %s\n", s.ToString().c_str());
    return s.code() == gz::StatusCode::kInvalidArgument ? 2 : 1;
  }
  std::fprintf(stderr, "gz_shard: listening on %s (port %u)%s\n",
               flags.GetString("listen", "").c_str(), listener.port(),
               secret.empty() ? " WITHOUT an auth secret" : "");
  s = listener.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;  // Orderly SHUTDOWN: the shard retires.
}

}  // namespace

int main(int argc, char** argv) {
  gz::tools::Flags flags(argc, argv);
  const std::string secret = gz::tools::ResolveAuthSecret(flags, "gz_shard");
  if (flags.Has("listen")) return RunListener(flags, secret);
  const int fd = static_cast<int>(flags.GetInt("fd", -1));
  if (fd < 0) return Usage();
  const gz::Status s = gz::ShardServer(fd, secret).Serve();
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
