// gz_generate: create a binary graph-stream file from a synthetic
// generator — the workload-preparation tool of this repository.
//
// Usage:
//   gz_generate --out stream.gzst --kind kron --scale 12 --density 0.5
//   gz_generate --out stream.gzst --kind er --nodes 5000 --p 0.1
// Common flags: --seed N, --churn F, --phantom F, --disconnect K
#include <cstdio>
#include <string>

#include "stream/erdos_renyi_generator.h"
#include "stream/kronecker_generator.h"
#include "stream/stream_file.h"
#include "stream/stream_transform.h"
#include "stream/weighted_stream_file.h"
#include "tools/flags.h"
#include "util/xxhash.h"

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: gz_generate --out FILE [--kind kron|er] "
                 "[--scale N | --nodes N --p F] [--density F] [--seed N]\n"
                 "       [--churn F] [--phantom F] [--disconnect K]\n");
    return 2;
  }

  const std::string kind = flags.GetString("kind", "kron");
  const uint64_t seed = flags.GetInt("seed", 1);

  EdgeList edges;
  uint64_t num_nodes = 0;
  if (kind == "kron") {
    KroneckerParams kp;
    kp.scale = static_cast<int>(flags.GetInt("scale", 10));
    kp.density = flags.GetDouble("density", 0.5);
    kp.seed = seed;
    KroneckerGenerator gen(kp);
    num_nodes = gen.num_nodes();
    edges = gen.Generate();
  } else if (kind == "er") {
    ErdosRenyiParams ep;
    ep.num_nodes = flags.GetInt("nodes", 1024);
    ep.p = flags.GetDouble("p", 0.5);
    ep.seed = seed;
    num_nodes = ep.num_nodes;
    edges = ErdosRenyiGenerator(ep).Generate();
  } else {
    std::fprintf(stderr, "unknown --kind '%s' (kron|er)\n", kind.c_str());
    return 2;
  }

  StreamTransformParams tp;
  tp.num_nodes = num_nodes;
  tp.seed = seed;
  tp.churn_fraction = flags.GetDouble("churn", 0.03);
  tp.phantom_fraction = flags.GetDouble("phantom", 0.02);
  tp.disconnect_count = static_cast<int>(flags.GetInt("disconnect", 0));
  const StreamTransformResult stream = BuildStream(edges, tp);

  const Status s = WriteStreamFile(out, num_nodes, stream.updates);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %llu nodes, %zu graph edges, %zu stream updates, "
              "%zu disconnected nodes\n",
              out.c_str(), static_cast<unsigned long long>(num_nodes),
              edges.size(), stream.updates.size(),
              stream.disconnected_nodes.size());

  // Optional weighted companion stream for gz_msf: each edge gets a
  // hash-derived weight so an edge's insert and delete always agree.
  const std::string weighted_out = flags.GetString("weighted-out", "");
  if (!weighted_out.empty()) {
    const uint32_t max_weight =
        static_cast<uint32_t>(flags.GetInt("max-weight", 8));
    std::vector<WeightedUpdate> weighted;
    weighted.reserve(stream.updates.size());
    for (const GraphUpdate& u : stream.updates) {
      const uint64_t idx = EdgeToIndex(u.edge, num_nodes);
      WeightedUpdate wu;
      wu.update = u;
      wu.weight =
          1 + static_cast<uint32_t>(XxHash64Word(idx, seed) % max_weight);
      weighted.push_back(wu);
    }
    const Status ws =
        WriteWeightedStreamFile(weighted_out, num_nodes, weighted);
    if (!ws.ok()) {
      std::fprintf(stderr, "weighted write failed: %s\n",
                   ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: weighted companion (weights in [1, %u])\n",
                weighted_out.c_str(), max_weight);
  }
  return 0;
}
