// gz_msf: minimum-spanning-forest weight of a weighted dynamic graph
// stream, computed with level sketches (algos/msf_weight.h).
//
// Usage:
//   gz_msf --stream weighted.gzws --max-weight W [--seed N] [--workers N]
// Generate an input with gz_generate's --weighted-out/--max-weight flags,
// or write the weighted format directly via the library API.
#include <cstdio>
#include <string>

#include "algos/msf_weight.h"
#include "stream/weighted_stream_file.h"
#include "tools/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);
  const std::string in = flags.GetString("stream", "");
  const uint32_t max_weight =
      static_cast<uint32_t>(flags.GetInt("max-weight", 0));
  if (in.empty() || max_weight == 0) {
    std::fprintf(stderr,
                 "usage: gz_msf --stream FILE.gzws --max-weight W "
                 "[--seed N] [--workers N]\n");
    return 2;
  }

  WeightedStreamReader reader;
  Status s = reader.Open(in);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  GraphZeppelinConfig config;
  config.num_nodes = reader.num_nodes();
  config.seed = flags.GetInt("seed", 42);
  config.num_workers = static_cast<int>(flags.GetInt("workers", 1));
  MsfWeightSketch msf(config, max_weight);
  s = msf.Init();
  if (!s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  WallTimer timer;
  WeightedUpdate wu;
  uint64_t consumed = 0;
  while (reader.Next(&wu)) {
    msf.Update(wu.update.edge, wu.weight, wu.update.type);
    ++consumed;
  }
  if (!reader.status().ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }

  const MsfWeightResult result = msf.Query();
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed; retry with another seed\n");
    return 1;
  }
  std::printf(
      "read %llu weighted updates over %llu nodes in %.2fs\n"
      "MSF weight = %llu across %zu components (weights in [1, %u])\n",
      static_cast<unsigned long long>(consumed),
      static_cast<unsigned long long>(reader.num_nodes()), timer.Seconds(),
      static_cast<unsigned long long>(result.weight), result.num_components,
      max_weight);
  return 0;
}
