// Tiny command-line flag parser for the CLI tools: --name=value or
// --name value. No external dependencies.
#ifndef GZ_TOOLS_FLAGS_H_
#define GZ_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace gz {
namespace tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg, '=');
      if (eq != nullptr) {
        values_[std::string(arg + 2, eq - arg - 2)] = eq + 1;
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg + 2] = argv[++i];
      } else {
        values_[arg + 2] = "true";  // Bare boolean flag.
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1";
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

// Splits a comma-separated endpoint list (empty entries dropped) — the
// shared grammar of every tool that dials a shard fleet.
inline std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// The shared secret-resolution order of every networked tool:
// --auth-secret, then --auth-secret-file (trailing newlines stripped,
// exits on an unreadable file), then $GZ_SHARD_AUTH_SECRET, then "".
inline std::string ResolveAuthSecret(const Flags& flags, const char* tool) {
  if (flags.Has("auth-secret")) return flags.GetString("auth-secret", "");
  if (flags.Has("auth-secret-file")) {
    const std::string path = flags.GetString("auth-secret-file", "");
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot read --auth-secret-file %s\n", tool,
                   path.c_str());
      std::exit(2);
    }
    std::string secret;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      secret.append(buf, n);
    }
    std::fclose(f);
    while (!secret.empty() &&
           (secret.back() == '\n' || secret.back() == '\r')) {
      secret.pop_back();
    }
    return secret;
  }
  const char* env = std::getenv("GZ_SHARD_AUTH_SECRET");
  return env != nullptr ? env : "";
}

}  // namespace tools
}  // namespace gz

#endif  // GZ_TOOLS_FLAGS_H_
