// Tiny command-line flag parser for the CLI tools: --name=value or
// --name value. No external dependencies.
#ifndef GZ_TOOLS_FLAGS_H_
#define GZ_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

namespace gz {
namespace tools {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg, '=');
      if (eq != nullptr) {
        values_[std::string(arg + 2, eq - arg - 2)] = eq + 1;
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg + 2] = argv[++i];
      } else {
        values_[arg + 2] = "true";  // Bare boolean flag.
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1";
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tools
}  // namespace gz

#endif  // GZ_TOOLS_FLAGS_H_
