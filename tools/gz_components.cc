// gz_components: compute the connected components of a stream file
// with GraphZeppelin — the end-to-end CLI entry point.
//
// Usage:
//   gz_components --stream stream.gzst
//     [--buffering leaf|tree] [--storage ram|disk] [--workers N]
//     [--gutter-fraction F] [--seed N] [--checkpoint out.ckpt]
//     [--query-threads N] (Boruvka pool; 0 = auto)
//     [--top K]   (print the K largest components)
//     [--heavy-hitters K] (track a count-min side sketch during the
//                          ingest and print the top-K edges and degrees
//                          from the writer's own fold — in sharded mode
//                          the coordinator's sum-merge over the shards)
//
// Sharded coordinator mode — ingest the stream through a running
// `gz_shard --listen` fleet instead of an in-process instance (one
// listener per shard; this process holds the writer session):
//   gz_components --stream stream.gzst
//     --shard-endpoints tcp://H:P,tcp://H:P,...
//     [--replication R]    (R listeners per shard, shard-major: the
//                           endpoint list is replica 0..R-1 of shard 0,
//                           then of shard 1, ...; its length must be a
//                           multiple of R)
//     [--auth-secret SECRET | --auth-secret-file PATH]
//     [--hold-seconds N]   (after the query, keep the writer session —
//                           and so the shard instances — alive for N
//                           seconds, so gz_query readers can serve)
//
// The checkpoint file is a serialized GraphSnapshot: gz_snapshot can
// re-query it or merge it with snapshots from same-seed instances.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/graph_zeppelin.h"
#include "core/stream_ingestor.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "stream/stream_file.h"
#include "tools/flags.h"
#include "util/mem_usage.h"
#include "util/timer.h"

namespace {

// Writer-side heavy-hitter report: one regexable line per ranked entry
// (the CI e2e step compares these against a gz_query reader's fold of
// the same cluster).
void PrintHeavyHitters(const gz::HeavyHitterSketch& hh, int top) {
  using namespace gz;
  const uint64_t num_nodes = hh.params().num_nodes;
  for (const HeavyHitterEntry& entry :
       hh.TopEdges(static_cast<size_t>(top))) {
    const Edge e = IndexToEdge(entry.key, num_nodes);
    std::printf("heavy-hitter edge %llu-%llu count %lld\n",
                static_cast<unsigned long long>(e.u),
                static_cast<unsigned long long>(e.v),
                static_cast<long long>(entry.count));
  }
  for (const HeavyHitterEntry& entry :
       hh.TopDegrees(static_cast<size_t>(top))) {
    std::printf("heavy-hitter degree %llu count %lld\n",
                static_cast<unsigned long long>(entry.key),
                static_cast<long long>(entry.count));
  }
}

// Sharded coordinator mode: this process is the cluster's writer —
// routes the stream to a listener fleet, folds the shard snapshots for
// the query, and (with --hold-seconds) stays connected afterwards so
// the shard instances keep serving gz_query reader sessions.
int RunSharded(const gz::tools::Flags& flags,
               gz::GraphZeppelinConfig config,
               const std::string& stream_path) {
  using namespace gz;
  const std::vector<std::string> endpoints =
      tools::SplitCommaList(flags.GetString("shard-endpoints", ""));
  const int replication =
      static_cast<int>(flags.GetInt("replication", 1));
  if (replication < 1) {
    std::fprintf(stderr, "--replication wants a factor >= 1, got %d\n",
                 replication);
    return 2;
  }
  if (endpoints.size() % replication != 0) {
    std::fprintf(stderr,
                 "--shard-endpoints lists %zu listeners, not a multiple of "
                 "--replication %d (shard-major: R consecutive endpoints "
                 "per shard)\n",
                 endpoints.size(), replication);
    return 2;
  }
  ShardClusterOptions copts;
  copts.auth_secret = tools::ResolveAuthSecret(flags, "gz_components");
  copts.shard_endpoints = endpoints;
  copts.replication_factor = replication;
  ShardedGraphZeppelin sharded(
      config, static_cast<int>(endpoints.size()) / replication,
      ShardedGraphZeppelin::Mode::kProcess, copts);
  Status s = sharded.Init();
  if (!s.ok()) {
    std::fprintf(stderr, "cluster init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  StreamReader reader;
  s = reader.Open(stream_path);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  WallTimer timer;
  std::vector<GraphUpdate> chunk;
  chunk.reserve(1 << 16);
  uint64_t ingested = 0;
  GraphUpdate update;
  while (reader.Next(&update)) {
    chunk.push_back(update);
    if (chunk.size() == chunk.capacity()) {
      sharded.Update(chunk.data(), chunk.size());
      ingested += chunk.size();
      chunk.clear();
    }
  }
  if (!reader.status().ok()) {
    std::fprintf(stderr, "stream read failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  if (!chunk.empty()) {
    sharded.Update(chunk.data(), chunk.size());
    ingested += chunk.size();
  }
  sharded.Flush();
  const double ingest_seconds = timer.Seconds();

  WallTimer query_timer;
  const ConnectivityResult result = sharded.ListSpanningForest();
  const double query_seconds = query_timer.Seconds();
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed; re-run with another seed\n");
    return 1;
  }

  char rate_buf[32];
  std::printf("ingested  %llu updates across %d shards in %.2fs "
              "(%s updates/s)\n",
              static_cast<unsigned long long>(ingested),
              sharded.num_shards(), ingest_seconds,
              FormatRate(static_cast<double>(ingested) / ingest_seconds,
                         rate_buf, sizeof(rate_buf)));
  std::printf("query     %.3fs, %d Boruvka rounds\n", query_seconds,
              result.rounds_used);
  std::printf("components %zu, spanning forest %zu edges\n",
              result.num_components, result.spanning_forest.size());

  const int hh_top = static_cast<int>(flags.GetInt("heavy-hitters", 0));
  if (hh_top > 0) {
    const Result<HeavyHitterSketch> hh = sharded.HeavyHitters();
    if (!hh.ok()) {
      std::fprintf(stderr, "heavy-hitter fold failed: %s\n",
                   hh.status().ToString().c_str());
      return 1;
    }
    PrintHeavyHitters(hh.value(), hh_top);
  }

  const int hold = static_cast<int>(flags.GetInt("hold-seconds", 0));
  if (hold > 0) {
    std::printf("holding writer session for %ds (readers may query)\n",
                hold);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(hold));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gz;
  tools::Flags flags(argc, argv);

  const std::string stream_path = flags.GetString("stream", "");
  if (stream_path.empty()) {
    std::fprintf(stderr,
                 "usage: gz_components --stream FILE [--buffering leaf|tree]"
                 " [--storage ram|disk] [--workers N]\n"
                 "       [--gutter-fraction F] [--seed N] "
                 "[--checkpoint FILE] [--query-threads N] [--top K] "
                 "[--heavy-hitters K]\n"
                 "       [--shard-endpoints tcp://H:P,...] "
                 "[--replication R] "
                 "[--auth-secret S | --auth-secret-file PATH] "
                 "[--hold-seconds N]\n");
    return 2;
  }

  StreamReader reader;
  Status s = reader.Open(stream_path);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  GraphZeppelinConfig config;
  config.num_nodes = reader.num_nodes();
  config.seed = flags.GetInt("seed", 42);
  config.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  config.gutter_fraction = flags.GetDouble("gutter-fraction", 0.5);
  if (flags.GetString("buffering", "leaf") == "tree") {
    config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
  }
  if (flags.GetString("storage", "ram") == "disk") {
    config.storage = GraphZeppelinConfig::Storage::kDisk;
  }
  config.query_threads = static_cast<int>(flags.GetInt("query-threads", 0));
  const int hh_top = static_cast<int>(flags.GetInt("heavy-hitters", 0));
  if (hh_top > 0) {
    config.heavy_hitter_width = 2048;  // Defaults elsewhere in the struct.
  }

  if (!flags.GetString("shard-endpoints", "").empty()) {
    reader.Close();  // Only needed it for the node count.
    return RunSharded(flags, config, stream_path);
  }

  GraphZeppelin gz(config);
  s = gz.Init();
  if (!s.ok()) {
    std::fprintf(stderr, "init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  reader.Close();  // Only needed it for the node count.

  // Bulk chunked ingestion (including the final flush) via the shared
  // stream driver.
  WallTimer timer;
  const Result<uint64_t> ingested = IngestStreamFile(&gz, stream_path);
  if (!ingested.ok()) {
    std::fprintf(stderr, "stream read failed: %s\n",
                 ingested.status().ToString().c_str());
    return 1;
  }
  const double ingest_seconds = timer.Seconds();

  WallTimer query_timer;
  const ConnectivityResult result = gz.ListSpanningForest();
  const double query_seconds = query_timer.Seconds();
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed; re-run with another seed\n");
    return 1;
  }

  char rate_buf[32], ram_buf[32];
  std::printf("ingested  %llu updates in %.2fs (%s updates/s)\n",
              static_cast<unsigned long long>(gz.num_updates_ingested()),
              ingest_seconds,
              FormatRate(static_cast<double>(gz.num_updates_ingested()) /
                             ingest_seconds,
                         rate_buf, sizeof(rate_buf)));
  std::printf("query     %.3fs, %d Boruvka rounds\n", query_seconds,
              result.rounds_used);
  std::printf("memory    %s RAM",
              FormatBytes(gz.RamByteSize(), ram_buf, sizeof(ram_buf)));
  if (gz.DiskByteSize() > 0) {
    char disk_buf[32];
    std::printf(" + %s disk",
                FormatBytes(gz.DiskByteSize(), disk_buf, sizeof(disk_buf)));
  }
  std::printf("\ncomponents %zu, spanning forest %zu edges\n",
              result.num_components, result.spanning_forest.size());

  if (hh_top > 0 && gz.heavy_hitters() != nullptr) {
    PrintHeavyHitters(*gz.heavy_hitters(), hh_top);
  }

  const int top = static_cast<int>(flags.GetInt("top", 5));
  if (top > 0) {
    auto components = ComponentsFromLabels(result.component_of);
    std::sort(components.begin(), components.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    for (int i = 0; i < top && i < static_cast<int>(components.size()); ++i) {
      std::printf("  component %d: %zu nodes\n", i + 1,
                  components[i].size());
    }
  }

  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (!checkpoint.empty()) {
    s = gz.SaveCheckpoint(checkpoint);
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }
  return 0;
}
