// Erdős–Rényi G(n, p) generator: the simplest dense-graph workload, used
// by tests and as an unskewed counterpart to the Kronecker generator.
#ifndef GZ_STREAM_ERDOS_RENYI_GENERATOR_H_
#define GZ_STREAM_ERDOS_RENYI_GENERATOR_H_

#include <cstdint>

#include "stream/stream_types.h"

namespace gz {

struct ErdosRenyiParams {
  uint64_t num_nodes = 0;
  double p = 0.5;  // Independent probability per possible edge.
  uint64_t seed = 1;
};

class ErdosRenyiGenerator {
 public:
  explicit ErdosRenyiGenerator(const ErdosRenyiParams& params);

  EdgeList Generate() const;

 private:
  ErdosRenyiParams params_;
};

// Convenience: a uniformly random spanning-tree-plus-extras graph with
// exactly `num_edges` edges and guaranteed connectivity. Used by tests
// that need a connected ground truth.
EdgeList RandomConnectedGraph(uint64_t num_nodes, uint64_t num_edges,
                              uint64_t seed);

}  // namespace gz

#endif  // GZ_STREAM_ERDOS_RENYI_GENERATOR_H_
