// Binary stream files: the on-disk representation of a graph stream.
// Format: 24-byte header (magic, version, node count, update count)
// followed by packed 9-byte records (u: u32, v: u32, type: u8).
#ifndef GZ_STREAM_STREAM_FILE_H_
#define GZ_STREAM_STREAM_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class StreamWriter {
 public:
  StreamWriter() = default;
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  // Creates/truncates `path` and writes the header. `num_nodes` is the
  // node-count upper bound consumers should size their structures for.
  Status Open(const std::string& path, uint64_t num_nodes);

  Status Append(const GraphUpdate& update);
  Status AppendAll(const std::vector<GraphUpdate>& updates);

  // Rewrites the header with the final update count and closes the file.
  Status Close();

 private:
  FILE* file_ = nullptr;
  uint64_t num_nodes_ = 0;
  uint64_t count_ = 0;
};

class StreamReader {
 public:
  StreamReader() = default;
  ~StreamReader();
  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  Status Open(const std::string& path);

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_updates() const { return num_updates_; }

  // Reads the next update. Returns true on success, false at EOF.
  // I/O errors are reported through `status()`.
  bool Next(GraphUpdate* update);

  const Status& status() const { return status_; }

  void Close();

 private:
  FILE* file_ = nullptr;
  uint64_t num_nodes_ = 0;
  uint64_t num_updates_ = 0;
  uint64_t consumed_ = 0;
  Status status_;
};

// Convenience round-trips for tests and examples.
Status WriteStreamFile(const std::string& path, uint64_t num_nodes,
                       const std::vector<GraphUpdate>& updates);
Result<std::vector<GraphUpdate>> ReadStreamFile(const std::string& path,
                                                uint64_t* num_nodes_out);

}  // namespace gz

#endif  // GZ_STREAM_STREAM_FILE_H_
