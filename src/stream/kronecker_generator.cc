#include "stream/kronecker_generator.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"
#include "util/xxhash.h"

namespace gz {
namespace {

// A weight class: all ordered pairs (u, v) whose bitwise comparison has
// the same counts of (0,0), (0,1), (1,0), (1,1) positions share one
// Kronecker weight. There are O(scale^3) classes, so calibration over
// the histogram is exact and cheap at any scale.
struct WeightClass {
  double weight;         // Symmetrized pair weight.
  double ordered_count;  // Number of ordered pairs in the class.
};

double Multinomial(int n, int k0, int k1, int k2, int k3) {
  // n! / (k0! k1! k2! k3!) computed multiplicatively in doubles; exact
  // for the magnitudes involved (scale <= 24 => counts <= 4^24 < 2^53).
  double result = 1.0;
  int used = 0;
  for (int k : {k0, k1, k2, k3}) {
    for (int i = 1; i <= k; ++i) {
      ++used;
      result = result * used / i;
    }
  }
  GZ_CHECK(used == n);
  return result;
}

}  // namespace

KroneckerGenerator::KroneckerGenerator(const KroneckerParams& params)
    : params_(params) {
  GZ_CHECK(params_.scale >= 1 && params_.scale <= 24);
  GZ_CHECK(params_.density > 0.0 && params_.density <= 1.0);
  GZ_CHECK(params_.a > 0 && params_.b > 0 && params_.c > 0 && params_.d > 0);
  const double sum = params_.a + params_.b + params_.c + params_.d;
  GZ_CHECK_MSG(sum > 0.99 && sum < 1.01, "initiator matrix must sum to 1");
}

double KroneckerGenerator::PairWeight(NodeId u, NodeId v) const {
  // Product over bit positions of the initiator weight selected by the
  // (u-bit, v-bit) pair, symmetrized over edge direction.
  double w_uv = 1.0;
  double w_vu = 1.0;
  for (int bit = 0; bit < params_.scale; ++bit) {
    const int bu = (u >> bit) & 1;
    const int bv = (v >> bit) & 1;
    const double m[2][2] = {{params_.a, params_.b},
                            {params_.c, params_.d}};
    w_uv *= m[bu][bv];
    w_vu *= m[bv][bu];
  }
  return 0.5 * (w_uv + w_vu);
}

EdgeList KroneckerGenerator::Generate() const {
  const uint64_t n = num_nodes();
  const uint64_t possible = NumPossibleEdges(n);
  const double target = params_.density * static_cast<double>(possible);

  // --- Build the exact weight-class histogram --------------------------
  // Classes with n01 == n10 == 0 are exactly the diagonal (u == v) and
  // are excluded; every unordered pair {u, v} appears as two ordered
  // pairs whose symmetrized weights coincide.
  std::vector<WeightClass> classes;
  const int s = params_.scale;
  for (int n00 = 0; n00 <= s; ++n00) {
    for (int n01 = 0; n01 + n00 <= s; ++n01) {
      for (int n10 = 0; n10 + n01 + n00 <= s; ++n10) {
        const int n11 = s - n00 - n01 - n10;
        if (n01 == 0 && n10 == 0) continue;  // Diagonal u == v.
        const double w_uv = std::pow(params_.a, n00) *
                            std::pow(params_.b, n01) *
                            std::pow(params_.c, n10) *
                            std::pow(params_.d, n11);
        const double w_vu = std::pow(params_.a, n00) *
                            std::pow(params_.c, n01) *
                            std::pow(params_.b, n10) *
                            std::pow(params_.d, n11);
        classes.push_back(WeightClass{0.5 * (w_uv + w_vu),
                                      Multinomial(s, n00, n01, n10, n11)});
      }
    }
  }

  // Expected unordered-edge count if each pair is kept with probability
  // min(1, c * weight).
  auto expected_edges = [&classes](double c) {
    double total = 0.0;
    for (const WeightClass& wc : classes) {
      total += wc.ordered_count * std::min(1.0, c * wc.weight);
    }
    return 0.5 * total;  // Ordered -> unordered.
  };

  // --- Binary search for the calibration constant ----------------------
  double lo = 0.0;
  double hi = 1.0;
  while (expected_edges(hi) < target && hi < 1e300) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected_edges(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double scale_factor = hi;

  // --- Single sampling pass over all pairs ------------------------------
  EdgeList edges;
  edges.reserve(static_cast<size_t>(target * 1.02) + 16);
  SplitMix64 rng(XxHash64Word(0x6b726f6eULL, params_.seed));
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = scale_factor * PairWeight(u, v);
      if (rng.NextDouble() < p) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace gz
