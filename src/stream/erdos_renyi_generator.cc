#include "stream/erdos_renyi_generator.h"

#include <unordered_set>

#include "util/check.h"
#include "util/random.h"
#include "util/xxhash.h"

namespace gz {

ErdosRenyiGenerator::ErdosRenyiGenerator(const ErdosRenyiParams& params)
    : params_(params) {
  GZ_CHECK(params_.num_nodes >= 2);
  GZ_CHECK(params_.p > 0.0 && params_.p <= 1.0);
}

EdgeList ErdosRenyiGenerator::Generate() const {
  const uint64_t n = params_.num_nodes;
  EdgeList edges;
  edges.reserve(
      static_cast<size_t>(params_.p * static_cast<double>(NumPossibleEdges(n)) *
                          1.02) +
      16);
  SplitMix64 rng(XxHash64Word(0x6572ULL, params_.seed));
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < params_.p) edges.emplace_back(u, v);
    }
  }
  return edges;
}

EdgeList RandomConnectedGraph(uint64_t num_nodes, uint64_t num_edges,
                              uint64_t seed) {
  GZ_CHECK(num_nodes >= 2);
  GZ_CHECK(num_edges >= num_nodes - 1);
  GZ_CHECK(num_edges <= NumPossibleEdges(num_nodes));
  SplitMix64 rng(XxHash64Word(0x636f6e6eULL, seed));

  EdgeList edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> present;
  present.reserve(num_edges * 2);

  // Random spanning tree: attach each vertex to a random earlier one.
  for (NodeId v = 1; v < num_nodes; ++v) {
    const NodeId u = static_cast<NodeId>(rng.NextBelow(v));
    Edge e(u, v);
    present.insert(EdgeToIndex(e, num_nodes));
    edges.push_back(e);
  }
  // Fill with distinct random extra edges.
  while (edges.size() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBelow(num_nodes));
    if (u == v) continue;
    Edge e(u, v);
    const uint64_t idx = EdgeToIndex(e, num_nodes);
    if (present.insert(idx).second) edges.push_back(e);
  }
  return edges;
}

}  // namespace gz
