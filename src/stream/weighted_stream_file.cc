#include "stream/weighted_stream_file.h"

#include <cstring>

namespace gz {
namespace {

constexpr char kMagic[4] = {'G', 'Z', 'W', 'S'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
constexpr size_t kRecordSize = 4 + 4 + 1 + 4;

void PackHeader(uint64_t num_nodes, uint64_t count, uint8_t out[kHeaderSize]) {
  std::memcpy(out, kMagic, 4);
  std::memcpy(out + 4, &kVersion, 4);
  std::memcpy(out + 8, &num_nodes, 8);
  std::memcpy(out + 16, &count, 8);
}

}  // namespace

WeightedStreamWriter::~WeightedStreamWriter() {
  if (file_ != nullptr) (void)Close();
}

Status WeightedStreamWriter::Open(const std::string& path,
                                  uint64_t num_nodes) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot create weighted stream file: " + path);
  }
  num_nodes_ = num_nodes;
  count_ = 0;
  uint8_t header[kHeaderSize];
  PackHeader(num_nodes_, 0, header);
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    return Status::IoError("short header write: " + path);
  }
  return Status::Ok();
}

Status WeightedStreamWriter::Append(const WeightedUpdate& wu) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  uint8_t rec[kRecordSize];
  std::memcpy(rec, &wu.update.edge.u, 4);
  std::memcpy(rec + 4, &wu.update.edge.v, 4);
  rec[8] = static_cast<uint8_t>(wu.update.type);
  std::memcpy(rec + 9, &wu.weight, 4);
  if (std::fwrite(rec, 1, kRecordSize, file_) != kRecordSize) {
    return Status::IoError("short record write");
  }
  ++count_;
  return Status::Ok();
}

Status WeightedStreamWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  uint8_t header[kHeaderSize];
  PackHeader(num_nodes_, count_, header);
  Status result = Status::Ok();
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    result = Status::IoError("header rewrite failed");
  }
  std::fclose(file_);
  file_ = nullptr;
  return result;
}

WeightedStreamReader::~WeightedStreamReader() { Close(); }

Status WeightedStreamReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("reader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open weighted stream file: " + path);
  }
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, file_) != kHeaderSize) {
    Close();
    return Status::IoError("short header read: " + path);
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    Close();
    return Status::InvalidArgument("bad magic in weighted stream: " + path);
  }
  uint32_t version;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    Close();
    return Status::InvalidArgument("unsupported weighted stream version");
  }
  std::memcpy(&num_nodes_, header + 8, 8);
  std::memcpy(&num_updates_, header + 16, 8);
  consumed_ = 0;
  status_ = Status::Ok();
  return Status::Ok();
}

bool WeightedStreamReader::Next(WeightedUpdate* wu) {
  if (file_ == nullptr || consumed_ >= num_updates_) return false;
  uint8_t rec[kRecordSize];
  if (std::fread(rec, 1, kRecordSize, file_) != kRecordSize) {
    status_ = Status::IoError("short record read (stream truncated)");
    return false;
  }
  NodeId u, v;
  std::memcpy(&u, rec, 4);
  std::memcpy(&v, rec + 4, 4);
  wu->update.edge = Edge(u, v);
  wu->update.type = static_cast<UpdateType>(rec[8]);
  std::memcpy(&wu->weight, rec + 9, 4);
  ++consumed_;
  return true;
}

void WeightedStreamReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteWeightedStreamFile(const std::string& path, uint64_t num_nodes,
                               const std::vector<WeightedUpdate>& updates) {
  WeightedStreamWriter writer;
  Status s = writer.Open(path, num_nodes);
  if (!s.ok()) return s;
  for (const WeightedUpdate& wu : updates) {
    s = writer.Append(wu);
    if (!s.ok()) return s;
  }
  return writer.Close();
}

Result<std::vector<WeightedUpdate>> ReadWeightedStreamFile(
    const std::string& path, uint64_t* num_nodes_out) {
  WeightedStreamReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  if (num_nodes_out != nullptr) *num_nodes_out = reader.num_nodes();
  std::vector<WeightedUpdate> updates;
  updates.reserve(reader.num_updates());
  WeightedUpdate wu;
  while (reader.Next(&wu)) updates.push_back(wu);
  if (!reader.status().ok()) return reader.status();
  return updates;
}

}  // namespace gz
