// Maps arbitrary string node identifiers to dense integer NodeIds —
// the paper's Section 2.2 note that streams may name nodes with
// arbitrary strings. A dense assignment (rather than the paper's
// hash-to-[O(U^2)] sketch trick) keeps downstream structures exactly
// V-sized and is collision-free by construction.
#ifndef GZ_STREAM_NODE_ID_MAPPER_H_
#define GZ_STREAM_NODE_ID_MAPPER_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/stream_types.h"
#include "util/check.h"

namespace gz {

class NodeIdMapper {
 public:
  // Maximum distinct names (the GraphZeppelin instance's num_nodes).
  explicit NodeIdMapper(uint64_t capacity) : capacity_(capacity) {}

  // Returns the id for `name`, assigning the next free id on first use.
  // Aborts if capacity is exhausted (callers size capacity as the
  // stream's node upper bound U).
  NodeId IdFor(std::string_view name) {
    const auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    GZ_CHECK_MSG(names_.size() < capacity_, "node id capacity exhausted");
    const NodeId id = static_cast<NodeId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Lookup without assignment.
  std::optional<NodeId> Find(std::string_view name) const {
    const auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  // Inverse mapping; `id` must have been assigned.
  const std::string& NameOf(NodeId id) const {
    GZ_CHECK(id < names_.size());
    return names_[id];
  }

  uint64_t size() const { return names_.size(); }
  uint64_t capacity() const { return capacity_; }

 private:
  uint64_t capacity_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> ids_;
};

}  // namespace gz

#endif  // GZ_STREAM_NODE_ID_MAPPER_H_
