#include "stream/stream_types.h"

#include <cmath>

namespace gz {

Edge IndexToEdge(EdgeIndex idx, uint64_t num_nodes) {
  GZ_CHECK(idx < NumPossibleEdges(num_nodes));
  // Solve for the largest u with RowStart(u) <= idx where
  // RowStart(u) = u*num_nodes - u*(u+1)/2. Start from the float
  // approximation and correct with integer steps (float error is tiny but
  // nonzero for indices near 2^53).
  const double n = static_cast<double>(num_nodes);
  const double disc = (2.0 * n - 1.0) * (2.0 * n - 1.0) -
                      8.0 * static_cast<double>(idx);
  uint64_t u = static_cast<uint64_t>(
      std::floor(((2.0 * n - 1.0) - std::sqrt(disc)) / 2.0));
  if (u >= num_nodes) u = num_nodes - 1;

  auto row_start = [num_nodes](uint64_t r) {
    return r * num_nodes - r * (r + 1) / 2;
  };
  while (u > 0 && row_start(u) > idx) --u;
  while (u + 1 < num_nodes && row_start(u + 1) <= idx) ++u;

  const uint64_t v = idx - row_start(u) + u + 1;
  GZ_CHECK(v < num_nodes);
  return Edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
}

}  // namespace gz
