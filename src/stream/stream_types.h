// Core graph-stream types: nodes, edges, updates, and the bijection
// between undirected edges and indices of the characteristic vector
// (length U·(U-1)/2) that the sketches compress.
#ifndef GZ_STREAM_STREAM_TYPES_H_
#define GZ_STREAM_STREAM_TYPES_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace gz {

using NodeId = uint32_t;
// Index into the characteristic vector of possible edges; up to
// U·(U-1)/2 - 1, so 64 bits.
using EdgeIndex = uint64_t;

// An undirected edge. Constructors normalize so that u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  Edge() = default;
  Edge(NodeId a, NodeId b) : u(a < b ? a : b), v(a < b ? b : a) {
    GZ_CHECK_MSG(a != b, "self-loop edge");
  }

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

enum class UpdateType : uint8_t { kInsert = 0, kDelete = 1 };

// One stream element: ((u, v), Δ) with Δ ∈ {+1 (insert), -1 (delete)}.
struct GraphUpdate {
  Edge edge;
  UpdateType type = UpdateType::kInsert;

  friend bool operator==(const GraphUpdate& a, const GraphUpdate& b) {
    return a.edge == b.edge && a.type == b.type;
  }
};

// Number of possible undirected edges among `num_nodes` vertices.
inline EdgeIndex NumPossibleEdges(uint64_t num_nodes) {
  return num_nodes * (num_nodes - 1) / 2;
}

// Maps edge {u, v} (u < v) among `num_nodes` vertices to its triangular
// index in [0, NumPossibleEdges(num_nodes)). Row-major over u.
inline EdgeIndex EdgeToIndex(const Edge& e, uint64_t num_nodes) {
  const uint64_t u = e.u;
  const uint64_t v = e.v;
  GZ_CHECK(u < v && v < num_nodes);
  return u * num_nodes - u * (u + 1) / 2 + (v - u - 1);
}

// Inverse of EdgeToIndex.
Edge IndexToEdge(EdgeIndex idx, uint64_t num_nodes);

// A list of edges, e.g. a spanning forest returned by a connectivity query.
using EdgeList = std::vector<Edge>;

}  // namespace gz

#endif  // GZ_STREAM_STREAM_TYPES_H_
