// Weighted binary stream files: like stream_file.h but each record
// carries an integer edge weight, feeding the MSF-weight sketch
// (algos/msf_weight.h). Format: 24-byte header (magic "GZWS", version,
// node count, update count) then packed 13-byte records
// (u: u32, v: u32, type: u8, weight: u32).
#ifndef GZ_STREAM_WEIGHTED_STREAM_FILE_H_
#define GZ_STREAM_WEIGHTED_STREAM_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct WeightedUpdate {
  GraphUpdate update;
  uint32_t weight = 1;

  friend bool operator==(const WeightedUpdate& a, const WeightedUpdate& b) {
    return a.update == b.update && a.weight == b.weight;
  }
};

class WeightedStreamWriter {
 public:
  WeightedStreamWriter() = default;
  ~WeightedStreamWriter();
  WeightedStreamWriter(const WeightedStreamWriter&) = delete;
  WeightedStreamWriter& operator=(const WeightedStreamWriter&) = delete;

  Status Open(const std::string& path, uint64_t num_nodes);
  Status Append(const WeightedUpdate& update);
  Status Close();

 private:
  FILE* file_ = nullptr;
  uint64_t num_nodes_ = 0;
  uint64_t count_ = 0;
};

class WeightedStreamReader {
 public:
  WeightedStreamReader() = default;
  ~WeightedStreamReader();
  WeightedStreamReader(const WeightedStreamReader&) = delete;
  WeightedStreamReader& operator=(const WeightedStreamReader&) = delete;

  Status Open(const std::string& path);
  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_updates() const { return num_updates_; }
  bool Next(WeightedUpdate* update);
  const Status& status() const { return status_; }
  void Close();

 private:
  FILE* file_ = nullptr;
  uint64_t num_nodes_ = 0;
  uint64_t num_updates_ = 0;
  uint64_t consumed_ = 0;
  Status status_;
};

Status WriteWeightedStreamFile(const std::string& path, uint64_t num_nodes,
                               const std::vector<WeightedUpdate>& updates);
Result<std::vector<WeightedUpdate>> ReadWeightedStreamFile(
    const std::string& path, uint64_t* num_nodes_out);

}  // namespace gz

#endif  // GZ_STREAM_WEIGHTED_STREAM_FILE_H_
