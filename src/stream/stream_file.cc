#include "stream/stream_file.h"

#include <cstring>

namespace gz {
namespace {

constexpr char kMagic[4] = {'G', 'Z', 'S', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
constexpr size_t kRecordSize = 4 + 4 + 1;

void PackHeader(uint64_t num_nodes, uint64_t count, uint8_t out[kHeaderSize]) {
  std::memcpy(out, kMagic, 4);
  std::memcpy(out + 4, &kVersion, 4);
  std::memcpy(out + 8, &num_nodes, 8);
  std::memcpy(out + 16, &count, 8);
}

}  // namespace

StreamWriter::~StreamWriter() {
  if (file_ != nullptr) (void)Close();
}

Status StreamWriter::Open(const std::string& path, uint64_t num_nodes) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot create stream file: " + path);
  }
  num_nodes_ = num_nodes;
  count_ = 0;
  uint8_t header[kHeaderSize];
  PackHeader(num_nodes_, 0, header);
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    return Status::IoError("short header write: " + path);
  }
  return Status::Ok();
}

Status StreamWriter::Append(const GraphUpdate& update) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  uint8_t rec[kRecordSize];
  std::memcpy(rec, &update.edge.u, 4);
  std::memcpy(rec + 4, &update.edge.v, 4);
  rec[8] = static_cast<uint8_t>(update.type);
  if (std::fwrite(rec, 1, kRecordSize, file_) != kRecordSize) {
    return Status::IoError("short record write");
  }
  ++count_;
  return Status::Ok();
}

Status StreamWriter::AppendAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    Status s = Append(u);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status StreamWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  uint8_t header[kHeaderSize];
  PackHeader(num_nodes_, count_, header);
  Status result = Status::Ok();
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    result = Status::IoError("header rewrite failed");
  }
  std::fclose(file_);
  file_ = nullptr;
  return result;
}

StreamReader::~StreamReader() { Close(); }

Status StreamReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("reader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open stream file: " + path);
  }
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, file_) != kHeaderSize) {
    Close();
    return Status::IoError("short header read: " + path);
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    Close();
    return Status::InvalidArgument("bad magic in stream file: " + path);
  }
  uint32_t version;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    Close();
    return Status::InvalidArgument("unsupported stream file version");
  }
  std::memcpy(&num_nodes_, header + 8, 8);
  std::memcpy(&num_updates_, header + 16, 8);
  consumed_ = 0;
  status_ = Status::Ok();
  return Status::Ok();
}

bool StreamReader::Next(GraphUpdate* update) {
  if (file_ == nullptr || consumed_ >= num_updates_) return false;
  uint8_t rec[kRecordSize];
  if (std::fread(rec, 1, kRecordSize, file_) != kRecordSize) {
    status_ = Status::IoError("short record read (stream truncated)");
    return false;
  }
  NodeId u, v;
  std::memcpy(&u, rec, 4);
  std::memcpy(&v, rec + 4, 4);
  update->edge = Edge(u, v);
  update->type = static_cast<UpdateType>(rec[8]);
  ++consumed_;
  return true;
}

void StreamReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteStreamFile(const std::string& path, uint64_t num_nodes,
                       const std::vector<GraphUpdate>& updates) {
  StreamWriter writer;
  Status s = writer.Open(path, num_nodes);
  if (!s.ok()) return s;
  s = writer.AppendAll(updates);
  if (!s.ok()) return s;
  return writer.Close();
}

Result<std::vector<GraphUpdate>> ReadStreamFile(const std::string& path,
                                                uint64_t* num_nodes_out) {
  StreamReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  if (num_nodes_out != nullptr) *num_nodes_out = reader.num_nodes();
  std::vector<GraphUpdate> updates;
  updates.reserve(reader.num_updates());
  GraphUpdate u;
  while (reader.Next(&u)) updates.push_back(u);
  if (!reader.status().ok()) return reader.status();
  return updates;
}

}  // namespace gz
