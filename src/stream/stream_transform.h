// Converts a static edge set into a random insert/delete stream with the
// paper's guarantees (Section 6.1):
//   (i)   every deletion of e is preceded by an insertion of e;
//   (ii)  no edge receives two consecutive updates of the same type;
//   (iii) a small set of nodes (< 150) is disconnected from the rest of
//         the final graph, so the stream ends with non-trivial connected
//         components;
//   (iv)  the final edge set is exactly the input minus the edges
//         incident to the disconnected set.
// The transform also deliberately inserts-then-deletes "phantom" edges
// that are absent from the input graph and applies churn
// (insert/delete/insert) to a fraction of real edges, exercising
// interleaved deletions the way the paper's streams do.
#ifndef GZ_STREAM_STREAM_TRANSFORM_H_
#define GZ_STREAM_STREAM_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "stream/stream_types.h"

namespace gz {

struct StreamTransformParams {
  uint64_t num_nodes = 0;
  uint64_t seed = 1;
  // Fraction of surviving edges that get an extra delete+insert pair.
  double churn_fraction = 0.03;
  // Phantom (never-present-in-input) edges as a fraction of input edges;
  // each contributes an insert+delete pair.
  double phantom_fraction = 0.02;
  // Number of nodes to disconnect; 0 picks the paper-style default
  // min(149, max(2, V/64)). Set negative to disable disconnection.
  int disconnect_count = 0;
};

struct StreamTransformResult {
  std::vector<GraphUpdate> updates;
  // Nodes whose incident edges were deleted by the end of the stream.
  std::vector<NodeId> disconnected_nodes;
  // The exact final edge set (input minus disconnected-incident edges).
  EdgeList final_edges;
};

StreamTransformResult BuildStream(const EdgeList& input_edges,
                                  const StreamTransformParams& params);

}  // namespace gz

#endif  // GZ_STREAM_STREAM_TRANSFORM_H_
