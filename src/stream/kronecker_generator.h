// Graph500-flavored Kronecker graph generator (Section 6.1).
//
// The paper's kronNN inputs are *dense* simple undirected graphs
// (roughly half of all possible edges) produced from the Graph500
// Kronecker specification with duplicate edges and self-loops pruned.
// We generate the equivalent distribution directly: a Kronecker graph's
// edge probability is a product of per-bit initiator weights, so we
// visit each potential edge {u, v} once and keep it with probability
// min(1, scale · p_uv), calibrated so the expected edge count matches
// `density` · V(V-1)/2. This avoids the rejection blowup of sampling a
// dense graph edge-by-edge while preserving the Kronecker skew.
#ifndef GZ_STREAM_KRONECKER_GENERATOR_H_
#define GZ_STREAM_KRONECKER_GENERATOR_H_

#include <cstdint>

#include "stream/stream_types.h"

namespace gz {

struct KroneckerParams {
  int scale = 10;        // V = 2^scale nodes.
  double density = 0.5;  // Target fraction of all possible edges.
  uint64_t seed = 1;
  // Graph500 initiator matrix (A, B, C, D); B == C keeps the graph
  // undirected-symmetric.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};

class KroneckerGenerator {
 public:
  explicit KroneckerGenerator(const KroneckerParams& params);

  uint64_t num_nodes() const { return uint64_t{1} << params_.scale; }

  // Generates the full edge list (simple, undirected, no self-loops).
  EdgeList Generate() const;

  // Unnormalized Kronecker affinity of the pair {u, v}.
  double PairWeight(NodeId u, NodeId v) const;

 private:
  KroneckerParams params_;
};

}  // namespace gz

#endif  // GZ_STREAM_KRONECKER_GENERATOR_H_
