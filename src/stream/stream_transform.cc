#include "stream/stream_transform.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"
#include "util/xxhash.h"

namespace gz {
namespace {

struct Event {
  uint64_t timestamp;
  uint32_t sequence;  // Tie-break preserving per-edge order.
  GraphUpdate update;
};

// Appends the alternating insert/delete event chain for one edge.
// `count` is the total number of events; odd count leaves the edge
// present at the end of the stream.
void AppendChain(const Edge& edge, int count, SplitMix64* rng,
                 std::vector<Event>* events) {
  // Draw `count` random timestamps and assign them in sorted order so
  // the interleaving is uniform while per-edge order is preserved.
  uint64_t ts[4];
  GZ_CHECK(count >= 1 && count <= 4);
  for (int i = 0; i < count; ++i) ts[i] = rng->Next();
  std::sort(ts, ts + count);
  for (int i = 0; i < count; ++i) {
    GraphUpdate u;
    u.edge = edge;
    u.type = (i % 2 == 0) ? UpdateType::kInsert : UpdateType::kDelete;
    events->push_back(
        Event{ts[i], static_cast<uint32_t>(events->size()), u});
  }
}

}  // namespace

StreamTransformResult BuildStream(const EdgeList& input_edges,
                                  const StreamTransformParams& params) {
  GZ_CHECK(params.num_nodes >= 2);
  SplitMix64 rng(XxHash64Word(0x73747265616dULL, params.seed));

  // --- Choose the disconnected node set (guarantee iii) ----------------
  std::unordered_set<NodeId> disconnected;
  int want = params.disconnect_count;
  if (want == 0) {
    want = static_cast<int>(
        std::min<uint64_t>(149, std::max<uint64_t>(2, params.num_nodes / 64)));
  }
  if (want > 0) {
    GZ_CHECK(static_cast<uint64_t>(want) < params.num_nodes);
    while (disconnected.size() < static_cast<size_t>(want)) {
      disconnected.insert(
          static_cast<NodeId>(rng.NextBelow(params.num_nodes)));
    }
  }
  auto touches_disconnected = [&](const Edge& e) {
    return disconnected.count(e.u) > 0 || disconnected.count(e.v) > 0;
  };

  // --- Build per-edge event chains -------------------------------------
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(
      static_cast<double>(input_edges.size()) *
      (1.0 + 2.0 * params.churn_fraction + 2.0 * params.phantom_fraction)) +
      64);

  StreamTransformResult result;
  for (const Edge& e : input_edges) {
    if (touches_disconnected(e)) {
      AppendChain(e, 2, &rng, &events);  // insert then delete (iv)
    } else if (rng.NextDouble() < params.churn_fraction) {
      AppendChain(e, 3, &rng, &events);  // insert, delete, insert
      result.final_edges.push_back(e);
    } else {
      AppendChain(e, 1, &rng, &events);
      result.final_edges.push_back(e);
    }
  }

  // --- Phantom edges: present mid-stream, gone at the end --------------
  const size_t num_phantoms = static_cast<size_t>(
      params.phantom_fraction * static_cast<double>(input_edges.size()));
  if (num_phantoms > 0) {
    // Membership test against the input so a phantom never collides with
    // a real edge (which would violate guarantee (iv)).
    std::unordered_set<uint64_t> present;
    present.reserve(input_edges.size() * 2);
    for (const Edge& e : input_edges) {
      present.insert(EdgeToIndex(e, params.num_nodes));
    }
    size_t made = 0;
    while (made < num_phantoms) {
      NodeId u = static_cast<NodeId>(rng.NextBelow(params.num_nodes));
      NodeId v = static_cast<NodeId>(rng.NextBelow(params.num_nodes));
      if (u == v) continue;
      Edge e(u, v);
      const uint64_t idx = EdgeToIndex(e, params.num_nodes);
      if (present.count(idx) > 0) continue;
      present.insert(idx);  // Also dedups phantoms against each other.
      AppendChain(e, 2, &rng, &events);
      ++made;
    }
  }

  // --- Random interleaving (timestamps), stable per edge ---------------
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.sequence < b.sequence;
  });

  result.updates.reserve(events.size());
  for (const Event& ev : events) result.updates.push_back(ev.update);
  result.disconnected_nodes.assign(disconnected.begin(), disconnected.end());
  std::sort(result.disconnected_nodes.begin(),
            result.disconnected_nodes.end());
  return result;
}

}  // namespace gz
