#include "baseline/disk_adjacency_graph.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

DiskAdjacencyGraph::DiskAdjacencyGraph(const DiskAdjacencyParams& params)
    : params_(params) {
  GZ_CHECK(params_.num_nodes >= 2);
  GZ_CHECK(params_.cache_vertices >= 2);
  if (params_.max_degree == 0) {
    params_.max_degree = static_cast<uint32_t>(params_.num_nodes - 1);
  }
  region_bytes_ = sizeof(uint32_t) +
                  static_cast<size_t>(params_.max_degree) * sizeof(NodeId);
}

DiskAdjacencyGraph::~DiskAdjacencyGraph() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskAdjacencyGraph::Init() {
  if (fd_ >= 0) return Status::FailedPrecondition("already initialized");
  fd_ = ::open(params_.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create adjacency file: " +
                           params_.file_path);
  }
  // Zero-filled regions decode as degree 0.
  const off_t total = static_cast<off_t>(region_bytes_ * params_.num_nodes);
  if (::ftruncate(fd_, total) != 0) {
    return Status::IoError("cannot preallocate adjacency file");
  }
  return Status::Ok();
}

DiskAdjacencyGraph::CacheEntry& DiskAdjacencyGraph::Fetch(NodeId v) {
  auto it = cache_.find(v);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(v);
    it->second.lru_pos = lru_.begin();
    return it->second;
  }
  EvictIfNeeded();
  // Load the region from disk.
  CacheEntry entry;
  std::vector<uint8_t> buf(region_bytes_);
  const off_t offset = static_cast<off_t>(region_bytes_) * v;
  const ssize_t got = ::pread(fd_, buf.data(), region_bytes_, offset);
  GZ_CHECK_MSG(got == static_cast<ssize_t>(region_bytes_),
               "adjacency pread");
  bytes_read_ += region_bytes_;
  uint32_t degree;
  std::memcpy(&degree, buf.data(), sizeof(degree));
  GZ_CHECK(degree <= params_.max_degree);
  entry.neighbors.resize(degree);
  std::memcpy(entry.neighbors.data(), buf.data() + sizeof(degree),
              degree * sizeof(NodeId));
  lru_.push_front(v);
  entry.lru_pos = lru_.begin();
  return cache_.emplace(v, std::move(entry)).first->second;
}

void DiskAdjacencyGraph::EvictIfNeeded() {
  while (cache_.size() >= params_.cache_vertices) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    GZ_CHECK(it != cache_.end());
    if (it->second.dirty) WriteBack(victim, it->second);
    cache_.erase(it);
  }
}

void DiskAdjacencyGraph::WriteBack(NodeId v, const CacheEntry& entry) {
  std::vector<uint8_t> buf(region_bytes_, 0);
  const uint32_t degree = static_cast<uint32_t>(entry.neighbors.size());
  std::memcpy(buf.data(), &degree, sizeof(degree));
  std::memcpy(buf.data() + sizeof(degree), entry.neighbors.data(),
              degree * sizeof(NodeId));
  const off_t offset = static_cast<off_t>(region_bytes_) * v;
  const ssize_t wrote = ::pwrite(fd_, buf.data(), region_bytes_, offset);
  GZ_CHECK_MSG(wrote == static_cast<ssize_t>(region_bytes_),
               "adjacency pwrite");
  bytes_written_ += region_bytes_;
}

void DiskAdjacencyGraph::Update(const GraphUpdate& update) {
  GZ_CHECK_MSG(fd_ >= 0, "Init() not called");
  const NodeId endpoints[2] = {update.edge.u, update.edge.v};
  for (int side = 0; side < 2; ++side) {
    const NodeId self = endpoints[side];
    const NodeId other = endpoints[1 - side];
    CacheEntry& entry = Fetch(self);
    if (update.type == UpdateType::kInsert) {
      GZ_CHECK_MSG(std::find(entry.neighbors.begin(), entry.neighbors.end(),
                             other) == entry.neighbors.end(),
                   "insert of an edge already present");
      GZ_CHECK(entry.neighbors.size() < params_.max_degree);
      entry.neighbors.push_back(other);
    } else {
      auto it =
          std::find(entry.neighbors.begin(), entry.neighbors.end(), other);
      GZ_CHECK_MSG(it != entry.neighbors.end(), "delete of an absent edge");
      *it = entry.neighbors.back();
      entry.neighbors.pop_back();
    }
    entry.dirty = true;
  }
  if (update.type == UpdateType::kInsert) {
    ++num_edges_;
  } else {
    --num_edges_;
  }
}

ConnectivityResult DiskAdjacencyGraph::ConnectedComponents() {
  ConnectivityResult result;
  result.component_of.assign(params_.num_nodes, 0);
  std::vector<bool> visited(params_.num_nodes, false);
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < params_.num_nodes; ++start) {
    if (visited[start]) continue;
    ++result.num_components;
    visited[start] = true;
    result.component_of[start] = start;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      // Copy the neighbor list: BFS fetches evict cache entries.
      const std::vector<NodeId> neighbors = Fetch(cur).neighbors;
      for (const NodeId next : neighbors) {
        if (visited[next]) continue;
        visited[next] = true;
        result.component_of[next] = start;
        result.spanning_forest.push_back(Edge(cur, next));
        frontier.push_back(next);
      }
    }
  }
  return result;
}

size_t DiskAdjacencyGraph::RamByteSize() const {
  size_t total = sizeof(*this);
  for (const auto& [node, entry] : cache_) {
    total += sizeof(node) + sizeof(entry) +
             entry.neighbors.capacity() * sizeof(NodeId);
  }
  total += lru_.size() * (sizeof(NodeId) + 2 * sizeof(void*));
  return total;
}

size_t DiskAdjacencyGraph::DiskByteSize() const {
  return region_bytes_ * params_.num_nodes;
}

}  // namespace gz
