// StreamingCC (Ahn–Guha–McGregor) built on the *standard* l0-sampler —
// the straw-man the paper analyzes in Section 3 to show why a direct
// implementation of the best known general sampler is infeasibly slow
// and large. Functionally correct; used at small scales by tests and by
// the Figure 4 benchmark's system-level comparison.
//
// Characteristic vectors here are over the integers: edge {u, v} with
// u < v contributes +1 to f_u and -1 to f_v, which cancel when the
// endpoints' sketches are summed (Section 2.2).
#ifndef GZ_BASELINE_STREAMING_CC_H_
#define GZ_BASELINE_STREAMING_CC_H_

#include <cstdint>
#include <vector>

#include "core/connectivity.h"
#include "sketch/l0_standard.h"
#include "stream/stream_types.h"

namespace gz {

struct StreamingCcParams {
  uint64_t num_nodes = 0;
  uint64_t seed = 0;
  int cols = 7;
  int rounds = 0;  // 0 = ceil(log_{3/2} V), as in GraphZeppelin.
};

class StreamingCc {
 public:
  explicit StreamingCc(const StreamingCcParams& params);

  // Applies one stream update directly to both endpoint node sketches
  // (no buffering — this baseline predates the paper's I/O machinery).
  void Update(const GraphUpdate& update);

  // Connected components via Boruvka over copies of the sketches.
  ConnectivityResult Query() const;

  size_t ByteSize() const;
  int rounds() const { return rounds_; }

 private:
  StreamingCcParams params_;
  int rounds_;
  // sketches_[node][round]; all sketches of one round share hash seeds.
  std::vector<std::vector<StandardL0Sketch>> sketches_;
};

}  // namespace gz

#endif  // GZ_BASELINE_STREAMING_CC_H_
