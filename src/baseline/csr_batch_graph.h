// "Aspen-like" explicit dynamic-graph baseline: compressed sorted
// neighbor arrays per vertex, updated by applying sorted batches with a
// two-way merge (insert batches and delete batches, mirroring the
// batch-parallel model Aspen/Terrace are optimized for — see paper
// Section 6.2's batching protocol and DESIGN.md §2 for the substitution
// note). Memory is ~4 B per directed edge, the constant the paper
// quotes for Aspen.
#ifndef GZ_BASELINE_CSR_BATCH_GRAPH_H_
#define GZ_BASELINE_CSR_BATCH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/connectivity.h"
#include "stream/stream_types.h"

namespace gz {

class CsrBatchGraph {
 public:
  // `batch_capacity` is the number of updates accumulated before a
  // merge pass (the paper uses 10^6 for Aspen/Terrace).
  CsrBatchGraph(uint64_t num_nodes, size_t batch_capacity);

  // Buffers the update; a full buffer of same-type updates triggers a
  // batch apply. Mixed streams cause a flush whenever the type flips,
  // exactly like the insertion/deletion arrays in Section 6.2.
  void Update(const GraphUpdate& update);

  // Applies any buffered updates immediately.
  void Flush();

  bool HasEdge(const Edge& e) const;
  uint64_t num_edges() const { return num_edges_; }

  // Connected components via BFS (flushes pending updates first).
  ConnectivityResult ConnectedComponents();

  size_t ByteSize() const;

 private:
  void ApplyBatch(const std::vector<Edge>& edges, bool is_insert);

  uint64_t num_nodes_;
  uint64_t num_edges_ = 0;
  size_t batch_capacity_;
  std::vector<std::vector<NodeId>> adjacency_;  // Sorted neighbor arrays.
  std::vector<Edge> pending_;
  bool pending_is_insert_ = true;
};

}  // namespace gz

#endif  // GZ_BASELINE_CSR_BATCH_GRAPH_H_
