#include "baseline/csr_batch_graph.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace gz {

CsrBatchGraph::CsrBatchGraph(uint64_t num_nodes, size_t batch_capacity)
    : num_nodes_(num_nodes),
      batch_capacity_(batch_capacity),
      adjacency_(num_nodes) {
  GZ_CHECK(num_nodes >= 2);
  GZ_CHECK(batch_capacity >= 1);
  pending_.reserve(batch_capacity);
}

void CsrBatchGraph::Update(const GraphUpdate& update) {
  const bool is_insert = update.type == UpdateType::kInsert;
  if (!pending_.empty() && is_insert != pending_is_insert_) Flush();
  pending_is_insert_ = is_insert;
  pending_.push_back(update.edge);
  if (pending_.size() >= batch_capacity_) Flush();
}

void CsrBatchGraph::Flush() {
  if (pending_.empty()) return;
  ApplyBatch(pending_, pending_is_insert_);
  pending_.clear();
}

void CsrBatchGraph::ApplyBatch(const std::vector<Edge>& edges,
                               bool is_insert) {
  // Build the directed update list sorted by (vertex, neighbor), then
  // rewrite each touched vertex's sorted array with one merge pass.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    directed.emplace_back(e.u, e.v);
    directed.emplace_back(e.v, e.u);
  }
  std::sort(directed.begin(), directed.end());

  size_t i = 0;
  while (i < directed.size()) {
    const NodeId vertex = directed[i].first;
    size_t j = i;
    while (j < directed.size() && directed[j].first == vertex) ++j;

    const std::vector<NodeId>& old_list = adjacency_[vertex];
    std::vector<NodeId> merged;
    if (is_insert) {
      merged.reserve(old_list.size() + (j - i));
      size_t a = 0;
      for (size_t k = i; k < j; ++k) {
        const NodeId nb = directed[k].second;
        while (a < old_list.size() && old_list[a] < nb) {
          merged.push_back(old_list[a++]);
        }
        GZ_CHECK_MSG(a >= old_list.size() || old_list[a] != nb,
                     "insert of an edge already present");
        merged.push_back(nb);
      }
      while (a < old_list.size()) merged.push_back(old_list[a++]);
    } else {
      merged.reserve(old_list.size());
      size_t a = 0;
      for (size_t k = i; k < j; ++k) {
        const NodeId nb = directed[k].second;
        while (a < old_list.size() && old_list[a] < nb) {
          merged.push_back(old_list[a++]);
        }
        GZ_CHECK_MSG(a < old_list.size() && old_list[a] == nb,
                     "delete of an absent edge");
        ++a;  // Skip the deleted neighbor.
      }
      while (a < old_list.size()) merged.push_back(old_list[a++]);
    }
    adjacency_[vertex] = std::move(merged);
    adjacency_[vertex].shrink_to_fit();
    i = j;
  }
  if (is_insert) {
    num_edges_ += edges.size();
  } else {
    num_edges_ -= edges.size();
  }
}

bool CsrBatchGraph::HasEdge(const Edge& e) const {
  const std::vector<NodeId>& list = adjacency_[e.u];
  return std::binary_search(list.begin(), list.end(), e.v);
}

ConnectivityResult CsrBatchGraph::ConnectedComponents() {
  Flush();
  ConnectivityResult result;
  result.component_of.assign(num_nodes_, 0);
  std::vector<bool> visited(num_nodes_, false);
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < num_nodes_; ++start) {
    if (visited[start]) continue;
    ++result.num_components;
    visited[start] = true;
    result.component_of[start] = start;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const NodeId next : adjacency_[cur]) {
        if (visited[next]) continue;
        visited[next] = true;
        result.component_of[next] = start;
        result.spanning_forest.push_back(Edge(cur, next));
        frontier.push_back(next);
      }
    }
  }
  return result;
}

size_t CsrBatchGraph::ByteSize() const {
  size_t total = sizeof(*this) +
                 adjacency_.capacity() * sizeof(adjacency_[0]) +
                 pending_.capacity() * sizeof(Edge);
  for (const auto& list : adjacency_) {
    total += list.capacity() * sizeof(NodeId);
  }
  return total;
}

}  // namespace gz
