// "Terrace-like" explicit dynamic-graph baseline: one hash set of
// neighbors per vertex. Fast point inserts/deletes, O(V + E) BFS
// connectivity, but Θ(E) memory with hash-table constant factors —
// the explicit-representation cost profile the paper contrasts
// GraphZeppelin against. (See DESIGN.md §2 for the substitution note:
// this stands in for the Terrace system, which is not available here.)
#ifndef GZ_BASELINE_HASH_ADJACENCY_GRAPH_H_
#define GZ_BASELINE_HASH_ADJACENCY_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/connectivity.h"
#include "stream/stream_types.h"

namespace gz {

class HashAdjacencyGraph {
 public:
  explicit HashAdjacencyGraph(uint64_t num_nodes);

  void Update(const GraphUpdate& update);

  bool HasEdge(const Edge& e) const;
  uint64_t num_edges() const { return num_edges_; }

  // Connected components via BFS over the adjacency sets.
  ConnectivityResult ConnectedComponents() const;

  // Approximate heap footprint (buckets + nodes of the hash sets).
  size_t ByteSize() const;

 private:
  uint64_t num_nodes_;
  uint64_t num_edges_ = 0;
  std::vector<std::unordered_set<NodeId>> adjacency_;
};

}  // namespace gz

#endif  // GZ_BASELINE_HASH_ADJACENCY_GRAPH_H_
