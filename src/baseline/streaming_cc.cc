#include "baseline/streaming_cc.h"

#include "dsu/dsu.h"
#include "sketch/node_sketch.h"
#include "util/check.h"
#include "util/xxhash.h"

namespace gz {

StreamingCc::StreamingCc(const StreamingCcParams& params) : params_(params) {
  GZ_CHECK(params_.num_nodes >= 2);
  rounds_ = params_.rounds > 0 ? params_.rounds
                               : NodeSketch::DefaultRounds(params_.num_nodes);
  const uint64_t vec_len = NumPossibleEdges(params_.num_nodes);
  sketches_.reserve(params_.num_nodes);
  for (uint64_t node = 0; node < params_.num_nodes; ++node) {
    std::vector<StandardL0Sketch> per_round;
    per_round.reserve(rounds_);
    for (int r = 0; r < rounds_; ++r) {
      L0SketchParams lp;
      lp.vector_len = vec_len;
      // Seed per round only — shared across nodes for linearity.
      lp.seed = XxHash64Word(static_cast<uint64_t>(r) + 1, params_.seed);
      lp.cols = params_.cols;
      per_round.emplace_back(lp);
    }
    sketches_.push_back(std::move(per_round));
  }
}

void StreamingCc::Update(const GraphUpdate& update) {
  const uint64_t idx = EdgeToIndex(update.edge, params_.num_nodes);
  const int delta = update.type == UpdateType::kInsert ? 1 : -1;
  // f_u gains +delta (u is the smaller endpoint), f_v gains -delta.
  for (StandardL0Sketch& s : sketches_[update.edge.u]) s.Update(idx, delta);
  for (StandardL0Sketch& s : sketches_[update.edge.v]) s.Update(idx, -delta);
}

ConnectivityResult StreamingCc::Query() const {
  std::vector<std::vector<StandardL0Sketch>> sk = sketches_;  // Snapshot.
  ConnectivityResult result;
  Dsu dsu(params_.num_nodes);
  bool complete = false;

  for (int round = 0; round < rounds_ && !complete; ++round) {
    result.rounds_used = round + 1;
    EdgeList candidates;
    bool any_fail = false;
    for (uint64_t i = 0; i < params_.num_nodes; ++i) {
      if (dsu.Find(i) != i) continue;
      const SketchSample sample = sk[i][round].Query();
      switch (sample.kind) {
        case SampleKind::kGood:
          candidates.push_back(IndexToEdge(sample.index, params_.num_nodes));
          break;
        case SampleKind::kZero:
          break;
        case SampleKind::kFail:
          any_fail = true;
          break;
      }
    }
    bool found_edge = false;
    for (const Edge& e : candidates) {
      const size_t ra = dsu.Find(e.u);
      const size_t rb = dsu.Find(e.v);
      if (ra == rb) continue;
      GZ_CHECK(dsu.Union(ra, rb));
      const size_t root = dsu.Find(ra);
      const size_t other = (root == ra) ? rb : ra;
      for (int r = 0; r < rounds_; ++r) sk[root][r].Merge(sk[other][r]);
      result.spanning_forest.push_back(e);
      found_edge = true;
    }
    if (!found_edge && !any_fail) complete = true;
  }

  result.failed = !complete;
  result.num_components = dsu.num_sets();
  result.component_of.resize(params_.num_nodes);
  for (uint64_t i = 0; i < params_.num_nodes; ++i) {
    result.component_of[i] = static_cast<NodeId>(dsu.Find(i));
  }
  return result;
}

size_t StreamingCc::ByteSize() const {
  size_t total = sizeof(*this);
  for (const auto& per_round : sketches_) {
    for (const StandardL0Sketch& s : per_round) total += s.ByteSize();
  }
  return total;
}

}  // namespace gz
