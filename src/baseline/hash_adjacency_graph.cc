#include "baseline/hash_adjacency_graph.h"

#include <deque>

#include "util/check.h"

namespace gz {

HashAdjacencyGraph::HashAdjacencyGraph(uint64_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {
  GZ_CHECK(num_nodes >= 2);
}

void HashAdjacencyGraph::Update(const GraphUpdate& update) {
  const NodeId u = update.edge.u;
  const NodeId v = update.edge.v;
  if (update.type == UpdateType::kInsert) {
    const bool fresh = adjacency_[u].insert(v).second;
    GZ_CHECK_MSG(fresh, "insert of an edge already present");
    adjacency_[v].insert(u);
    ++num_edges_;
  } else {
    const bool removed = adjacency_[u].erase(v) > 0;
    GZ_CHECK_MSG(removed, "delete of an absent edge");
    adjacency_[v].erase(u);
    --num_edges_;
  }
}

bool HashAdjacencyGraph::HasEdge(const Edge& e) const {
  return adjacency_[e.u].count(e.v) > 0;
}

ConnectivityResult HashAdjacencyGraph::ConnectedComponents() const {
  ConnectivityResult result;
  result.component_of.assign(num_nodes_, 0);
  std::vector<bool> visited(num_nodes_, false);
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < num_nodes_; ++start) {
    if (visited[start]) continue;
    ++result.num_components;
    visited[start] = true;
    result.component_of[start] = start;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const NodeId next : adjacency_[cur]) {
        if (visited[next]) continue;
        visited[next] = true;
        result.component_of[next] = start;
        result.spanning_forest.push_back(Edge(cur, next));
        frontier.push_back(next);
      }
    }
  }
  return result;
}

size_t HashAdjacencyGraph::ByteSize() const {
  // Unordered sets cost roughly one pointer per bucket plus a heap node
  // (value + next pointer + allocator overhead) per element; 16 B/node
  // and 8 B/bucket is the common libstdc++ footprint.
  size_t total = sizeof(*this) +
                 adjacency_.capacity() * sizeof(adjacency_[0]);
  for (const auto& set : adjacency_) {
    total += set.bucket_count() * sizeof(void*);
    total += set.size() * (sizeof(NodeId) + 2 * sizeof(void*));
  }
  return total;
}

}  // namespace gz
