// Correctness oracle (paper Section 6.3): an exact in-memory adjacency
// matrix stored as a bit vector over the triangular edge-index space,
// with connected components computed by Kruskal's algorithm over a DSU.
// Used to validate GraphZeppelin's answers on every test stream.
#ifndef GZ_BASELINE_MATRIX_CHECKER_H_
#define GZ_BASELINE_MATRIX_CHECKER_H_

#include <cstdint>
#include <vector>

#include "core/connectivity.h"
#include "stream/stream_types.h"

namespace gz {

class AdjacencyMatrixChecker {
 public:
  explicit AdjacencyMatrixChecker(uint64_t num_nodes);

  // Applies one stream update; inserts and deletes both toggle the bit
  // (the stream guarantees legality, which Update verifies).
  void Update(const GraphUpdate& update);

  bool HasEdge(const Edge& e) const;
  uint64_t num_edges() const { return num_edges_; }
  uint64_t num_nodes() const { return num_nodes_; }

  // Exact connected components via Kruskal's algorithm.
  ConnectivityResult ConnectedComponents() const;

  // The full current edge set (sorted by index).
  EdgeList Edges() const;

  size_t ByteSize() const {
    return bits_.capacity() * sizeof(uint64_t) + sizeof(*this);
  }

 private:
  uint64_t num_nodes_;
  uint64_t num_edges_ = 0;
  std::vector<uint64_t> bits_;  // One bit per possible edge.
};

}  // namespace gz

#endif  // GZ_BASELINE_MATRIX_CHECKER_H_
