#include "baseline/matrix_checker.h"

#include <bit>

#include "dsu/dsu.h"
#include "util/check.h"

namespace gz {

AdjacencyMatrixChecker::AdjacencyMatrixChecker(uint64_t num_nodes)
    : num_nodes_(num_nodes) {
  GZ_CHECK(num_nodes >= 2);
  const uint64_t possible = NumPossibleEdges(num_nodes);
  bits_.assign((possible + 63) / 64, 0);
}

void AdjacencyMatrixChecker::Update(const GraphUpdate& update) {
  const uint64_t idx = EdgeToIndex(update.edge, num_nodes_);
  const uint64_t word = idx / 64;
  const uint64_t mask = uint64_t{1} << (idx % 64);
  const bool present = (bits_[word] & mask) != 0;
  if (update.type == UpdateType::kInsert) {
    GZ_CHECK_MSG(!present, "insert of an edge already present");
    ++num_edges_;
  } else {
    GZ_CHECK_MSG(present, "delete of an absent edge");
    --num_edges_;
  }
  bits_[word] ^= mask;
}

bool AdjacencyMatrixChecker::HasEdge(const Edge& e) const {
  const uint64_t idx = EdgeToIndex(e, num_nodes_);
  return (bits_[idx / 64] >> (idx % 64)) & 1;
}

ConnectivityResult AdjacencyMatrixChecker::ConnectedComponents() const {
  ConnectivityResult result;
  Dsu dsu(num_nodes_);
  for (uint64_t w = 0; w < bits_.size(); ++w) {
    uint64_t word = bits_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      const Edge e = IndexToEdge(w * 64 + bit, num_nodes_);
      if (dsu.Union(e.u, e.v)) result.spanning_forest.push_back(e);
    }
  }
  result.failed = false;
  result.num_components = dsu.num_sets();
  result.component_of.resize(num_nodes_);
  for (uint64_t i = 0; i < num_nodes_; ++i) {
    result.component_of[i] = static_cast<NodeId>(dsu.Find(i));
  }
  return result;
}

EdgeList AdjacencyMatrixChecker::Edges() const {
  EdgeList edges;
  edges.reserve(num_edges_);
  for (uint64_t w = 0; w < bits_.size(); ++w) {
    uint64_t word = bits_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      edges.push_back(IndexToEdge(w * 64 + bit, num_nodes_));
    }
  }
  return edges;
}

}  // namespace gz
