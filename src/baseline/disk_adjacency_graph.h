// Out-of-core explicit dynamic graph: adjacency lists stored in a
// backing file, updated by read-modify-write cycles per vertex. This is
// the honest stand-in for "Aspen/Terrace forced to page to disk" in the
// paper's Figure 12 — an explicit representation whose every update
// touches per-vertex state that no longer fits in RAM. A small
// write-back LRU cache of vertex lists models the paged working set.
#ifndef GZ_BASELINE_DISK_ADJACENCY_GRAPH_H_
#define GZ_BASELINE_DISK_ADJACENCY_GRAPH_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/connectivity.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct DiskAdjacencyParams {
  uint64_t num_nodes = 0;
  std::string file_path;
  // Per-vertex region capacity, in neighbor slots. The region must hold
  // the vertex's full degree (dense graphs need V-1).
  uint32_t max_degree = 0;  // 0 = num_nodes - 1.
  // Vertex lists cached in RAM (the simulated RAM budget).
  size_t cache_vertices = 64;
};

class DiskAdjacencyGraph {
 public:
  DiskAdjacencyGraph(const DiskAdjacencyParams& params);
  ~DiskAdjacencyGraph();
  DiskAdjacencyGraph(const DiskAdjacencyGraph&) = delete;
  DiskAdjacencyGraph& operator=(const DiskAdjacencyGraph&) = delete;

  // Creates and preallocates the backing file.
  Status Init();

  void Update(const GraphUpdate& update);

  uint64_t num_edges() const { return num_edges_; }

  // BFS over on-disk adjacency lists (through the cache).
  ConnectivityResult ConnectedComponents();

  size_t RamByteSize() const;
  size_t DiskByteSize() const;
  // Alias so generic baseline runners can query the RAM footprint.
  size_t ByteSize() const { return RamByteSize(); }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct CacheEntry {
    std::vector<NodeId> neighbors;
    bool dirty = false;
    std::list<NodeId>::iterator lru_pos;
  };

  // Returns the cached (possibly loaded) entry for `v`.
  CacheEntry& Fetch(NodeId v);
  void EvictIfNeeded();
  void WriteBack(NodeId v, const CacheEntry& entry);

  DiskAdjacencyParams params_;
  int fd_ = -1;
  size_t region_bytes_ = 0;
  uint64_t num_edges_ = 0;
  std::unordered_map<NodeId, CacheEntry> cache_;
  std::list<NodeId> lru_;  // Front = most recent.
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace gz

#endif  // GZ_BASELINE_DISK_ADJACENCY_GRAPH_H_
