// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum the shard wire protocol appends to every frame. Chosen over
// plain CRC32 for its better error-detection properties on the frame
// sizes this system ships and because x86 carries a dedicated
// instruction for it (SSE4.2 crc32), which the implementation uses when
// the running CPU has it — detected at runtime, so the build stays
// portable.
#ifndef GZ_UTIL_CRC32C_H_
#define GZ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace gz {

// CRC32C of `data`. Equal to Crc32cExtend(0, data, size).
uint32_t Crc32c(const void* data, size_t size);

// Streaming form: extends a finalized CRC with more bytes, returning
// the finalized CRC of the concatenation. Start from 0:
//   crc = Crc32cExtend(Crc32cExtend(0, a, na), b, nb) == Crc32c(a+b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace gz

#endif  // GZ_UTIL_CRC32C_H_
