// SIMD lane implementations of XxHash64Word: hash 4 (AVX2) or 8
// (AVX-512) 64-bit values against one seed in a single register pass.
//
// These are the hashing substrate of the batched sketch-update kernel
// (sketch/sketch_kernel.cc) and are reusable for any future per-word
// hash fan-out (count-min rows, heavy-hitter tables). Every function is
// bit-identical to XxHash64Word lane by lane: same primes, same
// dataflow, just N lanes wide.
//
// All functions carry an explicit __attribute__((target(...))): the
// translation unit that includes this header is compiled with the
// global baseline flags (no -mavx2), and the dispatcher must prove CPU
// support at runtime before calling into them — the same discipline as
// util/crc32c.cc's SSE4.2 path. Keep these inline: GCC inlines a
// target-attributed callee into a caller whose target set is a
// superset, so the per-column hash calls melt into the kernel loop.
#ifndef GZ_UTIL_XXHASH_LANES_H_
#define GZ_UTIL_XXHASH_LANES_H_

#include <cstdint>

#include "util/xxhash.h"

#if defined(__x86_64__)

#include <immintrin.h>

// GCC 12's avx512 intrinsic headers use a self-initialized dummy
// (`__m512i __Y = __Y;`) that trips -Wmaybe-uninitialized when inlined
// into target-attributed callers (GCC PR 105593, fixed in GCC 13).
// Scope the suppression to the SIMD lane section only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#define GZ_TARGET_AVX2 __attribute__((target("avx2")))
// F: core 512-bit integer ops, CD: vplzcntq (trailing-zero depth),
// DQ: vpmullq (native 64-bit lane multiply).
#define GZ_TARGET_AVX512 __attribute__((target("avx512f,avx512cd,avx512dq")))

namespace gz {

// ---- AVX2: 4 lanes ---------------------------------------------------

// Full 64x64->64 lane multiply. AVX2 has no vpmullq, so compose it from
// 32x32->64 partial products: lo*lo + ((lo*hi + hi*lo) << 32). The high
// cross products only contribute their low 32 bits after the shift,
// which is exactly mod-2^64 multiplication — bit-identical to scalar.
GZ_TARGET_AVX2 inline __m256i Mul64x4(__m256i x, __m256i y) {
  const __m256i xh = _mm256_srli_epi64(x, 32);
  const __m256i yh = _mm256_srli_epi64(y, 32);
  const __m256i ll = _mm256_mul_epu32(x, y);
  const __m256i lh = _mm256_mul_epu32(x, yh);
  const __m256i hl = _mm256_mul_epu32(xh, y);
  const __m256i cross = _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32);
  return _mm256_add_epi64(ll, cross);
}

GZ_TARGET_AVX2 inline __m256i RotL64x4(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r),
                         _mm256_srli_epi64(x, 64 - r));
}

// out[i] = XxHash64Word(values[i], seed) for 4 lanes.
GZ_TARGET_AVX2 inline __m256i XxHash64Word4(__m256i values, uint64_t seed) {
  const __m256i p1 = _mm256_set1_epi64x(static_cast<int64_t>(kXxPrime1));
  const __m256i p2 = _mm256_set1_epi64x(static_cast<int64_t>(kXxPrime2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<int64_t>(kXxPrime3));
  // Round(0, value): acc = rotl(value * P2, 31) * P1.
  __m256i acc = Mul64x4(values, p2);
  acc = RotL64x4(acc, 31);
  acc = Mul64x4(acc, p1);
  // h = seed + P5 + 8; h ^= acc; h = rotl(h, 27) * P1 + P4.
  __m256i h = _mm256_set1_epi64x(static_cast<int64_t>(seed + kXxPrime5 + 8));
  h = _mm256_xor_si256(h, acc);
  h = _mm256_add_epi64(Mul64x4(RotL64x4(h, 27), p1),
                       _mm256_set1_epi64x(static_cast<int64_t>(kXxPrime4)));
  // Avalanche.
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = Mul64x4(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
  h = Mul64x4(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
  return h;
}

// Per-lane trailing-zero count of h, capped at `cap` (a broadcast
// 64-bit lane value <= 64); lanes with h == 0 saturate to the cap.
// Uses the branch-free identity tzcnt(h) = popcount((h & -h) - 1):
// h == 0 makes the mask all-ones (popcount 64), which the cap clamps —
// the same result the scalar path's explicit h == 0 test produces.
// Popcount is bytewise (nibble LUT via pshufb) folded with psadbw.
GZ_TARGET_AVX2 inline __m256i TrailingZerosCapped4(__m256i h, __m256i cap) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i lowbit = _mm256_and_si256(h, _mm256_sub_epi64(zero, h));
  const __m256i mask =
      _mm256_sub_epi64(lowbit, _mm256_set1_epi64x(1));
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(mask, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(mask, 4), low4);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  const __m256i sums = _mm256_sad_epu8(cnt, zero);  // Per-64-bit popcount.
  // Both operands are <= 64 with zero high halves, so a 32-bit unsigned
  // min is a correct 64-bit min (AVX2 has no vpminuq).
  return _mm256_min_epu32(sums, cap);
}

// ---- AVX-512: 8 lanes ------------------------------------------------

// out[i] = XxHash64Word(values[i], seed) for 8 lanes. vpmullq and
// vprolq make this a direct transliteration of the scalar dataflow.
GZ_TARGET_AVX512 inline __m512i XxHash64Word8(__m512i values, uint64_t seed) {
  const __m512i p1 = _mm512_set1_epi64(static_cast<int64_t>(kXxPrime1));
  const __m512i p2 = _mm512_set1_epi64(static_cast<int64_t>(kXxPrime2));
  const __m512i p3 = _mm512_set1_epi64(static_cast<int64_t>(kXxPrime3));
  __m512i acc = _mm512_mullo_epi64(values, p2);
  acc = _mm512_rol_epi64(acc, 31);
  acc = _mm512_mullo_epi64(acc, p1);
  __m512i h = _mm512_set1_epi64(static_cast<int64_t>(seed + kXxPrime5 + 8));
  h = _mm512_xor_si512(h, acc);
  h = _mm512_add_epi64(_mm512_mullo_epi64(_mm512_rol_epi64(h, 27), p1),
                       _mm512_set1_epi64(static_cast<int64_t>(kXxPrime4)));
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
  h = _mm512_mullo_epi64(h, p2);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
  h = _mm512_mullo_epi64(h, p3);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 32));
  return h;
}

// Per-lane trailing-zero count capped at `cap`; h == 0 lanes saturate.
// tzcnt(h) = 63 - lzcnt(h & -h); for h == 0, lzcnt is 64, so the
// subtraction wraps to 2^64-1 and the unsigned min clamps to the cap —
// again matching the scalar h == 0 branch without one.
GZ_TARGET_AVX512 inline __m512i TrailingZerosCapped8(__m512i h, __m512i cap) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i lowbit = _mm512_and_si512(h, _mm512_sub_epi64(zero, h));
  const __m512i tz = _mm512_sub_epi64(_mm512_set1_epi64(63),
                                      _mm512_lzcnt_epi64(lowbit));
  return _mm512_min_epu64(tz, cap);
}

}  // namespace gz

#pragma GCC diagnostic pop

#endif  // __x86_64__

#endif  // GZ_UTIL_XXHASH_LANES_H_
