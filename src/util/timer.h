// Wall-clock timing helpers for the benchmark harnesses.
#ifndef GZ_UTIL_TIMER_H_
#define GZ_UTIL_TIMER_H_

#include <chrono>

namespace gz {

class WallTimer {
 public:
  WallTimer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Formats a rate (ops/sec) with engineering-style units, e.g. "3.21M".
// Defined in timer.cc.
const char* FormatRate(double ops_per_sec, char* buf, int buf_len);

}  // namespace gz

#endif  // GZ_UTIL_TIMER_H_
