// Small, fast, seedable PRNG (SplitMix64) used by generators and tests.
// Header-only: the whole implementation is a handful of arithmetic ops.
#ifndef GZ_UTIL_RANDOM_H_
#define GZ_UTIL_RANDOM_H_

#include <cstdint>

namespace gz {

// SplitMix64: passes BigCrush, one multiply-xor-shift pipeline per draw.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). Modulo bias is negligible for bound << 2^64.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace gz

#endif  // GZ_UTIL_RANDOM_H_
