// k-wise independent hash family over a Mersenne-61 field:
//   h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod p
// Degree-(k-1) polynomials with random coefficients give a k-wise
// independent family (Wegman-Carter). CubeSketch and the standard
// l0-sampler both need 2-wise independence for their analyses.
#ifndef GZ_UTIL_KWISE_HASH_H_
#define GZ_UTIL_KWISE_HASH_H_

#include <cstdint>
#include <vector>

namespace gz {

class KWiseHash {
 public:
  // Draws the k coefficients deterministically from `seed`.
  KWiseHash(uint64_t seed, int k);

  // Evaluates the polynomial at x (x may be any 64-bit value; it is
  // reduced into the field first). Output is uniform in [0, 2^61 - 1).
  uint64_t Hash(uint64_t x) const;

  // Hash reduced to [0, range).
  uint64_t HashRange(uint64_t x, uint64_t range) const {
    return Hash(x) % range;
  }

  int k() const { return static_cast<int>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // coeffs_[i] multiplies x^i.
};

}  // namespace gz

#endif  // GZ_UTIL_KWISE_HASH_H_
