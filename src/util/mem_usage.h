// Memory accounting helpers. Structures in this library expose exact
// ByteSize() methods; this header adds process-level RSS for sanity
// checks in the memory benchmarks (Figure 11).
#ifndef GZ_UTIL_MEM_USAGE_H_
#define GZ_UTIL_MEM_USAGE_H_

#include <cstddef>

namespace gz {

// Resident set size of the current process in bytes (from /proc).
// Returns 0 if the proc file cannot be read.
size_t CurrentRssBytes();

// Formats a byte count as a human-readable string ("3.40 GiB").
const char* FormatBytes(size_t bytes, char* buf, int buf_len);

}  // namespace gz

#endif  // GZ_UTIL_MEM_USAGE_H_
