// Minimal Status / Result<T> error-handling types (no exceptions in
// library code, following the Google C++ style used throughout).
#ifndef GZ_UTIL_STATUS_H_
#define GZ_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace gz {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
};

// Value-semantic status: either OK or a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable one-line rendering, e.g. "IO_ERROR: short read".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value or an error status. Accessing the value of an
// error result is a programmer error (GZ_CHECK).
template <typename T>
class Result {
 public:
  // Implicit conversions mirror absl::StatusOr ergonomics: functions can
  // `return value;` or `return Status::IoError(...);`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    GZ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GZ_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T& value() & {
    GZ_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T&& value() && {
    GZ_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace gz

#endif  // GZ_UTIL_STATUS_H_
