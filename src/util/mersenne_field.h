// Arithmetic over Mersenne-prime fields, used by the k-wise-independent
// hash family and by the standard l0-sampler's checksum (r^idx mod p).
//
// Two field sizes mirror the paper's discussion of word widths (Section 3):
//  * Mersenne31 (p = 2^31 - 1): all arithmetic fits in 64-bit words; used
//    when the sketched vector has length < 2^31.
//  * Mersenne61 (p = 2^61 - 1): products need 128-bit intermediates; this
//    is the "128-bit arithmetic" regime that slows the standard sampler on
//    long vectors.
#ifndef GZ_UTIL_MERSENNE_FIELD_H_
#define GZ_UTIL_MERSENNE_FIELD_H_

#include <cstdint>

namespace gz {

inline constexpr uint64_t kMersenne31 = (1ULL << 31) - 1;
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

// ---- Mersenne31: 64-bit-only arithmetic -----------------------------------

inline uint64_t Reduce31(uint64_t x) {
  x = (x & kMersenne31) + (x >> 31);
  if (x >= kMersenne31) x -= kMersenne31;
  return x;
}

inline uint64_t MulMod31(uint64_t a, uint64_t b) {
  // a, b < 2^31 so the product fits in 64 bits exactly.
  return Reduce31(a * b);
}

inline uint64_t AddMod31(uint64_t a, uint64_t b) { return Reduce31(a + b); }

// ---- Mersenne61: needs 128-bit multiply ------------------------------------

inline uint64_t Reduce61(unsigned __int128 x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  return Reduce61(static_cast<unsigned __int128>(a) * b);
}

inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t r = a + b;  // a, b < 2^61 so no 64-bit overflow.
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

// ---- Modular exponentiation -------------------------------------------------

// r^e mod (2^31 - 1), square-and-multiply with 64-bit words.
uint64_t PowMod31(uint64_t r, uint64_t e);

// r^e mod (2^61 - 1), square-and-multiply with 128-bit intermediates.
uint64_t PowMod61(uint64_t r, uint64_t e);

}  // namespace gz

#endif  // GZ_UTIL_MERSENNE_FIELD_H_
