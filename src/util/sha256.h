// SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104), dependency-free.
// The shard transport's HELLO handshake authenticates both peers with
// an HMAC over fresh nonces keyed by a shared secret; a real
// cryptographic MAC is what makes that claim mean something — the
// sketch-grade xxhash used elsewhere is trivially forgeable.
#ifndef GZ_UTIL_SHA256_H_
#define GZ_UTIL_SHA256_H_

#include <cstddef>
#include <cstdint>

namespace gz {

constexpr size_t kSha256Bytes = 32;

// out <- SHA-256(data).
void Sha256(const void* data, size_t size, uint8_t out[kSha256Bytes]);

// out <- HMAC-SHA256(key, data). Any key length (hashed down if longer
// than the 64-byte block, zero-padded if shorter, per RFC 2104).
void HmacSha256(const void* key, size_t key_size, const void* data,
                size_t size, uint8_t out[kSha256Bytes]);

// Constant-time equality of two `size`-byte buffers — MAC verification
// must not leak how many leading bytes matched through its timing.
bool ConstantTimeEqual(const void* a, const void* b, size_t size);

}  // namespace gz

#endif  // GZ_UTIL_SHA256_H_
