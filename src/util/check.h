// Invariant-checking macros (abort on violation). Library code uses these
// for programmer errors; recoverable conditions use gz::Status instead.
#ifndef GZ_UTIL_CHECK_H_
#define GZ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message if `cond` is false. Enabled in all build types:
// sketch/buffering invariants are cheap relative to hashing work.
#define GZ_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GZ_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define GZ_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GZ_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Checks that a gz::Status-returning expression is OK.
#define GZ_CHECK_OK(expr)                                                   \
  do {                                                                      \
    const ::gz::Status _gz_status = (expr);                                 \
    if (!_gz_status.ok()) {                                                 \
      std::fprintf(stderr, "GZ_CHECK_OK failed: %s at %s:%d\n",             \
                   _gz_status.message().c_str(), __FILE__, __LINE__);       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // GZ_UTIL_CHECK_H_
