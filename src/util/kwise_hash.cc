#include "util/kwise_hash.h"

#include "util/check.h"
#include "util/mersenne_field.h"
#include "util/xxhash.h"

namespace gz {

KWiseHash::KWiseHash(uint64_t seed, int k) {
  GZ_CHECK(k >= 1);
  coeffs_.reserve(k);
  for (int i = 0; i < k; ++i) {
    uint64_t c = XxHash64Word(static_cast<uint64_t>(i) + 1, seed) % kMersenne61;
    // The leading coefficient must be nonzero for full independence.
    if (i == k - 1 && c == 0) c = 1;
    coeffs_.push_back(c);
  }
}

uint64_t KWiseHash::Hash(uint64_t x) const {
  uint64_t xr = x % kMersenne61;
  // Horner evaluation, highest degree first.
  uint64_t acc = coeffs_.back();
  for (int i = static_cast<int>(coeffs_.size()) - 2; i >= 0; --i) {
    acc = AddMod61(MulMod61(acc, xr), coeffs_[i]);
  }
  return acc;
}

}  // namespace gz
