#include "util/timer.h"

#include <cstdio>

namespace gz {

const char* FormatRate(double ops_per_sec, char* buf, int buf_len) {
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, buf_len, "%.2fM", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, buf_len, "%.1fK", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, buf_len, "%.0f", ops_per_sec);
  }
  return buf;
}

}  // namespace gz
