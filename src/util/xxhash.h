// From-scratch implementation of the XXH64 hash algorithm (the hash the
// paper's system uses for sketch bucket placement; see Collet, xxHash).
// Non-cryptographic, very fast, well-distributed 64-bit output.
#ifndef GZ_UTIL_XXHASH_H_
#define GZ_UTIL_XXHASH_H_

#include <cstddef>
#include <cstdint>

namespace gz {

// Hashes an arbitrary byte buffer with the XXH64 algorithm.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

// Hashes a single 64-bit value. This is the hot path for sketch updates:
// a specialized fixed-length variant of XXH64 (identical output to
// XxHash64(&value, 8, seed)).
uint64_t XxHash64Word(uint64_t value, uint64_t seed);

}  // namespace gz

#endif  // GZ_UTIL_XXHASH_H_
