// From-scratch implementation of the XXH64 hash algorithm (the hash the
// paper's system uses for sketch bucket placement; see Collet, xxHash).
// Non-cryptographic, very fast, well-distributed 64-bit output.
#ifndef GZ_UTIL_XXHASH_H_
#define GZ_UTIL_XXHASH_H_

#include <cstddef>
#include <cstdint>

namespace gz {

// XXH64 round constants. Public because the SIMD lane implementations
// (util/xxhash_lanes.h) replicate the word-hash dataflow with vector
// arithmetic and must use bit-identical primes.
inline constexpr uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

// Hashes an arbitrary byte buffer with the XXH64 algorithm.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

// Hashes a single 64-bit value. This is the hot path for sketch updates:
// a specialized fixed-length variant of XXH64 (identical output to
// XxHash64(&value, 8, seed)).
uint64_t XxHash64Word(uint64_t value, uint64_t seed);

}  // namespace gz

#endif  // GZ_UTIL_XXHASH_H_
