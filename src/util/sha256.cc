#include "util/sha256.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace gz {
namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

struct Sha256State {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  void Compress(const uint8_t block[64]) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
             static_cast<uint32_t>(block[4 * i + 1]) << 16 |
             static_cast<uint32_t>(block[4 * i + 2]) << 8 |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

// One-shot over a (possibly two-part) message: HMAC hashes key-pad
// then data without wanting the concatenation materialized.
void Sha256Parts(const void* a, size_t a_size, const void* b, size_t b_size,
                 uint8_t out[kSha256Bytes]) {
  Sha256State state;
  uint8_t block[64];
  size_t fill = 0;
  const uint64_t total = a_size + b_size;
  for (const auto& [data, size] :
       {std::pair<const void*, size_t>{a, a_size}, {b, b_size}}) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t n = size;
    while (n > 0) {
      const size_t take = std::min<size_t>(64 - fill, n);
      std::memcpy(block + fill, p, take);
      fill += take;
      p += take;
      n -= take;
      if (fill == 64) {
        state.Compress(block);
        fill = 0;
      }
    }
  }
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  block[fill++] = 0x80;
  if (fill > 56) {
    std::memset(block + fill, 0, 64 - fill);
    state.Compress(block);
    fill = 0;
  }
  std::memset(block + fill, 0, 56 - fill);
  const uint64_t bits = total * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  state.Compress(block);
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state.h[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state.h[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state.h[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state.h[i]);
  }
}

}  // namespace

void Sha256(const void* data, size_t size, uint8_t out[kSha256Bytes]) {
  Sha256Parts(data, size, nullptr, 0, out);
}

void HmacSha256(const void* key, size_t key_size, const void* data,
                size_t size, uint8_t out[kSha256Bytes]) {
  constexpr size_t kBlock = 64;
  uint8_t key_block[kBlock] = {0};
  if (key_size > kBlock) {
    Sha256(key, key_size, key_block);  // First 32 bytes; rest stays zero.
  } else {
    std::memcpy(key_block, key, key_size);
  }
  uint8_t pad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) pad[i] = key_block[i] ^ 0x36;
  uint8_t inner[kSha256Bytes];
  Sha256Parts(pad, kBlock, data, size, inner);
  for (size_t i = 0; i < kBlock; ++i) pad[i] = key_block[i] ^ 0x5c;
  Sha256Parts(pad, kBlock, inner, sizeof(inner), out);
}

bool ConstantTimeEqual(const void* a, const void* b, size_t size) {
  const volatile uint8_t* pa = static_cast<const uint8_t*>(a);
  const volatile uint8_t* pb = static_cast<const uint8_t*>(b);
  uint8_t diff = 0;
  for (size_t i = 0; i < size; ++i) diff |= pa[i] ^ pb[i];
  return diff == 0;
}

}  // namespace gz
