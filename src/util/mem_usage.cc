#include "util/mem_usage.h"

#include <cstdio>

#include <unistd.h>

namespace gz {

size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long rss_pages = 0;
  int scanned = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (scanned != 2) return 0;
  return static_cast<size_t>(rss_pages) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

const char* FormatBytes(size_t bytes, char* buf, int buf_len) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, buf_len, "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, buf_len, "%.2f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, buf_len, "%.2f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, buf_len, "%zu B", bytes);
  }
  return buf;
}

}  // namespace gz
