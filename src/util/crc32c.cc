#include "util/crc32c.h"

#include <bit>
#include <cstring>

namespace gz {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected.

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table,
// table[k] advances a byte seen k positions earlier, so eight bytes
// fold with eight independent lookups per iteration.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

uint32_t SoftExtend(uint32_t state, const uint8_t* p, size_t n) {
  const Tables& tb = tables();
  while (n >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, 8);
    // The slicing below indexes bytes from the LOW end of `word`
    // outward, i.e. it assumes p[0] sits in the low byte; on a
    // big-endian host the load puts p[0] in the high byte, so swap
    // (the byte-at-a-time tail is endian-neutral already).
    if constexpr (std::endian::native == std::endian::big) {
      word = __builtin_bswap64(word);
    }
    word ^= state;
    state = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
            tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
            tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
            tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = (state >> 8) ^ tb.t[0][(state ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return state;
}

#if defined(__x86_64__)
// The dedicated instruction; only reached after a runtime CPUID check,
// so the rest of the binary needs no -msse4.2.
__attribute__((target("sse4.2"))) uint32_t HwExtend(uint32_t state,
                                                    const uint8_t* p,
                                                    size_t n) {
  uint64_t s = state;
  while (n >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, 8);
    s = __builtin_ia32_crc32di(s, word);
    p += 8;
    n -= 8;
  }
  uint32_t s32 = static_cast<uint32_t>(s);
  while (n > 0) {
    s32 = __builtin_ia32_crc32qi(s32, *p);
    ++p;
    --n;
  }
  return s32;
}

bool HaveHwCrc() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif  // __x86_64__

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t state = crc ^ 0xFFFFFFFFu;  // Un-finalize.
#if defined(__x86_64__)
  if (HaveHwCrc()) return HwExtend(state, p, size) ^ 0xFFFFFFFFu;
#endif
  return SoftExtend(state, p, size) ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace gz
