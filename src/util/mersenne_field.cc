#include "util/mersenne_field.h"

namespace gz {

uint64_t PowMod31(uint64_t r, uint64_t e) {
  uint64_t base = Reduce31(r);
  uint64_t acc = 1;
  while (e > 0) {
    if (e & 1) acc = MulMod31(acc, base);
    base = MulMod31(base, base);
    e >>= 1;
  }
  return acc;
}

uint64_t PowMod61(uint64_t r, uint64_t e) {
  uint64_t base = r % kMersenne61;
  uint64_t acc = 1;
  while (e > 0) {
    if (e & 1) acc = MulMod61(acc, base);
    base = MulMod61(base, base);
    e >>= 1;
  }
  return acc;
}

}  // namespace gz
