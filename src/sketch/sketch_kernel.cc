#include "sketch/sketch_kernel.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/xxhash.h"
#include "util/xxhash_lanes.h"

namespace gz {
namespace {

// ---- Scalar reference path -------------------------------------------
//
// This is THE definition of a sketch update; every SIMD kernel below
// must reproduce its bucket writes bit for bit. CubeSketch::Update
// routes through here too, so there is exactly one copy of the math.

inline void UpdateOneScalar(const CubeSketchKernelArgs& a, uint64_t idx) {
  const uint64_t enc = idx + 1;  // 0 is reserved for "empty".

  *a.det_alpha ^= enc;
  *a.det_gamma ^=
      static_cast<uint32_t>(XxHash64Word(enc, a.gamma_seeds[a.cols]));

  for (int c = 0; c < a.cols; ++c) {
    const uint64_t h = XxHash64Word(enc, a.col_seeds[c]);
    // Rows 0..z where z = number of trailing zero bits of h (capped).
    int depth = (h == 0) ? a.rows - 1 : std::countr_zero(h);
    if (depth > a.rows - 1) depth = a.rows - 1;
    const uint32_t checksum =
        static_cast<uint32_t>(XxHash64Word(enc, a.gamma_seeds[c]));
    uint64_t* alpha = a.alphas + static_cast<size_t>(c) * a.rows;
    uint32_t* gamma = a.gammas + static_cast<size_t>(c) * a.rows;
    for (int r = 0; r <= depth; ++r) {
      alpha[r] ^= enc;
      gamma[r] ^= checksum;
    }
  }
}

void UpdateBatchScalar(const CubeSketchKernelArgs& a) {
  for (size_t i = 0; i < a.count; ++i) UpdateOneScalar(a, a.indices[i]);
}

#if defined(__x86_64__)

// See the matching pragma in util/xxhash_lanes.h: GCC 12 attributes its
// PR 105593 false positive to the function the intrinsics inline into,
// so the kernels need the suppression as well.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// ---- SIMD kernels ----------------------------------------------------
//
// Two amortizations over the scalar path:
//
//  1. Hashes in lanes: per lane group (4 under AVX2, 8 under AVX-512)
//     one placement hash, one checksum hash, and one capped-tzcnt per
//     column are computed in SIMD instead of per update.
//
//  2. Scatter via a depth-indexed difference accumulator: the scalar
//     path XORs rows 0..depth per update — a data-dependent inner loop
//     whose branch mispredicts on every geometric depth draw. Since
//     bucket row r receives exactly the XOR of all updates with
//     depth >= r, each update instead XORs once into diff[depth]
//     (branchless), and one suffix-XOR sweep per column folds the
//     whole batch into the bucket rows. Pure XOR reassociation:
//     bit-identical to the scalar writes.
//
// Truncating checksums to 32 bits commutes with XOR, so the diff and
// det accumulators fold full 64-bit lanes and truncate at the end.

// rows = bit_width(vector_len - 1) + 1 <= 65.
constexpr int kMaxRows = 65;

GZ_TARGET_AVX2 void UpdateBatchAvx2(const CubeSketchKernelArgs& a) {
  GZ_CHECK(a.rows <= kMaxRows);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i cap = _mm256_set1_epi64x(a.rows - 1);
  const size_t main = a.count & ~static_cast<size_t>(3);

  // Deterministic bucket: every update lands in it, no depth involved.
  {
    const uint64_t det_seed = a.gamma_seeds[a.cols];
    __m256i alpha_acc = _mm256_setzero_si256();
    __m256i gamma_acc = _mm256_setzero_si256();
    for (size_t i = 0; i < main; i += 4) {
      const __m256i enc = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.indices + i)),
          one);
      alpha_acc = _mm256_xor_si256(alpha_acc, enc);
      gamma_acc = _mm256_xor_si256(gamma_acc, XxHash64Word4(enc, det_seed));
    }
    alignas(32) uint64_t fold[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(fold), alpha_acc);
    *a.det_alpha ^= fold[0] ^ fold[1] ^ fold[2] ^ fold[3];
    _mm256_store_si256(reinterpret_cast<__m256i*>(fold), gamma_acc);
    *a.det_gamma ^=
        static_cast<uint32_t>(fold[0] ^ fold[1] ^ fold[2] ^ fold[3]);
  }

  alignas(32) uint64_t enc_lanes[4];
  alignas(32) uint64_t depth_lanes[4];
  alignas(32) uint64_t chk_lanes[4];
  uint64_t diff_alpha[kMaxRows];
  uint64_t diff_gamma[kMaxRows];

  for (int c = 0; c < a.cols; ++c) {
    std::memset(diff_alpha, 0, sizeof(uint64_t) * a.rows);
    std::memset(diff_gamma, 0, sizeof(uint64_t) * a.rows);
    for (size_t i = 0; i < main; i += 4) {
      const __m256i enc = _mm256_add_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.indices + i)),
          one);
      const __m256i h = XxHash64Word4(enc, a.col_seeds[c]);
      const __m256i chk = XxHash64Word4(enc, a.gamma_seeds[c]);
      const __m256i depth = TrailingZerosCapped4(h, cap);
      _mm256_store_si256(reinterpret_cast<__m256i*>(enc_lanes), enc);
      _mm256_store_si256(reinterpret_cast<__m256i*>(depth_lanes), depth);
      _mm256_store_si256(reinterpret_cast<__m256i*>(chk_lanes), chk);
      for (int lane = 0; lane < 4; ++lane) {
        const uint64_t d = depth_lanes[lane];
        diff_alpha[d] ^= enc_lanes[lane];
        diff_gamma[d] ^= chk_lanes[lane];
      }
    }
    uint64_t* alpha = a.alphas + static_cast<size_t>(c) * a.rows;
    uint32_t* gamma = a.gammas + static_cast<size_t>(c) * a.rows;
    uint64_t acc_alpha = 0;
    uint64_t acc_gamma = 0;
    for (int r = a.rows - 1; r >= 0; --r) {
      acc_alpha ^= diff_alpha[r];
      acc_gamma ^= diff_gamma[r];
      alpha[r] ^= acc_alpha;
      gamma[r] ^= static_cast<uint32_t>(acc_gamma);
    }
  }

  for (size_t i = main; i < a.count; ++i) UpdateOneScalar(a, a.indices[i]);
}

GZ_TARGET_AVX512 void UpdateBatchAvx512(const CubeSketchKernelArgs& a) {
  GZ_CHECK(a.rows <= kMaxRows);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i cap = _mm512_set1_epi64(a.rows - 1);
  const size_t main = a.count & ~static_cast<size_t>(7);

  {
    const uint64_t det_seed = a.gamma_seeds[a.cols];
    __m512i alpha_acc = _mm512_setzero_si512();
    __m512i gamma_acc = _mm512_setzero_si512();
    for (size_t i = 0; i < main; i += 8) {
      const __m512i enc = _mm512_add_epi64(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a.indices + i)),
          one);
      alpha_acc = _mm512_xor_si512(alpha_acc, enc);
      gamma_acc = _mm512_xor_si512(gamma_acc, XxHash64Word8(enc, det_seed));
    }
    alignas(64) uint64_t fold[8];
    _mm512_store_si512(reinterpret_cast<void*>(fold), alpha_acc);
    uint64_t da = 0;
    for (uint64_t f : fold) da ^= f;
    *a.det_alpha ^= da;
    _mm512_store_si512(reinterpret_cast<void*>(fold), gamma_acc);
    uint64_t dg = 0;
    for (uint64_t f : fold) dg ^= f;
    *a.det_gamma ^= static_cast<uint32_t>(dg);
  }

  alignas(64) uint64_t enc_lanes[8];
  alignas(64) uint64_t depth_lanes[8];
  alignas(64) uint64_t chk_lanes[8];
  uint64_t diff_alpha[kMaxRows];
  uint64_t diff_gamma[kMaxRows];

  for (int c = 0; c < a.cols; ++c) {
    std::memset(diff_alpha, 0, sizeof(uint64_t) * a.rows);
    std::memset(diff_gamma, 0, sizeof(uint64_t) * a.rows);
    for (size_t i = 0; i < main; i += 8) {
      const __m512i enc = _mm512_add_epi64(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a.indices + i)),
          one);
      const __m512i h = XxHash64Word8(enc, a.col_seeds[c]);
      const __m512i chk = XxHash64Word8(enc, a.gamma_seeds[c]);
      const __m512i depth = TrailingZerosCapped8(h, cap);
      _mm512_store_si512(reinterpret_cast<void*>(enc_lanes), enc);
      _mm512_store_si512(reinterpret_cast<void*>(depth_lanes), depth);
      _mm512_store_si512(reinterpret_cast<void*>(chk_lanes), chk);
      for (int lane = 0; lane < 8; ++lane) {
        const uint64_t d = depth_lanes[lane];
        diff_alpha[d] ^= enc_lanes[lane];
        diff_gamma[d] ^= chk_lanes[lane];
      }
    }
    uint64_t* alpha = a.alphas + static_cast<size_t>(c) * a.rows;
    uint32_t* gamma = a.gammas + static_cast<size_t>(c) * a.rows;
    uint64_t acc_alpha = 0;
    uint64_t acc_gamma = 0;
    for (int r = a.rows - 1; r >= 0; --r) {
      acc_alpha ^= diff_alpha[r];
      acc_gamma ^= diff_gamma[r];
      alpha[r] ^= acc_alpha;
      gamma[r] ^= static_cast<uint32_t>(acc_gamma);
    }
  }

  for (size_t i = main; i < a.count; ++i) UpdateOneScalar(a, a.indices[i]);
}

// ---- Lane-hash batch entries -----------------------------------------

GZ_TARGET_AVX2 void HashBatchAvx2(const uint64_t* values, size_t count,
                                  uint64_t seed, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        XxHash64Word4(v, seed));
  }
  for (; i < count; ++i) out[i] = XxHash64Word(values[i], seed);
}

GZ_TARGET_AVX512 void HashBatchAvx512(const uint64_t* values, size_t count,
                                      uint64_t seed, uint64_t* out) {
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(values + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i),
                        XxHash64Word8(v, seed));
  }
  for (; i < count; ++i) out[i] = XxHash64Word(values[i], seed);
}

#pragma GCC diagnostic pop

#endif  // __x86_64__

// ---- Dispatch --------------------------------------------------------

SketchKernel ResolveFromEnv() {
  const SketchKernel best = BestSupportedSketchKernel();
  const char* value = std::getenv("GZ_SKETCH_KERNEL");
  if (value == nullptr || *value == '\0') return best;
  SketchKernel requested;
  if (!ParseSketchKernelName(value, &requested)) {
    std::fprintf(stderr,
                 "gz: unknown GZ_SKETCH_KERNEL value \"%s\" "
                 "(want scalar|avx2|avx512|auto); using %s\n",
                 value, SketchKernelName(best));
    return best;
  }
  if (!SketchKernelSupported(requested)) {
    // Widest supported kernel at or below the request; all kernels are
    // bitwise-identical, so the fallback only changes speed.
    const SketchKernel fallback =
        static_cast<int>(best) < static_cast<int>(requested) ? best
                                                             : SketchKernel::kScalar;
    std::fprintf(stderr,
                 "gz: GZ_SKETCH_KERNEL=%s not supported on this CPU; "
                 "using %s\n",
                 SketchKernelName(requested), SketchKernelName(fallback));
    return fallback;
  }
  return requested;
}

// -1 = no override; otherwise the forced kernel's enum value.
std::atomic<int> g_forced_kernel{-1};

}  // namespace

const char* SketchKernelName(SketchKernel kernel) {
  switch (kernel) {
    case SketchKernel::kScalar:
      return "scalar";
    case SketchKernel::kAvx2:
      return "avx2";
    case SketchKernel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SketchKernelSupported(SketchKernel kernel) {
  switch (kernel) {
    case SketchKernel::kScalar:
      return true;
    case SketchKernel::kAvx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SketchKernel::kAvx512:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512cd") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

SketchKernel BestSupportedSketchKernel() {
  if (SketchKernelSupported(SketchKernel::kAvx512)) return SketchKernel::kAvx512;
  if (SketchKernelSupported(SketchKernel::kAvx2)) return SketchKernel::kAvx2;
  return SketchKernel::kScalar;
}

bool ParseSketchKernelName(const char* name, SketchKernel* out) {
  GZ_CHECK(name != nullptr && out != nullptr);
  if (std::strcmp(name, "scalar") == 0) {
    *out = SketchKernel::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = SketchKernel::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = SketchKernel::kAvx512;
  } else if (std::strcmp(name, "auto") == 0) {
    *out = BestSupportedSketchKernel();
  } else {
    return false;
  }
  return true;
}

SketchKernel ActiveSketchKernel() {
  // Env resolution happens once (thread-safe static init); the forced
  // override wins so benches/tests can sweep kernels in-process.
  static const SketchKernel from_env = ResolveFromEnv();
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  return forced >= 0 ? static_cast<SketchKernel>(forced) : from_env;
}

void ForceSketchKernel(SketchKernel kernel) {
  GZ_CHECK_MSG(SketchKernelSupported(kernel),
               "forcing a sketch kernel this CPU cannot run");
  g_forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void CubeSketchUpdateBatch(SketchKernel kernel,
                           const CubeSketchKernelArgs& args) {
  switch (kernel) {
#if defined(__x86_64__)
    case SketchKernel::kAvx2:
      GZ_CHECK(SketchKernelSupported(kernel));
      UpdateBatchAvx2(args);
      return;
    case SketchKernel::kAvx512:
      GZ_CHECK(SketchKernelSupported(kernel));
      UpdateBatchAvx512(args);
      return;
#else
    case SketchKernel::kAvx2:
    case SketchKernel::kAvx512:
      GZ_CHECK_MSG(false, "SIMD sketch kernels require x86-64");
      return;
#endif
    case SketchKernel::kScalar:
      UpdateBatchScalar(args);
      return;
  }
  UpdateBatchScalar(args);
}

void XxHash64WordBatch(SketchKernel kernel, const uint64_t* values,
                       size_t count, uint64_t seed, uint64_t* out) {
  switch (kernel) {
#if defined(__x86_64__)
    case SketchKernel::kAvx2:
      GZ_CHECK(SketchKernelSupported(kernel));
      HashBatchAvx2(values, count, seed, out);
      return;
    case SketchKernel::kAvx512:
      GZ_CHECK(SketchKernelSupported(kernel));
      HashBatchAvx512(values, count, seed, out);
      return;
#else
    case SketchKernel::kAvx2:
    case SketchKernel::kAvx512:
      GZ_CHECK_MSG(false, "SIMD sketch kernels require x86-64");
      return;
#endif
    case SketchKernel::kScalar:
      break;
  }
  for (size_t i = 0; i < count; ++i) out[i] = XxHash64Word(values[i], seed);
}

}  // namespace gz
