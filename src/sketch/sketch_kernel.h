// Batched sketch-update kernel with runtime SIMD dispatch.
//
// The ingest hot loop is sketch-bound: every update costs
// (cols + 1) * rounds XxHash64Word calls plus a short XOR scatter, all
// of which the seed implementation ran scalar, one update at a time.
// This kernel amortizes the hashing over a lane group of updates —
// 4 lanes under AVX2, 8 under AVX-512 — computing placement hashes,
// bucket depths (trailing zeros) and checksums in SIMD, and only then
// performing the scalar scatter-XOR into bucket rows (scatters are
// short, depth-dependent, and XOR-commutative, so vectorizing them
// buys nothing).
//
// Every kernel is bitwise-identical to the scalar path: same hash
// function, same bucket algebra — only the evaluation order of XORs
// differs, and XOR commutes. The kernel is chosen once at startup from
// CPUID, overridable with GZ_SKETCH_KERNEL={scalar,avx2,avx512,auto}
// so conformance and chaos suites can pin cross-kernel equivalence.
// Dispatch is runtime-only (target-attributed functions, no global
// -mavx2), the same pattern as util/crc32c.cc: the binary still runs
// on any x86-64, and non-x86 builds compile the scalar path alone.
#ifndef GZ_SKETCH_SKETCH_KERNEL_H_
#define GZ_SKETCH_SKETCH_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace gz {

// Ordered by width so "best supported" is a max and a fallback from an
// unsupported request is a min.
enum class SketchKernel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Stable lowercase name ("scalar", "avx2", "avx512").
const char* SketchKernelName(SketchKernel kernel);

// True if this CPU can execute `kernel` (kScalar is always true).
bool SketchKernelSupported(SketchKernel kernel);

// Widest kernel this CPU supports.
SketchKernel BestSupportedSketchKernel();

// Parses "scalar" / "avx2" / "avx512" / "auto" ("auto" resolves to
// BestSupportedSketchKernel()). Returns false on any other string.
// Note: parsing does not check CPU support; resolution does.
bool ParseSketchKernelName(const char* name, SketchKernel* out);

// The kernel every sketch update goes through. Resolved once from
// GZ_SKETCH_KERNEL (default "auto") capped to CPU support; an unknown
// value or an unsupported request falls back (with one stderr warning)
// to the widest supported kernel at or below the request.
SketchKernel ActiveSketchKernel();

// Overrides ActiveSketchKernel() for the rest of the process (benches
// sweeping kernels, tests pinning cross-kernel equivalence). The kernel
// must be supported on this CPU.
void ForceSketchKernel(SketchKernel kernel);

// One CubeSketch's geometry and bucket storage, flattened for the
// kernel. All pointers borrow from the sketch; `indices` are raw vector
// indices already validated < vector_len by the caller (the span-level
// bounds check hoisted out of the per-update path).
struct CubeSketchKernelArgs {
  const uint64_t* indices = nullptr;
  size_t count = 0;
  int cols = 0;
  int rows = 0;
  const uint64_t* col_seeds = nullptr;    // [cols] placement-hash seeds.
  const uint64_t* gamma_seeds = nullptr;  // [cols + 1]; last = det bucket.
  uint64_t* alphas = nullptr;             // [cols * rows], column-major.
  uint32_t* gammas = nullptr;             // [cols * rows], column-major.
  uint64_t* det_alpha = nullptr;
  uint32_t* det_gamma = nullptr;
};

// Applies the batch to the bucket arrays with the given kernel. The
// kernel must be supported on this CPU. Counts of zero are fine; a tail
// shorter than the lane width runs scalar (identical math).
void CubeSketchUpdateBatch(SketchKernel kernel,
                           const CubeSketchKernelArgs& args);

// out[i] = XxHash64Word(values[i], seed), vectorized per `kernel`.
// The reusable lane-hash entry point for batch workloads beyond the
// cube sketch (count-min rows, heavy hitters). Kernel must be
// supported on this CPU.
void XxHash64WordBatch(SketchKernel kernel, const uint64_t* values,
                       size_t count, uint64_t seed, uint64_t* out);

}  // namespace gz

#endif  // GZ_SKETCH_SKETCH_KERNEL_H_
