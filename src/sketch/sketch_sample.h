// Result type shared by all l0-samplers in this library.
#ifndef GZ_SKETCH_SKETCH_SAMPLE_H_
#define GZ_SKETCH_SKETCH_SAMPLE_H_

#include <cstdint>

namespace gz {

// Outcome of querying an l0-sketch:
//  * kGood — `index` is a nonzero coordinate of the sketched vector.
//  * kZero — the sketched vector is (with high probability) all-zero.
//  * kFail — the sketch could not produce a sample (probability <= delta).
enum class SampleKind : uint8_t { kGood = 0, kZero = 1, kFail = 2 };

struct SketchSample {
  SampleKind kind = SampleKind::kFail;
  uint64_t index = 0;  // Valid only when kind == kGood.

  static SketchSample Good(uint64_t idx) { return {SampleKind::kGood, idx}; }
  static SketchSample Zero() { return {SampleKind::kZero, 0}; }
  static SketchSample Fail() { return {SampleKind::kFail, 0}; }
};

}  // namespace gz

#endif  // GZ_SKETCH_SKETCH_SAMPLE_H_
