#include "sketch/l0_standard.h"

// StandardL0Sketch is header-only (templates); this file exists so the
// module shows up as a translation unit and to pin vtable-free symbols.
namespace gz {
static_assert(internal_l0::NarrowField::kBucketBytes == 24);
static_assert(internal_l0::WideField::kBucketBytes == 48);
}  // namespace gz
