// CubeSketch: the paper's l0-sampling sketch for vectors over Z_2
// (Section 3.1). Compared to the standard (a, b, c)-bucket sampler it
// replaces modular-exponentiation checksums with XOR of a second hash,
// shrinking buckets to 12 bytes and making the average update a handful
// of XORs.
//
// Geometry: `cols` independent columns (default 7, from delta = 1/100);
// each column has ceil(log2(n)) + 1 geometric rows. An update to vector
// index i lands in rows 0..z of column c, where z is the number of
// trailing zero bits of h1_c(i). One extra deterministic bucket receives
// every update and is used both for O(1) recovery of singleton vectors
// and for zero-vector detection.
//
// Linearity: two CubeSketches built with the same parameters and seed can
// be merged with Merge() (elementwise XOR); the result is exactly the
// sketch of the XOR (mod-2 sum) of the two input vectors.
#ifndef GZ_SKETCH_CUBE_SKETCH_H_
#define GZ_SKETCH_CUBE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/sketch_kernel.h"
#include "sketch/sketch_sample.h"

namespace gz {

struct CubeSketchParams {
  uint64_t vector_len = 0;  // n: length of the sketched Z_2 vector.
  uint64_t seed = 0;        // All hash functions derive from this seed.
  int cols = 7;             // q * log(1/delta); 7 ~ delta = 1/100.

  friend bool operator==(const CubeSketchParams& a,
                         const CubeSketchParams& b) {
    return a.vector_len == b.vector_len && a.seed == b.seed &&
           a.cols == b.cols;
  }
};

class CubeSketch {
 public:
  explicit CubeSketch(const CubeSketchParams& params);

  // Toggles vector index `idx` (addition of 1 over Z_2).
  void Update(uint64_t idx);

  // Applies a batch of toggles through the active sketch kernel
  // (sketch_kernel.h): indices are bounds-checked once for the whole
  // span, then processed in lane groups — 4 (AVX2) or 8 (AVX-512)
  // placement hashes, checksums, and bucket depths per column computed
  // in SIMD, followed by a scalar scatter-XOR into the bucket rows.
  // Bitwise-identical to calling Update() per index, for every kernel.
  void UpdateBatch(const uint64_t* indices, size_t count);

  // Same, for callers that already validated every index against
  // vector_len (NodeSketch hoists one span check over all rounds).
  void UpdateBatchPrechecked(const uint64_t* indices, size_t count);

  // Same as UpdateBatch but with an explicit kernel, so tests and
  // benches can compare kernels within one process.
  void UpdateBatchWithKernel(SketchKernel kernel, const uint64_t* indices,
                             size_t count);

  // Returns a nonzero coordinate, or kZero / kFail (see SketchSample).
  SketchSample Query() const;

  // Elementwise XOR with `other`, which must have identical params.
  // After the call, this sketch represents the mod-2 sum of both vectors.
  void Merge(const CubeSketch& other);

  // Resets to the sketch of the zero vector.
  void Clear();

  const CubeSketchParams& params() const { return params_; }
  int rows() const { return rows_; }
  int cols() const { return params_.cols; }

  // Total bucket count for the given params: cols * rows plus the
  // deterministic bucket. The single source of bucket geometry shared
  // by the constructor, ByteSize(), and SerializedSizeFor().
  static size_t NumBuckets(const CubeSketchParams& params);

  // Exact in-memory payload size: 12 bytes per bucket (64-bit alpha +
  // 32-bit gamma), matching the paper's accounting.
  size_t ByteSize() const;

  // --- Flat serialization (used by the on-disk sketch store) -----------
  size_t SerializedSize() const { return ByteSize(); }
  // Record size for the given params without constructing a sketch;
  // lets deserializers validate a buffer length before allocating.
  static size_t SerializedSizeFor(const CubeSketchParams& params);
  void SerializeTo(uint8_t* out) const;
  void DeserializeFrom(const uint8_t* in);

  friend bool operator==(const CubeSketch& a, const CubeSketch& b) {
    return a.params_ == b.params_ && a.alphas_ == b.alphas_ &&
           a.gammas_ == b.gammas_ && a.det_alpha_ == b.det_alpha_ &&
           a.det_gamma_ == b.det_gamma_;
  }

 private:
  // Bucket index within the flattened column-major arrays.
  int BucketIndex(int col, int row) const { return col * rows_ + row; }

  // Borrowing view of this sketch's geometry/buckets for the kernel.
  CubeSketchKernelArgs KernelArgs(const uint64_t* indices, size_t count);

  CubeSketchParams params_;
  int rows_;
  // Structure-of-arrays bucket storage: alphas_[b] is the XOR of encoded
  // indices in bucket b, gammas_[b] the XOR of their checksums.
  std::vector<uint64_t> alphas_;
  std::vector<uint32_t> gammas_;
  // Deterministic bucket: receives every update.
  uint64_t det_alpha_ = 0;
  uint32_t det_gamma_ = 0;
  // Per-column seeds for the placement hash h1 and checksum hash h2.
  std::vector<uint64_t> col_seeds_;
  std::vector<uint64_t> gamma_seeds_;
};

}  // namespace gz

#endif  // GZ_SKETCH_CUBE_SKETCH_H_
