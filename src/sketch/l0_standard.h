// Standard (general-vector) l0-sampler, after Cormode & Firmani's
// unifying framework — the baseline the paper measures CubeSketch
// against (Section 3, Figures 4 and 5).
//
// Each bucket keeps three accumulators:
//   a += idx * delta,  b += delta,  c += delta * r^idx  (mod p)
// A bucket is "good" when it holds a single nonzero coordinate; then
// value = a / b, verified by the checksum c == b * r^value (mod p).
//
// Word-width regimes (paper Section 3): for vectors shorter than 2^31
// the field is Mersenne31 and every operation fits in 64-bit words
// ("narrow"); longer vectors force the Mersenne61 field whose products
// need 128-bit intermediates ("wide"), which is what makes the standard
// sampler catastrophically slow on long vectors. Bucket sizes are
// 3 x 8 B (narrow) vs 3 x 16 B (wide), reproducing the 2x -> 4x size gap
// against CubeSketch's 12 B buckets.
#ifndef GZ_SKETCH_L0_STANDARD_H_
#define GZ_SKETCH_L0_STANDARD_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "sketch/sketch_sample.h"
#include "util/check.h"
#include "util/mersenne_field.h"
#include "util/xxhash.h"

namespace gz {

struct L0SketchParams {
  uint64_t vector_len = 0;
  uint64_t seed = 0;
  int cols = 7;

  friend bool operator==(const L0SketchParams& a, const L0SketchParams& b) {
    return a.vector_len == b.vector_len && a.seed == b.seed &&
           a.cols == b.cols;
  }
};

namespace internal_l0 {

// Field/width traits for the two operating regimes.
//
// Deliberately generic modular arithmetic (hardware division) rather
// than Mersenne shift-reduction: the paper's cost analysis of the
// standard sampler charges it O(log n log 1/delta) *division* operations
// per update, 128-bit in the wide regime, and that is exactly the code
// the authors benchmark against. CubeSketch avoids this entirely.
struct NarrowField {
  using Acc = int64_t;   // exact accumulators for a and b
  using Mod = uint64_t;  // checksum residue storage
  static constexpr uint64_t kPrime = kMersenne31;
  static constexpr size_t kBucketBytes = 3 * sizeof(int64_t);
  static uint64_t Mul(uint64_t x, uint64_t y) {
    return (x * y) % kPrime;  // 64-bit multiply + divide.
  }
  static uint64_t Pow(uint64_t r, uint64_t e) {
    uint64_t base = r % kPrime;
    uint64_t acc = 1;
    while (e > 0) {
      if (e & 1) acc = Mul(acc, base);
      base = Mul(base, base);
      e >>= 1;
    }
    return acc;
  }
};

struct WideField {
  using Acc = __int128;
  using Mod = unsigned __int128;  // stored wide to reflect true bucket size
  static constexpr uint64_t kPrime = kMersenne61;
  static constexpr size_t kBucketBytes = 3 * sizeof(__int128);
  static uint64_t Mul(uint64_t x, uint64_t y) {
    // 128-bit multiply + 128-bit divide (libgcc __umodti3): the
    // "catastrophic slowdown" regime of paper Section 3.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(x) * y) % kPrime);
  }
  static uint64_t Pow(uint64_t r, uint64_t e) {
    uint64_t base = r % kPrime;
    uint64_t acc = 1;
    while (e > 0) {
      if (e & 1) acc = Mul(acc, base);
      base = Mul(base, base);
      e >>= 1;
    }
    return acc;
  }
};

// The sampler engine, parameterized by field width.
template <typename Field>
class L0Engine {
 public:
  using Acc = typename Field::Acc;

  explicit L0Engine(const L0SketchParams& params)
      : params_(params), rows_(RowsForLength(params.vector_len)) {
    GZ_CHECK(params_.vector_len >= 1);
    GZ_CHECK(params_.vector_len < Field::kPrime);
    GZ_CHECK(params_.cols >= 1);
    const size_t buckets =
        (static_cast<size_t>(params_.cols) * rows_) + 1;  // + deterministic
    a_.assign(buckets, 0);
    b_.assign(buckets, 0);
    c_.assign(buckets, 0);
    for (int col = 0; col < params_.cols; ++col) {
      col_seeds_.push_back(XxHash64Word(0x6c30636f6cULL + col, params_.seed));
      // Checksum base r in [2, p); 2-wise independence comes from the
      // random base per column.
      uint64_t r =
          XxHash64Word(0x6c3072ULL + col, params_.seed) % (Field::kPrime - 2);
      rbase_.push_back(r + 2);
    }
    uint64_t rdet =
        XxHash64Word(0x6c30646574ULL, params_.seed) % (Field::kPrime - 2);
    rbase_.push_back(rdet + 2);
  }

  void Update(uint64_t idx, int delta) {
    GZ_CHECK(idx < params_.vector_len);
    GZ_CHECK(delta == 1 || delta == -1);
    const uint64_t enc = idx + 1;  // exponent / recovered value; 0 = empty

    ApplyToBucket(DetBucket(), enc, delta, rbase_.back());
    for (int col = 0; col < params_.cols; ++col) {
      const uint64_t h = XxHash64Word(enc, col_seeds_[col]);
      int depth = (h == 0) ? rows_ - 1 : std::countr_zero(h);
      if (depth > rows_ - 1) depth = rows_ - 1;
      // The modular exponentiation below is the dominant per-update cost
      // of the standard sampler: O(log n) multiply-mod operations per
      // column (128-bit in the wide regime).
      const uint64_t pow = Field::Pow(rbase_[col], enc);
      for (int r = 0; r <= depth; ++r) {
        ApplyRaw(Bucket(col, r), enc, delta, pow);
      }
    }
  }

  SketchSample Query() const {
    // Zero detection via the deterministic bucket.
    const size_t det = DetBucket();
    if (a_[det] == 0 && b_[det] == 0 && c_[det] == 0) {
      return SketchSample::Zero();
    }
    if (SketchSample s = TryBucket(det, rbase_.back());
        s.kind == SampleKind::kGood) {
      return s;
    }
    for (int col = 0; col < params_.cols; ++col) {
      for (int r = rows_ - 1; r >= 0; --r) {
        if (SketchSample s = TryBucket(Bucket(col, r), rbase_[col]);
            s.kind == SampleKind::kGood) {
          return s;
        }
      }
    }
    return SketchSample::Fail();
  }

  void Merge(const L0Engine& other) {
    GZ_CHECK_MSG(params_ == other.params_,
                 "merging l0 sketches with different parameters");
    for (size_t i = 0; i < a_.size(); ++i) {
      a_[i] += other.a_[i];
      b_[i] += other.b_[i];
      uint64_t sum = static_cast<uint64_t>(c_[i]) +
                     static_cast<uint64_t>(other.c_[i]);
      if (sum >= Field::kPrime) sum -= Field::kPrime;
      c_[i] = sum;
    }
  }

  size_t ByteSize() const { return a_.size() * Field::kBucketBytes; }
  int rows() const { return rows_; }

 private:
  static int RowsForLength(uint64_t n) {
    const int levels = (n <= 1) ? 1 : std::bit_width(n - 1);
    return levels + 1;
  }

  size_t Bucket(int col, int row) const {
    return static_cast<size_t>(col) * rows_ + row;
  }
  size_t DetBucket() const {
    return static_cast<size_t>(params_.cols) * rows_;
  }

  void ApplyToBucket(size_t b, uint64_t enc, int delta, uint64_t rbase) {
    ApplyRaw(b, enc, delta, Field::Pow(rbase, enc));
  }

  void ApplyRaw(size_t bucket, uint64_t enc, int delta, uint64_t pow) {
    a_[bucket] += static_cast<Acc>(enc) * delta;
    b_[bucket] += delta;
    uint64_t c = static_cast<uint64_t>(c_[bucket]);
    if (delta > 0) {
      c += pow;
    } else {
      c += Field::kPrime - pow;
    }
    if (c >= Field::kPrime) c -= Field::kPrime;
    c_[bucket] = c;
  }

  SketchSample TryBucket(size_t bucket, uint64_t rbase) const {
    const Acc a = a_[bucket];
    const Acc b = b_[bucket];
    if (b == 0) return SketchSample::Fail();
    if (a % b != 0) return SketchSample::Fail();
    const Acc value = a / b;
    if (value < 1 || static_cast<uint64_t>(value) > params_.vector_len) {
      return SketchSample::Fail();
    }
    const uint64_t enc = static_cast<uint64_t>(value);
    // Checksum test: c == b * r^value (mod p), with b reduced into the
    // field (it may be negative).
    Acc bm = b % static_cast<Acc>(Field::kPrime);
    if (bm < 0) bm += static_cast<Acc>(Field::kPrime);
    const uint64_t expect =
        Field::Mul(static_cast<uint64_t>(bm), Field::Pow(rbase, enc));
    if (expect != static_cast<uint64_t>(c_[bucket])) {
      return SketchSample::Fail();
    }
    return SketchSample::Good(enc - 1);
  }

  L0SketchParams params_;
  int rows_;
  std::vector<Acc> a_;
  std::vector<Acc> b_;
  std::vector<typename Field::Mod> c_;
  std::vector<uint64_t> col_seeds_;
  std::vector<uint64_t> rbase_;  // per-column checksum base + det base
};

}  // namespace internal_l0

// Public wrapper choosing the field width from the vector length, as the
// paper describes: long vectors force wide (128-bit) arithmetic.
class StandardL0Sketch {
 public:
  // Vector lengths below this use the fast 64-bit narrow regime. The
  // bound is the Mersenne31 prime: recovered values (idx + 1) must stay
  // inside the field.
  static constexpr uint64_t kNarrowLimit = kMersenne31;

  explicit StandardL0Sketch(const L0SketchParams& params)
      : engine_(MakeEngine(params)) {}

  void Update(uint64_t idx, int delta) {
    std::visit([&](auto& e) { e.Update(idx, delta); }, engine_);
  }
  SketchSample Query() const {
    return std::visit([](const auto& e) { return e.Query(); }, engine_);
  }
  void Merge(const StandardL0Sketch& other) {
    GZ_CHECK(engine_.index() == other.engine_.index());
    if (auto* narrow =
            std::get_if<internal_l0::L0Engine<internal_l0::NarrowField>>(
                &engine_)) {
      narrow->Merge(std::get<internal_l0::L0Engine<internal_l0::NarrowField>>(
          other.engine_));
    } else {
      std::get<internal_l0::L0Engine<internal_l0::WideField>>(engine_).Merge(
          std::get<internal_l0::L0Engine<internal_l0::WideField>>(
              other.engine_));
    }
  }
  size_t ByteSize() const {
    return std::visit([](const auto& e) { return e.ByteSize(); }, engine_);
  }
  bool wide() const { return engine_.index() == 1; }

 private:
  using Variant =
      std::variant<internal_l0::L0Engine<internal_l0::NarrowField>,
                   internal_l0::L0Engine<internal_l0::WideField>>;

  static Variant MakeEngine(const L0SketchParams& params) {
    if (params.vector_len < kNarrowLimit) {
      return internal_l0::L0Engine<internal_l0::NarrowField>(params);
    }
    return internal_l0::L0Engine<internal_l0::WideField>(params);
  }

  Variant engine_;
};

}  // namespace gz

#endif  // GZ_SKETCH_L0_STANDARD_H_
