// Node sketch ("supernode"): the per-vertex sketching state of
// StreamingCC / GraphZeppelin (paper Section 2.2). Each vertex keeps
// `rounds` independent CubeSketches of its characteristic vector — one
// per round of Boruvka's algorithm, because querying a sketch and then
// merging based on the answer makes later queries adaptive.
//
// All node sketches in one graph share hash seeds per (round, column):
// that is what makes cross-node merging (summing sketches of a connected
// component) yield a sketch of the component's cut vector.
#ifndef GZ_SKETCH_NODE_SKETCH_H_
#define GZ_SKETCH_NODE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/cube_sketch.h"
#include "sketch/sketch_sample.h"

namespace gz {

struct NodeSketchParams {
  uint64_t num_nodes = 0;  // U: upper bound on the number of vertices.
  uint64_t seed = 0;       // Graph-level seed; shared by every vertex.
  int cols = 7;            // Columns per CubeSketch.
  int rounds = 0;          // 0 = DefaultRounds(num_nodes).

  friend bool operator==(const NodeSketchParams& a,
                         const NodeSketchParams& b) {
    return a.num_nodes == b.num_nodes && a.seed == b.seed &&
           a.cols == b.cols && a.rounds == b.rounds;
  }
};

class NodeSketch {
 public:
  explicit NodeSketch(const NodeSketchParams& params);

  // Number of Boruvka rounds supported: ceil(log_{3/2} V), following the
  // paper's failure check in list_spanning_forest().
  static int DefaultRounds(uint64_t num_nodes);

  // Applies one edge-index toggle to every round's subsketch.
  void Update(uint64_t edge_index);

  // Applies a batch of edge-index toggles. Iterates subsketch-major so
  // each CubeSketch's buckets stay cache-resident across the batch
  // (this ordering is also the unit of the paper's sketch-level
  // parallelism). Bounds-checks the span once, then feeds each round's
  // CubeSketch the whole index span through the active SIMD sketch
  // kernel (sketch_kernel.h) — the ingest workers' delta sketches go
  // through exactly this path.
  void UpdateBatch(const uint64_t* indices, size_t count);

  // Samples an incident (cut) edge index from round `round`'s subsketch.
  SketchSample Query(int round) const;

  // Elementwise merge; both sketches must share params (and hence seeds).
  void Merge(const NodeSketch& other);

  // Merges only the subsketches of rounds [first_round, rounds()).
  // Boruvka's component fold uses this: rounds at or before the current
  // one are never queried again, so merging them is wasted memory
  // traffic. first_round == rounds() is a no-op.
  void MergeRounds(const NodeSketch& other, int first_round);

  void Clear();

  int rounds() const { return static_cast<int>(subsketches_.size()); }
  const NodeSketchParams& params() const { return params_; }
  const CubeSketch& subsketch(int round) const { return subsketches_[round]; }
  CubeSketch& mutable_subsketch(int round) { return subsketches_[round]; }

  size_t ByteSize() const;

  // Flat serialization for the on-disk sketch store. Size depends only
  // on params, so every node's record has identical length.
  size_t SerializedSize() const;
  // Same, computed from params alone (no sketch construction); lets
  // deserializers validate sizes before allocating anything.
  static size_t SerializedSizeFor(const NodeSketchParams& params);
  void SerializeTo(uint8_t* out) const;
  void DeserializeFrom(const uint8_t* in);

  friend bool operator==(const NodeSketch& a, const NodeSketch& b) {
    return a.params_ == b.params_ && a.subsketches_ == b.subsketches_;
  }

 private:
  NodeSketchParams params_;
  std::vector<CubeSketch> subsketches_;
};

}  // namespace gz

#endif  // GZ_SKETCH_NODE_SKETCH_H_
