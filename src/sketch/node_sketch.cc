#include "sketch/node_sketch.h"

#include <algorithm>
#include <cmath>

#include "stream/stream_types.h"
#include "util/check.h"
#include "util/xxhash.h"

namespace gz {

int NodeSketch::DefaultRounds(uint64_t num_nodes) {
  GZ_CHECK(num_nodes >= 2);
  // ceil(log_{3/2}(V)): Boruvka shrinks the component count by at least
  // 3/2 per successful round (paper Figure 9, line 8). The minimum of 2
  // leaves a confirmation round (all-cuts-empty) after the last merge.
  const double rounds =
      std::log(static_cast<double>(num_nodes)) / std::log(1.5);
  return std::max(2, static_cast<int>(std::ceil(rounds)));
}

NodeSketch::NodeSketch(const NodeSketchParams& params) : params_(params) {
  GZ_CHECK(params_.num_nodes >= 2);
  const int rounds = params_.rounds > 0 ? params_.rounds
                                        : DefaultRounds(params_.num_nodes);
  params_.rounds = rounds;
  subsketches_.reserve(rounds);
  const uint64_t vec_len = NumPossibleEdges(params_.num_nodes);
  for (int r = 0; r < rounds; ++r) {
    CubeSketchParams cp;
    cp.vector_len = vec_len;
    // Round seeds derive from the graph seed only, NOT the node id:
    // every vertex must share hash functions for merges to be linear.
    cp.seed = XxHash64Word(static_cast<uint64_t>(r) + 1, params_.seed);
    cp.cols = params_.cols;
    subsketches_.emplace_back(cp);
  }
}

void NodeSketch::Update(uint64_t edge_index) {
  for (CubeSketch& s : subsketches_) s.Update(edge_index);
}

void NodeSketch::UpdateBatch(const uint64_t* indices, size_t count) {
  if (count == 0) return;
  // One span-level bounds check covers every round's subsketch (they
  // all share vector_len), so the kernels run with no per-update or
  // per-round validation at all.
  const uint64_t vector_len = subsketches_.front().params().vector_len;
  uint64_t max_idx = 0;
  for (size_t i = 0; i < count; ++i) {
    max_idx = indices[i] > max_idx ? indices[i] : max_idx;
  }
  GZ_CHECK_MSG(max_idx < vector_len, "batch edge index out of range");
  for (CubeSketch& s : subsketches_) s.UpdateBatchPrechecked(indices, count);
}

SketchSample NodeSketch::Query(int round) const {
  GZ_CHECK(round >= 0 && round < rounds());
  return subsketches_[round].Query();
}

void NodeSketch::Merge(const NodeSketch& other) { MergeRounds(other, 0); }

void NodeSketch::MergeRounds(const NodeSketch& other, int first_round) {
  GZ_CHECK_MSG(params_ == other.params_,
               "merging node sketches with different parameters");
  GZ_CHECK(first_round >= 0 && first_round <= rounds());
  for (int r = first_round; r < rounds(); ++r) {
    subsketches_[r].Merge(other.subsketches_[r]);
  }
}

void NodeSketch::Clear() {
  for (CubeSketch& s : subsketches_) s.Clear();
}

size_t NodeSketch::ByteSize() const {
  size_t total = 0;
  for (const CubeSketch& s : subsketches_) total += s.ByteSize();
  return total;
}

size_t NodeSketch::SerializedSize() const {
  size_t total = 0;
  for (const CubeSketch& s : subsketches_) total += s.SerializedSize();
  return total;
}

size_t NodeSketch::SerializedSizeFor(const NodeSketchParams& params) {
  GZ_CHECK(params.num_nodes >= 2);
  const int rounds = params.rounds > 0 ? params.rounds
                                       : DefaultRounds(params.num_nodes);
  CubeSketchParams cp;
  cp.vector_len = NumPossibleEdges(params.num_nodes);
  cp.cols = params.cols;
  return static_cast<size_t>(rounds) * CubeSketch::SerializedSizeFor(cp);
}

void NodeSketch::SerializeTo(uint8_t* out) const {
  for (const CubeSketch& s : subsketches_) {
    s.SerializeTo(out);
    out += s.SerializedSize();
  }
}

void NodeSketch::DeserializeFrom(const uint8_t* in) {
  for (CubeSketch& s : subsketches_) {
    s.DeserializeFrom(in);
    in += s.SerializedSize();
  }
}

}  // namespace gz
