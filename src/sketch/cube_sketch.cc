#include "sketch/cube_sketch.h"

#include <bit>
#include <cstring>

#include "util/check.h"
#include "util/xxhash.h"

namespace gz {
namespace {

// Domain-separation constants for deriving per-column hash seeds.
constexpr uint64_t kColSeedTag = 0x636f6c5f73656564ULL;    // "col_seed"
constexpr uint64_t kGammaSeedTag = 0x67616d6d615f7364ULL;  // "gamma_sd"
constexpr uint64_t kDetSeedTag = 0x6465745f73656564ULL;    // "det_seed"

int RowsForLength(uint64_t n) {
  GZ_CHECK(n >= 1);
  // ceil(log2(n)) geometric levels plus the always-on row 0.
  const int levels = (n <= 1) ? 1 : std::bit_width(n - 1);
  return levels + 1;
}

}  // namespace

size_t CubeSketch::NumBuckets(const CubeSketchParams& params) {
  GZ_CHECK(params.cols >= 1);
  // cols * rows column buckets plus the deterministic bucket.
  return static_cast<size_t>(params.cols) * RowsForLength(params.vector_len) +
         1;
}

CubeSketch::CubeSketch(const CubeSketchParams& params)
    : params_(params), rows_(RowsForLength(params.vector_len)) {
  GZ_CHECK(params_.vector_len >= 1);
  GZ_CHECK(params_.cols >= 1);
  const size_t column_buckets = NumBuckets(params_) - 1;
  alphas_.assign(column_buckets, 0);
  gammas_.assign(column_buckets, 0);
  col_seeds_.reserve(params_.cols);
  gamma_seeds_.reserve(params_.cols + 1);
  for (int c = 0; c < params_.cols; ++c) {
    col_seeds_.push_back(XxHash64Word(kColSeedTag + c, params_.seed));
    gamma_seeds_.push_back(XxHash64Word(kGammaSeedTag + c, params_.seed));
  }
  // Seed for the deterministic bucket's checksum.
  gamma_seeds_.push_back(XxHash64Word(kDetSeedTag, params_.seed));
}

// The update math itself lives in sketch_kernel.cc (UpdateOneScalar and
// the SIMD kernels); this file only owns storage and bounds checks.
void CubeSketch::Update(uint64_t idx) {
  GZ_CHECK(idx < params_.vector_len);
  // A single update can't fill a lane group; the scalar kernel is the
  // reference path and the fastest choice here.
  CubeSketchUpdateBatch(SketchKernel::kScalar, KernelArgs(&idx, 1));
}

void CubeSketch::UpdateBatch(const uint64_t* indices, size_t count) {
  if (count == 0) return;
  // Span-level bounds check, hoisted out of the per-update path: one
  // max-reduction pass (vectorizable) instead of a branch per update.
  uint64_t max_idx = 0;
  for (size_t i = 0; i < count; ++i) {
    max_idx = indices[i] > max_idx ? indices[i] : max_idx;
  }
  GZ_CHECK_MSG(max_idx < params_.vector_len, "batch index out of range");
  UpdateBatchPrechecked(indices, count);
}

void CubeSketch::UpdateBatchPrechecked(const uint64_t* indices, size_t count) {
  CubeSketchUpdateBatch(ActiveSketchKernel(), KernelArgs(indices, count));
}

void CubeSketch::UpdateBatchWithKernel(SketchKernel kernel,
                                       const uint64_t* indices, size_t count) {
  if (count == 0) return;
  uint64_t max_idx = 0;
  for (size_t i = 0; i < count; ++i) {
    max_idx = indices[i] > max_idx ? indices[i] : max_idx;
  }
  GZ_CHECK_MSG(max_idx < params_.vector_len, "batch index out of range");
  CubeSketchUpdateBatch(kernel, KernelArgs(indices, count));
}

CubeSketchKernelArgs CubeSketch::KernelArgs(const uint64_t* indices,
                                            size_t count) {
  CubeSketchKernelArgs args;
  args.indices = indices;
  args.count = count;
  args.cols = params_.cols;
  args.rows = rows_;
  args.col_seeds = col_seeds_.data();
  args.gamma_seeds = gamma_seeds_.data();
  args.alphas = alphas_.data();
  args.gammas = gammas_.data();
  args.det_alpha = &det_alpha_;
  args.det_gamma = &det_gamma_;
  return args;
}

SketchSample CubeSketch::Query() const {
  // Deterministic bucket: zero detection and O(1) singleton recovery.
  if (det_alpha_ == 0 && det_gamma_ == 0) return SketchSample::Zero();
  if (det_alpha_ != 0 && det_alpha_ <= params_.vector_len) {
    const uint32_t expect =
        static_cast<uint32_t>(XxHash64Word(det_alpha_, gamma_seeds_.back()));
    if (expect == det_gamma_) return SketchSample::Good(det_alpha_ - 1);
  }

  // Scan each column from the deepest (sparsest) row upward: deep rows
  // are the most likely to hold a single survivor.
  for (int c = 0; c < params_.cols; ++c) {
    for (int r = rows_ - 1; r >= 0; --r) {
      const uint64_t alpha = alphas_[BucketIndex(c, r)];
      const uint32_t gamma = gammas_[BucketIndex(c, r)];
      if (alpha == 0 || alpha > params_.vector_len) continue;
      const uint32_t expect =
          static_cast<uint32_t>(XxHash64Word(alpha, gamma_seeds_[c]));
      if (expect == gamma) return SketchSample::Good(alpha - 1);
    }
  }
  return SketchSample::Fail();
}

void CubeSketch::Merge(const CubeSketch& other) {
  GZ_CHECK_MSG(params_ == other.params_,
               "merging sketches with different parameters");
  for (size_t i = 0; i < alphas_.size(); ++i) {
    alphas_[i] ^= other.alphas_[i];
    gammas_[i] ^= other.gammas_[i];
  }
  det_alpha_ ^= other.det_alpha_;
  det_gamma_ ^= other.det_gamma_;
}

void CubeSketch::Clear() {
  std::memset(alphas_.data(), 0, alphas_.size() * sizeof(uint64_t));
  std::memset(gammas_.data(), 0, gammas_.size() * sizeof(uint32_t));
  det_alpha_ = 0;
  det_gamma_ = 0;
}

size_t CubeSketch::ByteSize() const {
  // 12 bytes per bucket (alpha u64 + gamma u32), including the
  // deterministic bucket.
  return NumBuckets(params_) * (sizeof(uint64_t) + sizeof(uint32_t));
}

size_t CubeSketch::SerializedSizeFor(const CubeSketchParams& params) {
  return NumBuckets(params) * (sizeof(uint64_t) + sizeof(uint32_t));
}

void CubeSketch::SerializeTo(uint8_t* out) const {
  std::memcpy(out, alphas_.data(), alphas_.size() * sizeof(uint64_t));
  out += alphas_.size() * sizeof(uint64_t);
  std::memcpy(out, gammas_.data(), gammas_.size() * sizeof(uint32_t));
  out += gammas_.size() * sizeof(uint32_t);
  std::memcpy(out, &det_alpha_, sizeof(det_alpha_));
  out += sizeof(det_alpha_);
  std::memcpy(out, &det_gamma_, sizeof(det_gamma_));
}

void CubeSketch::DeserializeFrom(const uint8_t* in) {
  std::memcpy(alphas_.data(), in, alphas_.size() * sizeof(uint64_t));
  in += alphas_.size() * sizeof(uint64_t);
  std::memcpy(gammas_.data(), in, gammas_.size() * sizeof(uint32_t));
  in += gammas_.size() * sizeof(uint32_t);
  std::memcpy(&det_alpha_, in, sizeof(det_alpha_));
  in += sizeof(det_alpha_);
  std::memcpy(&det_gamma_, in, sizeof(det_gamma_));
}

}  // namespace gz
