// Sliding-window connectivity: `connected(u, v) within the last W
// observations` answered by the UNCHANGED sketch stack. The window
// layer sits in front of any ingestion surface (GraphZeppelin,
// ShardedGraphZeppelin, ShardCluster — anything that takes GraphUpdate
// spans): it records each observed edge in a W-slot ring and, when an
// observation falls out of the ring, issues the expiring DELETE through
// the same span. Downstream, the instance simply holds the windowed
// graph, so every existing query — snapshot folds, Boruvka, standing
// queries over the kSubscribe push stream — is automatically a
// sliding-window query. No new query algebra, no decay factors in the
// sketches: the delete path the paper already supports IS the decay.
//
// Delete discipline (the part that guards XOR set semantics): sketches
// toggle, so a duplicate insert would REMOVE the edge. The ingestor
// therefore keeps a presence count per distinct edge and emits an
// insert only on the 0 -> 1 transition and the expiry delete only on
// the 1 -> 0 transition — re-observing a live edge refreshes its
// presence in the window without touching the sketches. Consequently a
// single emitted span may carry both an edge's insert and its own
// expiry delete (short window, long span); the pooled batch pipeline
// must fold such a mixed slab to a no-op for that edge, which the
// XOR-cancellation regression test pins.
//
// Zero-alloc at steady state: the ring, the presence table and the
// emit buffer are sized once in the constructor; Observe() allocates
// nothing.
#ifndef GZ_WORKLOADS_WINDOW_INGESTOR_H_
#define GZ_WORKLOADS_WINDOW_INGESTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "stream/stream_types.h"

namespace gz {

struct WindowIngestorParams {
  uint64_t num_nodes = 0;
  // W: number of most-recent observations the window retains.
  size_t window = 0;
  // Emitted updates buffered before the sink is invoked; Flush() hands
  // over a partial span. One span may mix inserts and expiry deletes.
  size_t emit_span = 1024;
};

class WindowIngestor {
 public:
  // The downstream ingestion surface — e.g.
  //   [&gz](const GraphUpdate* u, size_t n) { gz.Update(u, n); }
  using Sink = std::function<void(const GraphUpdate* updates, size_t count)>;

  WindowIngestor(const WindowIngestorParams& params, Sink sink);

  // One stream observation: edge `e` was seen now. Expires the
  // observation that falls out of the window, if any.
  void Observe(const Edge& e);
  void Observe(const Edge* edges, size_t count);

  // Hands any buffered emitted updates to the sink (call before
  // querying the downstream instance, or the window's most recent
  // transitions are still in this layer's buffer).
  void Flush();

  // Expires every retained observation (the stream ended and the
  // window should drain to empty), flushing to the sink.
  void ExpireAll();

  // Total observations ever seen; the window covers the last
  // min(observations, W) of them. This is the window's logical
  // position — pair it with the downstream instance's own position
  // when verifying a fold.
  uint64_t observations() const { return observations_; }
  // Distinct edges currently present in the window.
  size_t live_edges() const { return live_edges_; }
  const WindowIngestorParams& params() const { return params_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t count = 0;
    bool used = false;
  };

  // Presence-count table ops (open addressing, sized for W distinct
  // keys at < 1/2 load; entries with count 0 stay as tombstone-free
  // placeholders and are reused on the next touch of the same key).
  Slot* FindSlot(uint64_t key);

  void Emit(const Edge& e, UpdateType type);
  void ExpireOldest();

  WindowIngestorParams params_;
  Sink sink_;
  std::vector<Edge> ring_;  // W slots, circular.
  size_t ring_head_ = 0;    // Next write position.
  size_t ring_count_ = 0;   // Observations currently retained.
  std::vector<Slot> presence_;
  size_t presence_mask_ = 0;
  std::vector<GraphUpdate> emit_;
  uint64_t observations_ = 0;
  size_t live_edges_ = 0;
};

}  // namespace gz

#endif  // GZ_WORKLOADS_WINDOW_INGESTOR_H_
