// k-edge-connectivity over linear sketches: the AGM certification
// workload. ExtractSpanningForests(snap, k) peels k edge-disjoint
// spanning forests; their union C is a k-edge-connectivity CERTIFICATE
// of the streamed graph G — every cut of size <= k survives in C with
// its exact size, so min(λ(G), k) = min(λ(C), k). C has at most
// k·(V-1) edges however dense G was, which makes an EXACT edge-
// connectivity computation on it cheap: λ(C) capped at k is computed
// with max-flow (k-bounded augmenting paths from a fixed source to
// every sink), O(k² · V²) worst case on the sparse certificate.
//
// Because the certificate comes out of a GraphSnapshot fold, the whole
// workload distributes for free: a sharded cluster's merged snapshot
// is bitwise-identical to the single-process snapshot, hence so are
// the forests, the certificate, and the certified answer.
#ifndef GZ_WORKLOADS_K_CONNECTIVITY_H_
#define GZ_WORKLOADS_K_CONNECTIVITY_H_

#include <vector>

#include "algos/spanning_forests.h"
#include "core/graph_snapshot.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct KConnectivityResult {
  int k = 0;  // The certification level asked for.
  ForestDecomposition decomposition;
  EdgeList certificate;  // Union of the forests; <= k·(V-1) edges.
  // min(λ(G), k), exact: 0 = disconnected, k = "at least k-edge-
  // connected" (the certificate cannot distinguish beyond k).
  int certified_connectivity = 0;
  bool is_k_edge_connected = false;  // certified_connectivity >= k.
  // True when a peeling phase ran out of sketch rounds (re-run with a
  // different seed; polynomially unlikely at the provisioned rounds).
  bool sketch_failed = false;
};

// Exact edge connectivity of the graph (num_nodes, edges), capped at
// `cap`: returns min(λ, cap). 0 when any vertex is separated
// (including isolated vertices). Exposed for tests and for certifying
// explicit edge lists; O(cap² · V · avg_degree) via bounded max-flow.
int EdgeConnectivityUpTo(uint64_t num_nodes, const EdgeList& edges, int cap);

// Certifies min(λ(G), k) from a snapshot. InvalidArgument when k < 1
// or the snapshot's rounds cannot budget k peeling phases (the
// ExtractSpanningForests validation); the snapshot itself is untouched.
Result<KConnectivityResult> KEdgeConnectivity(const GraphSnapshot& snapshot,
                                              int k);

// As above, but consumes an already-extracted decomposition (e.g. one
// an example shares with other certificate consumers).
KConnectivityResult CertifyFromForests(uint64_t num_nodes, int k,
                                       ForestDecomposition decomposition);

}  // namespace gz

#endif  // GZ_WORKLOADS_K_CONNECTIVITY_H_
