// Count-min side sketch: the heavy-hitter workload on the same linear
// algebra the connectivity sketches use. A turnstile CM sketch is a
// d x w grid of signed counters; update ((u,v), ±1) adds ±1 to one
// counter per row (a 2-wise-independent hash picks the column), and
// Estimate takes the row-wise minimum. Because the grid is LINEAR in
// the update stream, per-shard sketches built from a partitioned
// stream sum-merge to exactly the single-process sketch — the additive
// counterpart of the XOR snapshot fold, and the reason the distributed
// answer is EXACT (the CM error bound applies to estimates, not to the
// fold).
//
// HeavyHitterSketch pairs two CM grids — edge multiplicities keyed by
// EdgeToIndex, degrees keyed by node id (an insert of (u,v) is +1 on u
// AND +1 on v) — with bounded candidate tables so top-k is answerable:
// a CM grid alone cannot enumerate keys, so every first-touched key is
// admitted to an open-addressing table, and TopEdges/TopDegrees
// re-estimate the candidates against the (merged) grid. Routing
// partitions edges disjointly across shards, so the union of per-shard
// candidate sets equals the single-process set; Serialize() emits
// candidates in sorted key order, which makes the folded sketch's
// bytes IDENTICAL to the single-process sketch's, not merely
// equivalent.
//
// Update cost is O(depth) counter writes per stream update with zero
// allocation, applied on the same flat GraphUpdate spans the batch
// pipeline routes (the side sketch hooks the span at the API boundary:
// post-gutter UpdateBatch slabs carry only unsigned edge indices —
// XOR needs no sign — so the turnstile ±1 must ride the span before
// the sign is erased).
//
// Exemplars: SNIPPETS.md Snippets 1-2 (rlz-store count_min_sketch.hpp,
// SketchConf BaseSketch) — power-of-two row width with mask reduction,
// Mersenne-field row hashes.
#ifndef GZ_WORKLOADS_COUNT_MIN_H_
#define GZ_WORKLOADS_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "stream/stream_types.h"
#include "util/kwise_hash.h"
#include "util/status.h"

namespace gz {

struct CountMinParams {
  uint64_t seed = 42;
  uint32_t width = 1024;  // Counters per row; must be a power of two.
  uint32_t depth = 4;     // Rows (independent hash functions).

  friend bool operator==(const CountMinParams& a, const CountMinParams& b) {
    return a.seed == b.seed && a.width == b.width && a.depth == b.depth;
  }
};

// The bare turnstile CM grid over uint64 keys. Standalone so tests can
// pin its linearity/estimate properties without the candidate layer.
class CountMinSketch {
 public:
  // Hard caps a wire decode enforces (and any sane config respects).
  static constexpr uint32_t kMaxDepth = 16;
  static constexpr uint32_t kMaxWidth = 1u << 26;

  CountMinSketch() = default;  // Invalid until assigned; valid() == false.
  explicit CountMinSketch(const CountMinParams& params);

  bool valid() const { return !counters_.empty(); }
  const CountMinParams& params() const { return params_; }

  // O(depth), no allocation.
  void Add(uint64_t key, int64_t delta);
  // Row-wise minimum: an overestimate of the key's net count whenever
  // every key's net count is non-negative (true for set-semantic edge
  // streams, where a delete only follows a matching insert).
  int64_t Estimate(uint64_t key) const;

  // Counter-wise sum; InvalidArgument unless geometry and seed match.
  Status Merge(const CountMinSketch& other);

  const std::vector<int64_t>& counters() const { return counters_; }
  // Overwrites the grid (deserialization); `count` must equal
  // depth * width.
  Status LoadCounters(const int64_t* values, size_t count);

 private:
  CountMinParams params_;
  std::vector<KWiseHash> rows_;   // depth hashes, 2-wise independent.
  std::vector<int64_t> counters_;  // depth * width, row-major.
};

struct HeavyHitterParams {
  uint64_t num_nodes = 0;  // 0 = invalid/disabled.
  uint64_t seed = 42;
  uint32_t width = 2048;
  uint32_t depth = 4;
  // Candidate-table capacity (keys, not slots) for each of the edge
  // and degree tables. Once exceeded, new keys are dropped and the
  // sketch reports saturated(): estimates stay exact but top-k may
  // miss late-arriving keys.
  uint32_t candidates = 8192;

  friend bool operator==(const HeavyHitterParams& a,
                         const HeavyHitterParams& b) {
    return a.num_nodes == b.num_nodes && a.seed == b.seed &&
           a.width == b.width && a.depth == b.depth &&
           a.candidates == b.candidates;
  }
};

// One ranked answer row; `key` is an EdgeToIndex value for edges, a
// node id for degrees.
struct HeavyHitterEntry {
  uint64_t key = 0;
  int64_t count = 0;

  friend bool operator==(const HeavyHitterEntry& a,
                         const HeavyHitterEntry& b) {
    return a.key == b.key && a.count == b.count;
  }
};

class HeavyHitterSketch {
 public:
  static constexpr uint32_t kMaxCandidates = 1u << 24;

  HeavyHitterSketch() = default;  // Invalid until assigned.
  explicit HeavyHitterSketch(const HeavyHitterParams& params);

  bool valid() const { return params_.num_nodes != 0; }
  const HeavyHitterParams& params() const { return params_; }

  // The span hook: +1 per insert / -1 per delete on the edge grid,
  // ±1 on BOTH endpoints' degree counters. O(depth) writes per update,
  // zero allocation at steady state (candidate tables are sized once).
  void Update(const GraphUpdate* updates, size_t count);
  void Update(const GraphUpdate& update) { Update(&update, 1); }

  // Point estimates against the (possibly merged) grids.
  int64_t EdgeCount(const Edge& e) const;
  int64_t DegreeCount(NodeId node) const;

  // Top-k by estimated count over the candidate set, count descending
  // with key ascending as the tie-break — deterministic, so the folded
  // and single-process sketches rank identically. Allocates (query
  // path, not ingest path).
  std::vector<HeavyHitterEntry> TopEdges(size_t k) const;
  std::vector<HeavyHitterEntry> TopDegrees(size_t k) const;

  // Sum-merges grids and unions candidate sets (the union may exceed
  // `candidates`; merge is a query-/coordinator-path operation and may
  // allocate). InvalidArgument unless params match.
  Status Merge(const HeavyHitterSketch& other);

  // Canonical bytes: params, update count, both grids, candidate keys
  // in sorted order, saturation flags. Same logical content => same
  // bytes, so a coordinator fold of per-shard sketches serializes
  // bitwise-identically to the single-process sketch.
  std::vector<uint8_t> Serialize() const;
  // Fully validated — these bytes cross the wire, so truncation, bad
  // geometry or a garbage count is an InvalidArgument, never UB.
  static Result<HeavyHitterSketch> Deserialize(const uint8_t* data,
                                               size_t size);

  uint64_t updates_applied() const { return updates_; }
  // True when a candidate table overflowed: top-k may then be missing
  // keys first seen after saturation (counts stay exact).
  bool saturated() const { return edge_saturated_ || degree_saturated_; }
  size_t edge_candidates() const { return edge_keys_.size; }
  size_t degree_candidates() const { return degree_keys_.size; }

 private:
  // Fixed-capacity open-addressing key set (tombstone-free: admit-only).
  struct KeySet {
    static constexpr uint64_t kEmpty = ~0ull;
    std::vector<uint64_t> slots;  // Power-of-two size, kEmpty = free.
    size_t size = 0;
    size_t capacity = 0;  // Admission cap (< slots.size()).

    void Reset(size_t cap);
    // True if admitted or already present; false when full and absent.
    bool Admit(uint64_t key);
    std::vector<uint64_t> SortedKeys() const;
  };

  CountMinParams GridParams(uint64_t salt) const;

  HeavyHitterParams params_;
  uint64_t updates_ = 0;
  CountMinSketch edge_grid_;
  CountMinSketch degree_grid_;
  KeySet edge_keys_;
  KeySet degree_keys_;
  bool edge_saturated_ = false;
  bool degree_saturated_ = false;
};

}  // namespace gz

#endif  // GZ_WORKLOADS_COUNT_MIN_H_
