#include "workloads/window_ingestor.h"

#include "util/check.h"

namespace gz {
namespace {

size_t NextPow2(size_t x) {
  size_t n = 16;
  while (n < x) n <<= 1;
  return n;
}

}  // namespace

WindowIngestor::WindowIngestor(const WindowIngestorParams& params, Sink sink)
    : params_(params), sink_(std::move(sink)) {
  GZ_CHECK_MSG(params_.num_nodes >= 2, "need at least two nodes");
  GZ_CHECK_MSG(params_.window >= 1, "window must hold at least one update");
  GZ_CHECK_MSG(params_.emit_span >= 1, "emit span must hold at least one");
  GZ_CHECK_MSG(sink_ != nullptr, "window ingestor needs a sink");
  ring_.resize(params_.window);
  // At most W distinct edges are live; 4x slots keeps probes short.
  presence_.resize(NextPow2(params_.window * 4));
  presence_mask_ = presence_.size() - 1;
  emit_.reserve(params_.emit_span);
}

WindowIngestor::Slot* WindowIngestor::FindSlot(uint64_t key) {
  size_t i = (key * 0x9e3779b97f4a7c15ull) & presence_mask_;
  while (presence_[i].used) {
    if (presence_[i].key == key) return &presence_[i];
    i = (i + 1) & presence_mask_;
  }
  presence_[i].key = key;
  presence_[i].count = 0;
  presence_[i].used = true;
  return &presence_[i];
}

void WindowIngestor::Emit(const Edge& e, UpdateType type) {
  emit_.push_back({e, type});
  if (emit_.size() >= params_.emit_span) Flush();
}

void WindowIngestor::ExpireOldest() {
  const size_t oldest = (ring_head_ + params_.window - ring_count_) %
                        params_.window;
  const Edge e = ring_[oldest];
  --ring_count_;
  Slot* slot = FindSlot(EdgeToIndex(e, params_.num_nodes));
  GZ_CHECK_MSG(slot->count >= 1, "expiring an edge with no presence");
  if (--slot->count == 0) {
    --live_edges_;
    Emit(e, UpdateType::kDelete);
    // Linear-probing deletion (backward shift): the slot must be freed
    // — a long stream touches unboundedly many distinct edges, and
    // dead entries would otherwise fill the fixed table.
    size_t i = static_cast<size_t>(slot - presence_.data());
    size_t j = i;
    while (true) {
      presence_[i].used = false;
      size_t home;
      do {
        j = (j + 1) & presence_mask_;
        if (!presence_[j].used) return;
        home = (presence_[j].key * 0x9e3779b97f4a7c15ull) & presence_mask_;
      } while (i <= j ? (i < home && home <= j) : (i < home || home <= j));
      presence_[i] = presence_[j];
      i = j;
    }
  }
}

void WindowIngestor::Observe(const Edge& e) {
  GZ_CHECK_MSG(e.u < e.v && e.v < params_.num_nodes, "u < v && v < num_nodes");
  if (ring_count_ == params_.window) ExpireOldest();
  Slot* slot = FindSlot(EdgeToIndex(e, params_.num_nodes));
  if (slot->count == 0) {
    ++live_edges_;
    Emit(e, UpdateType::kInsert);
  }
  ++slot->count;
  ring_[ring_head_] = e;
  ring_head_ = (ring_head_ + 1) % params_.window;
  ++ring_count_;
  ++observations_;
}

void WindowIngestor::Observe(const Edge* edges, size_t count) {
  for (size_t i = 0; i < count; ++i) Observe(edges[i]);
}

void WindowIngestor::Flush() {
  if (emit_.empty()) return;
  sink_(emit_.data(), emit_.size());
  emit_.clear();  // Keeps capacity: no realloc on refill.
}

void WindowIngestor::ExpireAll() {
  while (ring_count_ > 0) ExpireOldest();
  Flush();
}

}  // namespace gz
