#include "workloads/k_connectivity.h"

#include <algorithm>

#include "dsu/dsu.h"
#include "util/check.h"

namespace gz {
namespace {

// Unit-capacity max-flow from s to t, stopping once `cap` augmenting
// paths are found (we only ever need min(flow, cap)). Adjacency is a
// flat CSR over directed twin edges; residual state is one byte per
// directed edge, reset per (s, t) pair.
struct FlowGraph {
  uint64_t n;
  std::vector<uint32_t> head;   // CSR offsets, n + 1.
  std::vector<uint32_t> to;     // Directed edge target.
  std::vector<uint32_t> twin;   // Index of the reverse edge.
  std::vector<uint8_t> open;    // 1 = residual capacity available.
  std::vector<int32_t> parent_edge;  // BFS tree, per node.

  explicit FlowGraph(uint64_t num_nodes, const EdgeList& edges)
      : n(num_nodes) {
    std::vector<uint32_t> degree(n, 0);
    for (const Edge& e : edges) {
      ++degree[e.u];
      ++degree[e.v];
    }
    head.assign(n + 1, 0);
    for (uint64_t i = 0; i < n; ++i) head[i + 1] = head[i] + degree[i];
    const size_t m = head[n];
    to.resize(m);
    twin.resize(m);
    std::vector<uint32_t> cursor(head.begin(), head.end() - 1);
    for (const Edge& e : edges) {
      const uint32_t a = cursor[e.u]++;
      const uint32_t b = cursor[e.v]++;
      to[a] = e.v;
      to[b] = e.u;
      twin[a] = b;
      twin[b] = a;
    }
    open.resize(m);
    parent_edge.resize(n);
  }

  // min(maxflow(s, t), cap) — each augmenting path is one BFS.
  int BoundedFlow(uint32_t s, uint32_t t, int cap) {
    std::fill(open.begin(), open.end(), 1);
    int flow = 0;
    std::vector<uint32_t> queue;
    queue.reserve(n);
    while (flow < cap) {
      std::fill(parent_edge.begin(), parent_edge.end(), -1);
      queue.clear();
      queue.push_back(s);
      parent_edge[s] = -2;
      bool reached = false;
      for (size_t qi = 0; qi < queue.size() && !reached; ++qi) {
        const uint32_t u = queue[qi];
        for (uint32_t e = head[u]; e < head[u + 1]; ++e) {
          if (!open[e] || parent_edge[to[e]] != -1) continue;
          parent_edge[to[e]] = static_cast<int32_t>(e);
          if (to[e] == t) {
            reached = true;
            break;
          }
          queue.push_back(to[e]);
        }
      }
      if (!reached) break;
      // Walk the path back, flipping residuals.
      uint32_t v = t;
      while (v != s) {
        const uint32_t e = static_cast<uint32_t>(parent_edge[v]);
        open[e] = 0;
        open[twin[e]] = 1;
        v = to[twin[e]];
      }
      ++flow;
    }
    return flow;
  }
};

}  // namespace

int EdgeConnectivityUpTo(uint64_t num_nodes, const EdgeList& edges, int cap) {
  GZ_CHECK(cap >= 1);
  if (num_nodes < 2) return cap;  // No cut exists in a 0/1-vertex graph.
  // Connectivity gate (covers isolated vertices, which max-flow from a
  // fixed source would miss only if the source's side were checked).
  Dsu dsu(num_nodes);
  for (const Edge& e : edges) dsu.Union(e.u, e.v);
  if (dsu.num_sets() > 1) return 0;

  // λ(G) = min over t != s of maxflow(s, t) for any fixed s: the
  // global min cut separates s from SOME vertex. Each flow is capped
  // at `cap` — beyond that the answer is "at least cap" either way.
  FlowGraph fg(num_nodes, edges);
  int best = cap;
  for (uint32_t t = 1; t < num_nodes && best > 0; ++t) {
    best = std::min(best, fg.BoundedFlow(0, t, best));
  }
  return best;
}

KConnectivityResult CertifyFromForests(uint64_t num_nodes, int k,
                                       ForestDecomposition decomposition) {
  KConnectivityResult result;
  result.k = k;
  result.sketch_failed = decomposition.failed;
  result.certificate = decomposition.CertificateEdges();
  result.decomposition = std::move(decomposition);
  if (!result.sketch_failed) {
    result.certified_connectivity =
        EdgeConnectivityUpTo(num_nodes, result.certificate, k);
    result.is_k_edge_connected = result.certified_connectivity >= k;
  }
  return result;
}

Result<KConnectivityResult> KEdgeConnectivity(const GraphSnapshot& snapshot,
                                              int k) {
  const uint64_t num_nodes = snapshot.params().num_nodes;
  Result<ForestDecomposition> forests = ExtractSpanningForests(snapshot, k);
  if (!forests.ok()) return forests.status();
  return CertifyFromForests(num_nodes, k, std::move(forests).value());
}

}  // namespace gz
