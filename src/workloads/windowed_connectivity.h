// WindowedConnectivity: the sliding-window workload as one assembled
// surface — a WindowIngestor feeding a private GraphZeppelin, plus a
// StandingQueryRegistry over the windowed instance's snapshots. The
// downstream instance always holds exactly the windowed graph (the
// ingestor's expiry deletes ARE the decay), so every query here is a
// last-W-observations query by construction:
//
//   WindowedConnectivity wc(params);
//   wc.Init();
//   wc.standing_queries().Add({StandingQueryKind::kConnected, u, v});
//   for (const Edge& e : stream) {
//     wc.Observe(e);
//     if (due) wc.EvaluateStandingQueries(1, notifier);  // windowed!
//   }
//
// Notifications carry the evaluated snapshot, so a subscriber can
// verify the windowed answer against a fresh fold of a fresh windowed
// instance driven to the same observation position (the chaos test
// does exactly this). Single-driver, like the registries it composes.
#ifndef GZ_WORKLOADS_WINDOWED_CONNECTIVITY_H_
#define GZ_WORKLOADS_WINDOWED_CONNECTIVITY_H_

#include <memory>

#include "core/graph_zeppelin.h"
#include "core/standing_query.h"
#include "workloads/window_ingestor.h"

namespace gz {

struct WindowedConnectivityParams {
  // Config of the private downstream instance; num_nodes must match
  // `window.num_nodes` (checked in the constructor).
  GraphZeppelinConfig config;
  WindowIngestorParams window;
};

class WindowedConnectivity {
 public:
  explicit WindowedConnectivity(const WindowedConnectivityParams& params);

  Status Init();

  // One stream observation (see WindowIngestor::Observe).
  void Observe(const Edge& e);
  void Observe(const Edge* edges, size_t count);

  // Flushes the window layer AND the instance, then captures the
  // windowed graph's snapshot — bitwise what a fresh instance fed the
  // same last-W observations would capture.
  GraphSnapshot Snapshot();
  ConnectivityResult Connectivity();

  // Watchable window queries: registered specs are evaluated against
  // the CURRENT window whenever the caller invokes
  // EvaluateStandingQueries — answers change both when edges arrive
  // and when they expire out of the window.
  StandingQueryRegistry& standing_queries() { return registry_; }
  Result<size_t> EvaluateStandingQueries(
      int threads, const StandingQueryNotifier& notifier);

  WindowIngestor& window() { return *window_; }
  GraphZeppelin& instance() { return *gz_; }

 private:
  WindowedConnectivityParams params_;
  std::unique_ptr<GraphZeppelin> gz_;
  std::unique_ptr<WindowIngestor> window_;
  StandingQueryRegistry registry_;
};

}  // namespace gz

#endif  // GZ_WORKLOADS_WINDOWED_CONNECTIVITY_H_
