#include "workloads/count_min.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace gz {
namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Little-endian append/read helpers for the canonical byte form.
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool U32(uint32_t* v) {
    if (size - pos < 4) return false;
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<uint32_t>(data[pos + i])
                                     << (8 * i);
    pos += 4;
    *v = x;
    return true;
  }
  bool U64(uint64_t* v) {
    if (size - pos < 8) return false;
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<uint64_t>(data[pos + i])
                                     << (8 * i);
    pos += 8;
    *v = x;
    return true;
  }
};

constexpr uint32_t kHeavyHitterMagic = 0x48485A47;  // "GZHH" little-endian.
constexpr uint32_t kHeavyHitterVersion = 1;

}  // namespace

// ---- CountMinSketch --------------------------------------------------------

CountMinSketch::CountMinSketch(const CountMinParams& params)
    : params_(params) {
  GZ_CHECK_MSG(IsPowerOfTwo(params_.width) && params_.width <= kMaxWidth,
               "CM width must be a power of two");
  GZ_CHECK_MSG(params_.depth >= 1 && params_.depth <= kMaxDepth,
               "CM depth out of range");
  rows_.reserve(params_.depth);
  for (uint32_t d = 0; d < params_.depth; ++d) {
    // Per-row seeds derived deterministically, so same-params sketches
    // hash identically (the precondition of exact merging).
    rows_.emplace_back(params_.seed * 0x9e3779b97f4a7c15ull + d + 1, 2);
  }
  counters_.assign(static_cast<size_t>(params_.depth) * params_.width, 0);
}

void CountMinSketch::Add(uint64_t key, int64_t delta) {
  GZ_CHECK_MSG(valid(), "Add on an invalid CountMinSketch");
  const uint32_t mask = params_.width - 1;
  for (uint32_t d = 0; d < params_.depth; ++d) {
    const size_t col = static_cast<size_t>(rows_[d].Hash(key)) & mask;
    counters_[static_cast<size_t>(d) * params_.width + col] += delta;
  }
}

int64_t CountMinSketch::Estimate(uint64_t key) const {
  GZ_CHECK_MSG(valid(), "Estimate on an invalid CountMinSketch");
  const uint32_t mask = params_.width - 1;
  int64_t best = INT64_MAX;
  for (uint32_t d = 0; d < params_.depth; ++d) {
    const size_t col = static_cast<size_t>(rows_[d].Hash(key)) & mask;
    best = std::min(best,
                    counters_[static_cast<size_t>(d) * params_.width + col]);
  }
  return best;
}

Status CountMinSketch::LoadCounters(const int64_t* values, size_t count) {
  if (!valid() || count != counters_.size()) {
    return Status::InvalidArgument("counter grid size mismatch");
  }
  std::memcpy(counters_.data(), values, count * sizeof(int64_t));
  return Status::Ok();
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (!valid() || !other.valid() || !(params_ == other.params_)) {
    return Status::InvalidArgument(
        "count-min merge requires matching geometry and seed");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  return Status::Ok();
}

// ---- HeavyHitterSketch::KeySet ---------------------------------------------

void HeavyHitterSketch::KeySet::Reset(size_t cap) {
  capacity = cap;
  // Slot count: power of two >= 2 * capacity, so the load factor stays
  // below 1/2 and probe chains stay short.
  size_t n = 16;
  while (n < cap * 2) n <<= 1;
  slots.assign(n, kEmpty);
  size = 0;
}

bool HeavyHitterSketch::KeySet::Admit(uint64_t key) {
  GZ_CHECK_MSG(key != kEmpty, "key collides with the empty sentinel");
  const size_t mask = slots.size() - 1;
  // Fibonacci scramble: keys are structured (small ints, triangular
  // indices), the probe sequence must not be.
  size_t i = (key * 0x9e3779b97f4a7c15ull) & mask;
  while (slots[i] != kEmpty) {
    if (slots[i] == key) return true;
    i = (i + 1) & mask;
  }
  if (size >= capacity) return false;
  slots[i] = key;
  ++size;
  return true;
}

std::vector<uint64_t> HeavyHitterSketch::KeySet::SortedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(size);
  for (const uint64_t slot : slots) {
    if (slot != kEmpty) keys.push_back(slot);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---- HeavyHitterSketch -----------------------------------------------------

CountMinParams HeavyHitterSketch::GridParams(uint64_t salt) const {
  CountMinParams p;
  p.seed = params_.seed ^ salt;
  p.width = params_.width;
  p.depth = params_.depth;
  return p;
}

HeavyHitterSketch::HeavyHitterSketch(const HeavyHitterParams& params)
    : params_(params) {
  GZ_CHECK_MSG(params_.num_nodes >= 2, "need at least two nodes");
  GZ_CHECK_MSG(params_.candidates >= 1 &&
                   params_.candidates <= kMaxCandidates,
               "candidate capacity out of range");
  edge_grid_ = CountMinSketch(GridParams(0x65646765));    // "edge"
  degree_grid_ = CountMinSketch(GridParams(0x64656772));  // "degr"
  edge_keys_.Reset(params_.candidates);
  degree_keys_.Reset(params_.candidates);
}

void HeavyHitterSketch::Update(const GraphUpdate* updates, size_t count) {
  GZ_CHECK_MSG(valid(), "Update on an invalid HeavyHitterSketch");
  for (size_t i = 0; i < count; ++i) {
    const GraphUpdate& u = updates[i];
    const int64_t delta = u.type == UpdateType::kInsert ? 1 : -1;
    const uint64_t edge_key = EdgeToIndex(u.edge, params_.num_nodes);
    edge_grid_.Add(edge_key, delta);
    degree_grid_.Add(u.edge.u, delta);
    degree_grid_.Add(u.edge.v, delta);
    if (!edge_keys_.Admit(edge_key)) edge_saturated_ = true;
    if (!degree_keys_.Admit(u.edge.u)) degree_saturated_ = true;
    if (!degree_keys_.Admit(u.edge.v)) degree_saturated_ = true;
    ++updates_;
  }
}

int64_t HeavyHitterSketch::EdgeCount(const Edge& e) const {
  GZ_CHECK_MSG(valid(), "query on an invalid HeavyHitterSketch");
  return edge_grid_.Estimate(EdgeToIndex(e, params_.num_nodes));
}

int64_t HeavyHitterSketch::DegreeCount(NodeId node) const {
  GZ_CHECK_MSG(valid(), "query on an invalid HeavyHitterSketch");
  return degree_grid_.Estimate(node);
}

namespace {

std::vector<HeavyHitterEntry> RankTop(const std::vector<uint64_t>& keys,
                                      const CountMinSketch& grid, size_t k) {
  std::vector<HeavyHitterEntry> entries;
  entries.reserve(keys.size());
  for (const uint64_t key : keys) {
    entries.push_back({key, grid.Estimate(key)});
  }
  // Count descending, key ascending: a total order, so ranking is
  // deterministic across merge orders and shard layouts.
  const auto before = [](const HeavyHitterEntry& a,
                         const HeavyHitterEntry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  };
  if (entries.size() > k) {
    std::partial_sort(entries.begin(), entries.begin() + k, entries.end(),
                      before);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), before);
  }
  return entries;
}

}  // namespace

std::vector<HeavyHitterEntry> HeavyHitterSketch::TopEdges(size_t k) const {
  GZ_CHECK_MSG(valid(), "query on an invalid HeavyHitterSketch");
  return RankTop(edge_keys_.SortedKeys(), edge_grid_, k);
}

std::vector<HeavyHitterEntry> HeavyHitterSketch::TopDegrees(size_t k) const {
  GZ_CHECK_MSG(valid(), "query on an invalid HeavyHitterSketch");
  return RankTop(degree_keys_.SortedKeys(), degree_grid_, k);
}

Status HeavyHitterSketch::Merge(const HeavyHitterSketch& other) {
  if (!valid() || !other.valid() || !(params_ == other.params_)) {
    return Status::InvalidArgument(
        "heavy-hitter merge requires matching params");
  }
  Status s = edge_grid_.Merge(other.edge_grid_);
  if (!s.ok()) return s;
  s = degree_grid_.Merge(other.degree_grid_);
  if (!s.ok()) return s;
  // Candidate union. The merged set may exceed the admission cap —
  // grow it rather than dropping keys, so a coordinator fold never
  // loses a candidate either shard held (this runs on the query path,
  // where allocation is fine).
  auto fold_keys = [](KeySet* into, const KeySet& from) {
    const std::vector<uint64_t> keys = from.SortedKeys();
    if (into->size + keys.size() > into->capacity) {
      KeySet grown;
      grown.Reset(into->size + keys.size());
      for (const uint64_t key : into->SortedKeys()) grown.Admit(key);
      *into = std::move(grown);
    }
    for (const uint64_t key : keys) into->Admit(key);
  };
  fold_keys(&edge_keys_, other.edge_keys_);
  fold_keys(&degree_keys_, other.degree_keys_);
  edge_saturated_ = edge_saturated_ || other.edge_saturated_;
  degree_saturated_ = degree_saturated_ || other.degree_saturated_;
  updates_ += other.updates_;
  return Status::Ok();
}

std::vector<uint8_t> HeavyHitterSketch::Serialize() const {
  GZ_CHECK_MSG(valid(), "Serialize on an invalid HeavyHitterSketch");
  std::vector<uint8_t> out;
  const std::vector<uint64_t> edge_keys = edge_keys_.SortedKeys();
  const std::vector<uint64_t> degree_keys = degree_keys_.SortedKeys();
  out.reserve(64 + 8 * (edge_grid_.counters().size() +
                        degree_grid_.counters().size() + edge_keys.size() +
                        degree_keys.size()));
  PutU32(&out, kHeavyHitterMagic);
  PutU32(&out, kHeavyHitterVersion);
  PutU64(&out, params_.num_nodes);
  PutU64(&out, params_.seed);
  PutU32(&out, params_.width);
  PutU32(&out, params_.depth);
  PutU32(&out, params_.candidates);
  PutU32(&out, (edge_saturated_ ? 1u : 0u) | (degree_saturated_ ? 2u : 0u));
  PutU64(&out, updates_);
  for (const int64_t c : edge_grid_.counters()) {
    PutU64(&out, static_cast<uint64_t>(c));
  }
  for (const int64_t c : degree_grid_.counters()) {
    PutU64(&out, static_cast<uint64_t>(c));
  }
  // Candidates in sorted key order: the canonical form that makes a
  // coordinator fold byte-identical to the single-process sketch.
  PutU64(&out, edge_keys.size());
  for (const uint64_t key : edge_keys) PutU64(&out, key);
  PutU64(&out, degree_keys.size());
  for (const uint64_t key : degree_keys) PutU64(&out, key);
  return out;
}

Result<HeavyHitterSketch> HeavyHitterSketch::Deserialize(const uint8_t* data,
                                                         size_t size) {
  ByteReader r{data, size};
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || !r.U32(&version) || magic != kHeavyHitterMagic ||
      version != kHeavyHitterVersion) {
    return Status::InvalidArgument("bad heavy-hitter sketch header");
  }
  HeavyHitterParams p;
  uint32_t flags = 0;
  uint64_t updates = 0;
  if (!r.U64(&p.num_nodes) || !r.U64(&p.seed) || !r.U32(&p.width) ||
      !r.U32(&p.depth) || !r.U32(&p.candidates) || !r.U32(&flags) ||
      !r.U64(&updates)) {
    return Status::InvalidArgument("truncated heavy-hitter sketch header");
  }
  if (p.num_nodes < 2 || !IsPowerOfTwo(p.width) ||
      p.width > CountMinSketch::kMaxWidth || p.depth < 1 ||
      p.depth > CountMinSketch::kMaxDepth || p.candidates < 1 ||
      p.candidates > kMaxCandidates || flags > 3) {
    return Status::InvalidArgument("heavy-hitter sketch params out of range");
  }
  HeavyHitterSketch sketch(p);
  sketch.updates_ = updates;
  sketch.edge_saturated_ = (flags & 1) != 0;
  sketch.degree_saturated_ = (flags & 2) != 0;
  const size_t cells = static_cast<size_t>(p.depth) * p.width;
  // Bound the allocation by the actual payload before trusting the
  // header's geometry (these bytes come off the wire).
  if (size - r.pos < 2 * cells * sizeof(int64_t)) {
    return Status::InvalidArgument("truncated heavy-hitter counters");
  }
  std::vector<int64_t> grid_buf(cells);
  auto read_grid = [&r, &grid_buf, cells](CountMinSketch* grid) {
    for (size_t i = 0; i < cells; ++i) {
      uint64_t v = 0;
      if (!r.U64(&v)) return false;
      grid_buf[i] = static_cast<int64_t>(v);
    }
    return grid->LoadCounters(grid_buf.data(), cells).ok();
  };
  if (!read_grid(&sketch.edge_grid_) || !read_grid(&sketch.degree_grid_)) {
    return Status::InvalidArgument("truncated heavy-hitter counters");
  }
  const uint64_t max_edge_key = NumPossibleEdges(p.num_nodes);
  auto read_keys = [&r](KeySet* set, uint64_t key_limit) {
    uint64_t count = 0;
    if (!r.U64(&count) || count > kMaxCandidates) return false;
    if (count > set->capacity) set->Reset(count);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t key = 0;
      if (!r.U64(&key) || key >= key_limit) return false;
      if (i > 0 && key <= prev) return false;  // Canonical = sorted+unique.
      prev = key;
      if (!set->Admit(key)) return false;
    }
    return true;
  };
  if (!read_keys(&sketch.edge_keys_, max_edge_key) ||
      !read_keys(&sketch.degree_keys_, p.num_nodes)) {
    return Status::InvalidArgument("bad heavy-hitter candidate list");
  }
  if (r.pos != size) {
    return Status::InvalidArgument("trailing bytes after heavy-hitter sketch");
  }
  return sketch;
}

}  // namespace gz
