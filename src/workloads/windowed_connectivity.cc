#include "workloads/windowed_connectivity.h"

#include "core/connectivity.h"
#include "util/check.h"

namespace gz {

WindowedConnectivity::WindowedConnectivity(
    const WindowedConnectivityParams& params)
    : params_(params) {
  GZ_CHECK_MSG(params_.config.num_nodes == params_.window.num_nodes,
               "window and instance must agree on num_nodes");
  gz_ = std::make_unique<GraphZeppelin>(params_.config);
  window_ = std::make_unique<WindowIngestor>(
      params_.window, [this](const GraphUpdate* updates, size_t count) {
        gz_->Update(updates, count);
      });
}

Status WindowedConnectivity::Init() { return gz_->Init(); }

void WindowedConnectivity::Observe(const Edge& e) { window_->Observe(e); }

void WindowedConnectivity::Observe(const Edge* edges, size_t count) {
  window_->Observe(edges, count);
}

GraphSnapshot WindowedConnectivity::Snapshot() {
  window_->Flush();
  return gz_->Snapshot();  // Snapshot() flushes the instance itself.
}

ConnectivityResult WindowedConnectivity::Connectivity() {
  return gz::Connectivity(Snapshot(), params_.config.query_threads);
}

Result<size_t> WindowedConnectivity::EvaluateStandingQueries(
    int threads, const StandingQueryNotifier& notifier) {
  // Epoch 0: a single-instance window has no routing epochs; the
  // notification position is the instance's update count.
  return registry_.Evaluate(Snapshot(), 0, threads, notifier);
}

}  // namespace gz
