#include "buffer/guttering_system.h"

namespace gz {

void GutteringSystem::InsertBatch(const GraphUpdate* updates, size_t count) {
  const uint64_t n = num_nodes();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t idx = EdgeToIndex(updates[i].edge, n);
    Insert(updates[i].edge.u, idx);
    Insert(updates[i].edge.v, idx);
  }
}

}  // namespace gz
