// Leaf-only gutters (paper Section 5.1): one RAM buffer per graph node
// — or per *node group* (Section 4.1: groups of cardinality
// max{1, B/log^3 V} so that a group's sketches fill a disk block) —
// flushed to the work queue whenever it fills. By default each gutter
// holds updates totalling a configurable fraction f of a node sketch's
// size (the paper's knob in Figure 15).
#ifndef GZ_BUFFER_LEAF_GUTTERS_H_
#define GZ_BUFFER_LEAF_GUTTERS_H_

#include <cstdint>
#include <vector>

#include "buffer/guttering_system.h"
#include "buffer/work_queue.h"

namespace gz {

struct LeafGuttersParams {
  uint64_t num_nodes = 0;
  // Capacity of each gutter, in updates. Typical value:
  // f * node_sketch_bytes / sizeof(uint64_t) with f = 1/2.
  size_t gutter_capacity = 256;
  // Nodes sharing one gutter (paper: max{1, B / log^3 V}). With
  // groups > 1, a full gutter emits one batch per node present.
  uint64_t nodes_per_group = 1;
};

class LeafGutters : public GutteringSystem {
 public:
  LeafGutters(const LeafGuttersParams& params, WorkQueue* queue);

  void Insert(NodeId node, uint64_t edge_index) override;
  void ForceFlush() override;
  size_t RamByteSize() const override;
  size_t DiskByteSize() const override { return 0; }

  uint64_t num_groups() const {
    return params_.nodes_per_group == 1 ? solo_gutters_.size()
                                        : group_gutters_.size();
  }

 private:
  struct Record {
    NodeId node;
    uint64_t edge_index;
  };

  uint64_t GroupOf(NodeId node) const {
    return node / params_.nodes_per_group;
  }
  void FlushGroup(uint64_t group);

  LeafGuttersParams params_;
  WorkQueue* queue_;  // Not owned.
  // Exactly one of these is populated. Solo gutters (the common case)
  // store bare indices — 8 B per buffered update, the paper's
  // accounting — while grouped gutters need the destination node.
  std::vector<std::vector<uint64_t>> solo_gutters_;
  std::vector<std::vector<Record>> group_gutters_;
};

}  // namespace gz

#endif  // GZ_BUFFER_LEAF_GUTTERS_H_
