// Leaf-only gutters (paper Section 5.1): one RAM buffer per graph node
// — or per *node group* (Section 4.1: groups of cardinality
// max{1, B/log^3 V} so that a group's sketches fill a disk block) —
// flushed to the work queue whenever it fills. By default each gutter
// holds updates totalling a configurable fraction f of a node sketch's
// size (the paper's knob in Figure 15).
//
// Solo gutters (the common case) ARE pooled UpdateBatch slabs: a gutter
// fills in place and is handed to the work queue as-is, so the hot path
// performs no copies and — once the pool is warm — no allocations.
#ifndef GZ_BUFFER_LEAF_GUTTERS_H_
#define GZ_BUFFER_LEAF_GUTTERS_H_

#include <cstdint>
#include <vector>

#include "buffer/guttering_system.h"
#include "buffer/update_batch.h"
#include "buffer/work_queue.h"

namespace gz {

struct LeafGuttersParams {
  uint64_t num_nodes = 0;
  // Capacity of each gutter, in updates. Typical value:
  // f * node_sketch_bytes / sizeof(uint64_t) with f = 1/2. Clamped to
  // the pool's slab capacity.
  size_t gutter_capacity = 256;
  // Nodes sharing one gutter (paper: max{1, B / log^3 V}). With
  // groups > 1, a full gutter emits one batch per node present.
  uint64_t nodes_per_group = 1;
};

class LeafGutters : public GutteringSystem {
 public:
  // `pool` supplies the batch slabs; emitted batches are released back
  // to it by the consumer. Both pointers must outlive the gutters.
  LeafGutters(const LeafGuttersParams& params, BatchPool* pool,
              WorkQueue* queue);
  ~LeafGutters() override;
  LeafGutters(const LeafGutters&) = delete;
  LeafGutters& operator=(const LeafGutters&) = delete;

  void Insert(NodeId node, uint64_t edge_index) override;
  void InsertBatch(const GraphUpdate* updates, size_t count) override;
  void ForceFlush() override;
  uint64_t num_nodes() const override { return params_.num_nodes; }
  size_t RamByteSize() const override;
  size_t DiskByteSize() const override { return 0; }

  uint64_t num_groups() const {
    return params_.nodes_per_group == 1 ? solo_gutters_.size()
                                        : group_gutters_.size();
  }

 private:
  struct Record {
    NodeId node;
    uint64_t edge_index;
  };

  uint64_t GroupOf(NodeId node) const {
    return node / params_.nodes_per_group;
  }
  void InsertSolo(NodeId node, uint64_t edge_index);
  void InsertGrouped(NodeId node, uint64_t edge_index);
  void FlushGroup(uint64_t group);
  // Hands a filled slab to the queue; if the queue is closed, the slab
  // goes back to the pool so nothing leaks.
  void PushOrRecycle(UpdateBatch* batch);

  LeafGuttersParams params_;
  size_t capacity_;    // Effective per-gutter flush threshold.
  BatchPool* pool_;    // Not owned.
  WorkQueue* queue_;   // Not owned.
  // Exactly one of these is populated. Solo gutters hold a lazily
  // acquired slab per node (nullptr when empty); grouped gutters need
  // the destination node per record, so they buffer (node, index)
  // records and split into slabs at flush time.
  std::vector<UpdateBatch*> solo_gutters_;
  std::vector<std::vector<Record>> group_gutters_;
};

}  // namespace gz

#endif  // GZ_BUFFER_LEAF_GUTTERS_H_
