#include "buffer/update_batch.h"

#include <mutex>
#include <new>

#include "util/check.h"

namespace gz {

BatchPool::BatchPool(uint32_t slab_capacity)
    : slab_capacity_(slab_capacity) {
  GZ_CHECK(slab_capacity >= 1);
}

BatchPool::~BatchPool() {
  // Slabs are owned by the pool for their whole life; by destruction
  // time every pipeline stage referencing them must be gone.
  for (void* slab : all_slabs_) ::operator delete(slab);
}

UpdateBatch* BatchPool::Acquire() {
  UpdateBatch* batch = nullptr;
  {
    std::lock_guard<Spinlock> guard(lock_);
    if (free_head_ != nullptr) {
      batch = free_head_;
      free_head_ = batch->pool_next;
    }
  }
  if (batch == nullptr) {
    // Grow: rare (pool warm-up or a deeper-than-ever pipeline). The
    // allocation happens outside the spinlock so concurrent
    // acquire/release traffic never busy-waits on the allocator, and a
    // bad_alloc cannot leave the lock held.
    void* raw = ::operator new(slab_bytes());
    batch = new (raw) UpdateBatch();
    batch->capacity = slab_capacity_;
    std::lock_guard<Spinlock> guard(lock_);
    all_slabs_.push_back(raw);
  }
  batch->node = 0;
  batch->count = 0;
  batch->pool_next = nullptr;
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  return batch;
}

void BatchPool::Release(UpdateBatch* batch) {
  GZ_CHECK(batch != nullptr);
  batch->count = 0;
  {
    std::lock_guard<Spinlock> guard(lock_);
    batch->pool_next = free_head_;
    free_head_ = batch;
  }
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
}

uint64_t BatchPool::slabs_allocated() const {
  std::lock_guard<Spinlock> guard(lock_);
  return all_slabs_.size();
}

size_t BatchPool::RamByteSize() const {
  size_t slabs, vec_cap;
  {
    std::lock_guard<Spinlock> guard(lock_);
    slabs = all_slabs_.size();
    vec_cap = all_slabs_.capacity();
  }
  return sizeof(*this) + slabs * slab_bytes() + vec_cap * sizeof(void*);
}

}  // namespace gz
