// Bounded MPMC work queue (paper Section 5.1): the buffering system
// produces per-node batches of sketch updates; Graph Workers consume
// them. Capacity is kept moderate (8 batches per worker in the paper)
// so neither side waits long while memory stays bounded.
#ifndef GZ_BUFFER_WORK_QUEUE_H_
#define GZ_BUFFER_WORK_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "stream/stream_types.h"

namespace gz {

// A batch of edge-index updates all destined for the same graph node.
struct NodeBatch {
  NodeId node = 0;
  std::vector<uint64_t> edge_indices;
};

class WorkQueue {
 public:
  explicit WorkQueue(size_t capacity);

  // Blocks while the queue is full. Returns false if the queue was
  // closed (the batch is dropped in that case).
  bool Push(NodeBatch batch);

  // Blocks while the queue is empty. Returns false once the queue is
  // closed *and* drained.
  bool Pop(NodeBatch* out);

  // After Close(), pushes fail and pops drain the remaining batches.
  void Close();

  // Re-opens a closed, drained queue for another ingestion phase.
  void Reopen();

  size_t ApproxSize();

  // In-flight accounting: Push() increments; consumers call MarkDone()
  // after fully processing a popped batch. InFlight() therefore counts
  // batches that are queued or currently being applied, which is what a
  // drain barrier needs to wait on.
  void MarkDone() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
  int64_t InFlight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int64_t> in_flight_{0};
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<NodeBatch> queue_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace gz

#endif  // GZ_BUFFER_WORK_QUEUE_H_
