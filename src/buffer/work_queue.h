// Bounded MPMC work queue (paper Section 5.1): the buffering system
// produces per-node batches of sketch updates; Graph Workers consume
// them. Capacity is kept moderate (8 batches per worker in the paper)
// so neither side waits long while memory stays bounded.
//
// The queue is a fixed ring of UpdateBatch pointers: Push/Pop move one
// pointer each, so transit through the queue performs no heap
// allocation and no payload copies. Batch slabs themselves are owned by
// a BatchPool; the consumer releases a popped batch back to the pool
// once it has been applied.
#ifndef GZ_BUFFER_WORK_QUEUE_H_
#define GZ_BUFFER_WORK_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "buffer/update_batch.h"

namespace gz {

class WorkQueue {
 public:
  explicit WorkQueue(size_t capacity);

  // Blocks while the queue is full. Returns false if the queue was
  // closed; ownership of the batch then stays with the caller (who
  // should release it back to its pool). On success the queue owns the
  // batch until a consumer pops it. InFlight() is incremented only when
  // the push succeeds, so a rejected push can never strand the drain
  // barrier.
  bool Push(UpdateBatch* batch);

  // Blocks while the queue is empty. Returns the next batch, or nullptr
  // once the queue is closed *and* drained.
  UpdateBatch* Pop();

  // After Close(), pushes fail and pops drain the remaining batches.
  void Close();

  // Re-opens a closed, drained queue for another ingestion phase.
  void Reopen();

  size_t ApproxSize();

  // In-flight accounting: a successful Push() increments; consumers
  // call MarkDone() after fully processing a popped batch. InFlight()
  // therefore counts batches that are queued or currently being
  // applied, which is what a drain barrier needs to wait on.
  void MarkDone() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
  int64_t InFlight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int64_t> in_flight_{0};
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<UpdateBatch*> ring_;  // Fixed capacity, allocated once.
  size_t head_ = 0;                 // Index of the next batch to pop.
  size_t size_ = 0;                 // Batches currently queued.
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace gz

#endif  // GZ_BUFFER_WORK_QUEUE_H_
