#include "buffer/leaf_gutters.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gz {

LeafGutters::LeafGutters(const LeafGuttersParams& params, WorkQueue* queue)
    : params_(params), queue_(queue) {
  GZ_CHECK(params_.num_nodes >= 1);
  GZ_CHECK(params_.gutter_capacity >= 1);
  GZ_CHECK(params_.nodes_per_group >= 1);
  GZ_CHECK(queue_ != nullptr);
  const uint64_t groups =
      (params_.num_nodes + params_.nodes_per_group - 1) /
      params_.nodes_per_group;
  if (params_.nodes_per_group == 1) {
    // Solo gutters: the node is implied, store bare 8-byte indices
    // (this is the paper's per-update byte accounting for f).
    solo_gutters_.resize(groups);
  } else {
    group_gutters_.resize(groups);
  }
}

void LeafGutters::Insert(NodeId node, uint64_t edge_index) {
  GZ_CHECK(node < params_.num_nodes);
  if (params_.nodes_per_group == 1) {
    std::vector<uint64_t>& gutter = solo_gutters_[node];
    if (gutter.capacity() == 0) gutter.reserve(params_.gutter_capacity);
    gutter.push_back(edge_index);
    if (gutter.size() >= params_.gutter_capacity) FlushGroup(node);
    return;
  }
  std::vector<Record>& gutter = group_gutters_[GroupOf(node)];
  if (gutter.capacity() == 0) gutter.reserve(params_.gutter_capacity);
  gutter.push_back(Record{node, edge_index});
  if (gutter.size() >= params_.gutter_capacity) FlushGroup(GroupOf(node));
}

void LeafGutters::FlushGroup(uint64_t group) {
  if (params_.nodes_per_group == 1) {
    NodeBatch batch;
    batch.node = static_cast<NodeId>(group);
    batch.edge_indices.swap(solo_gutters_[group]);
    queue_->Push(std::move(batch));
    return;
  }
  std::vector<Record> records;
  records.swap(group_gutters_[group]);
  // Grouped mode: one batch per node present, in node order (stable
  // sort keeps per-node update order intact).
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.node < b.node;
                   });
  size_t i = 0;
  while (i < records.size()) {
    NodeBatch batch;
    batch.node = records[i].node;
    size_t j = i;
    while (j < records.size() && records[j].node == batch.node) {
      batch.edge_indices.push_back(records[j].edge_index);
      ++j;
    }
    queue_->Push(std::move(batch));
    i = j;
  }
}

void LeafGutters::ForceFlush() {
  const uint64_t groups = num_groups();
  for (uint64_t group = 0; group < groups; ++group) {
    const bool empty = params_.nodes_per_group == 1
                           ? solo_gutters_[group].empty()
                           : group_gutters_[group].empty();
    if (!empty) FlushGroup(group);
  }
}

size_t LeafGutters::RamByteSize() const {
  size_t total = sizeof(*this);
  total += solo_gutters_.capacity() * sizeof(std::vector<uint64_t>);
  for (const auto& g : solo_gutters_) {
    total += g.capacity() * sizeof(uint64_t);
  }
  total += group_gutters_.capacity() * sizeof(std::vector<Record>);
  for (const auto& g : group_gutters_) total += g.capacity() * sizeof(Record);
  return total;
}

}  // namespace gz
