#include "buffer/leaf_gutters.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gz {

LeafGutters::LeafGutters(const LeafGuttersParams& params, BatchPool* pool,
                         WorkQueue* queue)
    : params_(params), pool_(pool), queue_(queue) {
  GZ_CHECK(params_.num_nodes >= 1);
  GZ_CHECK(params_.gutter_capacity >= 1);
  GZ_CHECK(params_.nodes_per_group >= 1);
  GZ_CHECK(pool_ != nullptr);
  GZ_CHECK(queue_ != nullptr);
  // Solo gutters fill a slab in place, so their threshold cannot
  // exceed the slab capacity. Grouped gutters chunk node runs into as
  // many slabs as needed at flush time, so the configured capacity
  // (the paper's f knob) applies unclamped.
  capacity_ = params_.nodes_per_group == 1
                  ? std::min<size_t>(params_.gutter_capacity,
                                     pool_->slab_capacity())
                  : params_.gutter_capacity;
  const uint64_t groups =
      (params_.num_nodes + params_.nodes_per_group - 1) /
      params_.nodes_per_group;
  if (params_.nodes_per_group == 1) {
    solo_gutters_.assign(groups, nullptr);
  } else {
    group_gutters_.resize(groups);
  }
}

LeafGutters::~LeafGutters() {
  for (UpdateBatch* gutter : solo_gutters_) {
    if (gutter != nullptr) pool_->Release(gutter);
  }
}

void LeafGutters::PushOrRecycle(UpdateBatch* batch) {
  if (!queue_->Push(batch)) pool_->Release(batch);
}

void LeafGutters::InsertSolo(NodeId node, uint64_t edge_index) {
  UpdateBatch*& gutter = solo_gutters_[node];
  if (gutter == nullptr) {
    gutter = pool_->Acquire();
    gutter->node = node;
  }
  gutter->Append(edge_index);
  if (gutter->count >= capacity_) {
    PushOrRecycle(gutter);
    gutter = nullptr;
  }
}

void LeafGutters::InsertGrouped(NodeId node, uint64_t edge_index) {
  std::vector<Record>& gutter = group_gutters_[GroupOf(node)];
  if (gutter.capacity() == 0) gutter.reserve(capacity_);
  gutter.push_back(Record{node, edge_index});
  if (gutter.size() >= capacity_) FlushGroup(GroupOf(node));
}

void LeafGutters::Insert(NodeId node, uint64_t edge_index) {
  GZ_CHECK(node < params_.num_nodes);
  if (params_.nodes_per_group == 1) {
    InsertSolo(node, edge_index);
  } else {
    InsertGrouped(node, edge_index);
  }
}

void LeafGutters::InsertBatch(const GraphUpdate* updates, size_t count) {
  // Same work as the base-class loop, minus two virtual calls per
  // update: this span-oriented path is what the API-boundary batching
  // in GraphZeppelin::Update feeds.
  const uint64_t n = params_.num_nodes;
  if (params_.nodes_per_group == 1) {
    for (size_t i = 0; i < count; ++i) {
      const Edge& e = updates[i].edge;
      const uint64_t idx = EdgeToIndex(e, n);  // Checks e.v < num_nodes.
      InsertSolo(e.u, idx);
      InsertSolo(e.v, idx);
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      const Edge& e = updates[i].edge;
      const uint64_t idx = EdgeToIndex(e, n);
      InsertGrouped(e.u, idx);
      InsertGrouped(e.v, idx);
    }
  }
}

void LeafGutters::FlushGroup(uint64_t group) {
  if (params_.nodes_per_group == 1) {
    UpdateBatch*& gutter = solo_gutters_[group];
    if (gutter != nullptr) {
      PushOrRecycle(gutter);
      gutter = nullptr;
    }
    return;
  }
  std::vector<Record>& records = group_gutters_[group];
  // Grouped mode: one run per node present, in node order (stable sort
  // keeps per-node update order intact). Sorting in place keeps the
  // flush allocation-free once the gutter's capacity is established.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.node < b.node;
                   });
  size_t i = 0;
  while (i < records.size()) {
    const NodeId node = records[i].node;
    UpdateBatch* batch = pool_->Acquire();
    batch->node = node;
    while (i < records.size() && records[i].node == node) {
      if (batch->full()) {  // Run longer than a slab: emit a chunk.
        PushOrRecycle(batch);
        batch = pool_->Acquire();
        batch->node = node;
      }
      batch->Append(records[i].edge_index);
      ++i;
    }
    PushOrRecycle(batch);
  }
  records.clear();  // Keeps capacity: no realloc on the next fill.
}

void LeafGutters::ForceFlush() {
  const uint64_t groups = num_groups();
  for (uint64_t group = 0; group < groups; ++group) {
    const bool empty = params_.nodes_per_group == 1
                           ? solo_gutters_[group] == nullptr
                           : group_gutters_[group].empty();
    if (!empty) FlushGroup(group);
  }
}

size_t LeafGutters::RamByteSize() const {
  // Slab bytes are owned and accounted for by the BatchPool; only the
  // gutters' own structures are counted here.
  size_t total = sizeof(*this);
  total += solo_gutters_.capacity() * sizeof(UpdateBatch*);
  total += group_gutters_.capacity() * sizeof(std::vector<Record>);
  for (const auto& g : group_gutters_) total += g.capacity() * sizeof(Record);
  return total;
}

}  // namespace gz
