#include "buffer/gutter_tree.h"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

GutterTree::GutterTree(const GutterTreeParams& params, BatchPool* pool,
                       WorkQueue* queue)
    : params_(params), pool_(pool), queue_(queue) {
  GZ_CHECK(params_.num_nodes >= 1);
  GZ_CHECK(params_.fanout >= 2);
  GZ_CHECK(params_.leaf_gutter_updates >= 1);
  GZ_CHECK(params_.nodes_per_group >= 1);
  GZ_CHECK(params_.buffer_bytes >= kRecordBytes * params_.fanout);
  GZ_CHECK(pool_ != nullptr);
  GZ_CHECK(queue_ != nullptr);
}

GutterTree::~GutterTree() {
  if (fd_ >= 0) ::close(fd_);
}

// The tree is built over *node groups*: [lo, hi) ranges below are in
// group units and each leaf is one group's gutter.
uint32_t GutterTree::BuildVertex(uint64_t lo, uint64_t hi, uint32_t depth) {
  const uint32_t id = static_cast<uint32_t>(internals_.size());
  internals_.emplace_back();
  {
    Internal& v = internals_[id];
    v.lo = lo;
    v.hi = hi;
    v.depth = depth;
    v.capacity_bytes = params_.buffer_bytes;
  }
  max_depth_ = std::max(max_depth_, depth);
  const uint64_t range = hi - lo;
  if (range <= params_.fanout) {
    Internal& v = internals_[id];
    v.children_are_leaves = true;
    v.span = 1;
    return id;
  }
  const uint64_t span =
      (range + params_.fanout - 1) / params_.fanout;  // ceil
  std::vector<uint32_t> children;
  for (uint64_t start = lo; start < hi; start += span) {
    const uint64_t end = std::min(hi, start + span);
    children.push_back(BuildVertex(start, end, depth + 1));  // may realloc
  }
  Internal& v = internals_[id];  // re-fetch after child recursion
  v.span = span;
  v.children = std::move(children);
  return id;
}

Status GutterTree::Init() {
  if (initialized_) return Status::FailedPrecondition("already initialized");
  BuildVertex(0, NumGroups(), 0);
  // Flushes recurse strictly downward, so one scratch set per level
  // serves every vertex at that level; a vertex has at most `fanout`
  // children (and a leaf-parent at most `fanout` gutter groups).
  scratch_.resize(max_depth_ + 1);
  for (LevelScratch& level : scratch_) {
    level.buckets.resize(params_.fanout);
  }

  // Assign file regions to every internal vertex except the RAM root.
  uint64_t offset = 0;
  for (size_t i = 1; i < internals_.size(); ++i) {
    internals_[i].file_offset = offset;
    offset += internals_[i].capacity_bytes;
  }
  leaf_region_offset_ = offset;
  leaf_gutter_bytes_ = params_.leaf_gutter_updates * kRecordBytes;
  file_bytes_ = leaf_region_offset_ + NumGroups() * leaf_gutter_bytes_;

  root_capacity_records_ = params_.buffer_bytes / kRecordBytes;
  root_buffer_.reserve(root_capacity_records_);
  leaf_fill_.assign(NumGroups(), 0);

  fd_ = ::open(params_.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create gutter tree file: " +
                           params_.file_path);
  }
  if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
    return Status::IoError("cannot preallocate gutter tree file");
  }
  initialized_ = true;
  return Status::Ok();
}

int GutterTree::ChildIndexFor(const Internal& v, NodeId node) const {
  const uint64_t group = GroupOf(node);
  GZ_CHECK(group >= v.lo && group < v.hi);
  return static_cast<int>((group - v.lo) / v.span);
}

void GutterTree::InsertRecord(NodeId node, uint64_t edge_index) {
  GZ_CHECK(node < params_.num_nodes);
  root_buffer_.push_back(Record{node, edge_index});
  if (root_buffer_.size() >= root_capacity_records_) {
    // Partition copies into per-level scratch and nothing on the flush
    // path appends to the root, so the buffer can be partitioned in
    // place and cleared (keeping its capacity) — no swap-and-reserve
    // allocation per root flush.
    Partition(internals_[0], root_buffer_);
    root_buffer_.clear();
  }
}

void GutterTree::Insert(NodeId node, uint64_t edge_index) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  InsertRecord(node, edge_index);
}

void GutterTree::InsertBatch(const GraphUpdate* updates, size_t count) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  const uint64_t n = params_.num_nodes;
  for (size_t i = 0; i < count; ++i) {
    const Edge& e = updates[i].edge;
    const uint64_t idx = EdgeToIndex(e, n);
    InsertRecord(e.u, idx);
    InsertRecord(e.v, idx);
  }
}

void GutterTree::Partition(const Internal& v,
                           const std::vector<Record>& records) {
  // This level's recycled buckets; delivery below only recurses into
  // deeper levels, which have their own. Each used bucket is cleared
  // after delivery (keeping capacity), restoring the all-empty
  // invariant for the next flush at this level.
  std::vector<std::vector<Record>>& buckets = scratch_[v.depth].buckets;
  if (v.children_are_leaves) {
    // Group records per leaf gutter within [lo, hi).
    const uint64_t groups = v.hi - v.lo;
    for (const Record& r : records) {
      buckets[GroupOf(r.node) - v.lo].push_back(r);
    }
    for (uint64_t i = 0; i < groups; ++i) {
      if (!buckets[i].empty()) {
        DeliverToLeaf(v.lo + i, buckets[i]);
        buckets[i].clear();
      }
    }
    return;
  }
  for (const Record& r : records) {
    buckets[ChildIndexFor(v, r.node)].push_back(r);
  }
  for (size_t i = 0; i < v.children.size(); ++i) {
    if (!buckets[i].empty()) {
      DeliverToInternal(v.children[i], buckets[i]);
      buckets[i].clear();
    }
  }
}

void GutterTree::DeliverToInternal(uint32_t id,
                                   const std::vector<Record>& records) {
  size_t next = 0;
  while (next < records.size()) {
    Internal& v = internals_[id];
    const size_t space_records =
        (v.capacity_bytes - v.fill_bytes) / kRecordBytes;
    if (space_records == 0) {
      FlushInternal(id);
      continue;
    }
    const size_t chunk = std::min(space_records, records.size() - next);
    WriteRecords(v.file_offset + v.fill_bytes, records.data() + next, chunk);
    internals_[id].fill_bytes += chunk * kRecordBytes;
    next += chunk;
    if (internals_[id].fill_bytes >= internals_[id].capacity_bytes) {
      FlushInternal(id);
    }
  }
}

void GutterTree::FlushInternal(uint32_t id) {
  Internal& v = internals_[id];
  if (v.fill_bytes == 0) return;
  // The level's read scratch stays live across the recursive Partition;
  // deeper flushes read into their own level's scratch.
  std::vector<Record>& records = scratch_[v.depth].read_records;
  ReadRecordsInto(v.file_offset, v.fill_bytes, &records);
  v.fill_bytes = 0;
  Partition(v, records);
}

void GutterTree::DeliverToLeaf(uint64_t group,
                               const std::vector<Record>& records) {
  const uint32_t fill = leaf_fill_[group];
  if (fill + records.size() >= params_.leaf_gutter_updates) {
    EmitLeaf(group, records);
    return;
  }
  const uint64_t offset = leaf_region_offset_ + group * leaf_gutter_bytes_ +
                          static_cast<uint64_t>(fill) * kRecordBytes;
  WriteRecords(offset, records.data(), records.size());
  leaf_fill_[group] = fill + static_cast<uint32_t>(records.size());
}

void GutterTree::EmitLeaf(uint64_t group, const std::vector<Record>& extra) {
  const uint32_t fill = leaf_fill_[group];
  std::vector<Record>& records = emit_records_;  // Recycled accumulator.
  records.clear();
  if (fill > 0) {
    const uint64_t offset = leaf_region_offset_ + group * leaf_gutter_bytes_;
    ReadRecordsInto(offset, static_cast<size_t>(fill) * kRecordBytes,
                    &records);
  }
  records.insert(records.end(), extra.begin(), extra.end());
  leaf_fill_[group] = 0;

  // One run per node present, chunked into pooled slabs. For the
  // common single-node groups the gutter already is one run; larger
  // groups sort in place (std::sort, not stable_sort, whose hidden
  // temporary buffer would cost an allocation per emission — the
  // per-node order it preserved is immaterial, sketch updates are
  // commutative XOR toggles).
  if (params_.nodes_per_group > 1) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return a.node < b.node;
              });
  }
  size_t i = 0;
  while (i < records.size()) {
    const NodeId node = records[i].node;
    UpdateBatch* batch = pool_->Acquire();
    batch->node = node;
    while (i < records.size() && records[i].node == node) {
      if (batch->full()) {  // Run longer than a slab: emit a chunk.
        if (!queue_->Push(batch)) pool_->Release(batch);
        batch = pool_->Acquire();
        batch->node = node;
      }
      batch->Append(records[i].edge_index);
      ++i;
    }
    if (!queue_->Push(batch)) pool_->Release(batch);
  }
}

void GutterTree::ForceFlush() {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  if (!root_buffer_.empty()) {
    Partition(internals_[0], root_buffer_);
    root_buffer_.clear();
  }
  // Internal ids are assigned parent-before-child, so ascending order
  // flushes top-down and nothing is left stranded.
  for (uint32_t id = 1; id < internals_.size(); ++id) FlushInternal(id);
  static const std::vector<Record> kEmpty;
  for (uint64_t group = 0; group < leaf_fill_.size(); ++group) {
    if (leaf_fill_[group] > 0) EmitLeaf(group, kEmpty);
  }
}

// Both I/O helpers stage through io_buf_: neither holds it across a
// call that could re-enter them, and the capacity persists, so encode/
// decode staging costs no allocations in steady state.
void GutterTree::WriteRecords(uint64_t offset, const Record* records,
                              size_t count) {
  io_buf_.resize(count * kRecordBytes);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(&io_buf_[i * kRecordBytes], &records[i].node, 4);
    std::memcpy(&io_buf_[i * kRecordBytes + 4], &records[i].edge_index, 8);
  }
  const ssize_t wrote =
      ::pwrite(fd_, io_buf_.data(), io_buf_.size(),
               static_cast<off_t>(offset));
  GZ_CHECK_MSG(wrote == static_cast<ssize_t>(io_buf_.size()),
               "gutter tree pwrite");
  bytes_written_ += io_buf_.size();
}

void GutterTree::ReadRecordsInto(uint64_t offset, size_t bytes,
                                 std::vector<Record>* out) {
  GZ_CHECK(bytes % kRecordBytes == 0);
  io_buf_.resize(bytes);
  const ssize_t got =
      ::pread(fd_, io_buf_.data(), bytes, static_cast<off_t>(offset));
  GZ_CHECK_MSG(got == static_cast<ssize_t>(bytes), "gutter tree pread");
  bytes_read_ += bytes;
  out->resize(bytes / kRecordBytes);
  for (size_t i = 0; i < out->size(); ++i) {
    std::memcpy(&(*out)[i].node, &io_buf_[i * kRecordBytes], 4);
    std::memcpy(&(*out)[i].edge_index, &io_buf_[i * kRecordBytes + 4], 8);
  }
}

size_t GutterTree::RamByteSize() const {
  size_t scratch_bytes = io_buf_.capacity() +
                         emit_records_.capacity() * sizeof(Record);
  for (const LevelScratch& level : scratch_) {
    scratch_bytes += level.read_records.capacity() * sizeof(Record);
    for (const std::vector<Record>& b : level.buckets) {
      scratch_bytes += b.capacity() * sizeof(Record);
    }
  }
  return sizeof(*this) + root_buffer_.capacity() * sizeof(Record) +
         internals_.capacity() * sizeof(Internal) +
         leaf_fill_.capacity() * sizeof(uint32_t) + scratch_bytes;
}

}  // namespace gz
