#include "buffer/gutter_tree.h"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

GutterTree::GutterTree(const GutterTreeParams& params, BatchPool* pool,
                       WorkQueue* queue)
    : params_(params), pool_(pool), queue_(queue) {
  GZ_CHECK(params_.num_nodes >= 1);
  GZ_CHECK(params_.fanout >= 2);
  GZ_CHECK(params_.leaf_gutter_updates >= 1);
  GZ_CHECK(params_.nodes_per_group >= 1);
  GZ_CHECK(params_.buffer_bytes >= kRecordBytes * params_.fanout);
  GZ_CHECK(pool_ != nullptr);
  GZ_CHECK(queue_ != nullptr);
}

GutterTree::~GutterTree() {
  if (fd_ >= 0) ::close(fd_);
}

// The tree is built over *node groups*: [lo, hi) ranges below are in
// group units and each leaf is one group's gutter.
uint32_t GutterTree::BuildVertex(uint64_t lo, uint64_t hi) {
  const uint32_t id = static_cast<uint32_t>(internals_.size());
  internals_.emplace_back();
  {
    Internal& v = internals_[id];
    v.lo = lo;
    v.hi = hi;
    v.capacity_bytes = params_.buffer_bytes;
  }
  const uint64_t range = hi - lo;
  if (range <= params_.fanout) {
    Internal& v = internals_[id];
    v.children_are_leaves = true;
    v.span = 1;
    return id;
  }
  const uint64_t span =
      (range + params_.fanout - 1) / params_.fanout;  // ceil
  std::vector<uint32_t> children;
  for (uint64_t start = lo; start < hi; start += span) {
    const uint64_t end = std::min(hi, start + span);
    children.push_back(BuildVertex(start, end));  // may reallocate
  }
  Internal& v = internals_[id];  // re-fetch after child recursion
  v.span = span;
  v.children = std::move(children);
  return id;
}

Status GutterTree::Init() {
  if (initialized_) return Status::FailedPrecondition("already initialized");
  BuildVertex(0, NumGroups());

  // Assign file regions to every internal vertex except the RAM root.
  uint64_t offset = 0;
  for (size_t i = 1; i < internals_.size(); ++i) {
    internals_[i].file_offset = offset;
    offset += internals_[i].capacity_bytes;
  }
  leaf_region_offset_ = offset;
  leaf_gutter_bytes_ = params_.leaf_gutter_updates * kRecordBytes;
  file_bytes_ = leaf_region_offset_ + NumGroups() * leaf_gutter_bytes_;

  root_capacity_records_ = params_.buffer_bytes / kRecordBytes;
  root_buffer_.reserve(root_capacity_records_);
  leaf_fill_.assign(NumGroups(), 0);

  fd_ = ::open(params_.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create gutter tree file: " +
                           params_.file_path);
  }
  if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
    return Status::IoError("cannot preallocate gutter tree file");
  }
  initialized_ = true;
  return Status::Ok();
}

int GutterTree::ChildIndexFor(const Internal& v, NodeId node) const {
  const uint64_t group = GroupOf(node);
  GZ_CHECK(group >= v.lo && group < v.hi);
  return static_cast<int>((group - v.lo) / v.span);
}

void GutterTree::InsertRecord(NodeId node, uint64_t edge_index) {
  GZ_CHECK(node < params_.num_nodes);
  root_buffer_.push_back(Record{node, edge_index});
  if (root_buffer_.size() >= root_capacity_records_) {
    std::vector<Record> records;
    records.swap(root_buffer_);
    root_buffer_.reserve(root_capacity_records_);
    Partition(internals_[0], records);
  }
}

void GutterTree::Insert(NodeId node, uint64_t edge_index) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  InsertRecord(node, edge_index);
}

void GutterTree::InsertBatch(const GraphUpdate* updates, size_t count) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  const uint64_t n = params_.num_nodes;
  for (size_t i = 0; i < count; ++i) {
    const Edge& e = updates[i].edge;
    const uint64_t idx = EdgeToIndex(e, n);
    InsertRecord(e.u, idx);
    InsertRecord(e.v, idx);
  }
}

void GutterTree::Partition(const Internal& v,
                           const std::vector<Record>& records) {
  if (v.children_are_leaves) {
    // Group records per leaf gutter within [lo, hi).
    std::vector<std::vector<Record>> per_group(v.hi - v.lo);
    for (const Record& r : records) {
      per_group[GroupOf(r.node) - v.lo].push_back(r);
    }
    for (uint64_t i = 0; i < per_group.size(); ++i) {
      if (!per_group[i].empty()) DeliverToLeaf(v.lo + i, per_group[i]);
    }
    return;
  }
  std::vector<std::vector<Record>> per_child(v.children.size());
  for (const Record& r : records) {
    per_child[ChildIndexFor(v, r.node)].push_back(r);
  }
  for (size_t i = 0; i < per_child.size(); ++i) {
    if (!per_child[i].empty()) {
      DeliverToInternal(v.children[i], per_child[i]);
    }
  }
}

void GutterTree::DeliverToInternal(uint32_t id,
                                   const std::vector<Record>& records) {
  size_t next = 0;
  while (next < records.size()) {
    Internal& v = internals_[id];
    const size_t space_records =
        (v.capacity_bytes - v.fill_bytes) / kRecordBytes;
    if (space_records == 0) {
      FlushInternal(id);
      continue;
    }
    const size_t chunk = std::min(space_records, records.size() - next);
    WriteRecords(v.file_offset + v.fill_bytes, records.data() + next, chunk);
    internals_[id].fill_bytes += chunk * kRecordBytes;
    next += chunk;
    if (internals_[id].fill_bytes >= internals_[id].capacity_bytes) {
      FlushInternal(id);
    }
  }
}

void GutterTree::FlushInternal(uint32_t id) {
  Internal& v = internals_[id];
  if (v.fill_bytes == 0) return;
  std::vector<Record> records = ReadRecords(v.file_offset, v.fill_bytes);
  v.fill_bytes = 0;
  Partition(v, records);
}

void GutterTree::DeliverToLeaf(uint64_t group,
                               const std::vector<Record>& records) {
  const uint32_t fill = leaf_fill_[group];
  if (fill + records.size() >= params_.leaf_gutter_updates) {
    EmitLeaf(group, records);
    return;
  }
  const uint64_t offset = leaf_region_offset_ + group * leaf_gutter_bytes_ +
                          static_cast<uint64_t>(fill) * kRecordBytes;
  WriteRecords(offset, records.data(), records.size());
  leaf_fill_[group] = fill + static_cast<uint32_t>(records.size());
}

void GutterTree::EmitLeaf(uint64_t group, const std::vector<Record>& extra) {
  const uint32_t fill = leaf_fill_[group];
  std::vector<Record> records;
  if (fill > 0) {
    const uint64_t offset = leaf_region_offset_ + group * leaf_gutter_bytes_;
    records = ReadRecords(offset, static_cast<size_t>(fill) * kRecordBytes);
  }
  records.insert(records.end(), extra.begin(), extra.end());
  leaf_fill_[group] = 0;

  // One run per node present (stable: per-node update order is the
  // arrival order), chunked into pooled slabs.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.node < b.node;
                   });
  size_t i = 0;
  while (i < records.size()) {
    const NodeId node = records[i].node;
    UpdateBatch* batch = pool_->Acquire();
    batch->node = node;
    while (i < records.size() && records[i].node == node) {
      if (batch->full()) {  // Run longer than a slab: emit a chunk.
        if (!queue_->Push(batch)) pool_->Release(batch);
        batch = pool_->Acquire();
        batch->node = node;
      }
      batch->Append(records[i].edge_index);
      ++i;
    }
    if (!queue_->Push(batch)) pool_->Release(batch);
  }
}

void GutterTree::ForceFlush() {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  if (!root_buffer_.empty()) {
    std::vector<Record> records;
    records.swap(root_buffer_);
    root_buffer_.reserve(root_capacity_records_);
    Partition(internals_[0], records);
  }
  // Internal ids are assigned parent-before-child, so ascending order
  // flushes top-down and nothing is left stranded.
  for (uint32_t id = 1; id < internals_.size(); ++id) FlushInternal(id);
  static const std::vector<Record> kEmpty;
  for (uint64_t group = 0; group < leaf_fill_.size(); ++group) {
    if (leaf_fill_[group] > 0) EmitLeaf(group, kEmpty);
  }
}

void GutterTree::WriteRecords(uint64_t offset, const Record* records,
                              size_t count) {
  std::vector<uint8_t> buf(count * kRecordBytes);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(&buf[i * kRecordBytes], &records[i].node, 4);
    std::memcpy(&buf[i * kRecordBytes + 4], &records[i].edge_index, 8);
  }
  const ssize_t wrote =
      ::pwrite(fd_, buf.data(), buf.size(), static_cast<off_t>(offset));
  GZ_CHECK_MSG(wrote == static_cast<ssize_t>(buf.size()),
               "gutter tree pwrite");
  bytes_written_ += buf.size();
}

std::vector<GutterTree::Record> GutterTree::ReadRecords(uint64_t offset,
                                                        size_t bytes) {
  GZ_CHECK(bytes % kRecordBytes == 0);
  std::vector<uint8_t> buf(bytes);
  const ssize_t got =
      ::pread(fd_, buf.data(), bytes, static_cast<off_t>(offset));
  GZ_CHECK_MSG(got == static_cast<ssize_t>(bytes), "gutter tree pread");
  bytes_read_ += bytes;
  std::vector<Record> records(bytes / kRecordBytes);
  for (size_t i = 0; i < records.size(); ++i) {
    std::memcpy(&records[i].node, &buf[i * kRecordBytes], 4);
    std::memcpy(&records[i].edge_index, &buf[i * kRecordBytes + 4], 8);
  }
  return records;
}

size_t GutterTree::RamByteSize() const {
  return sizeof(*this) + root_buffer_.capacity() * sizeof(Record) +
         internals_.capacity() * sizeof(Internal) +
         leaf_fill_.capacity() * sizeof(uint32_t);
}

}  // namespace gz
