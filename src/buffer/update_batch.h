// Flat pooled batches: the unit of work flowing through the ingestion
// pipeline (gutters -> work queue -> Graph Workers).
//
// The paper's throughput argument (Sections 4-5) is that gutters
// amortize sketch access so the hot path is bounded by XOR work, not
// memory traffic. A per-batch std::vector undoes that: every emitted
// batch costs an allocation and every Push moves vector headers around.
// UpdateBatch is instead a fixed-capacity slab — a small header and the
// payload in one allocation — so a batch moves through the whole
// pipeline as a single pointer, and BatchPool recycles slabs so
// steady-state ingestion performs no heap allocations at all.
#ifndef GZ_BUFFER_UPDATE_BATCH_H_
#define GZ_BUFFER_UPDATE_BATCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/stream_types.h"

namespace gz {

// A batch of edge-index updates all destined for the same graph node.
// The payload lives immediately after the header in the same
// allocation; only BatchPool creates and destroys these.
struct UpdateBatch {
  NodeId node = 0;
  uint32_t count = 0;
  uint32_t capacity = 0;
  uint32_t reserved_ = 0;            // Keeps the payload 8-byte aligned.
  UpdateBatch* pool_next = nullptr;  // Intrusive free-list link.

  uint64_t* edge_indices() { return reinterpret_cast<uint64_t*>(this + 1); }
  const uint64_t* edge_indices() const {
    return reinterpret_cast<const uint64_t*>(this + 1);
  }

  bool full() const { return count >= capacity; }
  bool empty() const { return count == 0; }

  // Caller must ensure !full().
  void Append(uint64_t edge_index) { edge_indices()[count++] = edge_index; }
};

static_assert(sizeof(UpdateBatch) % alignof(uint64_t) == 0,
              "payload after the header must stay 8-byte aligned");

// Recycles fixed-capacity UpdateBatch slabs across the pipeline.
// Acquire pops from an intrusive free list (growing the pool only when
// it is empty, which in steady state never happens); Release pushes the
// slab back. The free list is guarded by a spinlock: the critical
// section is two pointer writes, so contention is far cheaper than a
// mutex sleep and there is no ABA hazard to reason about.
//
// Thread safety: Acquire/Release may be called concurrently from any
// number of producers (gutters) and consumers (Graph Workers).
class BatchPool {
 public:
  explicit BatchPool(uint32_t slab_capacity);
  ~BatchPool();
  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  // Returns an empty slab (count == 0, node unset). Never nullptr.
  UpdateBatch* Acquire();

  // Returns a slab to the pool. The slab must have come from Acquire()
  // on this pool and must not be used afterwards.
  void Release(UpdateBatch* batch);

  uint32_t slab_capacity() const { return slab_capacity_; }
  size_t slab_bytes() const {
    return sizeof(UpdateBatch) + static_cast<size_t>(slab_capacity_) * 8;
  }

  // Total slabs ever allocated (growth events; flat in steady state).
  uint64_t slabs_allocated() const;
  // Slabs currently acquired and not yet released.
  int64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  size_t RamByteSize() const;

 private:
  class Spinlock {
   public:
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  const uint32_t slab_capacity_;
  mutable Spinlock lock_;
  UpdateBatch* free_head_ = nullptr;    // Guarded by lock_.
  std::vector<void*> all_slabs_;        // Guarded by lock_; for freeing.
  std::atomic<int64_t> outstanding_{0};
};

}  // namespace gz

#endif  // GZ_BUFFER_UPDATE_BATCH_H_
