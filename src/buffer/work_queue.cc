#include "buffer/work_queue.h"

#include "util/check.h"

namespace gz {

WorkQueue::WorkQueue(size_t capacity) : capacity_(capacity) {
  GZ_CHECK(capacity >= 1);
}

bool WorkQueue::Push(NodeBatch batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(std::move(batch));
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool WorkQueue::Pop(NodeBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void WorkQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void WorkQueue::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  GZ_CHECK_MSG(queue_.empty(), "reopening a non-drained queue");
  closed_ = false;
}

size_t WorkQueue::ApproxSize() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace gz
