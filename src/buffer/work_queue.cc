#include "buffer/work_queue.h"

#include "util/check.h"

namespace gz {

WorkQueue::WorkQueue(size_t capacity)
    : ring_(capacity, nullptr), capacity_(capacity) {
  GZ_CHECK(capacity >= 1);
}

bool WorkQueue::Push(UpdateBatch* batch) {
  GZ_CHECK(batch != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
  // The closed check must come before any accounting: a batch rejected
  // here is handed back to the caller, so bumping in_flight_ for it
  // would deadlock a later Drain barrier.
  if (closed_) return false;
  ring_[(head_ + size_) % capacity_] = batch;
  ++size_;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

UpdateBatch* WorkQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
  if (size_ == 0) return nullptr;  // Closed and drained.
  UpdateBatch* batch = ring_[head_];
  ring_[head_] = nullptr;
  head_ = (head_ + 1) % capacity_;
  --size_;
  lock.unlock();
  not_full_.notify_one();
  return batch;
}

void WorkQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void WorkQueue::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  GZ_CHECK_MSG(size_ == 0, "reopening a non-drained queue");
  closed_ = false;
}

size_t WorkQueue::ApproxSize() {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace gz
