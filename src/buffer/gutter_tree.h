// Gutter tree (paper Section 4.1): a simplified buffer tree that
// collects fine-grained stream updates and delivers them to per-node
// leaf gutters I/O-efficiently.
//
// Shape: the root buffer lives in RAM; every other internal vertex owns
// a fixed-size buffer region in a preallocated file, with fan-out
// `fanout`. Leaves are one gutter per graph node, also on disk, sized to
// a configurable number of updates (the paper uses ~2x the node-sketch
// size). When a buffer fills it is flushed: its records are read back,
// partitioned among its children, and appended to their regions
// (recursively flushing full children first). When a leaf gutter fills,
// its contents are emitted to the work queue as one batch for a single
// graph node. Unlike a full buffer tree no rebalancing is ever needed
// because leaf data does not persist (Section 4.1).
#ifndef GZ_BUFFER_GUTTER_TREE_H_
#define GZ_BUFFER_GUTTER_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/guttering_system.h"
#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "util/status.h"

namespace gz {

struct GutterTreeParams {
  uint64_t num_nodes = 0;
  std::string file_path;       // Backing file (preallocated on Init).
  size_t buffer_bytes = 1 << 22;  // Internal-buffer size (paper: 8 MB).
  size_t fanout = 64;             // Children per internal vertex (paper: 512).
  size_t leaf_gutter_updates = 512;  // Leaf gutter capacity, in updates.
  // Graph nodes per leaf gutter (Section 4.1 node groups, cardinality
  // max{1, B/log^3 V}). Groups > 1 store (node, index) records in the
  // leaf and emit one batch per node present when the gutter fills.
  uint64_t nodes_per_group = 1;
};

class GutterTree : public GutteringSystem {
 public:
  // On-disk record: u32 graph node + u64 edge index.
  static constexpr size_t kRecordBytes = 12;

  // `pool` supplies the emitted batch slabs; the consumer releases them.
  GutterTree(const GutterTreeParams& params, BatchPool* pool,
             WorkQueue* queue);
  ~GutterTree() override;
  GutterTree(const GutterTree&) = delete;
  GutterTree& operator=(const GutterTree&) = delete;

  // Creates and preallocates the backing file. Must be called once
  // before the first Insert.
  Status Init();

  void Insert(NodeId node, uint64_t edge_index) override;
  void InsertBatch(const GraphUpdate* updates, size_t count) override;
  void ForceFlush() override;
  uint64_t num_nodes() const override { return params_.num_nodes; }
  size_t RamByteSize() const override;
  size_t DiskByteSize() const override { return file_bytes_; }

  // I/O counters (for the benchmarks' I/O-efficiency reporting).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct Record {
    NodeId node;
    uint64_t edge_index;
  };

  // An internal tree vertex covering graph nodes [lo, hi).
  struct Internal {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint64_t span = 0;          // Graph nodes per child subrange.
    std::vector<uint32_t> children;  // Internal ids, unless leaves.
    bool children_are_leaves = false;
    uint32_t depth = 0;         // Root = 0; indexes scratch_.
    uint64_t file_offset = 0;   // 0 for the RAM-resident root.
    size_t capacity_bytes = 0;
    size_t fill_bytes = 0;
  };

  // Flush-path scratch, one set per tree level. A flush only ever
  // recurses downward (vertex at depth d partitions into children at
  // d+1), so per-level reuse is safe and steady-state flushing
  // allocates nothing once each level's buffers have grown to the
  // level's working set.
  struct LevelScratch {
    std::vector<Record> read_records;            // FlushInternal target.
    std::vector<std::vector<Record>> buckets;    // Partition output.
  };

  // Non-virtual insert body shared by Insert and InsertBatch.
  void InsertRecord(NodeId node, uint64_t edge_index);

  // Builds the vertex at [lo, hi) and returns its id in internals_.
  uint32_t BuildVertex(uint64_t lo, uint64_t hi, uint32_t depth);

  int ChildIndexFor(const Internal& v, NodeId node) const;

  // Appends records to internal vertex `id`, flushing it as needed.
  void DeliverToInternal(uint32_t id, const std::vector<Record>& records);
  // Reads back vertex `id`'s buffer and pushes everything down a level.
  void FlushInternal(uint32_t id);
  // Partitions `records` among v's children and delivers.
  void Partition(const Internal& v, const std::vector<Record>& records);
  // Appends records to leaf gutter `group`; emits batches when it
  // fills. All records must belong to the group.
  void DeliverToLeaf(uint64_t group, const std::vector<Record>& records);
  // Emits the leaf gutter contents (plus `extra`) as per-node batches.
  void EmitLeaf(uint64_t group, const std::vector<Record>& extra);

  uint64_t GroupOf(NodeId node) const {
    return node / params_.nodes_per_group;
  }
  uint64_t NumGroups() const {
    return (params_.num_nodes + params_.nodes_per_group - 1) /
           params_.nodes_per_group;
  }

  void WriteRecords(uint64_t offset, const Record* records, size_t count);
  // Replaces `out` with the decoded records (capacity is reused).
  void ReadRecordsInto(uint64_t offset, size_t bytes,
                       std::vector<Record>* out);

  GutterTreeParams params_;
  BatchPool* pool_;   // Not owned.
  WorkQueue* queue_;  // Not owned.
  int fd_ = -1;
  uint64_t file_bytes_ = 0;
  uint64_t leaf_region_offset_ = 0;
  size_t leaf_gutter_bytes_ = 0;

  std::vector<Internal> internals_;  // internals_[0] is the root.
  std::vector<Record> root_buffer_;  // RAM buffer of the root.
  size_t root_capacity_records_ = 0;
  std::vector<uint32_t> leaf_fill_;  // Updates currently in each leaf.

  // Recycled flush-path buffers (the leaf gutters' slab recycling,
  // applied to the internal path): per-level partition/read scratch, a
  // shared I/O staging buffer, and the leaf-emission accumulator. All
  // keep their capacity across flushes, so steady-state internal-path
  // work performs no heap allocations.
  uint32_t max_depth_ = 0;
  std::vector<LevelScratch> scratch_;
  std::vector<uint8_t> io_buf_;
  std::vector<Record> emit_records_;

  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  bool initialized_ = false;
};

}  // namespace gz

#endif  // GZ_BUFFER_GUTTER_TREE_H_
