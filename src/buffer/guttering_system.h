// Common interface of GraphZeppelin's two buffering structures
// (Section 5.1): the in-RAM leaf-only gutters and the on-disk gutter
// tree. Both collect fine-grained stream updates and emit them as
// per-node pooled batches into a WorkQueue, amortizing sketch access
// costs.
#ifndef GZ_BUFFER_GUTTERING_SYSTEM_H_
#define GZ_BUFFER_GUTTERING_SYSTEM_H_

#include <cstddef>
#include <cstdint>

#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "stream/stream_types.h"

namespace gz {

class GutteringSystem {
 public:
  virtual ~GutteringSystem() = default;

  // Buffers one directed half-update: `edge_index` must eventually be
  // applied to `node`'s sketch. Callers insert each undirected edge
  // twice, once per endpoint (paper Figure 8, edge_update()).
  virtual void Insert(NodeId node, uint64_t edge_index) = 0;

  // Bulk path: buffers a span of stream updates, inserting each edge's
  // index for both endpoints. This is what GraphZeppelin::Update feeds
  // after batching at the API boundary; implementations override it to
  // skip the per-half-update virtual dispatch. The default simply loops
  // over Insert.
  virtual void InsertBatch(const GraphUpdate* updates, size_t count);

  // Forces every buffered update out as batches (possibly small ones).
  // Called at query time (paper cleanup()).
  virtual void ForceFlush() = 0;

  // Upper bound on the vertex count (drives EdgeToIndex in the bulk
  // path).
  virtual uint64_t num_nodes() const = 0;

  // RAM footprint of the buffering structure itself.
  virtual size_t RamByteSize() const = 0;

  // Bytes of disk backing the structure (0 for RAM-only systems).
  virtual size_t DiskByteSize() const = 0;
};

}  // namespace gz

#endif  // GZ_BUFFER_GUTTERING_SYSTEM_H_
