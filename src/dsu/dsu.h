// Disjoint-set union (union by rank + path compression), the merging
// substrate for Boruvka's algorithm and Kruskal's reference checker.
#ifndef GZ_DSU_DSU_H_
#define GZ_DSU_DSU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gz {

class Dsu {
 public:
  explicit Dsu(size_t n);

  // Representative of x's set (with path compression).
  size_t Find(size_t x);

  // Unites the sets of a and b. Returns true iff they were distinct.
  bool Union(size_t a, size_t b);

  size_t num_sets() const { return num_sets_; }
  size_t size() const { return parent_.size(); }

  // Representatives of all current sets, sorted ascending.
  std::vector<size_t> Roots();

  // Component label (root) per element; useful for equality testing of
  // partitions in tests.
  std::vector<size_t> Labels();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

}  // namespace gz

#endif  // GZ_DSU_DSU_H_
