#include "dsu/dsu.h"

#include <numeric>

#include "util/check.h"

namespace gz {

Dsu::Dsu(size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
  GZ_CHECK(n <= UINT32_MAX);
  std::iota(parent_.begin(), parent_.end(), 0);
}

size_t Dsu::Find(size_t x) {
  GZ_CHECK(x < parent_.size());
  // Two-pass path compression.
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    size_t next = parent_[x];
    parent_[x] = static_cast<uint32_t>(root);
    x = next;
  }
  return root;
}

bool Dsu::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<uint32_t>(ra);
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<size_t> Dsu::Roots() {
  std::vector<size_t> roots;
  roots.reserve(num_sets_);
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (Find(i) == i) roots.push_back(i);
  }
  return roots;
}

std::vector<size_t> Dsu::Labels() {
  std::vector<size_t> labels(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) labels[i] = Find(i);
  return labels;
}

}  // namespace gz
