#include "algos/spanning_forests.h"

#include <string>

#include "core/connectivity.h"
#include "util/check.h"

namespace gz {

EdgeList ForestDecomposition::CertificateEdges() const {
  EdgeList all;
  for (const EdgeList& forest : forests) {
    all.insert(all.end(), forest.begin(), forest.end());
  }
  return all;
}

int RoundsForForests(uint64_t num_nodes, int k) {
  GZ_CHECK(k >= 1);
  return k * NodeSketch::DefaultRounds(num_nodes);
}

int MaxForestsForRounds(uint64_t num_nodes, int rounds) {
  return rounds / NodeSketch::DefaultRounds(num_nodes);
}

Result<ForestDecomposition> ExtractSpanningForests(
    const GraphSnapshot& snapshot, int k) {
  GZ_CHECK_MSG(snapshot.valid(), "decomposing an empty snapshot");
  std::vector<NodeSketch> scratch = snapshot.CopySketches();
  return ExtractSpanningForests(&scratch, k);
}

Result<ForestDecomposition> ExtractSpanningForests(GraphSnapshot&& snapshot,
                                                   int k) {
  GZ_CHECK_MSG(snapshot.valid(), "decomposing an empty snapshot");
  std::vector<NodeSketch> scratch = snapshot.ReleaseSketches();
  return ExtractSpanningForests(&scratch, k);
}

Result<ForestDecomposition> ExtractSpanningForests(
    std::vector<NodeSketch>* snapshot, int k) {
  GZ_CHECK(snapshot != nullptr && !snapshot->empty());
  // k arrives from CLIs and wire queries: validate, don't abort, and
  // never clamp (a clamped k would certify less than the caller asked
  // for while claiming otherwise).
  if (k < 1) {
    return Status::InvalidArgument("forest count k must be >= 1, got " +
                                   std::to_string(k));
  }
  std::vector<NodeSketch>& pristine = *snapshot;
  const uint64_t num_nodes = pristine[0].params().num_nodes;
  const int total_rounds = pristine[0].rounds();
  if (k > MaxForestsForRounds(num_nodes, total_rounds)) {
    return Status::InvalidArgument(
        "snapshot has too few rounds for the requested k: k=" +
        std::to_string(k) + " wants >= " +
        std::to_string(RoundsForForests(num_nodes, k)) + " rounds, have " +
        std::to_string(total_rounds) + " (max k here: " +
        std::to_string(MaxForestsForRounds(num_nodes, total_rounds)) + ")");
  }
  const int rounds_per_phase = total_rounds / k;

  ForestDecomposition result;
  for (int phase = 0; phase < k; ++phase) {
    // Boruvka consumes the working copy; the pristine snapshot stays a
    // faithful sketch of the remaining graph.
    std::vector<NodeSketch> working = pristine;
    const ConnectivityResult cc = BoruvkaConnectivity(
        &working, phase * rounds_per_phase, rounds_per_phase);
    if (cc.failed) {
      result.failed = true;
      break;
    }
    if (cc.spanning_forest.empty()) break;  // No edges left to peel.
    result.forests.push_back(cc.spanning_forest);
    // Peel: toggle the forest's edges out of the remaining graph.
    for (const Edge& e : cc.spanning_forest) {
      const uint64_t idx = EdgeToIndex(e, num_nodes);
      pristine[e.u].Update(idx);
      pristine[e.v].Update(idx);
    }
  }
  return result;
}

}  // namespace gz
