#include "algos/spanning_forests.h"

#include "core/connectivity.h"
#include "util/check.h"

namespace gz {

EdgeList ForestDecomposition::CertificateEdges() const {
  EdgeList all;
  for (const EdgeList& forest : forests) {
    all.insert(all.end(), forest.begin(), forest.end());
  }
  return all;
}

int RoundsForForests(uint64_t num_nodes, int k) {
  GZ_CHECK(k >= 1);
  return k * NodeSketch::DefaultRounds(num_nodes);
}

ForestDecomposition ExtractSpanningForests(const GraphSnapshot& snapshot,
                                           int k) {
  GZ_CHECK_MSG(snapshot.valid(), "decomposing an empty snapshot");
  std::vector<NodeSketch> scratch = snapshot.CopySketches();
  return ExtractSpanningForests(&scratch, k);
}

ForestDecomposition ExtractSpanningForests(GraphSnapshot&& snapshot, int k) {
  GZ_CHECK_MSG(snapshot.valid(), "decomposing an empty snapshot");
  std::vector<NodeSketch> scratch = snapshot.ReleaseSketches();
  return ExtractSpanningForests(&scratch, k);
}

ForestDecomposition ExtractSpanningForests(std::vector<NodeSketch>* snapshot,
                                           int k) {
  GZ_CHECK(snapshot != nullptr && !snapshot->empty());
  GZ_CHECK(k >= 1);
  std::vector<NodeSketch>& pristine = *snapshot;
  const uint64_t num_nodes = pristine[0].params().num_nodes;
  const int total_rounds = pristine[0].rounds();
  const int rounds_per_phase = total_rounds / k;
  GZ_CHECK_MSG(rounds_per_phase >= 1,
               "snapshot has too few rounds for the requested k");

  ForestDecomposition result;
  for (int phase = 0; phase < k; ++phase) {
    // Boruvka consumes the working copy; the pristine snapshot stays a
    // faithful sketch of the remaining graph.
    std::vector<NodeSketch> working = pristine;
    const ConnectivityResult cc = BoruvkaConnectivity(
        &working, phase * rounds_per_phase, rounds_per_phase);
    if (cc.failed) {
      result.failed = true;
      break;
    }
    if (cc.spanning_forest.empty()) break;  // No edges left to peel.
    result.forests.push_back(cc.spanning_forest);
    // Peel: toggle the forest's edges out of the remaining graph.
    for (const Edge& e : cc.spanning_forest) {
      const uint64_t idx = EdgeToIndex(e, num_nodes);
      pristine[e.u].Update(idx);
      pristine[e.v].Update(idx);
    }
  }
  return result;
}

}  // namespace gz
