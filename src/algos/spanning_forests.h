// Edge-disjoint spanning-forest decomposition over linear sketches —
// the Ahn-Guha-McGregor peeling construction the paper points to for
// problems beyond connectivity (Section 3.1: edge connectivity,
// k-connectivity certificates).
//
// Phase i runs Boruvka over a dedicated window of sketch rounds to
// extract a spanning forest F_i of G \ (F_1 ∪ ... ∪ F_{i-1}), then
// toggles F_i's edges out of the pristine sketches (linearity makes
// the deletion exact, not approximate). The union F_1 ∪ ... ∪ F_k is a
// k-edge-connectivity certificate of G: it preserves every cut of size
// <= k, so e.g. the bridges of G are exactly the bridges of the k=2
// certificate.
#ifndef GZ_ALGOS_SPANNING_FORESTS_H_
#define GZ_ALGOS_SPANNING_FORESTS_H_

#include <vector>

#include "core/graph_snapshot.h"
#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct ForestDecomposition {
  // forests[i] is the i-th edge-disjoint spanning forest; later forests
  // may be empty once all edges are consumed.
  std::vector<EdgeList> forests;
  // True if any phase's Boruvka ran out of sketch rounds (probability
  // polynomially small when the snapshot has >= k * ceil(log_{3/2} V)
  // rounds).
  bool failed = false;

  // Union of all forests: the k-edge-connectivity certificate.
  EdgeList CertificateEdges() const;
};

// Number of sketch rounds a snapshot needs for a k-forest
// decomposition of a graph on `num_nodes` vertices.
int RoundsForForests(uint64_t num_nodes, int k);

// Largest k a snapshot with `rounds` rounds can decompose for
// `num_nodes` vertices (each phase needs a full Boruvka round budget);
// the k-validation bound of the extractors below.
int MaxForestsForRounds(uint64_t num_nodes, int rounds);

// Extracts up to `k` edge-disjoint spanning forests from the snapshot,
// which must carry at least RoundsForForests(V, k) rounds (configure
// the producing instance with `rounds = RoundsForForests(V, k)`). The
// snapshot itself is untouched: the destructive working copy is taken
// internally, once.
//
// `k` is validated, not trusted: k < 1, or a k whose per-phase round
// budget exceeds what the snapshot carries, is an InvalidArgument —
// the request often comes from a CLI or a wire query, so it must bounce
// as a Status rather than abort (and silently clamping would disguise
// an under-provisioned snapshot as a certified answer).
Result<ForestDecomposition> ExtractSpanningForests(
    const GraphSnapshot& snapshot, int k);

// Rvalue form: consumes a temporary snapshot's sketches as the pristine
// working set directly (no extra full copy of the sketch state).
Result<ForestDecomposition> ExtractSpanningForests(GraphSnapshot&& snapshot,
                                                   int k);

// Raw-sketch form used by the engine and by tests that build sketches
// directly; `sketches` is consumed destructively.
Result<ForestDecomposition> ExtractSpanningForests(
    std::vector<NodeSketch>* sketches, int k);

}  // namespace gz

#endif  // GZ_ALGOS_SPANNING_FORESTS_H_
