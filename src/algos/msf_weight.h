// Minimum-spanning-forest weight on weighted dynamic graph streams —
// another application the paper lists for CubeSketch (Section 3.1,
// "minimum spanning trees"), following the classic
// component-counting identity used by AGM:
//
//   For integer weights in {1..W} and level graphs
//   G_i = (V, {e : w(e) <= i}),
//     MSF weight = sum_{i=0}^{W-1} ( cc(G_i) - cc(G) ),
//   with G_0 the empty graph (cc = V).
//
// Each level graph is maintained as its own GraphZeppelin sketch, so
// the whole structure supports insertions and deletions of weighted
// edges in O(W · V log^3 V) space — exact for small integer weight
// ranges, and usable with geometric bucketing for a (1+eps)
// approximation on real weights.
#ifndef GZ_ALGOS_MSF_WEIGHT_H_
#define GZ_ALGOS_MSF_WEIGHT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/graph_zeppelin.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct MsfWeightResult {
  bool failed = false;      // Any level query failed.
  uint64_t weight = 0;      // MSF weight (0 when failed).
  size_t num_components = 0;  // cc(G), from the top level.
};

class MsfWeightSketch {
 public:
  // `config` describes the graph (num_nodes etc.); `max_weight` = W
  // bounds edge weights (inclusive). W level sketches are allocated.
  MsfWeightSketch(const GraphZeppelinConfig& config, uint32_t max_weight);

  Status Init();

  // Inserts or deletes edge `e` with weight `w` in [1, max_weight].
  // A deletion must use the same weight as the matching insertion.
  void Update(const Edge& e, uint32_t weight, UpdateType type);

  MsfWeightResult Query();

  uint32_t max_weight() const { return max_weight_; }

 private:
  uint64_t num_nodes_;
  uint32_t max_weight_;
  // levels_[i] sketches G_{i+1} (edges of weight <= i+1); the last one
  // is the full graph.
  std::vector<std::unique_ptr<GraphZeppelin>> levels_;
};

}  // namespace gz

#endif  // GZ_ALGOS_MSF_WEIGHT_H_
