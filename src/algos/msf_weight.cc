#include "algos/msf_weight.h"

#include "util/check.h"

namespace gz {

MsfWeightSketch::MsfWeightSketch(const GraphZeppelinConfig& config,
                                 uint32_t max_weight)
    : num_nodes_(config.num_nodes), max_weight_(max_weight) {
  GZ_CHECK(max_weight >= 1);
  levels_.reserve(max_weight);
  for (uint32_t i = 1; i <= max_weight; ++i) {
    GraphZeppelinConfig level_config = config;
    level_config.instance_tag =
        config.instance_tag + "msf_level" + std::to_string(i);
    levels_.push_back(std::make_unique<GraphZeppelin>(level_config));
  }
}

Status MsfWeightSketch::Init() {
  for (auto& level : levels_) {
    Status s = level->Init();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void MsfWeightSketch::Update(const Edge& e, uint32_t weight,
                             UpdateType type) {
  GZ_CHECK_MSG(weight >= 1 && weight <= max_weight_,
               "edge weight out of configured range");
  // Edge of weight w belongs to every level graph G_i with i >= w.
  for (uint32_t i = weight; i <= max_weight_; ++i) {
    levels_[i - 1]->Update({e, type});
  }
}

MsfWeightResult MsfWeightSketch::Query() {
  MsfWeightResult result;
  // cc(G_i) for i = 1..W; G_0 is empty so cc(G_0) = V. Each level is
  // queried through its snapshot.
  std::vector<size_t> level_components(max_weight_);
  for (uint32_t i = 0; i < max_weight_; ++i) {
    const ConnectivityResult cc = Connectivity(
        levels_[i]->Snapshot(), levels_[i]->config().query_threads);
    if (cc.failed) {
      result.failed = true;
      return result;
    }
    level_components[i] = cc.num_components;
  }
  const size_t cc_full = level_components[max_weight_ - 1];
  result.num_components = cc_full;
  // weight = sum_{i=0}^{W-1} (cc(G_i) - cc(G)); the i = 0 term is the
  // n - cc(G) tree-edge count.
  uint64_t weight = num_nodes_ - cc_full;
  for (uint32_t i = 1; i < max_weight_; ++i) {
    weight += level_components[i - 1] - cc_full;
  }
  result.weight = weight;
  return result;
}

}  // namespace gz
