// Bridge finding and 2-edge-connected components on explicit edge
// lists (Tarjan low-link DFS). Combined with the k=2 spanning-forest
// certificate from algos/spanning_forests.h this answers
// 2-edge-connectivity queries on sketched graph streams: the
// certificate preserves all cuts of size <= 2, so its bridges are
// exactly the bridges of the streamed graph.
#ifndef GZ_ALGOS_BRIDGES_H_
#define GZ_ALGOS_BRIDGES_H_

#include <cstdint>
#include <vector>

#include "stream/stream_types.h"

namespace gz {

// All bridges (cut edges) of the graph defined by `edges`.
EdgeList FindBridges(uint64_t num_nodes, const EdgeList& edges);

// Label per node: two nodes share a label iff they are in the same
// 2-edge-connected component (connected after removing all bridges;
// isolated vertices get singleton labels).
std::vector<NodeId> TwoEdgeConnectedComponents(uint64_t num_nodes,
                                               const EdgeList& edges);

}  // namespace gz

#endif  // GZ_ALGOS_BRIDGES_H_
