// Streaming bipartiteness testing via the AGM doubled-graph reduction —
// one of the applications the paper lists for CubeSketch (Section 3.1).
//
// Reduction: build G' on 2V vertices where edge {u, v} of G becomes
// {u, v+V} and {v, u+V}. A connected component C of G is bipartite iff
// its doubled vertex set {u, u+V : u in C} splits into exactly two
// components of G'; an odd cycle fuses them into one. Both graphs are
// maintained as GraphZeppelin sketch streams, so inserts and deletes
// are supported and space stays O(V log^3 V).
#ifndef GZ_ALGOS_BIPARTITENESS_H_
#define GZ_ALGOS_BIPARTITENESS_H_

#include <memory>
#include <vector>

#include "core/graph_snapshot.h"
#include "core/graph_zeppelin.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct BipartitenessResult {
  bool failed = false;       // Sketch failure in either underlying query.
  bool whole_graph_bipartite = false;
  // Per-component verdicts, aligned with `component_of` labels from the
  // primal connectivity result.
  std::vector<NodeId> component_of;       // Primal component labels.
  std::vector<bool> component_bipartite;  // Indexed by vertex id.
};

// The verdict computed from a (primal, doubled) snapshot pair — the
// query half of the reduction, decoupled from sketch maintenance so a
// remote reader (gz_query against two served clusters) can run it on
// snapshots it pulled over the wire. `doubled` must have exactly twice
// the primal node count and is checked; sketch failure in either
// connectivity query sets `failed`.
BipartitenessResult BipartitenessFromSnapshots(const GraphSnapshot& primal,
                                               const GraphSnapshot& doubled,
                                               int num_threads = 1);

class BipartitenessSketch {
 public:
  // `config` describes the primal graph; the doubled instance derives
  // from it (2x nodes, independent seed).
  explicit BipartitenessSketch(const GraphZeppelinConfig& config);

  Status Init();

  // Ingests one primal stream update (insert or delete).
  void Update(const GraphUpdate& update);

  BipartitenessResult Query();

  uint64_t num_nodes() const { return num_nodes_; }

 private:
  uint64_t num_nodes_;
  std::unique_ptr<GraphZeppelin> primal_;
  std::unique_ptr<GraphZeppelin> doubled_;
};

}  // namespace gz

#endif  // GZ_ALGOS_BIPARTITENESS_H_
