#include "algos/bipartiteness.h"

#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/xxhash.h"

namespace gz {

BipartitenessSketch::BipartitenessSketch(const GraphZeppelinConfig& config)
    : num_nodes_(config.num_nodes) {
  GZ_CHECK(config.num_nodes >= 2);
  primal_ = std::make_unique<GraphZeppelin>(config);
  GraphZeppelinConfig doubled_config = config;
  doubled_config.num_nodes = 2 * config.num_nodes;
  doubled_config.seed = XxHash64Word(config.seed, 0x62697061ULL);
  doubled_ = std::make_unique<GraphZeppelin>(doubled_config);
}

Status BipartitenessSketch::Init() {
  Status s = primal_->Init();
  if (!s.ok()) return s;
  return doubled_->Init();
}

void BipartitenessSketch::Update(const GraphUpdate& update) {
  primal_->Update(update);
  const NodeId u = update.edge.u;
  const NodeId v = update.edge.v;
  const NodeId shift = static_cast<NodeId>(num_nodes_);
  doubled_->Update({Edge(u, static_cast<NodeId>(v + shift)), update.type});
  doubled_->Update({Edge(v, static_cast<NodeId>(u + shift)), update.type});
}

BipartitenessResult BipartitenessFromSnapshots(const GraphSnapshot& primal,
                                               const GraphSnapshot& doubled,
                                               int num_threads) {
  const uint64_t num_nodes = primal.params().num_nodes;
  GZ_CHECK(doubled.params().num_nodes == 2 * num_nodes);
  BipartitenessResult result;
  const ConnectivityResult primal_cc = Connectivity(primal, num_threads);
  const ConnectivityResult doubled_cc = Connectivity(doubled, num_threads);
  if (primal_cc.failed || doubled_cc.failed) {
    result.failed = true;
    return result;
  }
  result.component_of = primal_cc.component_of;
  result.component_bipartite.assign(num_nodes, true);

  // Component C is bipartite iff {u, u+V : u in C} spans exactly two
  // doubled components. Count distinct doubled labels per primal label.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> doubled_labels;
  for (NodeId u = 0; u < num_nodes; ++u) {
    auto& labels = doubled_labels[primal_cc.component_of[u]];
    labels.insert(doubled_cc.component_of[u]);
    labels.insert(doubled_cc.component_of[u + num_nodes]);
  }

  result.whole_graph_bipartite = true;
  for (NodeId u = 0; u < num_nodes; ++u) {
    const auto& labels = doubled_labels[primal_cc.component_of[u]];
    // Singleton primal components have two isolated doubled vertices
    // (labels = 2) and are trivially bipartite; an odd cycle fuses the
    // doubled copies into one component (labels = 1).
    const bool bipartite = labels.size() == 2;
    result.component_bipartite[u] = bipartite;
    if (!bipartite) result.whole_graph_bipartite = false;
  }
  return result;
}

BipartitenessResult BipartitenessSketch::Query() {
  // Both instances are queried through their snapshots; the doubled
  // graph's snapshot could equally be shipped elsewhere and queried
  // there, since GraphSnapshot is self-describing — that is exactly
  // what gz_query does against a pair of served clusters.
  return BipartitenessFromSnapshots(primal_->Snapshot(), doubled_->Snapshot(),
                                    primal_->config().query_threads);
}

}  // namespace gz
