#include "algos/bridges.h"

#include <algorithm>

#include "dsu/dsu.h"
#include "util/check.h"

namespace gz {
namespace {

struct Arc {
  NodeId to;
  uint32_t edge_id;
};

// DFS stack frame for the iterative low-link computation.
struct Frame {
  NodeId node;
  uint32_t parent_edge;  // Edge id used to reach `node` (UINT32_MAX at roots).
  size_t next_arc;       // Index into adjacency[node] to resume from.
};

}  // namespace

EdgeList FindBridges(uint64_t num_nodes, const EdgeList& edges) {
  GZ_CHECK(edges.size() < UINT32_MAX);
  std::vector<std::vector<Arc>> adjacency(num_nodes);
  for (uint32_t id = 0; id < edges.size(); ++id) {
    const Edge& e = edges[id];
    GZ_CHECK(e.v < num_nodes);
    adjacency[e.u].push_back(Arc{e.v, id});
    adjacency[e.v].push_back(Arc{e.u, id});
  }

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> disc(num_nodes, kUnvisited);
  std::vector<uint32_t> low(num_nodes, 0);
  uint32_t timer = 0;
  EdgeList bridges;
  std::vector<Frame> stack;

  for (NodeId root = 0; root < num_nodes; ++root) {
    if (disc[root] != kUnvisited) continue;
    stack.push_back(Frame{root, UINT32_MAX, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_arc < adjacency[frame.node].size()) {
        const Arc arc = adjacency[frame.node][frame.next_arc++];
        if (arc.edge_id == frame.parent_edge) continue;  // Tree edge back.
        if (disc[arc.to] == kUnvisited) {
          disc[arc.to] = low[arc.to] = timer++;
          stack.push_back(Frame{arc.to, arc.edge_id, 0});
        } else {
          // Back edge: pull the ancestor's discovery time into low.
          low[frame.node] = std::min(low[frame.node], disc[arc.to]);
        }
      } else {
        // Post-order: propagate low to the parent and test the tree
        // edge for bridge-ness.
        const Frame done = frame;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.node] = std::min(low[parent.node], low[done.node]);
          if (low[done.node] > disc[parent.node]) {
            bridges.push_back(edges[done.parent_edge]);
          }
        }
      }
    }
  }
  return bridges;
}

std::vector<NodeId> TwoEdgeConnectedComponents(uint64_t num_nodes,
                                               const EdgeList& edges) {
  const EdgeList bridges = FindBridges(num_nodes, edges);
  // Union everything except the bridges.
  std::vector<Edge> sorted_bridges = bridges;
  std::sort(sorted_bridges.begin(), sorted_bridges.end());
  Dsu dsu(num_nodes);
  for (const Edge& e : edges) {
    if (std::binary_search(sorted_bridges.begin(), sorted_bridges.end(), e)) {
      continue;
    }
    dsu.Union(e.u, e.v);
  }
  std::vector<NodeId> labels(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    labels[i] = static_cast<NodeId>(dsu.Find(i));
  }
  return labels;
}

}  // namespace gz
