// ShardEndpoint: where a shard lives, as a first-class value. The
// coordinator no longer assumes every shard is a child it forked; an
// endpoint names the substrate, and the Transport layer (see
// shard_transport.h) turns it into a connected socket.
//
// URI grammar:
//   "local:"              fork/exec gz_shard over a socketpair (the
//                         default; "" means the same)
//   "tcp://host:port"     connect to a running `gz_shard --listen`
//                         (host is a name or IPv4 literal; port 1-65535)
#ifndef GZ_DISTRIBUTED_SHARD_ENDPOINT_H_
#define GZ_DISTRIBUTED_SHARD_ENDPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gz {

struct ShardEndpoint {
  enum class Kind {
    kLocal,  // Fork/exec over a socketpair.
    kTcp,    // TCP connect to a listener-mode gz_shard.
  };

  Kind kind = Kind::kLocal;
  std::string host;    // kTcp only.
  uint16_t port = 0;   // kTcp only.

  static ShardEndpoint Local() { return ShardEndpoint{}; }
  static ShardEndpoint Tcp(std::string host, uint16_t port) {
    ShardEndpoint e;
    e.kind = Kind::kTcp;
    e.host = std::move(host);
    e.port = port;
    return e;
  }

  bool local() const { return kind == Kind::kLocal; }

  // Canonical URI form ("local:" or "tcp://host:port").
  std::string ToString() const;

  friend bool operator==(const ShardEndpoint& a, const ShardEndpoint& b) {
    return a.kind == b.kind && a.host == b.host && a.port == b.port;
  }
};

// Parses the grammar above. "" parses as local: so endpoint lists can
// leave slots unset. InvalidArgument on anything else.
Result<ShardEndpoint> ParseShardEndpoint(const std::string& uri);

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_ENDPOINT_H_
