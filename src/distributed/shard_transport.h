// Transport abstraction under ShardCluster: one connected, authenticated
// stream socket per shard, created from a ShardEndpoint. The cluster
// sees only this interface — where the bytes go (a forked child over a
// socketpair, a TCP listener on another machine) is the transport's
// business, and the protocol state machines above never branch on it.
//
//   Connect()    establish the connection (fork/exec or TCP connect)
//                and run the client half of the authenticated
//                handshake. Re-callable after Terminate() — that is
//                what RestartShard does.
//   Alive()      the substrate still exists (child not reaped /
//                connection open). Liveness of the *shard logic* is
//                the cluster's health check (PING), not ours.
//   Terminate()  hard-stop: SIGKILL + reap for a local child,
//                connection abort for a TCP shard (the listener drops
//                its instance and returns to accept — the same state
//                loss a SIGKILL inflicts, recovered the same way:
//                Connect() + checkpoint restore + replay).
#ifndef GZ_DISTRIBUTED_SHARD_TRANSPORT_H_
#define GZ_DISTRIBUTED_SHARD_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "distributed/shard_endpoint.h"
#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual Status Connect() = 0;
  virtual bool Alive() = 0;
  virtual void Terminate() = 0;
  virtual int fd() const = 0;
  // Human-readable target for error messages ("local:gz_shard",
  // "tcp://host:port").
  virtual std::string Describe() const = 0;

  // Sends one request and awaits its kAck reply (via RecvReply, so a
  // kError reply decodes into the shard's Status and transport
  // failures are IoError). UPDATE_BATCH is fire-and-forget: use Send*
  // directly, no reply.
  Status CallAck(ShardMessageType type, const void* payload,
                 size_t payload_bytes, ShardAck* ack);

 protected:
  ShardFrame reply_buf_;  // Reused across CallAck()s.
};

// Everything a transport needs besides the endpoint itself. The same
// secret is pinned into local children's environment (never argv —
// /proc exposes that world-readable) and proven to TCP listeners
// through the handshake, so one cluster speaks one secret.
struct ShardTransportOptions {
  std::string binary;       // gz_shard binary (local endpoints).
  std::string log_path;     // Child stderr destination (local endpoints).
  std::string auth_secret;  // Shared handshake secret ("" = open).
};

// Endpoint -> transport factory: local: -> ShardProcess (fork/exec,
// see shard_process.h), tcp:// -> TcpShardTransport.
std::unique_ptr<ShardTransport> MakeShardTransport(
    const ShardEndpoint& endpoint, const ShardTransportOptions& options);

// ---- Child-process plumbing shared by ShardProcess and ListenerShard ------

// fork/execs `binary` with the given argv tail, stderr appended to
// `log_path` (empty = inherit), and GZ_SHARD_AUTH_SECRET pinned in the
// child's environment — never argv, which is world-readable through
// /proc/<pid>/cmdline, and always set (even empty) so an inherited
// env var can't silently override the coordinator's secret.
// `inherit_fd` (if >= 0) is left open for the child; everything
// cluster-side is CLOEXEC.
Result<pid_t> SpawnShardChild(const std::string& binary,
                              const std::vector<std::string>& args,
                              const std::string& log_path,
                              const std::string& auth_secret,
                              int inherit_fd = -1);

// waitpid bookkeeping: true while the child has neither exited nor
// been reaped (`*reaped` tracks the reap across calls).
bool ShardChildRunning(pid_t pid, bool* reaped);
// SIGKILL + blocking reap; idempotent via `*reaped`.
void KillShardChild(pid_t pid, bool* reaped);

// Attaches to a running `gz_shard --listen`. Connect() retries briefly
// while the listener finishes a previous session (its accept loop
// serves one connection at a time), sets TCP_NODELAY (the barrier RPCs
// are latency-bound), and authenticates.
class TcpShardTransport : public ShardTransport {
 public:
  // `role` is the session role the handshake declares: kWriter (the
  // default — what the coordinator is) or kReader (a serving-tier
  // session, restricted to read-only frames; see QuerySession).
  TcpShardTransport(ShardEndpoint endpoint, std::string auth_secret,
                    ShardSessionRole role = ShardSessionRole::kWriter);
  ~TcpShardTransport() override;
  TcpShardTransport(const TcpShardTransport&) = delete;
  TcpShardTransport& operator=(const TcpShardTransport&) = delete;

  Status Connect() override;
  bool Alive() override { return fd_ >= 0; }
  void Terminate() override;
  int fd() const override { return fd_; }
  std::string Describe() const override { return endpoint_.ToString(); }

 private:
  ShardEndpoint endpoint_;
  std::string auth_secret_;
  ShardSessionRole role_ = ShardSessionRole::kWriter;
  int fd_ = -1;
};

// Test/bench harness for listener-mode shards: fork/execs
// `gz_shard --listen 127.0.0.1:0` on this machine, waits for the
// kernel-assigned port (the child publishes it through --port-file),
// and exposes the tcp:// endpoint to dial. Production deployments
// start listeners themselves; this exists so loopback-TCP suites and
// benches stand up real ones.
class ListenerShard {
 public:
  ListenerShard() = default;
  ~ListenerShard();
  ListenerShard(const ListenerShard&) = delete;
  ListenerShard& operator=(const ListenerShard&) = delete;

  // `scratch_dir` hosts the transient port file; `log_path` receives
  // the listener's stderr (empty = inherit).
  Status Start(const std::string& binary, const std::string& scratch_dir,
               const std::string& log_path, const std::string& auth_secret);
  // SIGKILL + reap; idempotent. (An orderly exit happens on its own
  // when a coordinator sends kShutdown — Stop() then just reaps.)
  void Stop();
  bool Running();

  uint16_t port() const { return port_; }
  std::string endpoint() const {
    return "tcp://127.0.0.1:" + std::to_string(port_);
  }

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  uint16_t port_ = 0;
};

// Fleet sugar over ListenerShard, shared by the TCP-parameterized
// suites and benches: stands up `count` listeners (logs at
// <log_prefix><i>.log when a prefix is given) and appends their
// tcp:// endpoints to *endpoints. Fails on the FIRST listener that
// cannot start, naming it — a port-0 placeholder leaking into a
// cluster config would fail far from the cause.
Status StartListenerShards(const std::string& binary, int count,
                           const std::string& scratch_dir,
                           const std::string& log_prefix,
                           const std::string& auth_secret,
                           std::vector<std::unique_ptr<ListenerShard>>* fleet,
                           std::vector<std::string>* endpoints);

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_TRANSPORT_H_
