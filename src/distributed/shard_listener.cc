#include "distributed/shard_listener.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gz {
namespace {

// Best-effort refusal on a socket we are about to close: arm a short
// send deadline so a peer that never reads cannot stall the caller,
// send the kError, and let the caller close. The refused peer is still
// inside its client handshake, whose reply path decodes kError frames
// into a clean Status.
void RefuseAndClose(int fd, const Status& error) {
  SetShardSocketTimeout(fd, 2);
  const std::vector<uint8_t> payload = EncodeShardError(error);
  SendFrame(fd, ShardMessageType::kError, payload.data(), payload.size());
  ::close(fd);
}

}  // namespace

ShardListener::~ShardListener() {
  // Run() joins all sessions before returning, so only fds remain.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

Status ShardListener::Bind() {
  const std::string& listen = options_.listen;
  const size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("listen address wants host:port, got \"" +
                                   listen + "\"");
  }
  const std::string host = listen.substr(0, colon);
  const std::string port = listen.substr(colon + 1);

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + listen + ": " +
                                   ::gai_strerror(rc));
  }
  for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    listen_fd_ = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (listen_fd_ < 0) continue;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, a->ai_addr, a->ai_addrlen) == 0) break;
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::freeaddrinfo(addrs);
  if (listen_fd_ < 0 || ::listen(listen_fd_, 16) != 0) {
    const Status s = Status::IoError("cannot listen on " + listen + ": " +
                                     std::strerror(errno));
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return s;
  }
  struct sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port_ =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError(std::string("cannot create stop pipe: ") +
                           std::strerror(errno));
  }
  if (!options_.port_file.empty()) {
    // Write-then-rename so a polling harness never reads a half-written
    // file.
    const std::string tmp = options_.port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("cannot write port file " + tmp);
    }
    std::fprintf(f, "%u\n", port_);
    std::fclose(f);
    if (::rename(tmp.c_str(), options_.port_file.c_str()) != 0) {
      return Status::IoError("cannot publish port file " +
                             options_.port_file);
    }
  }
  return Status::Ok();
}

void ShardListener::RunSession(Session* session) {
  const int fd = session->fd;
  // Pre-auth work happens HERE, on the session's own thread: a peer
  // that stalls mid-handshake burns one bounded slot for at most the
  // handshake deadline, never the accept loop.
  ShardSessionRole role = ShardSessionRole::kWriter;
  Status s = ServerHandshake(fd, options_.auth_secret, &role);
  if (!s.ok()) {
    std::fprintf(stderr, "gz_shard: session refused: %s\n",
                 s.ToString().c_str());
    session->done.store(true);
    return;
  }
  if (role == ShardSessionRole::kWriter) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A coordinator that drops its connection and immediately
      // redials (kill + restart, replica repair) races the OLD writer
      // session thread, which may not have observed the EOF yet. The
      // handover is legitimate, so wait briefly for the doomed slot to
      // drain; a writer that is genuinely alive keeps the slot claimed
      // past the grace period and the newcomer is refused as before.
      writer_cv_.wait_for(lock, std::chrono::seconds(10), [this] {
        return !writer_active_ || stopping_;
      });
      if (writer_active_ || stopping_) {
        // The slot is claimed post-handshake: only an AUTHENTICATED
        // second coordinator draws this refusal, and it arrives as the
        // reply to its first request, decoded like any shard error.
        const std::vector<uint8_t> payload = EncodeShardError(
            Status::FailedPrecondition(
                "a writer session is already active on this shard"));
        SendFrame(fd, ShardMessageType::kError, payload.data(),
                  payload.size());
        session->done.store(true);
        return;
      }
      writer_active_ = true;
    }
    s = ShardServer(fd, &state_, ShardSessionRole::kWriter,
                    options_.reader_timeout_seconds)
            .Serve();
    std::lock_guard<std::mutex> lock(mu_);
    writer_active_ = false;
    writer_cv_.notify_all();
    if (s.ok()) {
      // Orderly kShutdown: retire the whole listener.
      shutdown_requested_ = true;
      const char byte = 's';
      (void)!::write(stop_pipe_[1], &byte, 1);
    } else {
      // Writer gone mid-session: the instance is discarded — exactly
      // the state loss of a SIGKILLed local shard, recovered by the
      // coordinator the same way (reconnect + restore + replay).
      // Readers keep their sessions and observe an unconfigured shard.
      std::lock_guard<std::mutex> state_lock(state_.mutex);
      state_.Reset();
      std::fprintf(
          stderr,
          "gz_shard: writer session ended (%s); instance discarded\n",
          s.ToString().c_str());
    }
  } else {
    s = ShardServer(fd, &state_, ShardSessionRole::kReader,
                    options_.reader_timeout_seconds)
            .Serve();
    // Reader disconnects are unremarkable by design; nothing to reset.
  }
  session->done.store(true);
}

size_t ShardListener::SweepSessionsLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->done.load()) {
      it->thread.join();
      ::close(it->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return sessions_.size();
}

Status ShardListener::Run() {
  while (true) {
    struct pollfd pfds[2];
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = stop_pipe_[0];
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    if (::poll(pfds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // Writer-driven shutdown.
    if (pfds[0].revents == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::fprintf(stderr, "gz_shard: accept: %s\n", std::strerror(errno));
      break;
    }
    TuneShardSocket(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (SweepSessionsLocked() >=
        static_cast<size_t>(options_.max_sessions)) {
      RefuseAndClose(
          fd, Status(StatusCode::kResourceExhausted,
                     "shard session limit reached (" +
                         std::to_string(options_.max_sessions) + ")"));
      continue;
    }
    sessions_.emplace_back();
    Session* session = &sessions_.back();
    session->fd = fd;
    session->thread = std::thread([this, session] { RunSession(session); });
  }
  // Wind-down: stop accepting, then break every live session out of
  // its blocking read (shutdown(2) makes reads return 0 => the session
  // loop exits with an IoError) and join.
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    // Subscription loops block on the instance condvar, not a read, so
    // shutdown(2) alone does not wake them — flag the wind-down and
    // signal so they exit on their next predicate check.
    std::lock_guard<std::mutex> state_lock(state_.mutex);
    state_.winding_down = true;
    state_.position_cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  writer_cv_.notify_all();  // Break any writer waiting on the slot.
  for (Session& s : sessions_) {
    if (!s.done.load()) ::shutdown(s.fd, SHUT_RDWR);
  }
  // Join OUTSIDE the lock: a session draining out of the writer-slot
  // wait (or clearing the slot after Serve) needs mu_ to exit. The
  // accept loop is gone, so sessions_ cannot grow under us.
  lock.unlock();
  for (Session& s : sessions_) {
    s.thread.join();
    ::close(s.fd);
  }
  lock.lock();
  sessions_.clear();
  const bool orderly = shutdown_requested_;
  lock.unlock();
  return orderly ? Status::Ok()
                 : Status::IoError("shard listener stopped without an "
                                   "orderly shutdown");
}

}  // namespace gz
