// Wire protocol between the ShardCluster coordinator and gz_shard
// worker processes: length-prefixed binary frames over any stream
// socket — a socketpair to a forked child or a TCP connection to a
// `gz_shard --listen` on another machine (see shard_endpoint.h /
// shard_transport.h). The coordinator and server state machines never
// learn where the bytes come from; everything transport-specific —
// framing integrity, peer authentication — lives here.
//
// Frame (v3) = 16-byte header (magic, version, message type, payload
// bytes) + payload + a 4-byte CRC32C trailer over header AND payload.
// The receiver verifies the checksum before any payload decode; a
// mismatch is a Status error and, because the stream can no longer be
// trusted byte-for-byte, the connection is fenced. Updates travel as
// flat GraphUpdate slabs — the exact in-memory layout the PR 1
// pooled-batch pipeline routes, so the coordinator frames a routing
// buffer with scatter-gather I/O and never copies it — and snapshots
// travel as GraphSnapshot::Serialize bytes, the same self-describing
// format checkpoint files use.
//
// Sessions open with a challenge–response HELLO handshake keyed by a
// shared secret (HMAC-SHA256 over fresh nonces, mutual): an untrusted
// network cannot inject UPDATE_BATCHes, and a coordinator cannot be
// fed state by an impostor shard. The handshake runs on every
// connection — an empty secret keeps the frame flow identical for
// trusted socketpairs — and until it completes a server accepts no
// other frame.
//
// Everything here returns Status: a malformed, truncated, corrupted or
// version-mismatched frame is an error on whichever side read it, never
// a crash. Once a header fails validation the byte stream has lost
// framing, so the connection is considered dead.
#ifndef GZ_DISTRIBUTED_SHARD_PROTOCOL_H_
#define GZ_DISTRIBUTED_SHARD_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_zeppelin.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

// GraphUpdate slabs cross the process boundary as raw bytes; pin the
// layout the two sides must agree on.
static_assert(sizeof(GraphUpdate) == 12, "wire layout of GraphUpdate");

enum class ShardMessageType : uint16_t {
  // Coordinator -> shard.
  kConfig = 1,       // Config payload; shard Init()s (+ checkpoint restore).
  kUpdateBatch = 2,  // u64 routing epoch + flat GraphUpdate slab.
                     // Fire-and-forget (no reply).
  kFlush = 3,        // Drain gutters + workers.
  kSnapshot = 4,     // Reply: kSnapshotBytes.
  kCheckpoint = 5,   // Payload: file path. Shard saves a checkpoint.
  kStats = 6,        // Reply: kAck{num_updates, ram_bytes}.
  kPing = 7,         // Health probe.
  kShutdown = 8,     // Orderly exit; shard acks, then terminates.
  // Shard -> coordinator.
  kAck = 9,            // Two u64 values; meaning depends on the request.
  kSnapshotBytes = 10,  // GraphSnapshot::Serialize payload.
  kError = 11,          // u32 StatusCode + message string.
  // Elastic resharding (coordinator -> shard, except kMigrateData).
  kEpoch = 12,           // RoutingTable payload; shard adopts the new
                         // epoch. Reply: kAck{num_updates, delta_seq}.
  kMigrateExtract = 13,  // Two u64s [lo, hi): serialize that node range
                         // of the shard's state. Reply: kMigrateData.
  kMergeDelta = 14,      // Node-range delta payload; shard XOR-folds it
                         // in. Reply: kAck{num_updates, delta_seq}.
  kMigrateData = 15,     // Shard -> coordinator: serialized node-range
                         // delta (GraphSnapshot range format).
  // Handshake (first frames on every connection; see Client/Server
  // Handshake below).
  kHello = 16,      // Client -> shard: 16-byte client nonce, optionally
                    // followed by one role byte (absent = writer; see
                    // ShardSessionRole below).
  kChallenge = 17,  // Shard -> client: 16-byte server nonce +
                    // 32-byte server proof.
  kAuth = 18,       // Client -> shard: 32-byte client proof.
                    // Reply: kAck on success, kError on mismatch.
  // Serving tier (any session -> shard).
  kStatsEx = 19,    // Empty payload. Reply: kStatsReply — the extended
                    // stats the snapshot cache keys on (kStats keeps
                    // its two-u64 kAck reply for wire compatibility).
  kStatsReply = 20,  // Shard -> client: ShardStatsEx payload.
  // Replication (coordinator -> shard, writer session only).
  kSyncPosition = 21,  // Two u64s {num_updates, delta_seq}: the
                       // coordinator asserts the shard's logical
                       // position after an anti-entropy repair, so a
                       // rejoined replica's watermark matches its
                       // (repaired) content. Reply: kAck.
  // Standing queries (reader session only).
  kSubscribe = 22,  // Empty payload. Converts the reader session into a
                    // server-push notify stream: the shard replies with
                    // one immediate kNotify (the current position) and
                    // from then on pushes a kNotify whenever the
                    // shard's serving position changes (coalesced — a
                    // burst of changes may yield one frame carrying the
                    // latest position). The client sends nothing more
                    // on the connection; any byte it does send (or its
                    // EOF) ends the subscription. On a writer session,
                    // or on an unconfigured/diverged shard, the reply
                    // is kError and the session continues unconverted.
  kNotify = 23,     // Shard -> subscriber: ShardStatsEx payload, the
                    // position that changed. Never a valid request.
  // Heavy hitters (any session -> shard).
  kHeavyHitters = 24,  // Empty payload. Reply: kHeavyHitterBytes with
                       // the shard's serialized HeavyHitterSketch
                       // (workloads/count_min.h), or kError when the
                       // shard was configured with tracking off
                       // (heavy_hitter_width == 0).
  kHeavyHitterBytes = 25,  // Shard -> client: HeavyHitterSketch::
                           // Serialize payload. Linear, so the
                           // coordinator sum-merges per-shard replies
                           // into the exact whole-stream sketch.
};

// Session role, declared in the HELLO frame and bound into the
// handshake proofs (distinct HMAC domains per role, so a flipped role
// byte fails authentication rather than silently escalating). A writer
// session is the coordinator: full protocol, its disconnect discards
// the shard instance. A reader session may only observe — kPing /
// kStats / kStatsEx / kSnapshot / kMigrateExtract — and its disconnect
// never touches the instance.
enum class ShardSessionRole : uint8_t {
  kWriter = 0,
  kReader = 1,
};

struct ShardFrameHeader {
  static constexpr uint32_t kMagic = 0x50535A47;  // "GZSP" little-endian.
  static constexpr uint16_t kVersion = 3;  // v3: CRC32C trailer + auth.
  static constexpr size_t kBytes = 16;
  // CRC32C over header + payload, appended after the payload.
  static constexpr size_t kCrcBytes = 4;
  // Caps a garbage length field. Sized for legitimate big snapshots,
  // so it does not alone bound allocations — RecvFrame additionally
  // converts an allocation failure into a Status instead of letting
  // bad_alloc terminate the process.
  static constexpr uint64_t kMaxPayloadBytes = 1ULL << 33;

  ShardMessageType type = ShardMessageType::kPing;
  uint64_t payload_bytes = 0;
};

// A received frame; `payload` is reused across RecvFrame calls.
struct ShardFrame {
  ShardMessageType type = ShardMessageType::kPing;
  std::vector<uint8_t> payload;
};

// ---- Frame I/O ------------------------------------------------------------
// All calls handle partial reads/writes and EINTR; writes suppress
// SIGPIPE (a dead peer surfaces as an IoError, not a signal). Every
// send computes and appends the CRC32C trailer; RecvFrame verifies it
// before the payload reaches any decoder.

// Sends one frame: header + optional payload (+ trailer).
Status SendFrame(int fd, ShardMessageType type, const void* payload,
                 size_t payload_bytes);

// Scatter-gather send: header + two payload spans + trailer in one
// sendmsg, so a routing buffer is framed without being copied (span b
// may be empty).
Status SendFrame2(int fd, ShardMessageType type, const void* a,
                  size_t a_bytes, const void* b, size_t b_bytes);

// Running checksum of a streamed frame. SendFrameHeader seeds it with
// the header bytes; the caller folds every payload piece it writes,
// then closes the frame with SendFrameTrailer.
class FrameCrc {
 public:
  void Fold(const void* data, size_t size);
  uint32_t value() const { return crc_; }

 private:
  uint32_t crc_ = 0;
};

// Sends just the header, seeding `crc`; the caller streams
// `payload_bytes` of payload afterwards with WriteFull — folding each
// piece into `crc` — and finishes with SendFrameTrailer (how a shard
// streams a snapshot reply without materializing it).
Status SendFrameHeader(int fd, ShardMessageType type, uint64_t payload_bytes,
                       FrameCrc* crc);
Status SendFrameTrailer(int fd, const FrameCrc& crc);

// Receives one frame into `frame` (payload buffer reused). Fails with
// InvalidArgument on bad magic / version / type / oversized length /
// checksum mismatch — all before any payload decode — and IoError on
// EOF or a truncated payload.
Status RecvFrame(int fd, ShardFrame* frame);

// RecvFrame with an explicit allocation cap, for contexts where the
// peer is not entitled to command a protocol-cap-sized allocation: the
// pre-auth handshake, and reader sessions (whose requests are tiny and
// fixed-shape for their whole lifetime).
Status RecvFrameCapped(int fd, ShardFrame* frame, uint64_t max_payload);

// The reader-session receive cap: every read-only request (PING,
// STATS, STATS_EX, SNAPSHOT, MIGRATE_EXTRACT) fits with room to spare.
constexpr uint64_t kReaderMaxRequestBytes = 4096;

// Receives one *reply* frame and classifies it — the one reply-handling
// policy every coordinator-side call site shares. Returns Ok when the
// reply is a well-formed `expected` frame. A well-formed kError reply
// returns the shard's decoded Status with *in_sync = true: the request
// failed but the 1:1 request/reply stream is intact, so the connection
// stays usable. Transport failures, framing errors, malformed error
// payloads and unexpected frame types return with *in_sync = false:
// the connection can no longer be trusted.
Status RecvReply(int fd, ShardMessageType expected, ShardFrame* frame,
                 bool* in_sync);

// Raw full-buffer I/O on the socket (EINTR-safe, SIGPIPE-suppressed).
Status WriteFull(int fd, const void* data, size_t size);
Status ReadFull(int fd, void* data, size_t size);

// Session-socket tuning, applied identically by BOTH ends of a tcp://
// shard link (coordinator transport and listener): TCP_NODELAY (the
// barrier RPCs are latency-bound) and keepalive probes tuned for ~2
// minute detection, so a peer host that vanishes without a FIN cannot
// wedge a blocking read forever. No-op on non-TCP fds.
void TuneShardSocket(int fd);

// Arms SO_RCVTIMEO + SO_SNDTIMEO (seconds) on a session socket; 0
// clears both. Used for the pre-auth handshake deadline and for reader
// sessions' per-read deadline. Fails silently on non-socket fds.
void SetShardSocketTimeout(int fd, int seconds);

// ---- Authenticated handshake ----------------------------------------------
// Challenge–response, mutual, keyed by a shared secret:
//
//   coordinator                          shard
//     HELLO { c = nonce16 }      ──▶
//                                ◀──    CHALLENGE { s = nonce16,
//                                         HMAC(secret, "srv" | c | s) }
//     verify server proof
//     AUTH { HMAC(secret,
//       "cli" | c | s) }         ──▶    verify client proof
//                                ◀──    ACK  (or ERROR + connection end)
//
// Nonces are fresh per connection, so neither proof replays, and the
// proofs bind both nonces, so they cannot be spliced across sessions.
// Both sides run this before any other frame; a server refuses every
// non-handshake frame until its peer has proven the secret.
constexpr size_t kHandshakeNonceBytes = 16;

// Client side: returns Ok once the shard has proven the secret and
// acked ours. FailedPrecondition("authentication failed") on a proof
// mismatch; transport/framing errors pass through. A reader session
// appends its role byte to HELLO and proves under the reader HMAC
// domains; the default (writer) sends the bare 16-byte HELLO every v3
// coordinator already speaks.
Status ClientHandshake(int fd, const std::string& secret,
                       ShardSessionRole role = ShardSessionRole::kWriter);

// Shard side: serves one handshake. Replies kError and returns a
// non-OK status on any deviation — wrong first frame, bad proof —
// after which the caller must drop the connection. On success `*role`
// (when non-null) reports the authenticated session role.
Status ServerHandshake(int fd, const std::string& secret,
                       ShardSessionRole* role = nullptr);

// ---- Routing --------------------------------------------------------------

// The versioned routing table: the edge hash picks one of kNumSlots
// virtual slots (a power of two, so the reduction is a mask — no
// modulo bias for ANY shard count), and the table assigns each slot to
// a shard id. Elastic operations reassign slots and bump the epoch;
// the coordinator owns the table, ships it to shards in CONFIG/EPOCH
// frames, and stamps the epoch on every UPDATE_BATCH so a frame routed
// under a different table is detected, never silently ingested.
struct RoutingTable {
  static constexpr uint32_t kNumSlots = 256;
  // Shard ids are small non-negative integers; this caps what a wire
  // decode accepts (and what any deployment remotely needs).
  static constexpr int32_t kMaxShardId = 4096;
  // Caps the per-slot replica-set size a wire decode accepts.
  static constexpr uint32_t kMaxReplication = 8;

  uint64_t epoch = 0;  // 0 = unset; real tables start at 1.
  std::vector<int32_t> owners;  // kNumSlots entries: slot -> shard id.
  // Every slot's owner is served by `replication` copies: replica r of
  // shard s is the instance at endpoint index s * replication + r, and
  // replica 0 is the primary. 1 = unreplicated (the pre-replication
  // wire form and behavior, bit for bit). The replica set is derived,
  // not stored per slot: all slots of a shard share its replicas, so
  // elastic reassignment (add/split/remove) never touches this field.
  uint32_t replication = 1;

  friend bool operator==(const RoutingTable& a, const RoutingTable& b) {
    return a.epoch == b.epoch && a.owners == b.owners &&
           a.replication == b.replication;
  }
};

// Epoch-1 table for shards {0 .. num_shards-1}: slots dealt round-robin,
// so every shard owns floor or ceil of kNumSlots/num_shards slots.
RoutingTable MakeRoutingTable(int num_shards);

// The slot an edge hashes to; pure in (edge, num_nodes).
uint32_t RouteSlot(const Edge& e, uint64_t num_nodes);

// The shard an update belongs to: a pure function of (edge, table),
// shared by the in-process and process-backed coordinators, the shards
// themselves, and any external stream partitioner — all parties with
// the same table agree on every placement.
int RouteToShard(const Edge& e, uint64_t num_nodes,
                 const RoutingTable& table);

// Pure rebalance steps; each returns a table with epoch + 1. Together
// they maintain the invariant that EVERY live shard owns at least one
// slot (so the active set always equals TableOwners()): Added requires
// fewer than kNumSlots owners, Split requires the source to own at
// least two slots (checked — the elastic entry points guard both with
// Status errors first), and Removed therefore always finds an heir
// while any other shard remains.
// AddShard: the new shard takes slots from the current largest owners
// until ownership is balanced.
RoutingTable TableWithShardAdded(const RoutingTable& table, int new_shard);
// RemoveShard: the removed shard's slots are dealt to the remaining
// owners, smallest-ownership first.
RoutingTable TableWithShardRemoved(const RoutingTable& table, int removed);
// SplitShard: every second slot of `source` moves to `new_shard`.
RoutingTable TableWithShardSplit(const RoutingTable& table, int source,
                                 int new_shard);
// Slots `shard` owns in `table`; the entry-point guards above use it.
int TableSlotCount(const RoutingTable& table, int shard);
// Distinct shard ids owning at least one slot, ascending.
std::vector<int> TableOwners(const RoutingTable& table);

std::vector<uint8_t> EncodeRoutingTable(const RoutingTable& table);
Status DecodeRoutingTable(const uint8_t* data, size_t size,
                          RoutingTable* out);

// ---- Payload codecs -------------------------------------------------------

// kConfig payload: the shard's GraphZeppelinConfig, its shard id, the
// current routing table, plus an optional checkpoint path to restore
// from before serving.
struct ShardConfig {
  GraphZeppelinConfig config;
  int32_t shard_id = 0;
  RoutingTable table;
  std::string restore_checkpoint;  // Empty = fresh start.
};

std::vector<uint8_t> EncodeShardConfig(const ShardConfig& config);
// Tolerates no trailing garbage; InvalidArgument on any truncation.
Status DecodeShardConfig(const uint8_t* data, size_t size, ShardConfig* out);

// kAck payload: two u64s (request-specific meaning).
struct ShardAck {
  uint64_t value0 = 0;
  uint64_t value1 = 0;
};
std::vector<uint8_t> EncodeShardAck(const ShardAck& ack);
Status DecodeShardAck(const uint8_t* data, size_t size, ShardAck* out);

// kError payload: StatusCode + message, so a shard-side Status crosses
// the socket losslessly.
std::vector<uint8_t> EncodeShardError(const Status& status);
// Returns the *decoded* status (the shard's error); `decode_ok` reports
// whether the payload itself was well-formed.
Status DecodeShardError(const uint8_t* data, size_t size, bool* decode_ok);

// kMigrateExtract payload: the node range [lo, hi) to serialize.
std::vector<uint8_t> EncodeMigrateExtract(uint64_t lo, uint64_t hi);
Status DecodeMigrateExtract(const uint8_t* data, size_t size, uint64_t* lo,
                            uint64_t* hi);

// kSyncPosition payload: the coordinator-asserted logical position
// {num_updates, delta_seq} a repaired replica must report from now on.
std::vector<uint8_t> EncodeSyncPosition(uint64_t num_updates,
                                        uint64_t delta_seq);
Status DecodeSyncPosition(const uint8_t* data, size_t size,
                          uint64_t* num_updates, uint64_t* delta_seq);

// kStatsReply payload: everything a serving-tier client needs to key a
// snapshot cache and build same-params zero snapshots without ever
// having seen the shard's config. (epoch, num_updates, delta_seq) is
// the shard's watermark: num_updates counts ingested stream updates,
// delta_seq counts folded migration deltas — which change sketch
// content without changing the update count, so both are needed.
struct ShardStatsEx {
  int32_t shard_id = 0;
  uint64_t epoch = 0;
  uint64_t num_updates = 0;
  uint64_t delta_seq = 0;
  uint64_t ram_bytes = 0;
  // Sketch geometry (identical across a cluster by construction).
  uint64_t num_nodes = 0;
  uint64_t seed = 0;
  int32_t cols = 0;
  int32_t rounds = 0;
  // The routing table's replica count, so a reader session can group
  // its endpoints into replica sets and fail over within one.
  uint32_t replication = 1;
};
std::vector<uint8_t> EncodeShardStatsEx(const ShardStatsEx& stats);
Status DecodeShardStatsEx(const uint8_t* data, size_t size,
                          ShardStatsEx* out);

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_PROTOCOL_H_
