// Shard-side runtime: owns one GraphZeppelin instance and serves the
// shard protocol over a stream socket until kShutdown or a fatal
// framing error. The gz_shard tool is a thin main() around this class;
// keeping the loop in the library lets conformance tests drive it over
// an in-process socketpair, no fork required.
#ifndef GZ_DISTRIBUTED_SHARD_SERVER_H_
#define GZ_DISTRIBUTED_SHARD_SERVER_H_

#include <memory>

#include "core/graph_zeppelin.h"
#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

class ShardServer {
 public:
  // `fd` is the connected coordinator socket; not owned.
  explicit ShardServer(int fd) : fd_(fd) {}

  // Serves frames until an orderly kShutdown (returns Ok) or the
  // connection dies / loses framing (returns the error). Recoverable
  // request problems — an out-of-range update, a checkpoint path that
  // cannot be written, a request before kConfig — are answered with a
  // kError frame and the loop continues: a bad request must never take
  // the shard down.
  Status Serve();

 private:
  // Handlers reply on fd_ and return false only when the connection is
  // no longer usable.
  Status HandleConfig(const ShardFrame& frame);
  Status HandleUpdateBatch(const ShardFrame& frame);
  Status HandleSnapshot();
  Status HandleCheckpoint(const ShardFrame& frame);

  Status ReplyAck(uint64_t value0, uint64_t value1 = 0);
  Status ReplyError(const Status& error);

  int fd_;
  std::unique_ptr<GraphZeppelin> gz_;
  // A problem in a fire-and-forget UPDATE_BATCH cannot be answered
  // inline — an unsolicited reply would desynchronize the 1:1
  // request/reply stream — so it is recorded here and surfaces as the
  // kError reply to every later barrier. Sticky: a dropped batch is
  // permanent divergence, curable only by restart + replay.
  Status async_error_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_SERVER_H_
