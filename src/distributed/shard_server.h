// Shard-side runtime: owns one GraphZeppelin instance and serves the
// shard protocol over a stream socket until kShutdown or a fatal
// framing error. The gz_shard tool is a thin main() around this class;
// keeping the loop in the library lets conformance tests drive it over
// an in-process socketpair, no fork required.
//
// Sessions come in two roles (see ShardSessionRole): a *writer* — the
// coordinator, full protocol — and *readers*, which may only observe
// (PING / STATS / STATS_EX / SNAPSHOT / MIGRATE_EXTRACT /
// HEAVY_HITTERS; anything else draws a kError and the session
// continues). One ShardServer serves
// one session; when several sessions share a shard (the multi-session
// listener, shard_listener.h), they share one ShardInstanceState and
// every access to the instance goes through its mutex.
#ifndef GZ_DISTRIBUTED_SHARD_SERVER_H_
#define GZ_DISTRIBUTED_SHARD_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graph_zeppelin.h"
#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

// Shard checkpoint file: a fixed 24-byte header — magic, the routing
// epoch the shard was at, and its merge-delta sequence number — then
// the standard GraphSnapshot byte stream. The epoch makes a checkpoint
// self-describing across reshard operations (a restore under an OLDER
// coordinator table is refused), and the delta sequence number lets
// the coordinator reconcile which migration deltas the checkpoint
// already covers, exactly as the snapshot's update count reconciles
// the unacked update log.
struct ShardCheckpointHeader {
  static constexpr char kMagic[8] = {'G', 'Z', 'S', 'C', 'K', 'P', '0',
                                     '1'};
  static constexpr size_t kBytes = 24;

  uint64_t epoch = 0;
  uint64_t delta_seq = 0;
};

// The shard instance one or more sessions serve. Sessions lock `mutex`
// around every access; the writer session (or the listener, on writer
// disconnect) is the only party that configures or resets it.
struct ShardInstanceState {
  std::mutex mutex;
  std::unique_ptr<GraphZeppelin> gz;
  int32_t shard_id = -1;
  // The routing table this shard last adopted (CONFIG or EPOCH frame).
  // UPDATE_BATCH frames stamped with any other epoch are dropped: the
  // stamp proves coordinator and shard agree on the table a batch was
  // routed under. (Replayed batches are re-stamped by the coordinator
  // at send time, so a correct coordinator never trips this.)
  RoutingTable table;
  // Count of kMergeDelta frames applied since Init; persisted in the
  // checkpoint header so the coordinator can skip already-covered
  // deltas on restart replay.
  uint64_t delta_seq = 0;
  // A problem in a fire-and-forget UPDATE_BATCH cannot be answered
  // inline — an unsolicited reply would desynchronize the 1:1
  // request/reply stream — so it is recorded here and surfaces as the
  // kError reply to every later barrier (including migration and
  // serving requests: a diverged shard must not donate state or serve
  // stale answers). Sticky: a dropped batch is permanent divergence,
  // curable only by restart + replay.
  Status async_error;
  // Signaled (under `mutex`) on every serving-position change — ingest,
  // delta fold, position sync, epoch adoption, configure, reset — so
  // subscribed reader sessions (kSubscribe) push a kNotify instead of
  // the client polling. `position_changes` counts the signals, letting
  // a subscription wait on a predicate (no change can slip between its
  // payload build and its next wait). Also signaled with
  // `winding_down` set when the listener retires, so subscription
  // loops exit promptly.
  std::condition_variable position_cv;
  uint64_t position_changes = 0;
  bool winding_down = false;

  // Caller holds `mutex`.
  void NotifyPositionChanged() {
    ++position_changes;
    position_cv.notify_all();
  }

  // Back to the unconfigured state — what a writer disconnect on the
  // listener does (the exact state loss of a SIGKILLed local shard).
  // Caller holds `mutex`.
  void Reset() {
    gz.reset();
    shard_id = -1;
    table = RoutingTable();
    delta_seq = 0;
    async_error = Status::Ok();
    NotifyPositionChanged();  // Subscribers must learn of the loss.
  }
};

class ShardServer {
 public:
  // Single-session form: `fd` is the connected coordinator socket (not
  // owned); the instance state lives and dies with this server.
  // `auth_secret` keys the mandatory HELLO handshake — the peer must
  // prove it before any other frame is served ("" = open, for trusted
  // socketpairs).
  explicit ShardServer(int fd, std::string auth_secret = "")
      : fd_(fd),
        auth_secret_(std::move(auth_secret)),
        state_(&owned_state_) {}

  // Multi-session form: serves one session against a shared instance.
  // The caller (shard_listener.cc) has already run the handshake and
  // knows the role; `reader_timeout_seconds` arms the per-read
  // deadline a reader session runs under (a reader stalled mid-frame
  // must not hold its slot forever).
  ShardServer(int fd, ShardInstanceState* state, ShardSessionRole role,
              int reader_timeout_seconds)
      : fd_(fd),
        state_(state),
        role_(role),
        handshaken_(true),
        reader_timeout_seconds_(reader_timeout_seconds) {}

  // Runs the server half of the authenticated handshake (unless the
  // multi-session constructor marked it done), then serves frames until
  // an orderly kShutdown (returns Ok) or the connection dies / loses
  // framing / fails authentication (returns the error). Recoverable
  // request problems — an out-of-range update, a stale-epoch batch, a
  // checkpoint path that cannot be written, a request before kConfig, a
  // write-class frame on a reader session — are answered with a kError
  // frame (or deferred, for fire-and-forget frames) and the loop
  // continues: a bad request must never take the shard down.
  Status Serve();

 private:
  // Handlers reply on fd_ and return a non-OK status only when the
  // connection is no longer usable. All of them are called with
  // state_->mutex held; the reader-session handlers below materialize
  // their reply under the lock and stream it after release.
  Status HandleConfig(const ShardFrame& frame);
  Status HandleUpdateBatch(const ShardFrame& frame);
  Status HandleSnapshot();
  Status HandleCheckpoint(const ShardFrame& frame);
  Status HandleEpoch(const ShardFrame& frame);
  Status HandleMigrateExtract(const ShardFrame& frame);
  Status HandleMergeDelta(const ShardFrame& frame);
  Status HandleSyncPosition(const ShardFrame& frame);
  Status HandleStatsEx();
  Status HandleHeavyHitters();

  // One reader request: dispatch + materialize under the lock, stream
  // outside it (a slow reader must not hold the instance hostage).
  Status ServeReaderFrame(const ShardFrame& frame);

  // The notify stream a reader session becomes after kSubscribe: waits
  // on position_cv, pushes a kNotify whenever the serving position
  // differs from the last pushed one (`last_notified`, seeded with the
  // initial kNotify's payload), and exits when the subscriber hangs up
  // (any inbound byte or EOF), the instance winds down, or a send
  // fails. Never returns Ok — a subscription only ends with the
  // connection.
  Status ServeSubscription(std::vector<uint8_t> last_notified);

  Status ReplyAck(uint64_t value0, uint64_t value1 = 0);
  Status ReplyError(const Status& error);

  int fd_;
  std::string auth_secret_;
  ShardInstanceState owned_state_;  // Backs state_ in single-session form.
  ShardInstanceState* state_;
  ShardSessionRole role_ = ShardSessionRole::kWriter;
  bool handshaken_ = false;
  int reader_timeout_seconds_ = 30;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_SERVER_H_
