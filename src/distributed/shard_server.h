// Shard-side runtime: owns one GraphZeppelin instance and serves the
// shard protocol over a stream socket until kShutdown or a fatal
// framing error. The gz_shard tool is a thin main() around this class;
// keeping the loop in the library lets conformance tests drive it over
// an in-process socketpair, no fork required.
#ifndef GZ_DISTRIBUTED_SHARD_SERVER_H_
#define GZ_DISTRIBUTED_SHARD_SERVER_H_

#include <memory>
#include <string>

#include "core/graph_zeppelin.h"
#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

// Shard checkpoint file: a fixed 24-byte header — magic, the routing
// epoch the shard was at, and its merge-delta sequence number — then
// the standard GraphSnapshot byte stream. The epoch makes a checkpoint
// self-describing across reshard operations (a restore under an OLDER
// coordinator table is refused), and the delta sequence number lets
// the coordinator reconcile which migration deltas the checkpoint
// already covers, exactly as the snapshot's update count reconciles
// the unacked update log.
struct ShardCheckpointHeader {
  static constexpr char kMagic[8] = {'G', 'Z', 'S', 'C', 'K', 'P', '0',
                                     '1'};
  static constexpr size_t kBytes = 24;

  uint64_t epoch = 0;
  uint64_t delta_seq = 0;
};

class ShardServer {
 public:
  // `fd` is the connected coordinator socket; not owned. `auth_secret`
  // keys the mandatory HELLO handshake — the peer must prove it before
  // any other frame is served ("" = open, for trusted socketpairs).
  explicit ShardServer(int fd, std::string auth_secret = "")
      : fd_(fd), auth_secret_(std::move(auth_secret)) {}

  // Runs the server half of the authenticated handshake, then serves
  // frames until an orderly kShutdown (returns Ok) or the connection
  // dies / loses framing / fails authentication (returns the error).
  // Recoverable request problems — an out-of-range update, a
  // stale-epoch batch, a checkpoint path that cannot be written, a
  // request before kConfig — are answered with a kError frame (or
  // deferred, for fire-and-forget frames) and the loop continues: a
  // bad request must never take the shard down.
  Status Serve();

 private:
  // Handlers reply on fd_ and return false only when the connection is
  // no longer usable.
  Status HandleConfig(const ShardFrame& frame);
  Status HandleUpdateBatch(const ShardFrame& frame);
  Status HandleSnapshot();
  Status HandleCheckpoint(const ShardFrame& frame);
  Status HandleEpoch(const ShardFrame& frame);
  Status HandleMigrateExtract(const ShardFrame& frame);
  Status HandleMergeDelta(const ShardFrame& frame);

  Status ReplyAck(uint64_t value0, uint64_t value1 = 0);
  Status ReplyError(const Status& error);

  int fd_;
  std::string auth_secret_;
  std::unique_ptr<GraphZeppelin> gz_;
  int32_t shard_id_ = -1;
  // The routing table this shard last adopted (CONFIG or EPOCH frame).
  // UPDATE_BATCH frames stamped with any other epoch are dropped: the
  // stamp proves coordinator and shard agree on the table a batch was
  // routed under. (Replayed batches are re-stamped by the coordinator
  // at send time, so a correct coordinator never trips this.)
  RoutingTable table_;
  // Count of kMergeDelta frames applied since Init; persisted in the
  // checkpoint header so the coordinator can skip already-covered
  // deltas on restart replay.
  uint64_t delta_seq_ = 0;
  // A problem in a fire-and-forget UPDATE_BATCH cannot be answered
  // inline — an unsolicited reply would desynchronize the 1:1
  // request/reply stream — so it is recorded here and surfaces as the
  // kError reply to every later barrier (including migration
  // requests: a diverged shard must not donate state). Sticky: a
  // dropped batch is permanent divergence, curable only by restart +
  // replay.
  Status async_error_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_SERVER_H_
