#include "distributed/shard_server.h"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "core/graph_snapshot.h"

namespace gz {
namespace {

// fwrite/fread sinks for the checkpoint file forms.
Status WriteTo(FILE* f, const void* data, size_t size,
               const std::string& path) {
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::IoError("short write to shard checkpoint: " + path);
  }
  return Status::Ok();
}

void EncodeCheckpointHeader(const ShardCheckpointHeader& header,
                            uint8_t out[ShardCheckpointHeader::kBytes]) {
  std::memcpy(out, ShardCheckpointHeader::kMagic, 8);
  std::memcpy(out + 8, &header.epoch, 8);
  std::memcpy(out + 16, &header.delta_seq, 8);
}

Status DecodeCheckpointHeader(
    const uint8_t in[ShardCheckpointHeader::kBytes],
    ShardCheckpointHeader* header) {
  if (std::memcmp(in, ShardCheckpointHeader::kMagic, 8) != 0) {
    return Status::InvalidArgument("not a shard checkpoint: bad magic");
  }
  std::memcpy(&header->epoch, in + 8, 8);
  std::memcpy(&header->delta_seq, in + 16, 8);
  return Status::Ok();
}

}  // namespace

Status ShardServer::ReplyAck(uint64_t value0, uint64_t value1) {
  ShardAck ack;
  ack.value0 = value0;
  ack.value1 = value1;
  const std::vector<uint8_t> payload = EncodeShardAck(ack);
  return SendFrame(fd_, ShardMessageType::kAck, payload.data(),
                   payload.size());
}

Status ShardServer::ReplyError(const Status& error) {
  const std::vector<uint8_t> payload = EncodeShardError(error);
  return SendFrame(fd_, ShardMessageType::kError, payload.data(),
                   payload.size());
}

Status ShardServer::HandleConfig(const ShardFrame& frame) {
  if (gz_ != nullptr) {
    return ReplyError(Status::FailedPrecondition("shard already configured"));
  }
  ShardConfig sc;
  Status s = DecodeShardConfig(frame.payload.data(), frame.payload.size(),
                               &sc);
  if (!s.ok()) return ReplyError(s);
  auto gz = std::make_unique<GraphZeppelin>(sc.config);
  s = gz->Init();
  if (!s.ok()) return ReplyError(s);
  uint64_t delta_seq = 0;
  if (!sc.restore_checkpoint.empty()) {
    // The checkpoint's own epoch gates the restore: state saved under
    // epoch E folded back under an OLDER table would silently disagree
    // with the coordinator about every placement since E — that is an
    // inconsistent hand-off, not a recovery.
    FILE* f = std::fopen(sc.restore_checkpoint.c_str(), "rb");
    if (f == nullptr) {
      return ReplyError(Status::NotFound("cannot open shard checkpoint: " +
                                         sc.restore_checkpoint));
    }
    uint8_t header_buf[ShardCheckpointHeader::kBytes];
    if (std::fread(header_buf, 1, sizeof(header_buf), f) !=
        sizeof(header_buf)) {
      std::fclose(f);
      return ReplyError(Status::InvalidArgument(
          "truncated shard checkpoint header: " + sc.restore_checkpoint));
    }
    std::fclose(f);
    ShardCheckpointHeader header;
    s = DecodeCheckpointHeader(header_buf, &header);
    if (!s.ok()) return ReplyError(s);
    if (header.epoch > sc.table.epoch) {
      return ReplyError(Status::FailedPrecondition(
          "checkpoint epoch " + std::to_string(header.epoch) +
          " is newer than the config's routing epoch " +
          std::to_string(sc.table.epoch) +
          "; refusing an inconsistent restore"));
    }
    s = gz->LoadCheckpoint(sc.restore_checkpoint,
                           ShardCheckpointHeader::kBytes);
    if (!s.ok()) return ReplyError(s);
    delta_seq = header.delta_seq;
  }
  gz_ = std::move(gz);
  shard_id_ = sc.shard_id;
  table_ = std::move(sc.table);
  delta_seq_ = delta_seq;
  return ReplyAck(gz_->num_updates_ingested(), delta_seq_);
}

Status ShardServer::HandleUpdateBatch(const ShardFrame& frame) {
  // UPDATE_BATCH is fire-and-forget, so a bad batch must NOT send an
  // unsolicited error reply — the coordinator would read it as the
  // reply to its next request and every reply after would be off by
  // one. Instead the batch is dropped, logged, and the error deferred
  // to the next barrier reply (see Serve()).
  auto defer = [this](Status error) {
    std::fprintf(stderr, "gz_shard: dropped update batch: %s\n",
                 error.ToString().c_str());
    if (async_error_.ok()) async_error_ = std::move(error);
    return Status::Ok();
  };
  if (frame.payload.size() < sizeof(uint64_t) ||
      (frame.payload.size() - sizeof(uint64_t)) % sizeof(GraphUpdate) !=
          0) {
    return defer(Status::InvalidArgument(
        "update batch payload is not an epoch stamp plus a whole number "
        "of updates"));
  }
  uint64_t epoch = 0;
  std::memcpy(&epoch, frame.payload.data(), sizeof(epoch));
  if (epoch != table_.epoch) {
    // The stamp proves which table the batch was routed under; any
    // mismatch means coordinator and shard disagree about placement.
    // FIFO framing makes this impossible from a correct coordinator
    // (EPOCH frames precede re-stamped traffic), so a mismatch is a
    // dropped-frame-level fault, handled the same way.
    return defer(Status::InvalidArgument(
        "update batch stamped with routing epoch " + std::to_string(epoch) +
        " but shard is at epoch " + std::to_string(table_.epoch)));
  }
  const size_t count =
      (frame.payload.size() - sizeof(uint64_t)) / sizeof(GraphUpdate);
  const GraphUpdate* updates = reinterpret_cast<const GraphUpdate*>(
      frame.payload.data() + sizeof(uint64_t));
  // Validate before ingesting: GraphZeppelin treats a malformed update
  // as a programmer error (GZ_CHECK), but here the bytes came off a
  // socket and must bounce, not abort. Note no per-update ownership
  // check against the table: a replayed batch legitimately lands here
  // even when the CURRENT table routes its edges elsewhere — the
  // coordinator's durability log, not the table, owns placement of
  // already-routed updates.
  const uint64_t n = gz_->config().num_nodes;
  for (size_t i = 0; i < count; ++i) {
    const GraphUpdate& u = updates[i];
    if (!(u.edge.u < u.edge.v && u.edge.v < n) ||
        (u.type != UpdateType::kInsert && u.type != UpdateType::kDelete)) {
      return defer(Status::InvalidArgument(
          "update batch contains an out-of-range update"));
    }
  }
  gz_->Update(updates, count);
  return Status::Ok();
}

Status ShardServer::HandleSnapshot() {
  // Stream the reply: frame length is known from the params alone, then
  // records flow store -> scratch sketch -> socket one at a time, so
  // even an out-of-core shard never materializes its snapshot. The
  // checksum accumulates alongside the stream and closes the frame.
  const uint64_t bytes =
      GraphSnapshot::SerializedSizeFor(gz_->sketch_params());
  FrameCrc crc;
  Status s =
      SendFrameHeader(fd_, ShardMessageType::kSnapshotBytes, bytes, &crc);
  if (!s.ok()) return s;
  s = gz_->WriteSnapshotTo([this, &crc](const void* data, size_t size) {
    crc.Fold(data, size);
    return WriteFull(fd_, data, size);
  });
  if (!s.ok()) return s;
  return SendFrameTrailer(fd_, crc);
}

Status ShardServer::HandleCheckpoint(const ShardFrame& frame) {
  const std::string path(
      reinterpret_cast<const char*>(frame.payload.data()),
      frame.payload.size());
  if (path.empty()) {
    return ReplyError(Status::InvalidArgument("empty checkpoint path"));
  }
  // Write-then-rename: a crash mid-save (this system's whole fault
  // model) must never destroy the previous good checkpoint, which the
  // in-place truncation of a direct save would.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return ReplyError(Status::IoError("cannot create checkpoint: " + tmp));
  }
  ShardCheckpointHeader header;
  header.epoch = table_.epoch;
  header.delta_seq = delta_seq_;
  uint8_t header_buf[ShardCheckpointHeader::kBytes];
  EncodeCheckpointHeader(header, header_buf);
  Status s = WriteTo(f, header_buf, sizeof(header_buf), tmp);
  if (s.ok()) {
    s = gz_->WriteSnapshotTo([f, &tmp](const void* data, size_t size) {
      return WriteTo(f, data, size, tmp);
    });
  }
  if (std::fclose(f) != 0 && s.ok()) {
    s = Status::IoError("cannot finish checkpoint: " + tmp);
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return ReplyError(s);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ReplyError(
        Status::IoError("cannot publish checkpoint: " + path));
  }
  return ReplyAck(gz_->num_updates_ingested(), delta_seq_);
}

Status ShardServer::HandleEpoch(const ShardFrame& frame) {
  RoutingTable table;
  Status s = DecodeRoutingTable(frame.payload.data(), frame.payload.size(),
                                &table);
  if (!s.ok()) return ReplyError(s);
  if (table.epoch < table_.epoch) {
    // Epochs only move forward; a regression means a stale coordinator.
    return ReplyError(Status::FailedPrecondition(
        "routing epoch regression: shard at " +
        std::to_string(table_.epoch) + ", offered " +
        std::to_string(table.epoch)));
  }
  table_ = std::move(table);
  return ReplyAck(gz_->num_updates_ingested(), delta_seq_);
}

Status ShardServer::HandleMigrateExtract(const ShardFrame& frame) {
  uint64_t lo = 0, hi = 0;
  Status s = DecodeMigrateExtract(frame.payload.data(),
                                  frame.payload.size(), &lo, &hi);
  if (!s.ok()) return ReplyError(s);
  if (!(lo < hi && hi <= gz_->config().num_nodes)) {
    return ReplyError(
        Status::InvalidArgument("migrate-extract range out of bounds"));
  }
  // Read-only: extraction mutates nothing, so the coordinator can
  // retry it freely after any failure. The flush inside
  // WriteNodeRangeTo guarantees every update framed before this
  // request is inside the extracted bytes.
  const uint64_t bytes =
      GraphSnapshot::SerializedRangeSizeFor(gz_->sketch_params(), lo, hi);
  FrameCrc crc;
  s = SendFrameHeader(fd_, ShardMessageType::kMigrateData, bytes, &crc);
  if (!s.ok()) return s;
  s = gz_->WriteNodeRangeTo(lo, hi,
                            [this, &crc](const void* data, size_t size) {
                              crc.Fold(data, size);
                              return WriteFull(fd_, data, size);
                            });
  if (!s.ok()) return s;
  return SendFrameTrailer(fd_, crc);
}

Status ShardServer::HandleMergeDelta(const ShardFrame& frame) {
  Status s = gz_->MergeSerializedNodeRange(frame.payload.data(),
                                           frame.payload.size());
  if (!s.ok()) return ReplyError(s);
  ++delta_seq_;
  return ReplyAck(gz_->num_updates_ingested(), delta_seq_);
}

Status ShardServer::Serve() {
  // Authentication gates everything: until the peer proves the shared
  // secret, no frame below — not even a fire-and-forget UPDATE_BATCH —
  // is looked at. ServerHandshake already sent the kError reply.
  Status hs = ServerHandshake(fd_, auth_secret_);
  if (!hs.ok()) return hs;
  ShardFrame frame;
  while (true) {
    Status s = RecvFrame(fd_, &frame);
    if (!s.ok()) {
      // Framing is gone (bad header / checksum) or the coordinator
      // hung up. Best-effort error reply, then stop; the reply can
      // only reach a peer that still shares framing, but costs nothing
      // to try.
      if (s.code() == StatusCode::kInvalidArgument) ReplyError(s);
      return s;
    }
    // Handshake frames are single-use; one arriving mid-session is a
    // request/reply violation from a confused peer.
    if (frame.type == ShardMessageType::kHello ||
        frame.type == ShardMessageType::kChallenge ||
        frame.type == ShardMessageType::kAuth) {
      s = ReplyError(Status::InvalidArgument(
          "handshake frame after session establishment"));
      if (!s.ok()) return s;
      continue;
    }
    // Every request except the config itself needs a configured shard.
    if (gz_ == nullptr && frame.type != ShardMessageType::kConfig &&
        frame.type != ShardMessageType::kPing &&
        frame.type != ShardMessageType::kShutdown) {
      // Fire-and-forget requests must not draw an unsolicited reply
      // even here — defer, like every other UPDATE_BATCH problem.
      if (frame.type == ShardMessageType::kUpdateBatch) {
        std::fprintf(stderr,
                     "gz_shard: dropped update batch: shard not "
                     "configured\n");
        if (async_error_.ok()) {
          async_error_ =
              Status::FailedPrecondition("shard not configured");
        }
        continue;
      }
      s = ReplyError(Status::FailedPrecondition("shard not configured"));
      if (!s.ok()) return s;
      continue;
    }
    // A deferred UPDATE_BATCH failure surfaces as the reply to every
    // barrier from here on: a dropped batch means this shard's state
    // has PERMANENTLY diverged from the stream, and the only repair is
    // a restart + replay. The error is sticky on purpose — if one
    // barrier consumed it, a retried CHECKPOINT would succeed, the
    // coordinator would truncate its unacked log (the only copy of the
    // dropped updates), and the divergence would become silently
    // unrecoverable. Migration frames are gated too: a diverged shard
    // must neither donate nor adopt state.
    if (!async_error_.ok() &&
        (frame.type == ShardMessageType::kFlush ||
         frame.type == ShardMessageType::kSnapshot ||
         frame.type == ShardMessageType::kCheckpoint ||
         frame.type == ShardMessageType::kStats ||
         frame.type == ShardMessageType::kEpoch ||
         frame.type == ShardMessageType::kMigrateExtract ||
         frame.type == ShardMessageType::kMergeDelta)) {
      s = ReplyError(async_error_);
      if (!s.ok()) return s;
      continue;
    }
    switch (frame.type) {
      case ShardMessageType::kConfig:
        s = HandleConfig(frame);
        break;
      case ShardMessageType::kUpdateBatch:
        s = HandleUpdateBatch(frame);
        break;
      case ShardMessageType::kFlush:
        gz_->Flush();
        s = ReplyAck(gz_->num_updates_ingested());
        break;
      case ShardMessageType::kSnapshot:
        s = HandleSnapshot();
        break;
      case ShardMessageType::kCheckpoint:
        s = HandleCheckpoint(frame);
        break;
      case ShardMessageType::kStats:
        s = ReplyAck(gz_->num_updates_ingested(), gz_->RamByteSize());
        break;
      case ShardMessageType::kPing:
        s = ReplyAck(0);
        break;
      case ShardMessageType::kEpoch:
        s = HandleEpoch(frame);
        break;
      case ShardMessageType::kMigrateExtract:
        s = HandleMigrateExtract(frame);
        break;
      case ShardMessageType::kMergeDelta:
        s = HandleMergeDelta(frame);
        break;
      case ShardMessageType::kShutdown:
        // Ack first so the coordinator can reap without racing the exit.
        ReplyAck(gz_ != nullptr ? gz_->num_updates_ingested() : 0);
        return Status::Ok();
      default:
        // Reply frames are never valid requests.
        s = ReplyError(Status::InvalidArgument(
            "unexpected reply-type frame on the request stream"));
        break;
    }
    if (!s.ok()) return s;  // Reply write failed: connection dead.
  }
}

}  // namespace gz
