#include "distributed/shard_server.h"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "core/graph_snapshot.h"

namespace gz {

Status ShardServer::ReplyAck(uint64_t value0, uint64_t value1) {
  ShardAck ack;
  ack.value0 = value0;
  ack.value1 = value1;
  const std::vector<uint8_t> payload = EncodeShardAck(ack);
  return SendFrame(fd_, ShardMessageType::kAck, payload.data(),
                   payload.size());
}

Status ShardServer::ReplyError(const Status& error) {
  const std::vector<uint8_t> payload = EncodeShardError(error);
  return SendFrame(fd_, ShardMessageType::kError, payload.data(),
                   payload.size());
}

Status ShardServer::HandleConfig(const ShardFrame& frame) {
  if (gz_ != nullptr) {
    return ReplyError(Status::FailedPrecondition("shard already configured"));
  }
  ShardConfig sc;
  Status s = DecodeShardConfig(frame.payload.data(), frame.payload.size(),
                               &sc);
  if (!s.ok()) return ReplyError(s);
  auto gz = std::make_unique<GraphZeppelin>(sc.config);
  s = gz->Init();
  if (!s.ok()) return ReplyError(s);
  if (!sc.restore_checkpoint.empty()) {
    s = gz->LoadCheckpoint(sc.restore_checkpoint);
    if (!s.ok()) return ReplyError(s);
  }
  gz_ = std::move(gz);
  return ReplyAck(gz_->num_updates_ingested());
}

Status ShardServer::HandleUpdateBatch(const ShardFrame& frame) {
  // UPDATE_BATCH is fire-and-forget, so a bad batch must NOT send an
  // unsolicited error reply — the coordinator would read it as the
  // reply to its next request and every reply after would be off by
  // one. Instead the batch is dropped, logged, and the error deferred
  // to the next barrier reply (see Serve()).
  auto defer = [this](Status error) {
    std::fprintf(stderr, "gz_shard: dropped update batch: %s\n",
                 error.ToString().c_str());
    if (async_error_.ok()) async_error_ = std::move(error);
    return Status::Ok();
  };
  if (frame.payload.size() % sizeof(GraphUpdate) != 0) {
    return defer(Status::InvalidArgument(
        "update batch payload is not a whole number of updates"));
  }
  const size_t count = frame.payload.size() / sizeof(GraphUpdate);
  const GraphUpdate* updates =
      reinterpret_cast<const GraphUpdate*>(frame.payload.data());
  // Validate before ingesting: GraphZeppelin treats a malformed update
  // as a programmer error (GZ_CHECK), but here the bytes came off a
  // socket and must bounce, not abort.
  const uint64_t n = gz_->config().num_nodes;
  for (size_t i = 0; i < count; ++i) {
    const GraphUpdate& u = updates[i];
    if (!(u.edge.u < u.edge.v && u.edge.v < n) ||
        (u.type != UpdateType::kInsert && u.type != UpdateType::kDelete)) {
      return defer(Status::InvalidArgument(
          "update batch contains an out-of-range update"));
    }
  }
  gz_->Update(updates, count);
  return Status::Ok();
}

Status ShardServer::HandleSnapshot() {
  // Stream the reply: frame length is known from the params alone, then
  // records flow store -> scratch sketch -> socket one at a time, so
  // even an out-of-core shard never materializes its snapshot.
  const uint64_t bytes =
      GraphSnapshot::SerializedSizeFor(gz_->sketch_params());
  Status s = SendFrameHeader(fd_, ShardMessageType::kSnapshotBytes, bytes);
  if (!s.ok()) return s;
  return gz_->WriteSnapshotTo([this](const void* data, size_t size) {
    return WriteFull(fd_, data, size);
  });
}

Status ShardServer::HandleCheckpoint(const ShardFrame& frame) {
  const std::string path(
      reinterpret_cast<const char*>(frame.payload.data()),
      frame.payload.size());
  if (path.empty()) {
    return ReplyError(Status::InvalidArgument("empty checkpoint path"));
  }
  // Write-then-rename: a crash mid-save (this system's whole fault
  // model) must never destroy the previous good checkpoint, which the
  // in-place truncation of a direct save would.
  const std::string tmp = path + ".tmp";
  Status s = gz_->SaveCheckpoint(tmp);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return ReplyError(s);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ReplyError(
        Status::IoError("cannot publish checkpoint: " + path));
  }
  return ReplyAck(gz_->num_updates_ingested());
}

Status ShardServer::Serve() {
  ShardFrame frame;
  while (true) {
    Status s = RecvFrame(fd_, &frame);
    if (!s.ok()) {
      // Framing is gone (bad header) or the coordinator hung up.
      // Best-effort error reply, then stop; the reply can only reach a
      // peer that still shares framing, but costs nothing to try.
      if (s.code() == StatusCode::kInvalidArgument) ReplyError(s);
      return s;
    }
    // Every request except the config itself needs a configured shard.
    if (gz_ == nullptr && frame.type != ShardMessageType::kConfig &&
        frame.type != ShardMessageType::kPing &&
        frame.type != ShardMessageType::kShutdown) {
      // Fire-and-forget requests must not draw an unsolicited reply
      // even here — defer, like every other UPDATE_BATCH problem.
      if (frame.type == ShardMessageType::kUpdateBatch) {
        std::fprintf(stderr,
                     "gz_shard: dropped update batch: shard not "
                     "configured\n");
        if (async_error_.ok()) {
          async_error_ =
              Status::FailedPrecondition("shard not configured");
        }
        continue;
      }
      s = ReplyError(Status::FailedPrecondition("shard not configured"));
      if (!s.ok()) return s;
      continue;
    }
    // A deferred UPDATE_BATCH failure surfaces as the reply to every
    // barrier from here on: a dropped batch means this shard's state
    // has PERMANENTLY diverged from the stream, and the only repair is
    // a restart + replay. The error is sticky on purpose — if one
    // barrier consumed it, a retried CHECKPOINT would succeed, the
    // coordinator would truncate its unacked log (the only copy of the
    // dropped updates), and the divergence would become silently
    // unrecoverable.
    if (!async_error_.ok() &&
        (frame.type == ShardMessageType::kFlush ||
         frame.type == ShardMessageType::kSnapshot ||
         frame.type == ShardMessageType::kCheckpoint ||
         frame.type == ShardMessageType::kStats)) {
      s = ReplyError(async_error_);
      if (!s.ok()) return s;
      continue;
    }
    switch (frame.type) {
      case ShardMessageType::kConfig:
        s = HandleConfig(frame);
        break;
      case ShardMessageType::kUpdateBatch:
        s = HandleUpdateBatch(frame);
        break;
      case ShardMessageType::kFlush:
        gz_->Flush();
        s = ReplyAck(gz_->num_updates_ingested());
        break;
      case ShardMessageType::kSnapshot:
        s = HandleSnapshot();
        break;
      case ShardMessageType::kCheckpoint:
        s = HandleCheckpoint(frame);
        break;
      case ShardMessageType::kStats:
        s = ReplyAck(gz_->num_updates_ingested(), gz_->RamByteSize());
        break;
      case ShardMessageType::kPing:
        s = ReplyAck(0);
        break;
      case ShardMessageType::kShutdown:
        // Ack first so the coordinator can reap without racing the exit.
        ReplyAck(gz_ != nullptr ? gz_->num_updates_ingested() : 0);
        return Status::Ok();
      default:
        // Reply frames are never valid requests.
        s = ReplyError(Status::InvalidArgument(
            "unexpected reply-type frame on the request stream"));
        break;
    }
    if (!s.ok()) return s;  // Reply write failed: connection dead.
  }
}

}  // namespace gz
