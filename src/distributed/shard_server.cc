#include "distributed/shard_server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "core/graph_snapshot.h"

namespace gz {
namespace {

// fwrite/fread sinks for the checkpoint file forms.
Status WriteTo(FILE* f, const void* data, size_t size,
               const std::string& path) {
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::IoError("short write to shard checkpoint: " + path);
  }
  return Status::Ok();
}

void EncodeCheckpointHeader(const ShardCheckpointHeader& header,
                            uint8_t out[ShardCheckpointHeader::kBytes]) {
  std::memcpy(out, ShardCheckpointHeader::kMagic, 8);
  std::memcpy(out + 8, &header.epoch, 8);
  std::memcpy(out + 16, &header.delta_seq, 8);
}

Status DecodeCheckpointHeader(
    const uint8_t in[ShardCheckpointHeader::kBytes],
    ShardCheckpointHeader* header) {
  if (std::memcmp(in, ShardCheckpointHeader::kMagic, 8) != 0) {
    return Status::InvalidArgument("not a shard checkpoint: bad magic");
  }
  std::memcpy(&header->epoch, in + 8, 8);
  std::memcpy(&header->delta_seq, in + 16, 8);
  return Status::Ok();
}

// The extended-stats payload; caller holds the instance mutex.
std::vector<uint8_t> BuildStatsEx(const ShardInstanceState& state) {
  ShardStatsEx stats;
  stats.shard_id = state.shard_id;
  stats.epoch = state.table.epoch;
  stats.num_updates = state.gz->num_updates_ingested();
  stats.delta_seq = state.delta_seq;
  stats.ram_bytes = state.gz->RamByteSize();
  const NodeSketchParams params = state.gz->sketch_params();
  stats.num_nodes = params.num_nodes;
  stats.seed = params.seed;
  stats.cols = params.cols;
  stats.rounds = params.rounds;
  stats.replication = state.table.replication;
  return EncodeShardStatsEx(stats);
}

}  // namespace

Status ShardServer::ReplyAck(uint64_t value0, uint64_t value1) {
  ShardAck ack;
  ack.value0 = value0;
  ack.value1 = value1;
  const std::vector<uint8_t> payload = EncodeShardAck(ack);
  return SendFrame(fd_, ShardMessageType::kAck, payload.data(),
                   payload.size());
}

Status ShardServer::ReplyError(const Status& error) {
  const std::vector<uint8_t> payload = EncodeShardError(error);
  return SendFrame(fd_, ShardMessageType::kError, payload.data(),
                   payload.size());
}

Status ShardServer::HandleConfig(const ShardFrame& frame) {
  if (state_->gz != nullptr) {
    return ReplyError(Status::FailedPrecondition("shard already configured"));
  }
  ShardConfig sc;
  Status s = DecodeShardConfig(frame.payload.data(), frame.payload.size(),
                               &sc);
  if (!s.ok()) return ReplyError(s);
  auto gz = std::make_unique<GraphZeppelin>(sc.config);
  s = gz->Init();
  if (!s.ok()) return ReplyError(s);
  uint64_t delta_seq = 0;
  if (!sc.restore_checkpoint.empty()) {
    // The checkpoint's own epoch gates the restore: state saved under
    // epoch E folded back under an OLDER table would silently disagree
    // with the coordinator about every placement since E — that is an
    // inconsistent hand-off, not a recovery.
    FILE* f = std::fopen(sc.restore_checkpoint.c_str(), "rb");
    if (f == nullptr) {
      return ReplyError(Status::NotFound("cannot open shard checkpoint: " +
                                         sc.restore_checkpoint));
    }
    uint8_t header_buf[ShardCheckpointHeader::kBytes];
    if (std::fread(header_buf, 1, sizeof(header_buf), f) !=
        sizeof(header_buf)) {
      std::fclose(f);
      return ReplyError(Status::InvalidArgument(
          "truncated shard checkpoint header: " + sc.restore_checkpoint));
    }
    std::fclose(f);
    ShardCheckpointHeader header;
    s = DecodeCheckpointHeader(header_buf, &header);
    if (!s.ok()) return ReplyError(s);
    if (header.epoch > sc.table.epoch) {
      return ReplyError(Status::FailedPrecondition(
          "checkpoint epoch " + std::to_string(header.epoch) +
          " is newer than the config's routing epoch " +
          std::to_string(sc.table.epoch) +
          "; refusing an inconsistent restore"));
    }
    s = gz->LoadCheckpoint(sc.restore_checkpoint,
                           ShardCheckpointHeader::kBytes);
    if (!s.ok()) return ReplyError(s);
    delta_seq = header.delta_seq;
  }
  state_->gz = std::move(gz);
  state_->shard_id = sc.shard_id;
  state_->table = std::move(sc.table);
  state_->delta_seq = delta_seq;
  state_->NotifyPositionChanged();
  return ReplyAck(state_->gz->num_updates_ingested(), state_->delta_seq);
}

Status ShardServer::HandleUpdateBatch(const ShardFrame& frame) {
  // UPDATE_BATCH is fire-and-forget, so a bad batch must NOT send an
  // unsolicited error reply — the coordinator would read it as the
  // reply to its next request and every reply after would be off by
  // one. Instead the batch is dropped, logged, and the error deferred
  // to the next barrier reply (see Serve()).
  auto defer = [this](Status error) {
    std::fprintf(stderr, "gz_shard: dropped update batch: %s\n",
                 error.ToString().c_str());
    if (state_->async_error.ok()) state_->async_error = std::move(error);
    return Status::Ok();
  };
  if (frame.payload.size() < sizeof(uint64_t) ||
      (frame.payload.size() - sizeof(uint64_t)) % sizeof(GraphUpdate) !=
          0) {
    return defer(Status::InvalidArgument(
        "update batch payload is not an epoch stamp plus a whole number "
        "of updates"));
  }
  uint64_t epoch = 0;
  std::memcpy(&epoch, frame.payload.data(), sizeof(epoch));
  if (epoch != state_->table.epoch) {
    // The stamp proves which table the batch was routed under; any
    // mismatch means coordinator and shard disagree about placement.
    // FIFO framing makes this impossible from a correct coordinator
    // (EPOCH frames precede re-stamped traffic), so a mismatch is a
    // dropped-frame-level fault, handled the same way.
    return defer(Status::InvalidArgument(
        "update batch stamped with routing epoch " + std::to_string(epoch) +
        " but shard is at epoch " + std::to_string(state_->table.epoch)));
  }
  const size_t count =
      (frame.payload.size() - sizeof(uint64_t)) / sizeof(GraphUpdate);
  const GraphUpdate* updates = reinterpret_cast<const GraphUpdate*>(
      frame.payload.data() + sizeof(uint64_t));
  // Validate before ingesting: GraphZeppelin treats a malformed update
  // as a programmer error (GZ_CHECK), but here the bytes came off a
  // socket and must bounce, not abort. Note no per-update ownership
  // check against the table: a replayed batch legitimately lands here
  // even when the CURRENT table routes its edges elsewhere — the
  // coordinator's durability log, not the table, owns placement of
  // already-routed updates.
  const uint64_t n = state_->gz->config().num_nodes;
  for (size_t i = 0; i < count; ++i) {
    const GraphUpdate& u = updates[i];
    if (!(u.edge.u < u.edge.v && u.edge.v < n) ||
        (u.type != UpdateType::kInsert && u.type != UpdateType::kDelete)) {
      return defer(Status::InvalidArgument(
          "update batch contains an out-of-range update"));
    }
  }
  state_->gz->Update(updates, count);
  state_->NotifyPositionChanged();
  return Status::Ok();
}

Status ShardServer::HandleSnapshot() {
  // Stream the reply: frame length is known from the params alone, then
  // records flow store -> scratch sketch -> socket one at a time, so
  // even an out-of-core shard never materializes its snapshot. The
  // checksum accumulates alongside the stream and closes the frame.
  const uint64_t bytes =
      GraphSnapshot::SerializedSizeFor(state_->gz->sketch_params());
  FrameCrc crc;
  Status s =
      SendFrameHeader(fd_, ShardMessageType::kSnapshotBytes, bytes, &crc);
  if (!s.ok()) return s;
  s = state_->gz->WriteSnapshotTo(
      [this, &crc](const void* data, size_t size) {
        crc.Fold(data, size);
        return WriteFull(fd_, data, size);
      });
  if (!s.ok()) return s;
  return SendFrameTrailer(fd_, crc);
}

Status ShardServer::HandleCheckpoint(const ShardFrame& frame) {
  const std::string path(
      reinterpret_cast<const char*>(frame.payload.data()),
      frame.payload.size());
  if (path.empty()) {
    return ReplyError(Status::InvalidArgument("empty checkpoint path"));
  }
  // Write-then-rename: a crash mid-save (this system's whole fault
  // model) must never destroy the previous good checkpoint, which the
  // in-place truncation of a direct save would.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return ReplyError(Status::IoError("cannot create checkpoint: " + tmp));
  }
  ShardCheckpointHeader header;
  header.epoch = state_->table.epoch;
  header.delta_seq = state_->delta_seq;
  uint8_t header_buf[ShardCheckpointHeader::kBytes];
  EncodeCheckpointHeader(header, header_buf);
  Status s = WriteTo(f, header_buf, sizeof(header_buf), tmp);
  if (s.ok()) {
    s = state_->gz->WriteSnapshotTo(
        [f, &tmp](const void* data, size_t size) {
          return WriteTo(f, data, size, tmp);
        });
  }
  if (std::fclose(f) != 0 && s.ok()) {
    s = Status::IoError("cannot finish checkpoint: " + tmp);
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return ReplyError(s);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ReplyError(
        Status::IoError("cannot publish checkpoint: " + path));
  }
  return ReplyAck(state_->gz->num_updates_ingested(), state_->delta_seq);
}

Status ShardServer::HandleEpoch(const ShardFrame& frame) {
  RoutingTable table;
  Status s = DecodeRoutingTable(frame.payload.data(), frame.payload.size(),
                                &table);
  if (!s.ok()) return ReplyError(s);
  if (table.epoch < state_->table.epoch) {
    // Epochs only move forward; a regression means a stale coordinator.
    return ReplyError(Status::FailedPrecondition(
        "routing epoch regression: shard at " +
        std::to_string(state_->table.epoch) + ", offered " +
        std::to_string(table.epoch)));
  }
  state_->table = std::move(table);
  state_->NotifyPositionChanged();
  return ReplyAck(state_->gz->num_updates_ingested(), state_->delta_seq);
}

Status ShardServer::HandleMigrateExtract(const ShardFrame& frame) {
  uint64_t lo = 0, hi = 0;
  Status s = DecodeMigrateExtract(frame.payload.data(),
                                  frame.payload.size(), &lo, &hi);
  if (!s.ok()) return ReplyError(s);
  if (!(lo < hi && hi <= state_->gz->config().num_nodes)) {
    return ReplyError(
        Status::InvalidArgument("migrate-extract range out of bounds"));
  }
  // Read-only: extraction mutates nothing, so the coordinator can
  // retry it freely after any failure. The flush inside
  // WriteNodeRangeTo guarantees every update framed before this
  // request is inside the extracted bytes.
  const uint64_t bytes = GraphSnapshot::SerializedRangeSizeFor(
      state_->gz->sketch_params(), lo, hi);
  FrameCrc crc;
  s = SendFrameHeader(fd_, ShardMessageType::kMigrateData, bytes, &crc);
  if (!s.ok()) return s;
  s = state_->gz->WriteNodeRangeTo(
      lo, hi, [this, &crc](const void* data, size_t size) {
        crc.Fold(data, size);
        return WriteFull(fd_, data, size);
      });
  if (!s.ok()) return s;
  return SendFrameTrailer(fd_, crc);
}

Status ShardServer::HandleMergeDelta(const ShardFrame& frame) {
  Status s = state_->gz->MergeSerializedNodeRange(frame.payload.data(),
                                                  frame.payload.size());
  if (!s.ok()) return ReplyError(s);
  ++state_->delta_seq;
  state_->NotifyPositionChanged();
  return ReplyAck(state_->gz->num_updates_ingested(), state_->delta_seq);
}

Status ShardServer::HandleSyncPosition(const ShardFrame& frame) {
  uint64_t num_updates = 0, delta_seq = 0;
  Status s = DecodeSyncPosition(frame.payload.data(), frame.payload.size(),
                                &num_updates, &delta_seq);
  if (!s.ok()) return ReplyError(s);
  // The coordinator asserts the logical position this shard's
  // (repaired) content represents. Content itself moved via XOR deltas
  // — which carry no counts — so only the bookkeeping changes here.
  state_->gz->SetUpdatesIngested(num_updates);
  state_->delta_seq = delta_seq;
  state_->NotifyPositionChanged();
  return ReplyAck(state_->gz->num_updates_ingested(), state_->delta_seq);
}

Status ShardServer::HandleStatsEx() {
  const std::vector<uint8_t> payload = BuildStatsEx(*state_);
  return SendFrame(fd_, ShardMessageType::kStatsReply, payload.data(),
                   payload.size());
}

Status ShardServer::HandleHeavyHitters() {
  const HeavyHitterSketch* hh = state_->gz->heavy_hitters();
  if (hh == nullptr) {
    return ReplyError(Status::FailedPrecondition(
        "heavy-hitter tracking disabled (heavy_hitter_width == 0)"));
  }
  const std::vector<uint8_t> payload = hh->Serialize();
  return SendFrame(fd_, ShardMessageType::kHeavyHitterBytes, payload.data(),
                   payload.size());
}

Status ShardServer::ServeReaderFrame(const ShardFrame& frame) {
  // Materialize the whole reply under the instance mutex, send it
  // after release: a reader with a full socket buffer must stall on
  // its OWN send deadline, never while holding the lock the writer's
  // ingest path needs.
  ShardMessageType reply_type = ShardMessageType::kError;
  std::vector<uint8_t> reply;
  const auto fail = [&](const Status& error) {
    reply_type = ShardMessageType::kError;
    reply = EncodeShardError(error);
  };
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    const bool needs_instance = frame.type != ShardMessageType::kPing;
    if (frame.type != ShardMessageType::kPing &&
        frame.type != ShardMessageType::kStats &&
        frame.type != ShardMessageType::kStatsEx &&
        frame.type != ShardMessageType::kSnapshot &&
        frame.type != ShardMessageType::kMigrateExtract &&
        frame.type != ShardMessageType::kHeavyHitters) {
      // The read-only contract: a reader cannot configure, ingest,
      // migrate state in, checkpoint, or retire the shard. The session
      // survives — a confused client gets errors, not a dead socket.
      fail(Status::FailedPrecondition(
          "read-only session: frame type " +
          std::to_string(static_cast<uint16_t>(frame.type)) +
          " requires the writer session"));
    } else if (needs_instance && state_->gz == nullptr) {
      fail(Status::FailedPrecondition("shard not configured"));
    } else if (needs_instance && !state_->async_error.ok()) {
      // A diverged shard must not serve answers as if current.
      fail(state_->async_error);
    } else {
      switch (frame.type) {
        case ShardMessageType::kPing:
          reply_type = ShardMessageType::kAck;
          reply = EncodeShardAck(ShardAck{0, 0});
          break;
        case ShardMessageType::kStats: {
          reply_type = ShardMessageType::kAck;
          reply = EncodeShardAck(
              ShardAck{state_->gz->num_updates_ingested(),
                       state_->gz->RamByteSize()});
          break;
        }
        case ShardMessageType::kStatsEx:
          reply_type = ShardMessageType::kStatsReply;
          reply = BuildStatsEx(*state_);
          break;
        case ShardMessageType::kSnapshot: {
          std::vector<uint8_t> bytes;
          bytes.reserve(GraphSnapshot::SerializedSizeFor(
              state_->gz->sketch_params()));
          const Status s = state_->gz->WriteSnapshotTo(
              [&bytes](const void* data, size_t size) {
                const uint8_t* p = static_cast<const uint8_t*>(data);
                bytes.insert(bytes.end(), p, p + size);
                return Status::Ok();
              });
          if (!s.ok()) {
            fail(s);
          } else {
            reply_type = ShardMessageType::kSnapshotBytes;
            reply = std::move(bytes);
          }
          break;
        }
        case ShardMessageType::kHeavyHitters: {
          const HeavyHitterSketch* hh = state_->gz->heavy_hitters();
          if (hh == nullptr) {
            fail(Status::FailedPrecondition(
                "heavy-hitter tracking disabled (heavy_hitter_width == "
                "0)"));
          } else {
            reply_type = ShardMessageType::kHeavyHitterBytes;
            reply = hh->Serialize();
          }
          break;
        }
        case ShardMessageType::kMigrateExtract: {
          uint64_t lo = 0, hi = 0;
          Status s = DecodeMigrateExtract(frame.payload.data(),
                                          frame.payload.size(), &lo, &hi);
          if (s.ok() && !(lo < hi && hi <= state_->gz->config().num_nodes)) {
            s = Status::InvalidArgument(
                "migrate-extract range out of bounds");
          }
          if (!s.ok()) {
            fail(s);
            break;
          }
          std::vector<uint8_t> bytes;
          bytes.reserve(GraphSnapshot::SerializedRangeSizeFor(
              state_->gz->sketch_params(), lo, hi));
          s = state_->gz->WriteNodeRangeTo(
              lo, hi, [&bytes](const void* data, size_t size) {
                const uint8_t* p = static_cast<const uint8_t*>(data);
                bytes.insert(bytes.end(), p, p + size);
                return Status::Ok();
              });
          if (!s.ok()) {
            fail(s);
          } else {
            reply_type = ShardMessageType::kMigrateData;
            reply = std::move(bytes);
          }
          break;
        }
        default:
          fail(Status::Internal("unreachable reader frame"));
          break;
      }
    }
  }
  return SendFrame(fd_, reply_type, reply.data(), reply.size());
}

Status ShardServer::ServeSubscription(std::vector<uint8_t> last_notified) {
  // Pure server-push from here on. The loop alternates between waiting
  // for a position change (predicate on the change counter — a change
  // that lands between payload build and the next wait is never lost)
  // and pushing the new position. The periodic timeout exists only to
  // run the fd health probe below; an unchanged position never pushes
  // a frame (payload-compare dedupe), so a quiet shard keeps a quiet
  // wire.
  uint64_t seen = 0;
  while (true) {
    std::vector<uint8_t> payload;
    bool winding_down = false;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->position_cv.wait_for(
          lock, std::chrono::milliseconds(500), [&] {
            return state_->winding_down || state_->position_changes != seen;
          });
      seen = state_->position_changes;
      winding_down = state_->winding_down;
      // A reset or diverged instance has no position to report; stay
      // subscribed and silent until it is configured again (the next
      // config bumps the counter and the fresh position pushes then).
      if (state_->gz != nullptr && state_->async_error.ok()) {
        payload = BuildStatsEx(*state_);
      }
    }
    if (winding_down) {
      return Status::IoError("listener wind-down ended the subscription");
    }
    // Health probe: a subscriber never legitimately sends after
    // kSubscribe, so ANY inbound event — a stray byte, EOF, a socket
    // error — ends the subscription. This is also how hang-up is
    // detected at all: a push-only loop would otherwise only notice a
    // dead peer on its next (possibly never) send.
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 0);
    if (rc < 0 && errno != EINTR) {
      return Status::IoError(std::string("subscription poll: ") +
                             std::strerror(errno));
    }
    if (rc > 0 && pfd.revents != 0) {
      return Status::IoError("subscriber hung up or broke the push-only "
                             "contract");
    }
    if (!payload.empty() && payload != last_notified) {
      const Status s = SendFrame(fd_, ShardMessageType::kNotify,
                                 payload.data(), payload.size());
      if (!s.ok()) return s;
      last_notified = std::move(payload);
    }
  }
}

Status ShardServer::Serve() {
  // Authentication gates everything: until the peer proves the shared
  // secret, no frame below — not even a fire-and-forget UPDATE_BATCH —
  // is looked at. ServerHandshake already sent the kError reply.
  if (!handshaken_) {
    const Status hs = ServerHandshake(fd_, auth_secret_, &role_);
    if (!hs.ok()) return hs;
  }
  ShardFrame frame;
  if (role_ == ShardSessionRole::kReader) {
    // Reader sessions live under a per-read deadline: idle waiting
    // happens in poll() — an idle reader keeping its session open is
    // legitimate — but once bytes start flowing, SO_RCVTIMEO bounds
    // every read, so a peer stalled mid-frame errors out within the
    // deadline instead of occupying a session slot forever. Reader
    // *requests* are tiny and fixed-shape, so the handshake-sized
    // receive cap applies for the whole session: a reader can never
    // command a large allocation.
    SetShardSocketTimeout(fd_, reader_timeout_seconds_);
    while (true) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      if (::poll(&pfd, 1, -1) < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("reader session poll: ") +
                               std::strerror(errno));
      }
      Status s = RecvFrameCapped(fd_, &frame, kReaderMaxRequestBytes);
      if (!s.ok()) {
        if (s.code() == StatusCode::kInvalidArgument) ReplyError(s);
        return s;
      }
      if (frame.type == ShardMessageType::kSubscribe) {
        // Converts the session into a server-push notify stream. The
        // immediate first kNotify is the 1:1 reply to this request;
        // after it the client sends nothing more. An unconfigured or
        // diverged shard refuses (kError) and the session continues as
        // a plain reader — the subscriber can retry later.
        std::vector<uint8_t> payload;
        Status refuse = Status::Ok();
        {
          std::lock_guard<std::mutex> lock(state_->mutex);
          if (state_->gz == nullptr) {
            refuse = Status::FailedPrecondition("shard not configured");
          } else if (!state_->async_error.ok()) {
            refuse = state_->async_error;
          } else {
            payload = BuildStatsEx(*state_);
          }
        }
        if (!refuse.ok()) {
          s = ReplyError(refuse);
          if (!s.ok()) return s;
          continue;
        }
        s = SendFrame(fd_, ShardMessageType::kNotify, payload.data(),
                      payload.size());
        if (!s.ok()) return s;
        return ServeSubscription(std::move(payload));
      }
      s = ServeReaderFrame(frame);
      if (!s.ok()) return s;
    }
  }
  while (true) {
    Status s = RecvFrame(fd_, &frame);
    if (!s.ok()) {
      // Framing is gone (bad header / checksum) or the coordinator
      // hung up. Best-effort error reply, then stop; the reply can
      // only reach a peer that still shares framing, but costs nothing
      // to try.
      if (s.code() == StatusCode::kInvalidArgument) ReplyError(s);
      return s;
    }
    // Everything below touches the shared instance; reader sessions on
    // a listener observe it between these critical sections.
    std::lock_guard<std::mutex> lock(state_->mutex);
    // Handshake frames are single-use; one arriving mid-session is a
    // request/reply violation from a confused peer.
    if (frame.type == ShardMessageType::kHello ||
        frame.type == ShardMessageType::kChallenge ||
        frame.type == ShardMessageType::kAuth) {
      s = ReplyError(Status::InvalidArgument(
          "handshake frame after session establishment"));
      if (!s.ok()) return s;
      continue;
    }
    // Every request except the config itself needs a configured shard.
    if (state_->gz == nullptr && frame.type != ShardMessageType::kConfig &&
        frame.type != ShardMessageType::kPing &&
        frame.type != ShardMessageType::kShutdown) {
      // Fire-and-forget requests must not draw an unsolicited reply
      // even here — defer, like every other UPDATE_BATCH problem.
      if (frame.type == ShardMessageType::kUpdateBatch) {
        std::fprintf(stderr,
                     "gz_shard: dropped update batch: shard not "
                     "configured\n");
        if (state_->async_error.ok()) {
          state_->async_error =
              Status::FailedPrecondition("shard not configured");
        }
        continue;
      }
      s = ReplyError(Status::FailedPrecondition("shard not configured"));
      if (!s.ok()) return s;
      continue;
    }
    // A deferred UPDATE_BATCH failure surfaces as the reply to every
    // barrier from here on: a dropped batch means this shard's state
    // has PERMANENTLY diverged from the stream, and the only repair is
    // a restart + replay. The error is sticky on purpose — if one
    // barrier consumed it, a retried CHECKPOINT would succeed, the
    // coordinator would truncate its unacked log (the only copy of the
    // dropped updates), and the divergence would become silently
    // unrecoverable. Migration and serving frames are gated too: a
    // diverged shard must neither donate state nor serve stale
    // watermarks.
    if (!state_->async_error.ok() &&
        (frame.type == ShardMessageType::kFlush ||
         frame.type == ShardMessageType::kSnapshot ||
         frame.type == ShardMessageType::kCheckpoint ||
         frame.type == ShardMessageType::kStats ||
         frame.type == ShardMessageType::kStatsEx ||
         frame.type == ShardMessageType::kEpoch ||
         frame.type == ShardMessageType::kMigrateExtract ||
         frame.type == ShardMessageType::kMergeDelta ||
         frame.type == ShardMessageType::kSyncPosition ||
         frame.type == ShardMessageType::kHeavyHitters)) {
      s = ReplyError(state_->async_error);
      if (!s.ok()) return s;
      continue;
    }
    switch (frame.type) {
      case ShardMessageType::kConfig:
        s = HandleConfig(frame);
        break;
      case ShardMessageType::kUpdateBatch:
        s = HandleUpdateBatch(frame);
        break;
      case ShardMessageType::kFlush:
        state_->gz->Flush();
        s = ReplyAck(state_->gz->num_updates_ingested());
        break;
      case ShardMessageType::kSnapshot:
        s = HandleSnapshot();
        break;
      case ShardMessageType::kCheckpoint:
        s = HandleCheckpoint(frame);
        break;
      case ShardMessageType::kStats:
        s = ReplyAck(state_->gz->num_updates_ingested(),
                     state_->gz->RamByteSize());
        break;
      case ShardMessageType::kStatsEx:
        s = HandleStatsEx();
        break;
      case ShardMessageType::kPing:
        s = ReplyAck(0);
        break;
      case ShardMessageType::kEpoch:
        s = HandleEpoch(frame);
        break;
      case ShardMessageType::kMigrateExtract:
        s = HandleMigrateExtract(frame);
        break;
      case ShardMessageType::kMergeDelta:
        s = HandleMergeDelta(frame);
        break;
      case ShardMessageType::kSyncPosition:
        s = HandleSyncPosition(frame);
        break;
      case ShardMessageType::kHeavyHitters:
        s = HandleHeavyHitters();
        break;
      case ShardMessageType::kSubscribe:
        // Subscriptions are a reader-session feature: converting the
        // writer's request/reply stream into a push stream would strand
        // the coordinator.
        s = ReplyError(Status::FailedPrecondition(
            "subscriptions require a reader session"));
        break;
      case ShardMessageType::kShutdown:
        // Ack first so the coordinator can reap without racing the exit.
        ReplyAck(state_->gz != nullptr ? state_->gz->num_updates_ingested()
                                       : 0);
        return Status::Ok();
      default:
        // Reply frames are never valid requests.
        s = ReplyError(Status::InvalidArgument(
            "unexpected reply-type frame on the request stream"));
        break;
    }
    if (!s.ok()) return s;  // Reply write failed: connection dead.
  }
}

}  // namespace gz
