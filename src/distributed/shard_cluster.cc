#include "distributed/shard_cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {
namespace {

// Replay and routing frames are chunked so a shard's receive buffer
// stays bounded no matter how long an unacked log grows.
constexpr size_t kMaxUpdatesPerFrame = 1 << 18;

}  // namespace

ShardCluster::ShardCluster(const GraphZeppelinConfig& base, int num_shards,
                           ShardClusterOptions options)
    : base_(base),
      options_(std::move(options)),
      cache_(options_.migrate_nodes_per_chunk) {
  GZ_CHECK(num_shards >= 1);
  GZ_CHECK(options_.migrate_nodes_per_chunk >= 1);
  replication_ = options_.replication_factor;
  if (replication_ < 1 ||
      replication_ > static_cast<int>(RoutingTable::kMaxReplication)) {
    // A deployment-config error, reported from Start() like a malformed
    // endpoint URI — not a programmer-error abort.
    endpoint_error_ = Status::InvalidArgument(
        "replication_factor " + std::to_string(replication_) +
        " is outside [1, " + std::to_string(RoutingTable::kMaxReplication) +
        "]");
    replication_ = 1;
  }
  const size_t max_endpoints =
      static_cast<size_t>(num_shards) * static_cast<size_t>(replication_);
  if (options_.shard_endpoints.size() > max_endpoints) {
    endpoint_error_ = Status::InvalidArgument(
        std::to_string(options_.shard_endpoints.size()) +
        " shard endpoints for " + std::to_string(num_shards) +
        " shards with replication factor " + std::to_string(replication_));
    options_.shard_endpoints.resize(max_endpoints);
  }
  binary_ = options_.shard_binary.empty() ? DefaultShardBinary()
                                          : options_.shard_binary;
  if (options_.checkpoint_dir.empty()) options_.checkpoint_dir = base_.disk_dir;
  const char* env_log_dir = std::getenv("GZ_SHARD_LOG_DIR");
  log_dir_ = !options_.log_dir.empty() ? options_.log_dir
             : (env_log_dir != nullptr && *env_log_dir != '\0')
                 ? env_log_dir
                 : base_.disk_dir;
  ::mkdir(log_dir_.c_str(), 0755);  // Best-effort; EEXIST is the norm.

  table_ = MakeRoutingTable(num_shards);
  table_.replication = static_cast<uint32_t>(replication_);
  for (int s = 0; s < num_shards; ++s) {
    // A malformed endpoint URI surfaces from Start(); construction
    // itself cannot return a Status (the slot still allocates, as a
    // local placeholder, so the id space stays dense). The endpoint
    // list is shard-major: replica r of shard s is entry
    // s * replication + r.
    std::vector<ShardEndpoint> endpoints(replication_);
    for (int r = 0; r < replication_; ++r) {
      const size_t flat = static_cast<size_t>(s) * replication_ + r;
      if (flat >= options_.shard_endpoints.size()) continue;
      Result<ShardEndpoint> parsed =
          ParseShardEndpoint(options_.shard_endpoints[flat]);
      if (parsed.ok()) {
        endpoints[r] = std::move(parsed).value();
      } else if (endpoint_error_.ok()) {
        endpoint_error_ = parsed.status();
      }
    }
    const int id = AllocateShardSlot(std::move(endpoints));
    GZ_CHECK(id == s);
    for (int r = 0; r < replication_; ++r) {
      procs_[id][r] = MakeTransportFor(id, r);
    }
  }
}

ShardCluster::~ShardCluster() {
  if (started_) Shutdown();
  for (int s = 0; s < num_shards(); ++s) {
    for (int r = 0; r < replication_; ++r) {
      // Unconditional: a checkpoint file can exist without an ack
      // (shard crashed between publishing and replying), and a removed
      // shard's may linger if its final unlink raced a crash.
      ::unlink(CheckpointPath(s, r).c_str());
      ::unlink((CheckpointPath(s, r) + ".tmp").c_str());
    }
  }
}

std::unique_ptr<ShardTransport> ShardCluster::MakeTransportFor(
    int shard, int replica) const {
  ShardTransportOptions topts;
  topts.binary = binary_;
  topts.log_path = LogPath(shard, replica);
  topts.auth_secret = options_.auth_secret;
  return MakeShardTransport(endpoints_[shard][replica], topts);
}

int ShardCluster::AllocateShardSlot(std::vector<ShardEndpoint> endpoints) {
  GZ_CHECK(endpoints.size() == static_cast<size_t>(replication_));
  const int id = static_cast<int>(procs_.size());
  procs_.emplace_back(replication_);  // Replica transports, still null.
  endpoints_.push_back(std::move(endpoints));
  down_.emplace_back(replication_, true);  // Up only once configured.
  route_bufs_.emplace_back();
  unacked_.emplace_back(replication_);
  pending_deltas_.emplace_back(replication_);
  delta_seq_sent_.emplace_back(replication_, 0);
  checkpoint_delta_seq_.emplace_back(replication_, 0);
  has_checkpoint_.emplace_back(replication_, false);
  checkpoint_updates_.emplace_back(replication_, 0);
  return id;
}

void ShardCluster::ReleaseLastShardSlot(int id) {
  // Full rollback of a just-allocated id whose spawn failed, so the id
  // space stays in lockstep with the in-process mode (a burned id
  // would make identical op sequences hand out different ids — and
  // different tables — across the two modes).
  GZ_CHECK(id == static_cast<int>(procs_.size()) - 1);
  procs_.pop_back();
  endpoints_.pop_back();
  down_.pop_back();
  route_bufs_.pop_back();
  unacked_.pop_back();
  pending_deltas_.pop_back();
  delta_seq_sent_.pop_back();
  checkpoint_delta_seq_.pop_back();
  has_checkpoint_.pop_back();
  checkpoint_updates_.pop_back();
}

std::vector<int> ShardCluster::ActiveShards() const {
  std::vector<int> ids;
  for (int s = 0; s < num_shards(); ++s) {
    if (!procs_[s].empty()) ids.push_back(s);
  }
  return ids;
}

int ShardCluster::num_active_shards() const {
  int n = 0;
  for (const auto& p : procs_) n += !p.empty();
  return n;
}

int ShardCluster::FirstUnfencedReplica(int shard) const {
  for (int r = 0; r < replication_; ++r) {
    if (!down_[shard][r]) return r;
  }
  return -1;
}

int ShardCluster::FirstLiveReplica(int shard) {
  for (int r = 0; r < replication_; ++r) {
    if (!down_[shard][r] && procs_[shard][r]->Alive()) return r;
  }
  return -1;
}

std::string ShardCluster::CheckpointPath(int shard, int replica) const {
  // Coordinator pid + seed + shard index: concurrent clusters sharing
  // one checkpoint_dir cannot clobber each other. Replica 0 keeps the
  // unsuffixed pre-replication name.
  return options_.checkpoint_dir + "/gz_shard_ckpt_p" +
         std::to_string(::getpid()) + "_s" + std::to_string(base_.seed) +
         "_" + std::to_string(shard) +
         (replica > 0 ? "_r" + std::to_string(replica) : std::string()) +
         ".bin";
}

std::string ShardCluster::LogPath(int shard, int replica) const {
  return log_dir_ + "/gz_shard_p" + std::to_string(::getpid()) + "_s" +
         std::to_string(base_.seed) + "_shard" + std::to_string(shard) +
         (replica > 0 ? "_r" + std::to_string(replica) : std::string()) +
         ".log";
}

GraphZeppelinConfig ShardCluster::ShardConfigFor(int shard,
                                                 int replica) const {
  GraphZeppelinConfig config = base_;
  config.instance_tag =
      "shard" + std::to_string(shard) +
      (replica > 0 ? "r" + std::to_string(replica) : std::string());
  return config;
}

Status ShardCluster::SpawnAndConfigure(int shard, int replica, bool restore,
                                       uint64_t* restored,
                                       uint64_t* restored_delta_seq) {
  ShardTransport& proc = *procs_[shard][replica];
  Status s = proc.Connect();
  if (!s.ok()) return s;
  ShardConfig sc;
  sc.config = ShardConfigFor(shard, replica);
  sc.shard_id = shard;
  sc.table = table_;
  if (restore && has_checkpoint_[shard][replica]) {
    sc.restore_checkpoint = CheckpointPath(shard, replica);
  }
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ShardAck ack;
  s = proc.CallAck(ShardMessageType::kConfig, payload.data(), payload.size(),
                   &ack);
  if (!s.ok()) {
    proc.Terminate();
    return s;
  }
  if (restored != nullptr) *restored = ack.value0;
  if (restored_delta_seq != nullptr) *restored_delta_seq = ack.value1;
  down_[shard][replica] = false;
  return Status::Ok();
}

Status ShardCluster::Start() {
  if (started_) return Status::FailedPrecondition("cluster already started");
  if (!endpoint_error_.ok()) return endpoint_error_;
  for (int s = 0; s < num_shards(); ++s) {
    for (int r = 0; r < replication_; ++r) {
      Status st =
          SpawnAndConfigure(s, r, /*restore=*/false, nullptr, nullptr);
      if (!st.ok()) return st;
    }
  }
  started_ = true;
  return Status::Ok();
}

Status ShardCluster::SendUpdateFrames(int shard, int replica,
                                      const GraphUpdate* updates,
                                      size_t count) {
  // Every frame is stamped with the epoch it is sent (not originally
  // routed) under: the stamp asserts "coordinator and shard agree on
  // the current table", and the durability log — not the table — owns
  // the placement of already-routed updates, so replays re-stamp.
  const uint64_t epoch = table_.epoch;
  for (size_t off = 0; off < count; off += kMaxUpdatesPerFrame) {
    const size_t n = std::min(kMaxUpdatesPerFrame, count - off);
    Status s = SendFrame2(procs_[shard][replica]->fd(),
                          ShardMessageType::kUpdateBatch, &epoch,
                          sizeof(epoch), updates + off,
                          n * sizeof(GraphUpdate));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ShardCluster::Update(const GraphUpdate* updates, size_t count) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  for (size_t i = 0; i < count; ++i) {
    // Fail-fast parity with the in-process mode's API boundary: a
    // malformed edge already aborts inside ShardFor (EdgeToIndex), and
    // a garbage type byte must abort HERE rather than make a shard
    // drop the whole frame it rides in.
    GZ_CHECK_MSG(static_cast<uint8_t>(updates[i].type) <= 1,
                 "invalid GraphUpdate type byte");
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (int s = 0; s < num_shards(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    GZ_CHECK_MSG(!procs_[s].empty(),
                 "table routed an update to a removed shard");
    for (int r = 0; r < replication_; ++r) {
      // Durability before transport: every replica's log must already
      // cover these updates when a mid-frame send failure strikes, so
      // repair can reconstruct the replica without loss.
      unacked_[s][r].insert(unacked_[s][r].end(), buf.begin(), buf.end());
      if (!down_[s][r]) {
        Status st = SendUpdateFrames(s, r, buf.data(), buf.size());
        if (!st.ok()) {
          // Replica unreachable: fence it and keep buffering. Nothing
          // is lost — the log holds everything since its checkpoint,
          // and the other replicas keep ingesting.
          down_[s][r] = true;
        }
      }
    }
    buf.clear();  // Keeps capacity for the next span.
  }
  // Periodic auto-checkpoint bounds the unacked logs: without it the
  // coordinator would retain the whole stream in RAM. Best-effort — a
  // failure (down shard, unwritable checkpoint dir) defers truncation
  // to the next interval; ingestion itself keeps going, so the error
  // is logged rather than returned.
  updates_since_checkpoint_ += count;
  if (options_.checkpoint_interval_updates > 0 &&
      updates_since_checkpoint_ >= options_.checkpoint_interval_updates) {
    Status ckpt = Checkpoint();  // Resets the counter on success.
    if (!ckpt.ok()) {
      std::fprintf(stderr,
                   "ShardCluster: auto-checkpoint failed (%s); durability "
                   "logs keep growing until one succeeds\n",
                   ckpt.ToString().c_str());
    }
  }
  // Periodic anti-entropy rejoins dead replicas and repairs divergence
  // without the caller having to notice. Best-effort like the
  // checkpoint, and paced by the interval even when it fails (a
  // permanently unrepairable replica must not turn every span into a
  // repair attempt).
  updates_since_reconcile_ += count;
  if (options_.reconcile_interval_updates > 0 &&
      updates_since_reconcile_ >= options_.reconcile_interval_updates) {
    updates_since_reconcile_ = 0;
    if (replication_ > 1) {
      Status rec = Reconcile(nullptr);
      if (!rec.ok()) {
        std::fprintf(stderr,
                     "ShardCluster: periodic reconcile failed (%s)\n",
                     rec.ToString().c_str());
      }
    }
  }
  return Status::Ok();
}

Status ShardCluster::RequireAllHealthy() {
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s].empty()) continue;  // Removed ids are not shards.
    for (int r = 0; r < replication_; ++r) {
      if (down_[s][r] || !procs_[s][r]->Alive()) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(s) +
            (r > 0 ? " replica " + std::to_string(r) : std::string()) +
            " is down; RestartShard() it before a cluster-wide barrier");
      }
    }
  }
  return Status::Ok();
}

Status ShardCluster::PipelinedBarrier(
    ShardMessageType type, ShardMessageType expected_reply,
    const std::function<std::string(int shard, int replica)>& payload_for,
    const std::function<Status(int shard, int replica,
                               const ShardFrame& reply)>& on_reply,
    BarrierScope scope) {
  std::vector<std::pair<int, int>> targets;
  if (scope == BarrierScope::kAllReplicas) {
    Status s = RequireAllHealthy();
    if (!s.ok()) return s;
    for (int i = 0; i < num_shards(); ++i) {
      if (procs_[i].empty()) continue;
      for (int r = 0; r < replication_; ++r) targets.emplace_back(i, r);
    }
  } else {
    // One live replica per shard; a shard with none fails the fold the
    // same way the all-replica barrier reports a down shard.
    for (int i = 0; i < num_shards(); ++i) {
      if (procs_[i].empty()) continue;
      const int r = FirstLiveReplica(i);
      if (r < 0) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(i) +
            " is down; RestartShard() it before a cluster-wide barrier");
      }
      targets.emplace_back(i, r);
    }
  }
  std::vector<bool> sent(targets.size(), false);
  Status first_error = Status::Ok();
  for (size_t t = 0; t < targets.size(); ++t) {
    const auto [i, r] = targets[t];
    const std::string payload =
        payload_for ? payload_for(i, r) : std::string();
    Status s =
        SendFrame(procs_[i][r]->fd(), type, payload.data(), payload.size());
    if (s.ok()) {
      sent[t] = true;
    } else {
      down_[i][r] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  for (size_t t = 0; t < targets.size(); ++t) {
    if (!sent[t]) continue;
    const auto [i, r] = targets[t];
    bool in_sync = false;
    Status s =
        RecvReply(procs_[i][r]->fd(), expected_reply, &reply_buf_, &in_sync);
    if (s.ok() && on_reply) s = on_reply(i, r, reply_buf_);
    if (!s.ok()) {
      if (!in_sync) down_[i][r] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

Status ShardCluster::Flush() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  return PipelinedBarrier(ShardMessageType::kFlush, ShardMessageType::kAck,
                          nullptr, nullptr);
}

Result<GraphSnapshot> ShardCluster::Snapshot() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Replies fold in arrival order: the first one materializes the
  // snapshot, every later reply streams through MergeSerialized with
  // one scratch sketch in flight. Peak memory is one snapshot + one
  // reply buffer regardless of shard count. One live replica answers
  // per shard — all live replicas are bitwise-equal, so any one is the
  // shard. (On a barrier failure the helper still runs the fold for
  // drained replies; the result is discarded with the error.)
  GraphSnapshot merged;
  Status s = PipelinedBarrier(
      ShardMessageType::kSnapshot, ShardMessageType::kSnapshotBytes, nullptr,
      [&merged](int, int, const ShardFrame& reply) {
        if (!merged.valid()) {
          Result<GraphSnapshot> r = GraphSnapshot::Deserialize(
              reply.payload.data(), reply.payload.size());
          if (!r.ok()) return r.status();
          merged = std::move(r).value();
          return Status::Ok();
        }
        return merged.MergeSerialized(reply.payload.data(),
                                      reply.payload.size());
      },
      BarrierScope::kOnePerShard);
  if (!s.ok()) return s;
  // Removed shards' ingested counts live on here: their sketch content
  // migrated to survivors (count-free deltas), so the aggregate count
  // is survivors' positions plus this adjustment.
  merged.AddUpdates(migrated_updates_);
  return merged;
}

Result<HeavyHitterSketch> ShardCluster::HeavyHitters() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (base_.heavy_hitter_width == 0) {
    return Status::FailedPrecondition(
        "heavy-hitter tracking disabled (heavy_hitter_width == 0)");
  }
  // Sum-merge one live replica per shard (all replicas of a shard hold
  // identical counters — every routed slab fans out to all of them),
  // then fold in what removed shards contributed before retiring.
  HeavyHitterSketch merged;
  Status s = PipelinedBarrier(
      ShardMessageType::kHeavyHitters, ShardMessageType::kHeavyHitterBytes,
      nullptr,
      [&merged](int, int, const ShardFrame& reply) {
        Result<HeavyHitterSketch> r = HeavyHitterSketch::Deserialize(
            reply.payload.data(), reply.payload.size());
        if (!r.ok()) return r.status();
        if (!merged.valid()) {
          merged = std::move(r).value();
          return Status::Ok();
        }
        return merged.Merge(r.value());
      },
      BarrierScope::kOnePerShard);
  if (!s.ok()) return s;
  if (retired_hh_.valid()) {
    if (!merged.valid()) {
      merged = retired_hh_;
    } else {
      s = merged.Merge(retired_hh_);
      if (!s.ok()) return s;
    }
  }
  if (!merged.valid()) return Status::Internal("no heavy-hitter replies");
  return merged;
}

Status ShardCluster::Checkpoint() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Per-replica commit as each ack arrives: a failure on one replica
  // must not discard the commits of replicas whose checkpoints already
  // landed — their disk state has moved, and the coordinator's view has
  // to move with it.
  Status s = PipelinedBarrier(
      ShardMessageType::kCheckpoint, ShardMessageType::kAck,
      [this](int i, int r) { return CheckpointPath(i, r); },
      [this](int i, int r, const ShardFrame& reply) {
        ShardAck ack;
        Status d = DecodeShardAck(reply.payload.data(), reply.payload.size(),
                                  &ack);
        if (!d.ok()) return d;
        // The checkpoint covers everything sent before it (the socket
        // is FIFO and the shard single-threaded): all unacked updates
        // AND all pending deltas, so both logs restart empty.
        has_checkpoint_[i][r] = true;
        checkpoint_updates_[i][r] = ack.value0;
        checkpoint_delta_seq_[i][r] = ack.value1;
        unacked_[i][r].clear();
        std::vector<PendingDelta>& deltas = pending_deltas_[i][r];
        deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                                    [&ack](const PendingDelta& d) {
                                      return d.seq <= ack.value1;
                                    }),
                     deltas.end());
        return Status::Ok();
      });
  if (s.ok()) updates_since_checkpoint_ = 0;
  return s;
}

// ---- Elastic resharding ----------------------------------------------------

Status ShardCluster::BroadcastTable() {
  const std::vector<uint8_t> payload = EncodeRoutingTable(table_);
  const std::string payload_str(payload.begin(), payload.end());
  return PipelinedBarrier(
      ShardMessageType::kEpoch, ShardMessageType::kAck,
      [&payload_str](int, int) { return payload_str; }, nullptr);
}

Status ShardCluster::SendDelta(int shard, int replica,
                               const std::vector<uint8_t>& bytes) {
  ShardAck ack;
  Status s = procs_[shard][replica]->CallAck(ShardMessageType::kMergeDelta,
                                             bytes.data(), bytes.size(),
                                             &ack);
  if (!s.ok()) {
    // Transport loss or a diverged shard; either way repair — replay or
    // reconcile — re-delivers the content.
    down_[shard][replica] = true;
  }
  return s;
}

Result<std::vector<ShardEndpoint>> ShardCluster::ParseReplicaEndpoints(
    const std::string& endpoint) const {
  std::vector<std::string> parts;
  if (!endpoint.empty()) {
    size_t start = 0;
    while (true) {
      const size_t comma = endpoint.find(',', start);
      parts.push_back(endpoint.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (parts.size() > static_cast<size_t>(replication_)) {
    return Status::InvalidArgument(
        std::to_string(parts.size()) + " replica endpoints for a shard "
        "with replication factor " + std::to_string(replication_));
  }
  std::vector<ShardEndpoint> endpoints(replication_);  // Default: local.
  for (size_t r = 0; r < parts.size(); ++r) {
    Result<ShardEndpoint> parsed = ParseShardEndpoint(parts[r]);
    if (!parsed.ok()) return parsed.status();
    endpoints[r] = std::move(parsed).value();
  }
  return endpoints;
}

Result<int> ShardCluster::AddShard(const std::string& endpoint) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (num_active_shards() >=
      static_cast<int>(RoutingTable::kNumSlots)) {
    return Status::FailedPrecondition(
        "slot table is full; cannot add another shard");
  }
  Result<std::vector<ShardEndpoint>> parsed = ParseReplicaEndpoints(endpoint);
  if (!parsed.ok()) return parsed.status();
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  const RoutingTable old_table = table_;
  const int id = AllocateShardSlot(std::move(parsed).value());
  for (int r = 0; r < replication_; ++r) {
    procs_[id][r] = MakeTransportFor(id, r);
  }
  table_ = TableWithShardAdded(old_table, id);
  // The new shard's CONFIG already carries the new table, so it comes
  // up at the current epoch; everyone else learns it from the
  // broadcast. No state migrates: an empty shard is a zero sketch, and
  // zero is the XOR identity.
  for (int r = 0; r < replication_ && s.ok(); ++r) {
    s = SpawnAndConfigure(id, r, /*restore=*/false, nullptr, nullptr);
  }
  if (!s.ok()) {
    for (auto& proc : procs_[id]) proc->Terminate();
    ReleaseLastShardSlot(id);
    table_ = old_table;
    return s;
  }
  s = BroadcastTable();
  if (!s.ok()) return s;
  return id;
}

Status ShardCluster::BeginRemoveShard(int shard) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (procs_[shard].empty()) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (num_active_shards() < 2) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  table_ = TableWithShardRemoved(table_, shard);
  s = BroadcastTable();
  if (!s.ok()) return s;
  // From this epoch on nothing routes to `shard`; its accumulated state
  // drains into the smallest surviving shard. Any single survivor is a
  // correct fold target — the global XOR is what queries see.
  Migration m;
  m.kind = Migration::Kind::kRemove;
  m.source = shard;
  for (const int id : ActiveShards()) {
    if (id != shard) {
      m.target = id;
      break;
    }
  }
  m.next_node = 0;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return Status::Ok();
}

Result<int> ShardCluster::BeginSplitShard(int shard,
                                          const std::string& endpoint) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (procs_[shard].empty()) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  // Keeps the every-live-shard-owns-a-slot invariant: the child takes
  // half the source's slots, so the source needs at least two.
  if (TableSlotCount(table_, shard) < 2) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " owns too few routing slots to split");
  }
  Result<std::vector<ShardEndpoint>> parsed = ParseReplicaEndpoints(endpoint);
  if (!parsed.ok()) return parsed.status();
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  const RoutingTable old_table = table_;
  const int id = AllocateShardSlot(std::move(parsed).value());
  for (int r = 0; r < replication_; ++r) {
    procs_[id][r] = MakeTransportFor(id, r);
  }
  table_ = TableWithShardSplit(old_table, shard, id);
  for (int r = 0; r < replication_ && s.ok(); ++r) {
    s = SpawnAndConfigure(id, r, /*restore=*/false, nullptr, nullptr);
  }
  if (!s.ok()) {
    for (auto& proc : procs_[id]) proc->Terminate();
    ReleaseLastShardSlot(id);
    table_ = old_table;
    return s;
  }
  s = BroadcastTable();
  if (!s.ok()) return s;
  // Balance memory too, not just routing: the upper half of the node
  // range of the source's accumulated state moves to the new shard.
  // (Any fixed range is exact under the XOR fold; half keeps the two
  // sides' footprints comparable.)
  Migration m;
  m.kind = Migration::Kind::kSplit;
  m.source = shard;
  m.target = id;
  m.next_node = base_.num_nodes / 2;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return id;
}

int ShardCluster::migration_source() const {
  GZ_CHECK(migration_.has_value());
  return migration_->source;
}

int ShardCluster::migration_target() const {
  GZ_CHECK(migration_.has_value());
  return migration_->target;
}

Status ShardCluster::PumpMigration() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (!migration_.has_value()) {
    return Status::FailedPrecondition("no active migration");
  }
  Migration& m = *migration_;
  // One unfenced replica per side is enough to pump: fenced replicas
  // get their folds from the logs (restart replay) or from a later
  // reconcile. With no replica left the migration waits for repair.
  const int src = FirstUnfencedReplica(m.source);
  if (src < 0 || FirstUnfencedReplica(m.target) < 0) {
    return Status::FailedPrecondition(
        "migration shard is down; RestartShard() it, then keep pumping");
  }
  if (m.next_node < m.end_node) {
    const uint64_t lo = m.next_node;
    const uint64_t hi =
        std::min(m.end_node, lo + options_.migrate_nodes_per_chunk);
    // Extract is read-only on the source (its internal flush makes the
    // chunk cover everything framed to it so far), so a failure here
    // mutates nothing and the chunk is simply retried after repair.
    const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
    Status s = SendFrame(procs_[m.source][src]->fd(),
                         ShardMessageType::kMigrateExtract, req.data(),
                         req.size());
    if (!s.ok()) {
      down_[m.source][src] = true;
      return s;
    }
    bool in_sync = false;
    s = RecvReply(procs_[m.source][src]->fd(),
                  ShardMessageType::kMigrateData, &reply_buf_, &in_sync);
    if (!s.ok()) {
      if (!in_sync) down_[m.source][src] = true;
      return s;
    }
    // Durability before transport, as with the update logs: both folds
    // — install on the target, XOR-cancel on the source — enter EVERY
    // replica's pending-delta log and the cursor advances BEFORE any
    // frame is sent. Whatever dies after this point, restart replay
    // (with the checkpoint's delta sequence number skipping what a
    // published checkpoint already covers) re-delivers exactly the
    // missing folds, and the migration resumes at the next chunk.
    for (int r = 0; r < replication_; ++r) {
      pending_deltas_[m.target][r].push_back(
          {++delta_seq_sent_[m.target][r], reply_buf_.payload});
    }
    for (int r = 0; r < replication_; ++r) {
      pending_deltas_[m.source][r].push_back(
          {++delta_seq_sent_[m.source][r],
           r == replication_ - 1 ? std::move(reply_buf_.payload)
                                 : reply_buf_.payload});
    }
    m.next_node = hi;
    // BOTH sides' sends must be attempted even if the first fails: a
    // logged delta must either reach its replica now or leave that
    // replica fenced (SendDelta fences on failure) so repair delivers
    // it. Returning between the sends would strand the source's cancel
    // on a HEALTHY replica — nothing would ever deliver it, later
    // deltas would close the sequence gap, and a checkpoint would
    // truncate the one unsent fold, silently cancelling the chunk out
    // of the global XOR. Fenced replicas are skipped the same way: the
    // logged entry is their delivery.
    Status install = Status::Ok();
    for (int r = 0; r < replication_; ++r) {
      if (down_[m.target][r]) continue;
      Status st =
          SendDelta(m.target, r, pending_deltas_[m.target][r].back().bytes);
      if (!st.ok() && install.ok()) install = st;
    }
    Status cancel = Status::Ok();
    for (int r = 0; r < replication_; ++r) {
      if (down_[m.source][r]) continue;
      Status st =
          SendDelta(m.source, r, pending_deltas_[m.source][r].back().bytes);
      if (!st.ok() && cancel.ok()) cancel = st;
    }
    return install.ok() ? cancel : install;
  }
  // Final step. For a split there is nothing left to do; for a removal
  // the source — now a zero sketch holding no routed slots — retires.
  if (m.kind == Migration::Kind::kRemove) {
    // The retiring shard's heavy-hitter counters are additive state
    // that no migration delta carries (deltas move XOR sketch content
    // only), so they are captured here, before the process goes away,
    // and folded into every later HeavyHitters() answer. Fetched and
    // staged BEFORE any bookkeeping commits: a failure anywhere in
    // this step leaves nothing applied, so the step retries cleanly.
    HeavyHitterSketch source_hh;
    if (base_.heavy_hitter_width > 0) {
      Status s = SendFrame(procs_[m.source][src]->fd(),
                           ShardMessageType::kHeavyHitters, nullptr, 0);
      if (!s.ok()) {
        down_[m.source][src] = true;
        return s;
      }
      bool in_sync = false;
      s = RecvReply(procs_[m.source][src]->fd(),
                    ShardMessageType::kHeavyHitterBytes, &reply_buf_,
                    &in_sync);
      if (!s.ok()) {
        if (!in_sync) down_[m.source][src] = true;
        return s;
      }
      Result<HeavyHitterSketch> hh = HeavyHitterSketch::Deserialize(
          reply_buf_.payload.data(), reply_buf_.payload.size());
      if (!hh.ok()) return hh.status();
      source_hh = std::move(hh).value();
    }
    ShardAck ack;
    // The source is quiescent (no slots since the epoch bump, flushed
    // by every extract), so its position is final; it must survive in
    // the aggregate update count after the process goes away. A sticky
    // divergence error surfaces here and blocks the removal.
    Status s = procs_[m.source][src]->CallAck(ShardMessageType::kStats,
                                              nullptr, 0, &ack);
    if (!s.ok()) {
      down_[m.source][src] = true;
      return s;
    }
    // Commit point: nothing below can fail, so the captured counters
    // and the update count land exactly once.
    migrated_updates_ += ack.value0;
    if (source_hh.valid()) {
      if (!retired_hh_.valid()) {
        retired_hh_ = std::move(source_hh);
      } else {
        // Same cluster-wide params by construction.
        GZ_CHECK(retired_hh_.Merge(source_hh).ok());
      }
    }
    for (int r = 0; r < replication_; ++r) {
      if (!down_[m.source][r]) {
        ShardAck ignored;
        procs_[m.source][r]->CallAck(ShardMessageType::kShutdown, nullptr, 0,
                                     &ignored);  // Best-effort orderly exit.
      }
      procs_[m.source][r]->Terminate();  // Degenerates to a reap.
      ::unlink(CheckpointPath(m.source, r).c_str());
      ::unlink((CheckpointPath(m.source, r) + ".tmp").c_str());
      down_[m.source][r] = true;
      unacked_[m.source][r].clear();
      pending_deltas_[m.source][r].clear();
      has_checkpoint_[m.source][r] = false;
    }
    procs_[m.source].clear();
  }
  migration_.reset();
  return Status::Ok();
}

Status ShardCluster::RemoveShard(int shard) {
  Status s = BeginRemoveShard(shard);
  while (s.ok() && migration_.has_value()) s = PumpMigration();
  return s;
}

Result<int> ShardCluster::SplitShard(int shard,
                                     const std::string& endpoint) {
  Result<int> id = BeginSplitShard(shard, endpoint);
  if (!id.ok()) return id;
  Status s = Status::Ok();
  while (s.ok() && migration_.has_value()) s = PumpMigration();
  if (!s.ok()) return s;
  return id;
}

// ---- Lifecycle -------------------------------------------------------------

std::vector<bool> ShardCluster::HealthCheck() {
  std::vector<bool> alive(num_shards(), false);
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s].empty()) continue;
    bool all_alive = true;
    for (int r = 0; r < replication_; ++r) {
      if (down_[s][r] || !procs_[s][r]->Alive()) {
        all_alive = false;
        continue;
      }
      ShardAck ack;
      if (!procs_[s][r]
               ->CallAck(ShardMessageType::kPing, nullptr, 0, &ack)
               .ok()) {
        down_[s][r] = true;
        all_alive = false;
      }
    }
    alive[s] = all_alive;
  }
  return alive;
}

void ShardCluster::KillShard(int shard, bool observed) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  GZ_CHECK_MSG(!procs_[shard].empty(), "shard already removed");
  for (int r = 0; r < replication_; ++r) KillReplica(shard, r, observed);
}

void ShardCluster::KillReplica(int shard, int replica, bool observed) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  GZ_CHECK(replica >= 0 && replica < replication_);
  GZ_CHECK_MSG(!procs_[shard].empty(), "shard already removed");
  procs_[shard][replica]->Terminate();
  if (observed) down_[shard][replica] = true;
}

Status ShardCluster::CorruptReplicaForTest(
    int shard, int replica, const std::vector<uint8_t>& delta_bytes) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  GZ_CHECK(replica >= 0 && replica < replication_);
  GZ_CHECK_MSG(!procs_[shard].empty(), "shard already removed");
  // Deliberately bypasses the pending-delta log AND delta_seq_sent_:
  // the fold lands on the shard but the coordinator's books never hear
  // of it. The replica's content and reported delta_seq now both
  // disagree with the books — silent divergence.
  ShardAck ack;
  return procs_[shard][replica]->CallAck(ShardMessageType::kMergeDelta,
                                         delta_bytes.data(),
                                         delta_bytes.size(), &ack);
}

Status ShardCluster::RestartReplica(int shard, int replica) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  GZ_CHECK(replica >= 0 && replica < replication_);
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (procs_[shard].empty()) {
    return Status::FailedPrecondition("shard was removed");
  }
  procs_[shard][replica]->Terminate();  // Reaps; no-op if already dead.
  uint64_t restored = 0, restored_seq = 0;
  Status s = SpawnAndConfigure(shard, replica, /*restore=*/true, &restored,
                               &restored_seq);
  if (!s.ok()) return s;
  // Replay everything the restored checkpoint does not cover. The
  // on-disk checkpoint may be AHEAD of the last acked one (the shard
  // published it, then died before the ack): a checkpoint covers
  // exactly the updates sent before its request — a prefix of the
  // unacked log — so the restored position tells how much of the log
  // to skip. The same reconciliation runs for migration deltas via the
  // checkpoint's delta sequence number. Linearity makes the replayed
  // replica bitwise-identical to one that never crashed either way.
  const std::vector<GraphUpdate>& log = unacked_[shard][replica];
  const uint64_t acked = has_checkpoint_[shard][replica]
                             ? checkpoint_updates_[shard][replica]
                             : 0;
  if (restored < acked || restored - acked > log.size()) {
    procs_[shard][replica]->Terminate();
    down_[shard][replica] = true;
    return Status::Internal(
        "restored shard position " + std::to_string(restored) +
        " is outside what the checkpoint plus the unacked log can "
        "explain");
  }
  if (restored_seq < checkpoint_delta_seq_[shard][replica] ||
      restored_seq > delta_seq_sent_[shard][replica]) {
    procs_[shard][replica]->Terminate();
    down_[shard][replica] = true;
    return Status::Internal(
        "restored shard delta sequence " + std::to_string(restored_seq) +
        " is outside what the checkpoint plus the pending deltas can "
        "explain");
  }
  const size_t skip = static_cast<size_t>(restored - acked);
  if (skip < log.size()) {
    s = SendUpdateFrames(shard, replica, log.data() + skip,
                         log.size() - skip);
    if (!s.ok()) {
      down_[shard][replica] = true;
      return s;
    }
  }
  // Replay order between updates and deltas does not matter — all XOR
  // folds commute — so deltas go second wholesale.
  for (const PendingDelta& delta : pending_deltas_[shard][replica]) {
    if (delta.seq <= restored_seq) continue;  // Checkpoint covers it.
    s = SendDelta(shard, replica, delta.bytes);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ShardCluster::RestartShard(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (procs_[shard].empty()) {
    return Status::FailedPrecondition("shard was removed");
  }
  Status first_error = Status::Ok();
  for (int r = 0; r < replication_; ++r) {
    Status s = RestartReplica(shard, r);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status ShardCluster::Shutdown() {
  if (!started_) return Status::Ok();
  Status first_error = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s].empty()) continue;
    for (int r = 0; r < replication_; ++r) {
      if (down_[s][r] || !procs_[s][r]->Alive()) {
        procs_[s][r]->Terminate();  // Reap whatever is left.
        continue;
      }
      ShardAck ack;
      Status st = procs_[s][r]->CallAck(ShardMessageType::kShutdown, nullptr,
                                        0, &ack);
      if (!st.ok() && first_error.ok()) first_error = st;
      // Orderly exit follows the ack; Kill() degenerates to a reap (the
      // SIGKILL lands on an exiting or exited process) and guarantees
      // no zombie either way.
      procs_[s][r]->Terminate();
      down_[s][r] = true;
    }
  }
  started_ = false;
  return first_error;
}

Status ShardCluster::ReplicaStatsEx(int shard, int replica,
                                    ShardStatsEx* ex) {
  Status s = SendFrame(procs_[shard][replica]->fd(),
                       ShardMessageType::kStatsEx, nullptr, 0);
  if (!s.ok()) {
    down_[shard][replica] = true;
    return s;
  }
  bool in_sync = false;
  s = RecvReply(procs_[shard][replica]->fd(),
                ShardMessageType::kStatsReply, &reply_buf_, &in_sync);
  if (!s.ok()) {
    if (!in_sync) down_[shard][replica] = true;
    return s;
  }
  s = DecodeShardStatsEx(reply_buf_.payload.data(),
                         reply_buf_.payload.size(), ex);
  if (!s.ok()) {
    down_[shard][replica] = true;  // A garbled reply payload: lost sync.
  }
  return s;
}

Result<ShardStats> ShardCluster::Stats(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (procs_[shard].empty()) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " was removed");
  }
  const int replica = FirstUnfencedReplica(shard);
  if (replica < 0) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is down");
  }
  // STATS_EX rather than the legacy STATS: the reply carries the
  // shard's serving watermark (epoch, update count, delta sequence) on
  // top of the RAM figure, which is what the serving tier keys its
  // cache by.
  ShardStatsEx ex;
  Status s = ReplicaStatsEx(shard, replica, &ex);
  if (!s.ok()) return s;
  ShardStats stats;
  stats.num_updates = ex.num_updates;
  stats.ram_bytes = ex.ram_bytes;
  stats.epoch = ex.epoch;
  stats.delta_seq = ex.delta_seq;
  return stats;
}

// ---- Replication -----------------------------------------------------------

Status ShardCluster::ExtractRange(int shard, int replica, uint64_t lo,
                                  uint64_t hi, std::vector<uint8_t>* bytes) {
  const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
  Status s = SendFrame(procs_[shard][replica]->fd(),
                       ShardMessageType::kMigrateExtract, req.data(),
                       req.size());
  if (!s.ok()) {
    down_[shard][replica] = true;
    return s;
  }
  bool in_sync = false;
  s = RecvReply(procs_[shard][replica]->fd(),
                ShardMessageType::kMigrateData, &reply_buf_, &in_sync);
  if (!s.ok()) {
    if (!in_sync) down_[shard][replica] = true;
    return s;
  }
  *bytes = std::move(reply_buf_.payload);
  return Status::Ok();
}

Status ShardCluster::CheckpointReplica(int shard, int replica) {
  const std::string path = CheckpointPath(shard, replica);
  ShardAck ack;
  Status s = procs_[shard][replica]->CallAck(ShardMessageType::kCheckpoint,
                                             path.data(), path.size(), &ack);
  if (!s.ok()) {
    down_[shard][replica] = true;
    return s;
  }
  // Same per-replica commit the Checkpoint() barrier runs.
  has_checkpoint_[shard][replica] = true;
  checkpoint_updates_[shard][replica] = ack.value0;
  checkpoint_delta_seq_[shard][replica] = ack.value1;
  unacked_[shard][replica].clear();
  std::vector<PendingDelta>& deltas = pending_deltas_[shard][replica];
  deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                              [&ack](const PendingDelta& d) {
                                return d.seq <= ack.value1;
                              }),
               deltas.end());
  return Status::Ok();
}

Status ShardCluster::RepairReplica(int shard, int replica, int reference,
                                   uint64_t expected_updates,
                                   GraphSnapshot* scratch,
                                   uint64_t* repaired_chunks) {
  const bool rejoined = down_[shard][replica];
  if (rejoined) {
    // Rejoin is reconnect + reconcile: the replica comes back EMPTY (a
    // zero sketch — the XOR identity) and the diff sweep below
    // transfers exactly the reference's content. Its books and logs
    // stay untouched until the repair completes, so a crash mid-repair
    // leaves the classic restore+replay lineage intact — RestartShard
    // still works, and so does another Reconcile.
    procs_[shard][replica]->Terminate();
    Status st = SpawnAndConfigure(shard, replica, /*restore=*/false, nullptr,
                                  nullptr);
    if (!st.ok()) {
      down_[shard][replica] = true;
      return st;
    }
    down_[shard][replica] = true;  // Fenced until fully repaired.
  }
  // A live replica whose reported position matches the books AND whose
  // content sweep finds nothing needs no finalization — the common
  // all-healthy case costs only the verification pulls.
  bool position_ok = false;
  if (!rejoined) {
    ShardStatsEx ex;
    Status st = ReplicaStatsEx(shard, replica, &ex);
    if (!st.ok()) return st;
    position_ok = ex.num_updates == expected_updates &&
                  ex.delta_seq == delta_seq_sent_[shard][replica] &&
                  ex.epoch == table_.epoch;
  }
  uint64_t diffs = 0;
  for (uint64_t lo = 0; lo < base_.num_nodes;
       lo += options_.migrate_nodes_per_chunk) {
    const uint64_t hi =
        std::min(base_.num_nodes, lo + options_.migrate_nodes_per_chunk);
    std::vector<uint8_t> want, have;
    Status st = ExtractRange(shard, reference, lo, hi, &want);
    if (!st.ok()) return st;
    st = ExtractRange(shard, replica, lo, hi, &have);
    if (!st.ok()) return st;
    if (want == have) continue;  // Bitwise-equal chunk: nothing to do.
    ++diffs;
    // XOR-diff through the scratch snapshot: fold both serializations
    // in (the range now holds reference XOR suspect), extract that
    // difference, then fold the extraction back so the scratch returns
    // to zero for the next chunk. Folding the difference into the
    // suspect makes it equal to the reference — whichever copy was
    // behind, the XOR moves it forward.
    if (!scratch->valid()) {
      NodeSketchParams params;
      params.num_nodes = base_.num_nodes;
      params.seed = base_.seed;
      params.cols = base_.cols;
      params.rounds = base_.rounds > 0
                          ? base_.rounds
                          : NodeSketch::DefaultRounds(base_.num_nodes);
      *scratch = GraphSnapshot(
          std::vector<NodeSketch>(params.num_nodes, NodeSketch(params)), 0);
    }
    st = scratch->MergeSerializedNodeRange(want.data(), want.size());
    if (!st.ok()) return st;
    st = scratch->MergeSerializedNodeRange(have.data(), have.size());
    if (!st.ok()) return st;
    const std::vector<uint8_t> diff = scratch->ExtractNodeRange(lo, hi);
    st = scratch->MergeSerializedNodeRange(diff.data(), diff.size());
    if (!st.ok()) return st;
    // Deliberately UNLOGGED (see Reconcile's contract): repair deltas
    // are content transfer, not replay lineage.
    ShardAck ack;
    st = procs_[shard][replica]->CallAck(ShardMessageType::kMergeDelta,
                                         diff.data(), diff.size(), &ack);
    if (!st.ok()) {
      down_[shard][replica] = true;
      return st;
    }
  }
  if (position_ok && diffs == 0) return Status::Ok();
  // Finalize: the repaired content now equals the reference's, but the
  // fold carried no counts and the repair folds bumped the shard-side
  // delta sequence — assert the logical position the content
  // represents, then anchor everything with the replica's own
  // checkpoint so its books and logs truncate to here. Only after both
  // land does the replica rejoin the live set.
  const std::vector<uint8_t> sync =
      EncodeSyncPosition(expected_updates, delta_seq_sent_[shard][replica]);
  ShardAck ack;
  Status st = procs_[shard][replica]->CallAck(
      ShardMessageType::kSyncPosition, sync.data(), sync.size(), &ack);
  if (!st.ok()) {
    down_[shard][replica] = true;
    return st;
  }
  st = CheckpointReplica(shard, replica);
  if (!st.ok()) return st;
  down_[shard][replica] = false;
  if (repaired_chunks != nullptr) *repaired_chunks += diffs;
  return Status::Ok();
}

Status ShardCluster::Reconcile(uint64_t* repaired_chunks) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (repaired_chunks != nullptr) *repaired_chunks = 0;
  // One scratch snapshot for every XOR diff, built lazily on the first
  // differing chunk and re-zeroed after each use.
  GraphSnapshot scratch;
  Status first_error = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s].empty()) continue;
    // What the books say the shard has ingested (identical across
    // replicas: checkpointed + unacked always sums to every routed
    // update). Replica 0's pair is also the serving watermark.
    const uint64_t expected =
        checkpoint_updates_[s][0] + unacked_[s][0].size();
    // Reference: the lowest-index live replica whose reported position
    // matches the books exactly. A diverged replica (an unlogged fold
    // moved its delta sequence past what the coordinator ever sent)
    // fails this check and becomes a repair target instead.
    int ref = -1;
    for (int r = 0; r < replication_ && ref < 0; ++r) {
      if (down_[s][r] || !procs_[s][r]->Alive()) continue;
      ShardStatsEx ex;
      Status st = ReplicaStatsEx(s, r, &ex);
      if (!st.ok()) {
        if (first_error.ok()) first_error = st;
        continue;
      }
      if (ex.num_updates == expected &&
          ex.delta_seq == delta_seq_sent_[s][r] &&
          ex.epoch == table_.epoch) {
        ref = r;
      }
    }
    if (ref < 0) {
      if (first_error.ok()) {
        first_error = Status::FailedPrecondition(
            "shard " + std::to_string(s) +
            " has no position-verified live replica to reconcile from; "
            "RestartShard() it first");
      }
      continue;
    }
    for (int r = 0; r < replication_; ++r) {
      if (r == ref) continue;
      Status st = RepairReplica(s, r, ref, expected, &scratch,
                                repaired_chunks);
      if (!st.ok() && first_error.ok()) first_error = st;
    }
  }
  return first_error;
}

// ---- Serving tier ----------------------------------------------------------

ShardWatermarks ShardCluster::Watermarks() const {
  // Pure bookkeeping, no RPC: a shard's eventual update count is its
  // last acked checkpoint position plus its unacked log (the log holds
  // everything since, including updates buffered for a down replica),
  // and its delta position is the deltas framed to it. FIFO sockets
  // make shard content a pure function of this pair. Replica 0's books
  // stand for the shard: every replica carries the same logical
  // position, and repair-side checkpoints never move replica 0's
  // delta sequence.
  ShardWatermarks marks;
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s].empty()) continue;
    ShardWatermark mark;
    mark.num_updates = checkpoint_updates_[s][0] + unacked_[s][0].size();
    mark.delta_seq = delta_seq_sent_[s][0];
    marks.emplace(s, mark);
  }
  return marks;
}

Status ShardCluster::CachedSnapshot(const GraphSnapshot** out) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  const ShardWatermarks marks = Watermarks();
  uint64_t total_updates = migrated_updates_;
  for (const auto& [shard, mark] : marks) {
    total_updates += mark.num_updates;
  }
  if (!cache_.Fresh(table_.epoch, marks)) {
    NodeSketchParams params;
    params.num_nodes = base_.num_nodes;
    params.seed = base_.seed;
    params.cols = base_.cols;
    params.rounds = base_.rounds;
    // The puller is the read-only extract RPC migration already uses;
    // FIFO ordering means the extracted bytes cover every frame sent
    // before the pull, i.e. exactly the watermark the key promises.
    // Any live replica serves — all of them are bitwise-equal at the
    // keyed position — so the pull fails over past dead ones.
    const Status s = cache_.Refresh(
        table_.epoch, marks, total_updates, params,
        [this](int shard, uint64_t lo, uint64_t hi,
               std::vector<uint8_t>* delta) {
          if (procs_[shard].empty() || FirstUnfencedReplica(shard) < 0) {
            return Status::FailedPrecondition(
                "snapshot-cache refresh needs shard " +
                std::to_string(shard) +
                ", which is down; RestartShard() it first");
          }
          Status st = Status::Ok();
          for (int r = 0; r < replication_; ++r) {
            if (down_[shard][r]) continue;
            st = ExtractRange(shard, r, lo, hi, delta);
            if (st.ok()) return st;  // Fenced on failure; try the next.
          }
          return st;
        });
    if (!s.ok()) return s;
  }
  *out = &cache_.merged();
  return Status::Ok();
}

Result<size_t> ShardCluster::EvaluateStandingQueries(
    int threads, const StandingQueryNotifier& notifier) {
  if (standing_queries_.size() == 0) return size_t{0};
  const GraphSnapshot* snap = nullptr;
  const Status s = CachedSnapshot(&snap);
  if (!s.ok()) return s;
  return standing_queries_.Evaluate(*snap, table_.epoch, threads,
                                    notifier);
}

}  // namespace gz
