#include "distributed/shard_cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {
namespace {

// Replay and routing frames are chunked so a shard's receive buffer
// stays bounded no matter how long an unacked log grows.
constexpr size_t kMaxUpdatesPerFrame = 1 << 18;

}  // namespace

ShardCluster::ShardCluster(const GraphZeppelinConfig& base, int num_shards,
                           ShardClusterOptions options)
    : base_(base), options_(std::move(options)) {
  GZ_CHECK(num_shards >= 1);
  binary_ = options_.shard_binary.empty() ? DefaultShardBinary()
                                          : options_.shard_binary;
  if (options_.checkpoint_dir.empty()) options_.checkpoint_dir = base_.disk_dir;
  const char* env_log_dir = std::getenv("GZ_SHARD_LOG_DIR");
  log_dir_ = !options_.log_dir.empty() ? options_.log_dir
             : (env_log_dir != nullptr && *env_log_dir != '\0')
                 ? env_log_dir
                 : base_.disk_dir;
  ::mkdir(log_dir_.c_str(), 0755);  // Best-effort; EEXIST is the norm.

  procs_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    procs_.push_back(std::make_unique<ShardProcess>());
  }
  down_.assign(num_shards, true);  // Up only after Start().
  route_bufs_.resize(num_shards);
  unacked_.resize(num_shards);
  has_checkpoint_.assign(num_shards, false);
  checkpoint_updates_.assign(num_shards, 0);
}

ShardCluster::~ShardCluster() {
  if (started_) Shutdown();
  for (int s = 0; s < num_shards(); ++s) {
    // Unconditional: a checkpoint file can exist without an ack (shard
    // crashed between publishing and replying).
    ::unlink(CheckpointPath(s).c_str());
    ::unlink((CheckpointPath(s) + ".tmp").c_str());
  }
}

std::string ShardCluster::CheckpointPath(int shard) const {
  // Coordinator pid + seed + shard index: concurrent clusters sharing
  // one checkpoint_dir cannot clobber each other.
  return options_.checkpoint_dir + "/gz_shard_ckpt_p" +
         std::to_string(::getpid()) + "_s" + std::to_string(base_.seed) +
         "_" + std::to_string(shard) + ".bin";
}

std::string ShardCluster::LogPath(int shard) const {
  return log_dir_ + "/gz_shard_p" + std::to_string(::getpid()) + "_s" +
         std::to_string(base_.seed) + "_shard" + std::to_string(shard) +
         ".log";
}

GraphZeppelinConfig ShardCluster::ShardConfigFor(int shard) const {
  GraphZeppelinConfig config = base_;
  config.instance_tag = "shard" + std::to_string(shard);
  return config;
}

Status ShardCluster::SpawnAndConfigure(int shard, bool restore,
                                       uint64_t* restored) {
  ShardProcess& proc = *procs_[shard];
  Status s = proc.Spawn(binary_, LogPath(shard));
  if (!s.ok()) return s;
  ShardConfig sc;
  sc.config = ShardConfigFor(shard);
  if (restore && has_checkpoint_[shard]) {
    sc.restore_checkpoint = CheckpointPath(shard);
  }
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ShardAck ack;
  s = proc.CallAck(ShardMessageType::kConfig, payload.data(), payload.size(),
                   &ack);
  if (!s.ok()) {
    proc.Kill();
    return s;
  }
  if (restored != nullptr) *restored = ack.value0;
  down_[shard] = false;
  return Status::Ok();
}

Status ShardCluster::Start() {
  if (started_) return Status::FailedPrecondition("cluster already started");
  for (int s = 0; s < num_shards(); ++s) {
    Status st = SpawnAndConfigure(s, /*restore=*/false, nullptr);
    if (!st.ok()) return st;
  }
  started_ = true;
  return Status::Ok();
}

Status ShardCluster::Update(const GraphUpdate* updates, size_t count) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  for (size_t i = 0; i < count; ++i) {
    // Fail-fast parity with the in-process mode's API boundary: a
    // malformed edge already aborts inside ShardFor (EdgeToIndex), and
    // a garbage type byte must abort HERE rather than make a shard
    // drop the whole frame it rides in.
    GZ_CHECK_MSG(static_cast<uint8_t>(updates[i].type) <= 1,
                 "invalid GraphUpdate type byte");
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (int s = 0; s < num_shards(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    // Durability before transport: the log must already cover these
    // updates when a mid-frame send failure strikes, so the restart
    // replay can reconstruct the shard without loss.
    unacked_[s].insert(unacked_[s].end(), buf.begin(), buf.end());
    if (!down_[s]) {
      for (size_t off = 0; off < buf.size(); off += kMaxUpdatesPerFrame) {
        const size_t n = std::min(kMaxUpdatesPerFrame, buf.size() - off);
        Status st = SendFrame2(procs_[s]->fd(),
                               ShardMessageType::kUpdateBatch, buf.data() + off,
                               n * sizeof(GraphUpdate), nullptr, 0);
        if (!st.ok()) {
          // Shard unreachable: fence it and keep buffering. Nothing is
          // lost — the log holds everything since its last checkpoint.
          down_[s] = true;
          break;
        }
      }
    }
    buf.clear();  // Keeps capacity for the next span.
  }
  // Periodic auto-checkpoint bounds the unacked logs: without it the
  // coordinator would retain the whole stream in RAM. Best-effort — a
  // failure (down shard, unwritable checkpoint dir) defers truncation
  // to the next interval; ingestion itself keeps going, so the error
  // is logged rather than returned.
  updates_since_checkpoint_ += count;
  if (options_.checkpoint_interval_updates > 0 &&
      updates_since_checkpoint_ >= options_.checkpoint_interval_updates) {
    Status ckpt = Checkpoint();  // Resets the counter on success.
    if (!ckpt.ok()) {
      std::fprintf(stderr,
                   "ShardCluster: auto-checkpoint failed (%s); durability "
                   "logs keep growing until one succeeds\n",
                   ckpt.ToString().c_str());
    }
  }
  return Status::Ok();
}

Status ShardCluster::RequireAllHealthy() {
  for (int s = 0; s < num_shards(); ++s) {
    if (down_[s] || !procs_[s]->Running()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) +
          " is down; RestartShard() it before a cluster-wide barrier");
    }
  }
  return Status::Ok();
}

Status ShardCluster::PipelinedBarrier(
    ShardMessageType type, ShardMessageType expected_reply,
    const std::function<std::string(int shard)>& payload_for,
    const std::function<Status(int shard, const ShardFrame& reply)>&
        on_reply) {
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  std::vector<bool> sent(num_shards(), false);
  Status first_error = Status::Ok();
  for (int i = 0; i < num_shards(); ++i) {
    const std::string payload = payload_for ? payload_for(i) : std::string();
    s = SendFrame(procs_[i]->fd(), type, payload.data(), payload.size());
    if (s.ok()) {
      sent[i] = true;
    } else {
      down_[i] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  for (int i = 0; i < num_shards(); ++i) {
    if (!sent[i]) continue;
    bool in_sync = false;
    s = RecvReply(procs_[i]->fd(), expected_reply, &reply_buf_, &in_sync);
    if (s.ok() && on_reply) s = on_reply(i, reply_buf_);
    if (!s.ok()) {
      if (!in_sync) down_[i] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

Status ShardCluster::Flush() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  return PipelinedBarrier(ShardMessageType::kFlush, ShardMessageType::kAck,
                          nullptr, nullptr);
}

Result<GraphSnapshot> ShardCluster::Snapshot() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Replies fold in arrival order: the first one materializes the
  // snapshot, every later reply streams through MergeSerialized with
  // one scratch sketch in flight. Peak memory is one snapshot + one
  // reply buffer regardless of shard count. (On a barrier failure the
  // helper still runs the fold for drained replies; the result is
  // discarded with the error.)
  GraphSnapshot merged;
  Status s = PipelinedBarrier(
      ShardMessageType::kSnapshot, ShardMessageType::kSnapshotBytes, nullptr,
      [&merged](int, const ShardFrame& reply) {
        if (!merged.valid()) {
          Result<GraphSnapshot> r = GraphSnapshot::Deserialize(
              reply.payload.data(), reply.payload.size());
          if (!r.ok()) return r.status();
          merged = std::move(r).value();
          return Status::Ok();
        }
        return merged.MergeSerialized(reply.payload.data(),
                                      reply.payload.size());
      });
  if (!s.ok()) return s;
  return merged;
}

Status ShardCluster::Checkpoint() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Per-shard commit as each ack arrives: a failure on one shard must
  // not discard the commits of shards whose checkpoints already landed
  // — their disk state has moved, and the coordinator's view has to
  // move with it.
  Status s = PipelinedBarrier(
      ShardMessageType::kCheckpoint, ShardMessageType::kAck,
      [this](int i) { return CheckpointPath(i); },
      [this](int i, const ShardFrame& reply) {
        ShardAck ack;
        Status d = DecodeShardAck(reply.payload.data(), reply.payload.size(),
                                  &ack);
        if (!d.ok()) return d;
        // The checkpoint covers everything sent before it (the socket
        // is FIFO and the shard single-threaded), so the log restarts
        // empty.
        has_checkpoint_[i] = true;
        checkpoint_updates_[i] = ack.value0;
        unacked_[i].clear();
        return Status::Ok();
      });
  if (s.ok()) updates_since_checkpoint_ = 0;
  return s;
}

std::vector<bool> ShardCluster::HealthCheck() {
  std::vector<bool> alive(num_shards(), false);
  for (int s = 0; s < num_shards(); ++s) {
    if (down_[s] || !procs_[s]->Running()) continue;
    ShardAck ack;
    if (procs_[s]->CallAck(ShardMessageType::kPing, nullptr, 0, &ack).ok()) {
      alive[s] = true;
    } else {
      down_[s] = true;
    }
  }
  return alive;
}

void ShardCluster::KillShard(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  procs_[shard]->Kill();
  down_[shard] = true;
}

Status ShardCluster::RestartShard(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  procs_[shard]->Kill();  // Reaps; no-op if already dead.
  uint64_t restored = 0;
  Status s = SpawnAndConfigure(shard, /*restore=*/true, &restored);
  if (!s.ok()) return s;
  // Replay everything the restored checkpoint does not cover. The
  // on-disk checkpoint may be AHEAD of the last acked one (the shard
  // published it, then died before the ack): a checkpoint covers
  // exactly the updates sent before its request — a prefix of the
  // unacked log — so the restored position tells how much of the log
  // to skip. Linearity makes the replayed shard bitwise-identical to
  // one that never crashed either way.
  const std::vector<GraphUpdate>& log = unacked_[shard];
  const uint64_t acked = has_checkpoint_[shard] ? checkpoint_updates_[shard]
                                                : 0;
  if (restored < acked || restored - acked > log.size()) {
    procs_[shard]->Kill();
    down_[shard] = true;
    return Status::Internal(
        "restored shard position " + std::to_string(restored) +
        " is outside what the checkpoint plus the unacked log can "
        "explain");
  }
  const size_t skip = static_cast<size_t>(restored - acked);
  for (size_t off = skip; off < log.size(); off += kMaxUpdatesPerFrame) {
    const size_t n = std::min(kMaxUpdatesPerFrame, log.size() - off);
    s = SendFrame2(procs_[shard]->fd(), ShardMessageType::kUpdateBatch,
                   log.data() + off, n * sizeof(GraphUpdate), nullptr, 0);
    if (!s.ok()) {
      down_[shard] = true;
      return s;
    }
  }
  return Status::Ok();
}

Status ShardCluster::Shutdown() {
  if (!started_) return Status::Ok();
  Status first_error = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (down_[s] || !procs_[s]->Running()) {
      procs_[s]->Kill();  // Reap whatever is left.
      continue;
    }
    ShardAck ack;
    Status st =
        procs_[s]->CallAck(ShardMessageType::kShutdown, nullptr, 0, &ack);
    if (!st.ok() && first_error.ok()) first_error = st;
    // Orderly exit follows the ack; Kill() degenerates to a reap (the
    // SIGKILL lands on an exiting or exited process) and guarantees no
    // zombie either way.
    procs_[s]->Kill();
    down_[s] = true;
  }
  started_ = false;
  return first_error;
}

Result<ShardStats> ShardCluster::Stats(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (down_[shard]) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is down");
  }
  ShardAck ack;
  Status s =
      procs_[shard]->CallAck(ShardMessageType::kStats, nullptr, 0, &ack);
  if (!s.ok()) {
    down_[shard] = true;
    return s;
  }
  ShardStats stats;
  stats.num_updates = ack.value0;
  stats.ram_bytes = ack.value1;
  return stats;
}

}  // namespace gz
