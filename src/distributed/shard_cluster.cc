#include "distributed/shard_cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {
namespace {

// Replay and routing frames are chunked so a shard's receive buffer
// stays bounded no matter how long an unacked log grows.
constexpr size_t kMaxUpdatesPerFrame = 1 << 18;

}  // namespace

ShardCluster::ShardCluster(const GraphZeppelinConfig& base, int num_shards,
                           ShardClusterOptions options)
    : base_(base),
      options_(std::move(options)),
      cache_(options_.migrate_nodes_per_chunk) {
  GZ_CHECK(num_shards >= 1);
  GZ_CHECK(options_.migrate_nodes_per_chunk >= 1);
  if (options_.shard_endpoints.size() > static_cast<size_t>(num_shards)) {
    // A deployment-config error, reported from Start() like a
    // malformed endpoint URI — not a programmer-error abort.
    endpoint_error_ = Status::InvalidArgument(
        std::to_string(options_.shard_endpoints.size()) +
        " shard endpoints for " + std::to_string(num_shards) + " shards");
    options_.shard_endpoints.resize(num_shards);
  }
  binary_ = options_.shard_binary.empty() ? DefaultShardBinary()
                                          : options_.shard_binary;
  if (options_.checkpoint_dir.empty()) options_.checkpoint_dir = base_.disk_dir;
  const char* env_log_dir = std::getenv("GZ_SHARD_LOG_DIR");
  log_dir_ = !options_.log_dir.empty() ? options_.log_dir
             : (env_log_dir != nullptr && *env_log_dir != '\0')
                 ? env_log_dir
                 : base_.disk_dir;
  ::mkdir(log_dir_.c_str(), 0755);  // Best-effort; EEXIST is the norm.

  table_ = MakeRoutingTable(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    // A malformed endpoint URI surfaces from Start(); construction
    // itself cannot return a Status (the slot still allocates, as a
    // local placeholder, so the id space stays dense).
    ShardEndpoint endpoint;
    if (static_cast<size_t>(s) < options_.shard_endpoints.size()) {
      Result<ShardEndpoint> parsed =
          ParseShardEndpoint(options_.shard_endpoints[s]);
      if (parsed.ok()) {
        endpoint = std::move(parsed).value();
      } else if (endpoint_error_.ok()) {
        endpoint_error_ = parsed.status();
      }
    }
    const int id = AllocateShardSlot(std::move(endpoint));
    GZ_CHECK(id == s);
    procs_[id] = MakeTransportFor(id);
  }
}

ShardCluster::~ShardCluster() {
  if (started_) Shutdown();
  for (int s = 0; s < num_shards(); ++s) {
    // Unconditional: a checkpoint file can exist without an ack (shard
    // crashed between publishing and replying), and a removed shard's
    // may linger if its final unlink raced a crash.
    ::unlink(CheckpointPath(s).c_str());
    ::unlink((CheckpointPath(s) + ".tmp").c_str());
  }
}

std::unique_ptr<ShardTransport> ShardCluster::MakeTransportFor(
    int shard) const {
  ShardTransportOptions topts;
  topts.binary = binary_;
  topts.log_path = LogPath(shard);
  topts.auth_secret = options_.auth_secret;
  return MakeShardTransport(endpoints_[shard], topts);
}

int ShardCluster::AllocateShardSlot(ShardEndpoint endpoint) {
  const int id = static_cast<int>(procs_.size());
  procs_.emplace_back(nullptr);
  endpoints_.push_back(std::move(endpoint));
  down_.push_back(true);  // Up only once configured.
  route_bufs_.emplace_back();
  unacked_.emplace_back();
  pending_deltas_.emplace_back();
  delta_seq_sent_.push_back(0);
  checkpoint_delta_seq_.push_back(0);
  has_checkpoint_.push_back(false);
  checkpoint_updates_.push_back(0);
  return id;
}

void ShardCluster::ReleaseLastShardSlot(int id) {
  // Full rollback of a just-allocated id whose spawn failed, so the id
  // space stays in lockstep with the in-process mode (a burned id
  // would make identical op sequences hand out different ids — and
  // different tables — across the two modes).
  GZ_CHECK(id == static_cast<int>(procs_.size()) - 1);
  procs_.pop_back();
  endpoints_.pop_back();
  down_.pop_back();
  route_bufs_.pop_back();
  unacked_.pop_back();
  pending_deltas_.pop_back();
  delta_seq_sent_.pop_back();
  checkpoint_delta_seq_.pop_back();
  has_checkpoint_.pop_back();
  checkpoint_updates_.pop_back();
}

std::vector<int> ShardCluster::ActiveShards() const {
  std::vector<int> ids;
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s] != nullptr) ids.push_back(s);
  }
  return ids;
}

int ShardCluster::num_active_shards() const {
  int n = 0;
  for (const auto& p : procs_) n += (p != nullptr);
  return n;
}

std::string ShardCluster::CheckpointPath(int shard) const {
  // Coordinator pid + seed + shard index: concurrent clusters sharing
  // one checkpoint_dir cannot clobber each other.
  return options_.checkpoint_dir + "/gz_shard_ckpt_p" +
         std::to_string(::getpid()) + "_s" + std::to_string(base_.seed) +
         "_" + std::to_string(shard) + ".bin";
}

std::string ShardCluster::LogPath(int shard) const {
  return log_dir_ + "/gz_shard_p" + std::to_string(::getpid()) + "_s" +
         std::to_string(base_.seed) + "_shard" + std::to_string(shard) +
         ".log";
}

GraphZeppelinConfig ShardCluster::ShardConfigFor(int shard) const {
  GraphZeppelinConfig config = base_;
  config.instance_tag = "shard" + std::to_string(shard);
  return config;
}

Status ShardCluster::SpawnAndConfigure(int shard, bool restore,
                                       uint64_t* restored,
                                       uint64_t* restored_delta_seq) {
  ShardTransport& proc = *procs_[shard];
  Status s = proc.Connect();
  if (!s.ok()) return s;
  ShardConfig sc;
  sc.config = ShardConfigFor(shard);
  sc.shard_id = shard;
  sc.table = table_;
  if (restore && has_checkpoint_[shard]) {
    sc.restore_checkpoint = CheckpointPath(shard);
  }
  const std::vector<uint8_t> payload = EncodeShardConfig(sc);
  ShardAck ack;
  s = proc.CallAck(ShardMessageType::kConfig, payload.data(), payload.size(),
                   &ack);
  if (!s.ok()) {
    proc.Terminate();
    return s;
  }
  if (restored != nullptr) *restored = ack.value0;
  if (restored_delta_seq != nullptr) *restored_delta_seq = ack.value1;
  down_[shard] = false;
  return Status::Ok();
}

Status ShardCluster::Start() {
  if (started_) return Status::FailedPrecondition("cluster already started");
  if (!endpoint_error_.ok()) return endpoint_error_;
  for (int s = 0; s < num_shards(); ++s) {
    Status st = SpawnAndConfigure(s, /*restore=*/false, nullptr, nullptr);
    if (!st.ok()) return st;
  }
  started_ = true;
  return Status::Ok();
}

Status ShardCluster::SendUpdateFrames(int shard, const GraphUpdate* updates,
                                      size_t count) {
  // Every frame is stamped with the epoch it is sent (not originally
  // routed) under: the stamp asserts "coordinator and shard agree on
  // the current table", and the durability log — not the table — owns
  // the placement of already-routed updates, so replays re-stamp.
  const uint64_t epoch = table_.epoch;
  for (size_t off = 0; off < count; off += kMaxUpdatesPerFrame) {
    const size_t n = std::min(kMaxUpdatesPerFrame, count - off);
    Status s = SendFrame2(procs_[shard]->fd(),
                          ShardMessageType::kUpdateBatch, &epoch,
                          sizeof(epoch), updates + off,
                          n * sizeof(GraphUpdate));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ShardCluster::Update(const GraphUpdate* updates, size_t count) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  for (size_t i = 0; i < count; ++i) {
    // Fail-fast parity with the in-process mode's API boundary: a
    // malformed edge already aborts inside ShardFor (EdgeToIndex), and
    // a garbage type byte must abort HERE rather than make a shard
    // drop the whole frame it rides in.
    GZ_CHECK_MSG(static_cast<uint8_t>(updates[i].type) <= 1,
                 "invalid GraphUpdate type byte");
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (int s = 0; s < num_shards(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    GZ_CHECK_MSG(procs_[s] != nullptr,
                 "table routed an update to a removed shard");
    // Durability before transport: the log must already cover these
    // updates when a mid-frame send failure strikes, so the restart
    // replay can reconstruct the shard without loss.
    unacked_[s].insert(unacked_[s].end(), buf.begin(), buf.end());
    if (!down_[s]) {
      Status st = SendUpdateFrames(s, buf.data(), buf.size());
      if (!st.ok()) {
        // Shard unreachable: fence it and keep buffering. Nothing is
        // lost — the log holds everything since its last checkpoint.
        down_[s] = true;
      }
    }
    buf.clear();  // Keeps capacity for the next span.
  }
  // Periodic auto-checkpoint bounds the unacked logs: without it the
  // coordinator would retain the whole stream in RAM. Best-effort — a
  // failure (down shard, unwritable checkpoint dir) defers truncation
  // to the next interval; ingestion itself keeps going, so the error
  // is logged rather than returned.
  updates_since_checkpoint_ += count;
  if (options_.checkpoint_interval_updates > 0 &&
      updates_since_checkpoint_ >= options_.checkpoint_interval_updates) {
    Status ckpt = Checkpoint();  // Resets the counter on success.
    if (!ckpt.ok()) {
      std::fprintf(stderr,
                   "ShardCluster: auto-checkpoint failed (%s); durability "
                   "logs keep growing until one succeeds\n",
                   ckpt.ToString().c_str());
    }
  }
  return Status::Ok();
}

Status ShardCluster::RequireAllHealthy() {
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s] == nullptr) continue;  // Removed ids are not shards.
    if (down_[s] || !procs_[s]->Alive()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) +
          " is down; RestartShard() it before a cluster-wide barrier");
    }
  }
  return Status::Ok();
}

Status ShardCluster::PipelinedBarrier(
    ShardMessageType type, ShardMessageType expected_reply,
    const std::function<std::string(int shard)>& payload_for,
    const std::function<Status(int shard, const ShardFrame& reply)>&
        on_reply) {
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  std::vector<bool> sent(num_shards(), false);
  Status first_error = Status::Ok();
  for (int i = 0; i < num_shards(); ++i) {
    if (procs_[i] == nullptr) continue;
    const std::string payload = payload_for ? payload_for(i) : std::string();
    s = SendFrame(procs_[i]->fd(), type, payload.data(), payload.size());
    if (s.ok()) {
      sent[i] = true;
    } else {
      down_[i] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  for (int i = 0; i < num_shards(); ++i) {
    if (!sent[i]) continue;
    bool in_sync = false;
    s = RecvReply(procs_[i]->fd(), expected_reply, &reply_buf_, &in_sync);
    if (s.ok() && on_reply) s = on_reply(i, reply_buf_);
    if (!s.ok()) {
      if (!in_sync) down_[i] = true;
      if (first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

Status ShardCluster::Flush() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  return PipelinedBarrier(ShardMessageType::kFlush, ShardMessageType::kAck,
                          nullptr, nullptr);
}

Result<GraphSnapshot> ShardCluster::Snapshot() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Replies fold in arrival order: the first one materializes the
  // snapshot, every later reply streams through MergeSerialized with
  // one scratch sketch in flight. Peak memory is one snapshot + one
  // reply buffer regardless of shard count. (On a barrier failure the
  // helper still runs the fold for drained replies; the result is
  // discarded with the error.)
  GraphSnapshot merged;
  Status s = PipelinedBarrier(
      ShardMessageType::kSnapshot, ShardMessageType::kSnapshotBytes, nullptr,
      [&merged](int, const ShardFrame& reply) {
        if (!merged.valid()) {
          Result<GraphSnapshot> r = GraphSnapshot::Deserialize(
              reply.payload.data(), reply.payload.size());
          if (!r.ok()) return r.status();
          merged = std::move(r).value();
          return Status::Ok();
        }
        return merged.MergeSerialized(reply.payload.data(),
                                      reply.payload.size());
      });
  if (!s.ok()) return s;
  // Removed shards' ingested counts live on here: their sketch content
  // migrated to survivors (count-free deltas), so the aggregate count
  // is survivors' positions plus this adjustment.
  merged.AddUpdates(migrated_updates_);
  return merged;
}

Status ShardCluster::Checkpoint() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  // Per-shard commit as each ack arrives: a failure on one shard must
  // not discard the commits of shards whose checkpoints already landed
  // — their disk state has moved, and the coordinator's view has to
  // move with it.
  Status s = PipelinedBarrier(
      ShardMessageType::kCheckpoint, ShardMessageType::kAck,
      [this](int i) { return CheckpointPath(i); },
      [this](int i, const ShardFrame& reply) {
        ShardAck ack;
        Status d = DecodeShardAck(reply.payload.data(), reply.payload.size(),
                                  &ack);
        if (!d.ok()) return d;
        // The checkpoint covers everything sent before it (the socket
        // is FIFO and the shard single-threaded): all unacked updates
        // AND all pending deltas, so both logs restart empty.
        has_checkpoint_[i] = true;
        checkpoint_updates_[i] = ack.value0;
        checkpoint_delta_seq_[i] = ack.value1;
        unacked_[i].clear();
        std::vector<PendingDelta>& deltas = pending_deltas_[i];
        deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                                    [&ack](const PendingDelta& d) {
                                      return d.seq <= ack.value1;
                                    }),
                     deltas.end());
        return Status::Ok();
      });
  if (s.ok()) updates_since_checkpoint_ = 0;
  return s;
}

// ---- Elastic resharding ----------------------------------------------------

Status ShardCluster::BroadcastTable() {
  const std::vector<uint8_t> payload = EncodeRoutingTable(table_);
  const std::string payload_str(payload.begin(), payload.end());
  return PipelinedBarrier(
      ShardMessageType::kEpoch, ShardMessageType::kAck,
      [&payload_str](int) { return payload_str; }, nullptr);
}

Status ShardCluster::SendDelta(int shard, const std::vector<uint8_t>& bytes) {
  ShardAck ack;
  Status s = procs_[shard]->CallAck(ShardMessageType::kMergeDelta,
                                    bytes.data(), bytes.size(), &ack);
  if (!s.ok()) {
    // Transport loss or a diverged shard; either way restart + replay
    // (which re-delivers this delta) is the repair.
    down_[shard] = true;
  }
  return s;
}

Result<int> ShardCluster::AddShard(const std::string& endpoint) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (num_active_shards() >=
      static_cast<int>(RoutingTable::kNumSlots)) {
    return Status::FailedPrecondition(
        "slot table is full; cannot add another shard");
  }
  Result<ShardEndpoint> parsed = ParseShardEndpoint(endpoint);
  if (!parsed.ok()) return parsed.status();
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  const RoutingTable old_table = table_;
  const int id = AllocateShardSlot(std::move(parsed).value());
  procs_[id] = MakeTransportFor(id);
  table_ = TableWithShardAdded(old_table, id);
  // The new shard's CONFIG already carries the new table, so it comes
  // up at the current epoch; everyone else learns it from the
  // broadcast. No state migrates: an empty shard is a zero sketch, and
  // zero is the XOR identity.
  s = SpawnAndConfigure(id, /*restore=*/false, nullptr, nullptr);
  if (!s.ok()) {
    procs_[id]->Terminate();
    ReleaseLastShardSlot(id);
    table_ = old_table;
    return s;
  }
  s = BroadcastTable();
  if (!s.ok()) return s;
  return id;
}

Status ShardCluster::BeginRemoveShard(int shard) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (procs_[shard] == nullptr) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (num_active_shards() < 2) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  table_ = TableWithShardRemoved(table_, shard);
  s = BroadcastTable();
  if (!s.ok()) return s;
  // From this epoch on nothing routes to `shard`; its accumulated state
  // drains into the smallest surviving shard. Any single survivor is a
  // correct fold target — the global XOR is what queries see.
  Migration m;
  m.kind = Migration::Kind::kRemove;
  m.source = shard;
  for (const int id : ActiveShards()) {
    if (id != shard) {
      m.target = id;
      break;
    }
  }
  m.next_node = 0;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return Status::Ok();
}

Result<int> ShardCluster::BeginSplitShard(int shard,
                                          const std::string& endpoint) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (procs_[shard] == nullptr) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  // Keeps the every-live-shard-owns-a-slot invariant: the child takes
  // half the source's slots, so the source needs at least two.
  if (TableSlotCount(table_, shard) < 2) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " owns too few routing slots to split");
  }
  Result<ShardEndpoint> parsed = ParseShardEndpoint(endpoint);
  if (!parsed.ok()) return parsed.status();
  Status s = RequireAllHealthy();
  if (!s.ok()) return s;
  const RoutingTable old_table = table_;
  const int id = AllocateShardSlot(std::move(parsed).value());
  procs_[id] = MakeTransportFor(id);
  table_ = TableWithShardSplit(old_table, shard, id);
  s = SpawnAndConfigure(id, /*restore=*/false, nullptr, nullptr);
  if (!s.ok()) {
    procs_[id]->Terminate();
    ReleaseLastShardSlot(id);
    table_ = old_table;
    return s;
  }
  s = BroadcastTable();
  if (!s.ok()) return s;
  // Balance memory too, not just routing: the upper half of the node
  // range of the source's accumulated state moves to the new shard.
  // (Any fixed range is exact under the XOR fold; half keeps the two
  // sides' footprints comparable.)
  Migration m;
  m.kind = Migration::Kind::kSplit;
  m.source = shard;
  m.target = id;
  m.next_node = base_.num_nodes / 2;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return id;
}

int ShardCluster::migration_source() const {
  GZ_CHECK(migration_.has_value());
  return migration_->source;
}

int ShardCluster::migration_target() const {
  GZ_CHECK(migration_.has_value());
  return migration_->target;
}

Status ShardCluster::PumpMigration() {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (!migration_.has_value()) {
    return Status::FailedPrecondition("no active migration");
  }
  Migration& m = *migration_;
  if (down_[m.source] || down_[m.target]) {
    return Status::FailedPrecondition(
        "migration shard is down; RestartShard() it, then keep pumping");
  }
  if (m.next_node < m.end_node) {
    const uint64_t lo = m.next_node;
    const uint64_t hi =
        std::min(m.end_node, lo + options_.migrate_nodes_per_chunk);
    // Extract is read-only on the source (its internal flush makes the
    // chunk cover everything framed to it so far), so a failure here
    // mutates nothing and the chunk is simply retried after repair.
    const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
    Status s = SendFrame(procs_[m.source]->fd(),
                         ShardMessageType::kMigrateExtract, req.data(),
                         req.size());
    if (!s.ok()) {
      down_[m.source] = true;
      return s;
    }
    bool in_sync = false;
    s = RecvReply(procs_[m.source]->fd(), ShardMessageType::kMigrateData,
                  &reply_buf_, &in_sync);
    if (!s.ok()) {
      if (!in_sync) down_[m.source] = true;
      return s;
    }
    // Durability before transport, as with the update logs: both folds
    // — install on the target, XOR-cancel on the source — enter the
    // pending-delta logs and the cursor advances BEFORE either frame
    // is sent. Whatever dies after this point, restart replay (with
    // the checkpoint's delta sequence number skipping what a published
    // checkpoint already covers) re-delivers exactly the missing
    // folds, and the migration resumes at the next chunk.
    pending_deltas_[m.target].push_back(
        {++delta_seq_sent_[m.target], reply_buf_.payload});
    pending_deltas_[m.source].push_back(
        {++delta_seq_sent_[m.source], std::move(reply_buf_.payload)});
    m.next_node = hi;
    // BOTH sends must be attempted even if the first fails: a logged
    // delta must either reach its shard now or leave that shard fenced
    // (SendDelta fences on failure) so restart replay delivers it.
    // Returning between the sends would strand the source's cancel on
    // a HEALTHY shard — nothing would ever deliver it, later deltas
    // would close the sequence gap, and a checkpoint would truncate
    // the one unsent fold, silently cancelling the chunk out of the
    // global XOR.
    const Status install =
        SendDelta(m.target, pending_deltas_[m.target].back().bytes);
    const Status cancel =
        SendDelta(m.source, pending_deltas_[m.source].back().bytes);
    return install.ok() ? cancel : install;
  }
  // Final step. For a split there is nothing left to do; for a removal
  // the source — now a zero sketch holding no routed slots — retires.
  if (m.kind == Migration::Kind::kRemove) {
    ShardAck ack;
    // The source is quiescent (no slots since the epoch bump, flushed
    // by every extract), so its position is final; it must survive in
    // the aggregate update count after the process goes away. A sticky
    // divergence error surfaces here and blocks the removal.
    Status s = procs_[m.source]->CallAck(ShardMessageType::kStats, nullptr,
                                         0, &ack);
    if (!s.ok()) {
      down_[m.source] = true;
      return s;
    }
    migrated_updates_ += ack.value0;
    ShardAck ignored;
    procs_[m.source]->CallAck(ShardMessageType::kShutdown, nullptr, 0,
                              &ignored);  // Best-effort orderly exit.
    procs_[m.source]->Terminate();             // Degenerates to a reap.
    ::unlink(CheckpointPath(m.source).c_str());
    ::unlink((CheckpointPath(m.source) + ".tmp").c_str());
    procs_[m.source].reset();
    down_[m.source] = true;
    unacked_[m.source].clear();
    pending_deltas_[m.source].clear();
    has_checkpoint_[m.source] = false;
  }
  migration_.reset();
  return Status::Ok();
}

Status ShardCluster::RemoveShard(int shard) {
  Status s = BeginRemoveShard(shard);
  while (s.ok() && migration_.has_value()) s = PumpMigration();
  return s;
}

Result<int> ShardCluster::SplitShard(int shard,
                                     const std::string& endpoint) {
  Result<int> id = BeginSplitShard(shard, endpoint);
  if (!id.ok()) return id;
  Status s = Status::Ok();
  while (s.ok() && migration_.has_value()) s = PumpMigration();
  if (!s.ok()) return s;
  return id;
}

// ---- Lifecycle -------------------------------------------------------------

std::vector<bool> ShardCluster::HealthCheck() {
  std::vector<bool> alive(num_shards(), false);
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s] == nullptr || down_[s] || !procs_[s]->Alive()) continue;
    ShardAck ack;
    if (procs_[s]->CallAck(ShardMessageType::kPing, nullptr, 0, &ack).ok()) {
      alive[s] = true;
    } else {
      down_[s] = true;
    }
  }
  return alive;
}

void ShardCluster::KillShard(int shard, bool observed) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  GZ_CHECK_MSG(procs_[shard] != nullptr, "shard already removed");
  procs_[shard]->Terminate();
  if (observed) down_[shard] = true;
}

Status ShardCluster::RestartShard(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (procs_[shard] == nullptr) {
    return Status::FailedPrecondition("shard was removed");
  }
  procs_[shard]->Terminate();  // Reaps; no-op if already dead.
  uint64_t restored = 0, restored_seq = 0;
  Status s = SpawnAndConfigure(shard, /*restore=*/true, &restored,
                               &restored_seq);
  if (!s.ok()) return s;
  // Replay everything the restored checkpoint does not cover. The
  // on-disk checkpoint may be AHEAD of the last acked one (the shard
  // published it, then died before the ack): a checkpoint covers
  // exactly the updates sent before its request — a prefix of the
  // unacked log — so the restored position tells how much of the log
  // to skip. The same reconciliation runs for migration deltas via the
  // checkpoint's delta sequence number. Linearity makes the replayed
  // shard bitwise-identical to one that never crashed either way.
  const std::vector<GraphUpdate>& log = unacked_[shard];
  const uint64_t acked = has_checkpoint_[shard] ? checkpoint_updates_[shard]
                                                : 0;
  if (restored < acked || restored - acked > log.size()) {
    procs_[shard]->Terminate();
    down_[shard] = true;
    return Status::Internal(
        "restored shard position " + std::to_string(restored) +
        " is outside what the checkpoint plus the unacked log can "
        "explain");
  }
  if (restored_seq < checkpoint_delta_seq_[shard] ||
      restored_seq > delta_seq_sent_[shard]) {
    procs_[shard]->Terminate();
    down_[shard] = true;
    return Status::Internal(
        "restored shard delta sequence " + std::to_string(restored_seq) +
        " is outside what the checkpoint plus the pending deltas can "
        "explain");
  }
  const size_t skip = static_cast<size_t>(restored - acked);
  if (skip < log.size()) {
    s = SendUpdateFrames(shard, log.data() + skip, log.size() - skip);
    if (!s.ok()) {
      down_[shard] = true;
      return s;
    }
  }
  // Replay order between updates and deltas does not matter — all XOR
  // folds commute — so deltas go second wholesale.
  for (const PendingDelta& delta : pending_deltas_[shard]) {
    if (delta.seq <= restored_seq) continue;  // Checkpoint covers it.
    s = SendDelta(shard, delta.bytes);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ShardCluster::Shutdown() {
  if (!started_) return Status::Ok();
  Status first_error = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s] == nullptr) continue;
    if (down_[s] || !procs_[s]->Alive()) {
      procs_[s]->Terminate();  // Reap whatever is left.
      continue;
    }
    ShardAck ack;
    Status st =
        procs_[s]->CallAck(ShardMessageType::kShutdown, nullptr, 0, &ack);
    if (!st.ok() && first_error.ok()) first_error = st;
    // Orderly exit follows the ack; Kill() degenerates to a reap (the
    // SIGKILL lands on an exiting or exited process) and guarantees no
    // zombie either way.
    procs_[s]->Terminate();
    down_[s] = true;
  }
  started_ = false;
  return first_error;
}

Result<ShardStats> ShardCluster::Stats(int shard) {
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (!started_) return Status::FailedPrecondition("cluster not started");
  if (procs_[shard] == nullptr) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " was removed");
  }
  if (down_[shard]) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is down");
  }
  // STATS_EX rather than the legacy STATS: the reply carries the
  // shard's serving watermark (epoch, update count, delta sequence) on
  // top of the RAM figure, which is what the serving tier keys its
  // cache by.
  Status s = SendFrame(procs_[shard]->fd(), ShardMessageType::kStatsEx,
                       nullptr, 0);
  if (!s.ok()) {
    down_[shard] = true;
    return s;
  }
  bool in_sync = false;
  s = RecvReply(procs_[shard]->fd(), ShardMessageType::kStatsReply,
                &reply_buf_, &in_sync);
  if (!s.ok()) {
    if (!in_sync) down_[shard] = true;
    return s;
  }
  ShardStatsEx ex;
  s = DecodeShardStatsEx(reply_buf_.payload.data(),
                         reply_buf_.payload.size(), &ex);
  if (!s.ok()) {
    down_[shard] = true;  // A garbled reply payload: lost sync.
    return s;
  }
  ShardStats stats;
  stats.num_updates = ex.num_updates;
  stats.ram_bytes = ex.ram_bytes;
  stats.epoch = ex.epoch;
  stats.delta_seq = ex.delta_seq;
  return stats;
}

// ---- Serving tier ----------------------------------------------------------

ShardWatermarks ShardCluster::Watermarks() const {
  // Pure bookkeeping, no RPC: a shard's eventual update count is its
  // last acked checkpoint position plus its unacked log (the log holds
  // everything since, including updates buffered for a down shard),
  // and its delta position is the deltas framed to it. FIFO sockets
  // make shard content a pure function of this pair.
  ShardWatermarks marks;
  for (int s = 0; s < num_shards(); ++s) {
    if (procs_[s] == nullptr) continue;
    ShardWatermark mark;
    mark.num_updates = checkpoint_updates_[s] + unacked_[s].size();
    mark.delta_seq = delta_seq_sent_[s];
    marks.emplace(s, mark);
  }
  return marks;
}

Status ShardCluster::CachedSnapshot(const GraphSnapshot** out) {
  if (!started_) return Status::FailedPrecondition("cluster not started");
  const ShardWatermarks marks = Watermarks();
  uint64_t total_updates = migrated_updates_;
  for (const auto& [shard, mark] : marks) {
    total_updates += mark.num_updates;
  }
  if (!cache_.Fresh(table_.epoch, marks)) {
    NodeSketchParams params;
    params.num_nodes = base_.num_nodes;
    params.seed = base_.seed;
    params.cols = base_.cols;
    params.rounds = base_.rounds;
    // The puller is the read-only extract RPC migration already uses;
    // FIFO ordering means the extracted bytes cover every frame sent
    // before the pull, i.e. exactly the watermark the key promises.
    const Status s = cache_.Refresh(
        table_.epoch, marks, total_updates, params,
        [this](int shard, uint64_t lo, uint64_t hi,
               std::vector<uint8_t>* delta) {
          if (procs_[shard] == nullptr || down_[shard]) {
            return Status::FailedPrecondition(
                "snapshot-cache refresh needs shard " +
                std::to_string(shard) +
                ", which is down; RestartShard() it first");
          }
          const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
          Status st = SendFrame(procs_[shard]->fd(),
                                ShardMessageType::kMigrateExtract,
                                req.data(), req.size());
          if (!st.ok()) {
            down_[shard] = true;
            return st;
          }
          bool in_sync = false;
          st = RecvReply(procs_[shard]->fd(), ShardMessageType::kMigrateData,
                         &reply_buf_, &in_sync);
          if (!st.ok()) {
            if (!in_sync) down_[shard] = true;
            return st;
          }
          *delta = std::move(reply_buf_.payload);
          return Status::Ok();
        });
    if (!s.ok()) return s;
  }
  *out = &cache_.merged();
  return Status::Ok();
}

}  // namespace gz
