#include "distributed/sharded_graph_zeppelin.h"

#include "core/connectivity.h"
#include "distributed/shard_protocol.h"
#include "util/check.h"

namespace gz {
namespace {

// Single updates accumulate up to this many before one frame leaves
// (mirrors GraphZeppelin's API-boundary span).
constexpr size_t kPendingSpanUpdates = 1024;

}  // namespace

ShardedGraphZeppelin::ShardedGraphZeppelin(const GraphZeppelinConfig& base,
                                           int num_shards, Mode mode)
    : base_(base), mode_(mode), num_shards_(num_shards) {
  GZ_CHECK(num_shards >= 1);
  if (mode_ == Mode::kInProcess) {
    shards_.reserve(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      GraphZeppelinConfig shard_config = base;
      shard_config.instance_tag = "shard" + std::to_string(s);
      shards_.push_back(std::make_unique<GraphZeppelin>(shard_config));
    }
    route_bufs_.resize(num_shards);
  } else {
    cluster_ = std::make_unique<ShardCluster>(base, num_shards);
    pending_.reserve(kPendingSpanUpdates);
  }
}

Status ShardedGraphZeppelin::Init() {
  if (mode_ == Mode::kProcess) return cluster_->Start();
  for (auto& shard : shards_) {
    Status s = shard->Init();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

int ShardedGraphZeppelin::ShardFor(const Edge& e) const {
  return RouteToShard(e, base_.num_nodes, num_shards_);
}

void ShardedGraphZeppelin::DrainPending() {
  if (pending_.empty()) return;
  GZ_CHECK_OK(cluster_->Update(pending_.data(), pending_.size()));
  pending_.clear();  // Keeps capacity.
}

void ShardedGraphZeppelin::Update(const GraphUpdate& update) {
  if (mode_ == Mode::kProcess) {
    pending_.push_back(update);
    if (pending_.size() >= kPendingSpanUpdates) DrainPending();
    return;
  }
  shards_[ShardFor(update.edge)]->Update(update);
}

void ShardedGraphZeppelin::Update(const GraphUpdate* updates, size_t count) {
  if (mode_ == Mode::kProcess) {
    DrainPending();  // Preserve stream order with singly fed updates.
    GZ_CHECK_OK(cluster_->Update(updates, count));
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    shards_[s]->Update(buf.data(), buf.size());
    buf.clear();  // Keeps capacity for the next span.
  }
}

void ShardedGraphZeppelin::Flush() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    GZ_CHECK_OK(cluster_->Flush());
    return;
  }
  for (auto& shard : shards_) shard->Flush();
}

GraphSnapshot ShardedGraphZeppelin::Snapshot() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    Result<GraphSnapshot> r = cluster_->Snapshot();
    GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
    return std::move(r).value();
  }
  // All shards share hash seeds, so the node-wise XOR of their
  // snapshots is the sketch of the whole graph. Shards past the first
  // are folded in place, one scratch sketch at a time.
  GraphSnapshot merged = shards_[0]->Snapshot();
  for (size_t s = 1; s < shards_.size(); ++s) {
    GZ_CHECK_OK(shards_[s]->MergeSnapshotInto(&merged));
  }
  return merged;
}

ConnectivityResult ShardedGraphZeppelin::ListSpanningForest() {
  return Connectivity(Snapshot(), base_.query_threads);
}

uint64_t ShardedGraphZeppelin::updates_in_shard(int shard) {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    Result<ShardStats> r = cluster_->Stats(shard);
    GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
    return r.value().num_updates;
  }
  return shards_[shard]->num_updates_ingested();
}

size_t ShardedGraphZeppelin::RamByteSize() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    size_t total = 0;
    for (int s = 0; s < num_shards_; ++s) {
      Result<ShardStats> r = cluster_->Stats(s);
      GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
      total += r.value().ram_bytes;
    }
    return total;
  }
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->RamByteSize();
  return total;
}

}  // namespace gz
