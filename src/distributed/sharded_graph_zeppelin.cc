#include "distributed/sharded_graph_zeppelin.h"

#include "core/connectivity.h"
#include "util/check.h"
#include "util/xxhash.h"

namespace gz {

ShardedGraphZeppelin::ShardedGraphZeppelin(const GraphZeppelinConfig& base,
                                           int num_shards)
    : base_(base) {
  GZ_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    GraphZeppelinConfig shard_config = base;
    shard_config.instance_tag = "shard" + std::to_string(s);
    shards_.push_back(std::make_unique<GraphZeppelin>(shard_config));
  }
  route_bufs_.resize(num_shards);
}

Status ShardedGraphZeppelin::Init() {
  for (auto& shard : shards_) {
    Status s = shard->Init();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

int ShardedGraphZeppelin::ShardFor(const Edge& e) const {
  const uint64_t idx = EdgeToIndex(e, base_.num_nodes);
  return static_cast<int>(XxHash64Word(idx, 0x7368617264ULL) %
                          shards_.size());
}

void ShardedGraphZeppelin::Update(const GraphUpdate& update) {
  shards_[ShardFor(update.edge)]->Update(update);
}

void ShardedGraphZeppelin::Update(const GraphUpdate* updates, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    shards_[s]->Update(buf.data(), buf.size());
    buf.clear();  // Keeps capacity for the next span.
  }
}

void ShardedGraphZeppelin::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

GraphSnapshot ShardedGraphZeppelin::Snapshot() {
  // All shards share hash seeds, so the node-wise XOR of their
  // snapshots is the sketch of the whole graph. Shards past the first
  // are folded in place, one scratch sketch at a time.
  GraphSnapshot merged = shards_[0]->Snapshot();
  for (size_t s = 1; s < shards_.size(); ++s) {
    GZ_CHECK_OK(shards_[s]->MergeSnapshotInto(&merged));
  }
  return merged;
}

ConnectivityResult ShardedGraphZeppelin::ListSpanningForest() {
  return Connectivity(Snapshot(), base_.query_threads);
}

size_t ShardedGraphZeppelin::RamByteSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->RamByteSize();
  return total;
}

}  // namespace gz
